package wardrop_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"wardrop"
)

// squareLatency is a user-defined latency function ℓ(x) = c·x², used to
// prove that registered components are first-class citizens of every file
// format.
type squareLatency struct{ C float64 }

func (s squareLatency) Value(x float64) float64      { return s.C * x * x }
func (s squareLatency) Derivative(x float64) float64 { return 2 * s.C * x }
func (s squareLatency) Integral(x float64) float64   { return s.C * x * x * x / 3 }
func (s squareLatency) SlopeBound() float64          { return 2 * s.C }
func (s squareLatency) String() string               { return fmt.Sprintf("square(%g)", s.C) }

// registerTestComponents registers the test latency kind and topology family
// once per test binary (the registries are process-global).
var registered = func() bool {
	err := wardrop.RegisterLatency(wardrop.LatencyEntry{
		Name: "testsquare",
		Doc:  "test-only quadratic latency c·x²",
		Params: []wardrop.CatalogParam{
			{Name: "c", Type: "float", Doc: "coefficient"},
		},
		Build: func(args json.RawMessage) (wardrop.LatencyFunc, error) {
			var p struct {
				C float64 `json:"c"`
			}
			if err := wardrop.DecodeCatalogParams(args, &p); err != nil {
				return nil, err
			}
			return squareLatency{C: p.C}, nil
		},
	})
	if err != nil {
		panic(err)
	}
	err = wardrop.RegisterTopology(wardrop.TopologyEntry{
		Name: "testsquares",
		Doc:  "test-only family: m parallel links with ℓ_j(x) = (j+1)·x²",
		Params: []wardrop.CatalogParam{
			{Name: "m", Type: "int", Doc: "link count (>= 2)"},
		},
		Build: func(args json.RawMessage) (wardrop.TopologyBuilder, error) {
			var p struct {
				M int `json:"m"`
			}
			if err := wardrop.DecodeCatalogParams(args, &p); err != nil {
				return wardrop.TopologyBuilder{}, err
			}
			if p.M < 2 {
				return wardrop.TopologyBuilder{}, fmt.Errorf("testsquares m %d must be >= 2", p.M)
			}
			return wardrop.TopologyBuilder{
				Key: fmt.Sprintf("testsquares(m=%d)", p.M),
				New: func(uint64) (*wardrop.Instance, error) {
					lats := make([]wardrop.LatencyFunc, p.M)
					for j := range lats {
						lats[j] = squareLatency{C: float64(j + 1)}
					}
					return wardrop.ParallelLinks(lats)
				},
			}, nil
		},
	})
	if err != nil {
		panic(err)
	}
	return true
}()

// A user-registered latency kind flows through an instance document inside a
// scenario file; a user-registered topology family is selectable directly.
func TestRegisteredComponentsFlowThroughScenarioFiles(t *testing.T) {
	_ = registered
	doc := `{
	  "instance": {
	    "nodes": ["s", "t"],
	    "edges": [
	      {"from": "s", "to": "t", "latency": {"kind": "testsquare", "params": {"c": 2}}},
	      {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
	    ],
	    "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	  },
	  "policy": {"kind": "replicator"},
	  "updatePeriod": "safe",
	  "horizon": 30
	}`
	s, err := wardrop.ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	// The custom latency is really in play: ℓ1(x) = 2x² against ℓ2 = 1, so
	// the equilibrium puts x = 1/√2 on link 1.
	res, err := wardrop.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 / math.Sqrt2; math.Abs(res.Final[0]-want) > 1e-3 {
		t.Errorf("equilibrium flow on the square link = %g, want %g", res.Final[0], want)
	}

	family := `{
	  "topology": {"family": "testsquares", "params": {"m": 3}},
	  "policy": {"kind": "uniform"},
	  "updatePeriod": "safe",
	  "horizon": 5
	}`
	s2, err := wardrop.ParseScenario(strings.NewReader(family))
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := s2.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Instance.NumPaths() != 3 {
		t.Errorf("paths = %d, want 3", sc2.Instance.NumPaths())
	}
	if _, err := wardrop.Run(context.Background(), sc2); err != nil {
		t.Fatal(err)
	}
}

// The same registered family drives a whole campaign axis, with its key
// labelling the aggregation cells.
func TestRegisteredTopologyFlowsThroughCampaigns(t *testing.T) {
	_ = registered
	doc := `{
	  "name": "custom-family",
	  "topologies": [{"family": "testsquares", "params": {"m": 2}}],
	  "policies": [{"kind": "uniform"}],
	  "updatePeriods": ["safe"],
	  "maxPhases": 10
	}`
	c, err := wardrop.ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := wardrop.RunSweep(context.Background(), c, wardrop.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %d", len(res.Records))
	}
	rec := res.Records[0]
	if rec.Error != "" {
		t.Fatalf("task failed: %s", rec.Error)
	}
	if rec.Topology != "testsquares(m=2)" {
		t.Errorf("cell label = %q, want testsquares(m=2)", rec.Topology)
	}
	// Bad params are caught at parse time like any builtin family's.
	bad := strings.Replace(doc, `{"m": 2}`, `{"m": 1}`, 1)
	if _, err := wardrop.ParseCampaign(strings.NewReader(bad)); err == nil {
		t.Error("invalid custom params accepted")
	}
}

// Catalog() lists builtins and user registrations in deterministic order.
func TestCatalogListsRegisteredComponents(t *testing.T) {
	_ = registered
	comps := wardrop.Catalog()
	found := map[string]bool{}
	lastKind, lastName := "", ""
	kindRank := map[string]int{}
	for i, c := range comps {
		found[c.Kind+"/"+c.Name] = true
		if c.Kind != lastKind {
			if _, seen := kindRank[c.Kind]; seen {
				t.Errorf("kind %q appears in two separate groups", c.Kind)
			}
			kindRank[c.Kind] = i
			lastKind, lastName = c.Kind, ""
		}
		if lastName != "" && c.Name <= lastName {
			t.Errorf("kind %q not sorted: %q after %q", c.Kind, c.Name, lastName)
		}
		lastName = c.Name
	}
	for _, want := range []string{
		"latency/linear", "latency/testsquare",
		"topology/custom", "topology/testsquares",
		"policy/boltzmann", "migrator/alphalinear",
		"engine/agents", "integrator/rk4", "start/skewed",
	} {
		if !found[want] {
			t.Errorf("Catalog() missing %s", want)
		}
	}
	var buf bytes.Buffer
	if err := wardrop.WriteCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "testsquare(") {
		t.Error("WriteCatalog missing registered component")
	}
}

// Duplicate registrations are rejected across all Register* fronts.
func TestDuplicateRegistrationRejected(t *testing.T) {
	_ = registered
	err := wardrop.RegisterLatency(wardrop.LatencyEntry{
		Name:  "linear",
		Build: func(json.RawMessage) (wardrop.LatencyFunc, error) { return nil, nil },
	})
	if err == nil {
		t.Error("duplicate latency registration accepted")
	}
	err = wardrop.RegisterTopology(wardrop.TopologyEntry{
		Name:  "pigou",
		Build: func(json.RawMessage) (wardrop.TopologyBuilder, error) { return wardrop.TopologyBuilder{}, nil },
	})
	if err == nil {
		t.Error("duplicate topology registration accepted")
	}
	err = wardrop.RegisterPolicy(wardrop.SamplerEntry{
		Name:  "uniform",
		Build: func(json.RawMessage) (wardrop.SamplerChoice, error) { return wardrop.SamplerChoice{}, nil },
	})
	if err == nil {
		t.Error("duplicate policy registration accepted")
	}
	err = wardrop.RegisterMigrator(wardrop.MigratorEntry{
		Name:  "linear",
		Build: func(json.RawMessage) (wardrop.MigratorChoice, error) { return wardrop.MigratorChoice{}, nil },
	})
	if err == nil {
		t.Error("duplicate migrator registration accepted")
	}
	err = wardrop.RegisterEngine(wardrop.EngineEntry{
		Name:  "fluid",
		Build: func(json.RawMessage) (wardrop.Engine, error) { return nil, nil },
	})
	if err == nil {
		t.Error("duplicate engine registration accepted")
	}
	err = wardrop.RegisterStart(wardrop.StartEntry{
		Name:  "uniform",
		Build: func(json.RawMessage) (wardrop.StartFunc, error) { return nil, nil },
	})
	if err == nil {
		t.Error("duplicate start registration accepted")
	}
}

// A user-registered start distribution is selectable from scenario files.
func TestRegisteredStartFlowsThroughScenarios(t *testing.T) {
	_ = registered
	err := wardrop.RegisterStart(wardrop.StartEntry{
		Name: "testfirstpath",
		Doc:  "test-only start: everything on each commodity's first path",
		Build: func(json.RawMessage) (wardrop.StartFunc, error) {
			return func(inst *wardrop.Instance) (wardrop.Flow, error) {
				f := make(wardrop.Flow, inst.NumPaths())
				for i := 0; i < inst.NumCommodities(); i++ {
					lo, _ := inst.CommodityRange(i)
					f[lo] = inst.Commodity(i).Demand
				}
				return f, nil
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := `{
	  "topology": {"family": "pigou"},
	  "policy": {"kind": "uniform"},
	  "updatePeriod": 0.25,
	  "horizon": 1,
	  "start": "testfirstpath"
	}`
	s, err := wardrop.ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.InitialFlow[0] != 1 || sc.InitialFlow[1] != 0 {
		t.Errorf("initial flow = %v, want [1 0]", sc.InitialFlow)
	}
}
