// Benchmark harness: one benchmark per reproduced paper artefact (see
// DESIGN.md's experiment index). Each bench regenerates the corresponding
// table through internal/experiments and reports the artefact's headline
// number as a custom metric, so `go test -bench=. -benchmem` doubles as the
// reproduction run. EXPERIMENTS.md records paper-vs-measured for each.
package wardrop_test

import (
	"strconv"
	"testing"

	"wardrop"
	"wardrop/internal/experiments"
	"wardrop/internal/report"
)

func cell(b *testing.B, tbl *report.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

// BenchmarkE1BestResponseOscillation regenerates the §3.2 oscillation table
// (amplitude closed form vs measured across β×T).
func BenchmarkE1BestResponseOscillation(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE1(experiments.DefaultE1Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for r := range tbl.Rows {
		if v := cell(b, tbl, r, 4); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst-rel-amp-err")
}

// BenchmarkE2OscillationThreshold regenerates the §3.2 max-period table.
func BenchmarkE2OscillationThreshold(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE2(experiments.DefaultE2Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	ok := 0.0
	for _, row := range tbl.Rows {
		if row[4] == "true" {
			ok++
		}
	}
	b.ReportMetric(ok/float64(len(tbl.Rows)), "within-eps-fraction")
}

// BenchmarkE3FreshInfoConvergence regenerates the Theorem 2 table.
func BenchmarkE3FreshInfoConvergence(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE3(experiments.DefaultE3Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	worstGap := 0.0
	for r := range tbl.Rows {
		if v := cell(b, tbl, r, 5); v > worstGap {
			worstGap = v
		}
	}
	b.ReportMetric(worstGap, "worst-phi-gap")
}

// BenchmarkE4PotentialAccounting regenerates the Lemma 3/4 table.
func BenchmarkE4PotentialAccounting(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE4(experiments.DefaultE4Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for r := range tbl.Rows {
		if v := cell(b, tbl, r, 2); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst-lemma3-residual")
}

// BenchmarkE5SafeTSweep regenerates the Corollary 5 regime table.
func BenchmarkE5SafeTSweep(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE5(experiments.DefaultE5Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Final potential at T = T_safe (row with multiplier 1).
	b.ReportMetric(cell(b, tbl, 1, 2), "phi-final-at-Tsafe")
}

// BenchmarkE6UniformScalingPaths regenerates the Theorem 6 m-scaling series.
func BenchmarkE6UniformScalingPaths(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE6(experiments.DefaultE6Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 2), "rounds-at-max-m")
}

// BenchmarkE7UniformScalingDelta regenerates the Theorem 6 δ-scaling series.
func BenchmarkE7UniformScalingDelta(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE7(experiments.DefaultE7Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 1), "rounds-at-min-delta")
}

// BenchmarkE8ProportionalScaling regenerates the Theorem 7 series.
func BenchmarkE8ProportionalScaling(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE8(experiments.DefaultE8Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 2), "rounds-at-max-m")
}

// BenchmarkE9LogitSweep regenerates the smoothed-best-response table.
func BenchmarkE9LogitSweep(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE9(experiments.DefaultE9Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Oscillation score of the hard-best-response contrast row.
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 4), "br-osc-score")
}

// BenchmarkE10FluidVsAgents regenerates the fluid-limit validity series.
func BenchmarkE10FluidVsAgents(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE10(experiments.DefaultE10Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 1), "sup-err-at-max-N")
}

// BenchmarkAblationStepSize regenerates the integrator step-size ablation.
func BenchmarkAblationStepSize(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunAblationStep(experiments.DefaultAblationStepParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cell(b, tbl, 0, 2), "rk4-err-at-coarsest-step")
}

// BenchmarkAblationPhaseExact compares the three within-phase integration
// schemes' wall time on the same workload (design choice: uniformization is
// both exact and cheap because the frozen-board phase is linear).
func BenchmarkAblationPhaseExact(b *testing.B) {
	inst, err := wardrop.LinearParallelLinks(16)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		b.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		integ wardrop.Integrator
	}{
		{"euler", wardrop.Euler},
		{"rk4", wardrop.RK4},
		{"uniformization", wardrop.Uniformization},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f0 := inst.SinglePathFlow(0)
			for i := 0; i < b.N; i++ {
				if _, err := wardrop.Simulate(inst, wardrop.SimConfig{
					Policy: pol, UpdatePeriod: T, Horizon: 100 * T, Integrator: tc.integ,
				}, f0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAgentWorkers measures the agent simulator's shard
// parallelism (design choice: phase-frozen boards make shards embarrassingly
// parallel).
func BenchmarkAblationAgentWorkers(b *testing.B) {
	inst, err := wardrop.Braess()
	if err != nil {
		b.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := wardrop.NewAgentSim(inst, wardrop.AgentConfig{
					N: 20000, Policy: pol, UpdatePeriod: 0.25, Horizon: 5,
					Seed: 1, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverEquilibrium measures the reference solver on a mid-size
// instance.
func BenchmarkSolverEquilibrium(b *testing.B) {
	inst, err := wardrop.LayeredRandom(3, 4, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{RelGapTol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidPhase measures the per-phase cost of the stale dynamics on a
// larger strategy space.
func BenchmarkFluidPhase(b *testing.B) {
	inst, err := wardrop.LinearParallelLinks(64)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		b.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		b.Fatal(err)
	}
	f0 := inst.SinglePathFlow(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wardrop.Simulate(inst, wardrop.SimConfig{
			Policy: pol, UpdatePeriod: T, Horizon: 10 * T, Integrator: wardrop.Uniformization,
		}, f0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11HedgeSweep regenerates the no-regret baseline table.
func BenchmarkE11HedgeSweep(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE11(experiments.DefaultE11Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Flow deviation of the smallest learning rate (should be ~0).
	b.ReportMetric(cell(b, tbl, 0, 3), "flow-dev-at-min-eta")
}

// BenchmarkE12MultiCommodity regenerates the multi-commodity rounds table.
func BenchmarkE12MultiCommodity(b *testing.B) {
	var tbl *report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.RunE12(experiments.DefaultE12Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 3), "replicator-rounds-at-max-k")
}
