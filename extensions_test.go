package wardrop_test

import (
	"math"
	"strings"
	"testing"

	"wardrop"
)

func TestSimulateHedgeFacade(t *testing.T) {
	inst, err := wardrop.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	res, err := wardrop.SimulateHedge(inst, wardrop.HedgeConfig{
		Eta: 0.2, UpdatePeriod: 0.25, Horizon: 150,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(res.Final, 0.02) {
		t.Errorf("hedge did not converge: %v", res.Final)
	}
}

func TestRelativeGainFacade(t *testing.T) {
	inst, err := wardrop.Braess()
	if err != nil {
		t.Fatal(err)
	}
	mig, err := wardrop.NewRelativeGainMigrator(0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pol := wardrop.Policy{Sampler: wardrop.ProportionalSampler{}, Migrator: mig}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wardrop.Simulate(inst, wardrop.SimConfig{
		Policy: pol, UpdatePeriod: T, Horizon: 800, Integrator: wardrop.Uniformization,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(res.Final, 0.05) {
		t.Errorf("relative-gain policy did not converge: %v", res.Final)
	}
}

func TestParseInstanceFacade(t *testing.T) {
	doc := `{
	  "nodes": ["s", "t"],
	  "edges": [
	    {"from": "s", "to": "t", "latency": {"kind": "kink", "beta": 4}},
	    {"from": "s", "to": "t", "latency": {"kind": "kink", "beta": 4}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	}`
	inst, err := wardrop.ParseInstance(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.MaxSlope()-4) > 1e-12 {
		t.Errorf("beta = %g", inst.MaxSlope())
	}
	// The parsed kink instance reproduces the §3.2 oscillation.
	f1, _, _ := wardrop.TwoLinkOscillation(4, 0.5, 0)
	res, err := wardrop.SimulateBestResponse(inst, wardrop.BestResponseConfig{
		UpdatePeriod: 0.5, Horizon: 4,
	}, wardrop.Flow{f1, 1 - f1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Final[0]-f1) > 1e-9 {
		t.Errorf("parsed instance broke the periodic orbit: %v", res.Final)
	}
}

func TestAgentEventEngineFacade(t *testing.T) {
	inst, err := wardrop.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := wardrop.NewAgentSim(inst, wardrop.AgentConfig{
		N: 500, Policy: pol, UpdatePeriod: 0.25, Horizon: 30, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunEventDriven()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Feasible(res.Final, 1e-9); err != nil {
		t.Errorf("event-driven final infeasible: %v", err)
	}
}
