package wardrop

import (
	"context"
	"io"

	"wardrop/internal/dispatch"
	"wardrop/internal/store"
	"wardrop/internal/sweep"
)

// Distributed sweeps ----------------------------------------------------------
//
// A fleet of wardserve workers plus the dispatch coordinator turn a campaign
// into a sharded run: tasks are deduped, consistent-hashed onto workers by
// fingerprint (keeping each node's caches hot), executed over POST /v1/tasks,
// and merged back into the same SweepResult a local RunSweep produces —
// byte-identical canonical artifacts, including under mid-run worker failure.
// Pointing the workers at one shared ResultStore directory makes the fleet's
// results durable across restarts and repeat campaigns free.

// ResultStore is the durable content-addressed result store: documents keyed
// by canonical fingerprint in a sharded directory layout, written atomically,
// verified (and quarantined) by re-hash on read, evicted least-recently-used
// under a byte budget. Safe for concurrent use, including by several
// processes sharing one directory.
type ResultStore = store.Store

// ResultStoreStats is a store census (object count, byte total, budget).
type ResultStoreStats = store.Stats

// OpenResultStore opens — creating if necessary — a result store rooted at
// dir. maxBytes is the eviction budget (0 = unbounded). Pass the store to a
// ServerConfig to give a server a durable second cache tier.
func OpenResultStore(dir string, maxBytes int64) (*ResultStore, error) {
	return store.Open(dir, store.Options{MaxBytes: maxBytes})
}

// SweepTaskSpec is the self-contained document of one sweep task — the wire
// unit of distributed sweeps (the body of the server's POST /v1/tasks).
type SweepTaskSpec = sweep.TaskSpec

// NewSweepTaskSpec renders one expanded campaign task as a self-contained
// spec carrying the campaign's run-shape scalars.
func NewSweepTaskSpec(c *Campaign, t SweepTask) *SweepTaskSpec {
	return sweep.NewTaskSpec(c, t)
}

// DistSweepOptions configures a distributed sweep (HTTP client, per-node
// inflight, retry policy, streaming sink, progress and event callbacks).
type DistSweepOptions = dispatch.Options

// DistSweepEvent is one coordinator lifecycle observation (a node declared
// dead, a retry, a steal).
type DistSweepEvent = dispatch.Event

// RunDistSweep executes the campaign across a fleet of wardserve workers and
// returns the same SweepResult a local RunSweep produces: every expanded
// task gets a record, sorted by task ID. Dead nodes are detected and their
// tasks re-queued onto survivors; cancellation propagates to in-flight
// remote jobs.
func RunDistSweep(ctx context.Context, c *Campaign, workers []string, opts DistSweepOptions) (*SweepResult, error) {
	return dispatch.Run(ctx, c, workers, opts)
}

// CanonicalSweepRecord returns the record with its nondeterministic
// annotations (wall time) cleared — the byte-comparable form.
func CanonicalSweepRecord(rec SweepRecord) SweepRecord { return sweep.CanonicalRecord(rec) }

// EncodeSweepRecords writes records as the canonical JSONL stream: one
// canonical record per line, ordered by task ID. Two runs of the same
// campaign — local or distributed, with or without worker failures — produce
// byte-identical output.
func EncodeSweepRecords(w io.Writer, records []SweepRecord) error {
	return sweep.EncodeRecords(w, records)
}
