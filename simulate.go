package wardrop

import (
	"context"

	"wardrop/internal/agents"
	"wardrop/internal/dynamics"
	"wardrop/internal/solver"
	"wardrop/internal/topo"
)

// Fluid-limit simulation -------------------------------------------------------

// SimConfig parameterises a fluid-limit run (see dynamics.Config).
type SimConfig = dynamics.Config

// SimResult is a simulation outcome.
type SimResult = dynamics.Result

// PhaseInfo is the per-phase observation passed to hooks.
type PhaseInfo = dynamics.PhaseInfo

// Hook observes phase starts; return true to stop the run.
type Hook = dynamics.Hook

// Sample is one recorded trajectory point.
type Sample = dynamics.Sample

// Integrator selects the within-phase integration scheme.
type Integrator = dynamics.Integrator

// Integrator choices.
const (
	// Euler is explicit first-order integration.
	Euler = dynamics.Euler
	// RK4 is classic fourth-order Runge–Kutta.
	RK4 = dynamics.RK4
	// Uniformization is exact for the frozen-board linear phase.
	Uniformization = dynamics.Uniformization
)

// BestResponseConfig parameterises the best-response dynamics.
type BestResponseConfig = dynamics.BestResponseConfig

// Accountant accumulates the per-phase Lemma 3 / Lemma 4 potential
// bookkeeping.
type Accountant = dynamics.Accountant

// PhaseAccount is one phase's potential bookkeeping.
type PhaseAccount = dynamics.PhaseAccount

// NewAccountant creates a potential accountant for the instance.
func NewAccountant(inst *Instance) *Accountant { return dynamics.NewAccountant(inst) }

// Simulate integrates the stale-information dynamics (Eq. 3) under the
// bulletin-board model.
//
// Deprecated: use Run with a Scenario (the default FluidEngine); Run adds
// context cancellation, engine selection and composable observers. Simulate
// remains as a thin adapter and produces byte-identical results.
func Simulate(inst *Instance, cfg SimConfig, f0 Flow) (*SimResult, error) {
	return dynamics.Run(context.Background(), inst, cfg, f0)
}

// SimulateFresh integrates the up-to-date-information dynamics (Eq. 1).
//
// Deprecated: use Run with Scenario{Engine: FluidEngine{Fresh: true}, ...}.
func SimulateFresh(inst *Instance, cfg SimConfig, f0 Flow) (*SimResult, error) {
	return dynamics.RunFresh(context.Background(), inst, cfg, f0)
}

// SimulateBestResponse integrates the best-response differential inclusion
// under stale information (Eq. 4) with exact per-phase relaxation.
//
// Deprecated: use Run with Scenario{Engine: BestResponseEngine{}, ...}.
func SimulateBestResponse(inst *Instance, cfg BestResponseConfig, f0 Flow) (*SimResult, error) {
	return dynamics.RunBestResponse(context.Background(), inst, cfg, f0)
}

// TwoLinkOscillation returns the §3.2 closed forms: the periodic start
// f1(0), the sustained latency amplitude X, and the largest T keeping the
// oscillation within eps.
func TwoLinkOscillation(beta, period, eps float64) (f1Start, amplitude, maxPeriod float64) {
	return dynamics.TwoLinkOscillation(beta, period, eps)
}

// Stochastic agent simulation ---------------------------------------------------

// AgentConfig parameterises the finite-N stochastic simulator.
type AgentConfig = agents.Config

// AgentSim is a finite-N bulletin-board simulation.
type AgentSim = agents.Sim

// NewAgentSim validates the configuration and distributes N agents over
// worker shards.
//
// Deprecated: use Run with Scenario{Engine: AgentsEngine{N: ..., Seed: ...},
// ...}; keep NewAgentSim only when the Sim value itself is needed (e.g. for
// EmpiricalFlow between runs).
func NewAgentSim(inst *Instance, cfg AgentConfig) (*AgentSim, error) {
	return agents.New(inst, cfg)
}

// Reference solver ----------------------------------------------------------------

// SolverOptions configures the equilibrium solver.
type SolverOptions = solver.Options

// SolverResult is a solve outcome.
type SolverResult = solver.Result

// SolveEquilibrium computes a Wardrop equilibrium by pairwise Frank–Wolfe
// minimisation of the potential.
func SolveEquilibrium(inst *Instance, opts SolverOptions) (*SolverResult, error) {
	return solver.SolveEquilibrium(inst, opts)
}

// SolveSocialOptimum computes the total-latency-optimal flow via the
// marginal-cost transformation.
func SolveSocialOptimum(inst *Instance, opts SolverOptions) (*SolverResult, error) {
	return solver.SolveSocialOptimum(inst, opts)
}

// PriceOfAnarchy returns L(equilibrium)/L(optimum) with both costs.
func PriceOfAnarchy(inst *Instance, opts SolverOptions) (poa, eqCost, optCost float64, err error) {
	return solver.PriceOfAnarchy(inst, opts)
}

// Canonical topologies --------------------------------------------------------------

// Pigou builds the two-link Pigou network (x vs 1).
func Pigou() (*Instance, error) { return topo.Pigou() }

// Braess builds the Braess paradox network with the zero-latency bridge.
func Braess() (*Instance, error) { return topo.Braess() }

// TwoLinkKink builds the paper's §3.2 oscillation instance.
func TwoLinkKink(beta float64) (*Instance, error) { return topo.TwoLinkKink(beta) }

// ParallelLinks builds parallel s→t links with the given latencies.
func ParallelLinks(lats []LatencyFunc) (*Instance, error) { return topo.ParallelLinks(lats) }

// LinearParallelLinks builds m parallel links with staggered affine
// latencies.
func LinearParallelLinks(m int) (*Instance, error) { return topo.LinearParallelLinks(m) }

// GridNetwork builds an n×n directed grid with affine latencies.
func GridNetwork(n int) (*Instance, error) { return topo.Grid(n) }

// LayeredRandom builds a random layered DAG with seeded affine latencies.
func LayeredRandom(layers, width int, seed uint64) (*Instance, error) {
	return topo.LayeredRandom(layers, width, seed)
}

// TwoCommodityOverlap builds the minimal two-commodity instance with a
// shared edge.
func TwoCommodityOverlap() (*Instance, error) { return topo.TwoCommodityOverlap() }

// MultiCommodityParallel builds k commodities with staggered demands
// competing on m shared parallel links.
func MultiCommodityParallel(k, m int) (*Instance, error) { return topo.MultiCommodityParallel(k, m) }
