package wardrop

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"wardrop/internal/catalog"
	"wardrop/internal/engine"
	"wardrop/internal/latency"
	"wardrop/internal/policy"
	"wardrop/internal/scenario"
	"wardrop/internal/timeline"
	"wardrop/internal/topo"
)

// Component catalog --------------------------------------------------------
//
// Every pluggable component family — latency kinds, topology families,
// rerouting policies and migrators, engines, integrators and start
// distributions — lives in a named registry that the JSON spec layers
// (instance files, campaign files, scenario files) and the CLIs dispatch
// through. Register* adds user components under new names; they become
// selectable from every file format and CLI immediately, with no changes to
// core packages.

// CatalogParam documents one parameter of a registered component.
type CatalogParam = catalog.Param

// CatalogComponent is one registered component in a Catalog() listing.
type CatalogComponent = catalog.Description

// LatencyEntry registers one latency kind: a name, docs, and a constructor
// decoding its parameters from the latency document (use DecodeCatalogParams
// for the nested "params" object custom kinds receive).
type LatencyEntry = catalog.Entry[latency.Function]

// TopologyBuilder is a materialised topology selection: the stable cell
// label, whether construction is seed-dependent, and the constructor.
type TopologyBuilder = topo.Builder

// TopologyEntry registers one topology family producing a TopologyBuilder.
type TopologyEntry = catalog.Entry[topo.Builder]

// SamplerChoice is a materialised sampling-rule selection: the constructed
// Sampler plus its stable cell label.
type SamplerChoice = policy.SamplerChoice

// SamplerEntry registers one sampling rule producing a SamplerChoice.
type SamplerEntry = catalog.Entry[policy.SamplerChoice]

// MigratorChoice is a materialised migration-rule selection: the label
// suffix plus an ℓmax-taking constructor.
type MigratorChoice = policy.MigratorChoice

// MigratorEntry registers one migration rule producing a MigratorChoice.
type MigratorEntry = catalog.Entry[policy.MigratorChoice]

// RegisterLatency adds a latency kind to the catalog. The kind becomes
// selectable by name in instance documents ({"kind": name, "params": {...}}),
// and therefore in scenario files and campaign custom topologies.
func RegisterLatency(e LatencyEntry) error { return latency.Catalog.Register(e) }

// RegisterTopology adds a topology family to the catalog. The family becomes
// selectable in campaign topology axes, scenario files and the CLIs
// ({"family": name, "params": {...}}).
func RegisterTopology(e TopologyEntry) error { return topo.Catalog.Register(e) }

// RegisterPolicy adds a sampling rule to the catalog. The rule becomes
// selectable in campaign policy axes and scenario files
// ({"kind": name, "params": {...}}).
func RegisterPolicy(e SamplerEntry) error { return policy.Samplers.Register(e) }

// RegisterMigrator adds a migration rule to the catalog, selectable via a
// policy document's "migrator" field.
func RegisterMigrator(e MigratorEntry) error { return policy.Migrators.Register(e) }

// EngineEntry registers one simulation engine; its Build decodes parameters
// from the engine document (nested "params" for custom engines).
type EngineEntry = catalog.Entry[engine.Engine]

// RegisterEngine adds an engine to the catalog, selectable via an engine
// document's "kind" field in scenario files and EngineSpec values.
func RegisterEngine(e EngineEntry) error { return engine.Catalog.Register(e) }

// StartFunc builds an initial flow for an instance — one registered start
// distribution.
type StartFunc = engine.StartFunc

// StartEntry registers one initial-flow distribution.
type StartEntry = catalog.Entry[engine.StartFunc]

// RegisterStart adds a start distribution to the catalog, selectable via
// the "start" field of scenario files and campaign specs.
func RegisterStart(e StartEntry) error { return engine.Starts.Register(e) }

// Time-varying runs ---------------------------------------------------------

// TimelineSpec is the declarative timeline block of a scenario or campaign
// document: demand schedules, an event track and tolls that modulate an
// otherwise stationary run deterministically in simulated time. The zero
// value (and a nil pointer) is the stationary timeline.
type TimelineSpec = timeline.Spec

// TimelineSchedule selects and parameterises one demand schedule inside a
// TimelineSpec.
type TimelineSchedule = timeline.ScheduleSpec

// TimelineEventSpec schedules one edge incident inside a TimelineSpec.
type TimelineEventSpec = timeline.EventSpec

// TimelineToll applies one toll inside a TimelineSpec.
type TimelineToll = timeline.TollSpec

// DemandSchedule is a built demand-rate profile: the multiplicative factor
// applied to a commodity's rate at simulated time t.
type DemandSchedule = timeline.Schedule

// EdgePatch rewrites one edge's latency function — the building block of
// timeline events and tolls.
type EdgePatch = timeline.EdgePatch

// ScheduleEntry registers one demand-schedule kind, selectable via a
// timeline schedule document's "kind" field.
type ScheduleEntry = catalog.Entry[timeline.Schedule]

// EventEntry registers one timeline event action, selectable via a timeline
// event document's "action" field.
type EventEntry = catalog.Entry[timeline.EdgePatch]

// TollEntry registers one toll kind, selectable via a timeline toll
// document's "kind" field.
type TollEntry = catalog.Entry[timeline.EdgePatch]

// RegisterSchedule adds a demand-schedule kind to the catalog.
func RegisterSchedule(e ScheduleEntry) error { return timeline.Schedules.Register(e) }

// RegisterEvent adds a timeline event action to the catalog.
func RegisterEvent(e EventEntry) error { return timeline.Events.Register(e) }

// RegisterToll adds a toll kind to the catalog.
func RegisterToll(e TollEntry) error { return timeline.Tolls.Register(e) }

// ApplyTolls returns the instance with the timeline's tolls applied to its
// edge latencies (the t = 0 transform of a timeline run). A nil or toll-free
// timeline returns inst unchanged. The derived instance shares the original's
// path enumeration, so flow vectors are index-compatible across both — useful
// for evaluating a tolled equilibrium under the original latencies.
func ApplyTolls(s *TimelineSpec, inst *Instance) (*Instance, error) {
	return timeline.ApplyTolls(s, inst)
}

// DecodeCatalogArgs decodes a selecting document's flat fields into v — the
// idiom builtin-style components use.
func DecodeCatalogArgs(args json.RawMessage, v any) error { return catalog.DecodeArgs(args, v) }

// DecodeCatalogParams decodes a selecting document's nested "params" object
// into v — the parameter channel for user-registered components.
func DecodeCatalogParams(args json.RawMessage, v any) error { return catalog.DecodeParams(args, v) }

// Catalog lists every registered component — builtin and user-registered —
// in deterministic order: component kinds in fixed dependency order, names
// sorted within each kind.
func Catalog() []CatalogComponent {
	var out []CatalogComponent
	out = append(out, latency.Catalog.Describe()...)
	out = append(out, topo.Catalog.Describe()...)
	out = append(out, policy.Samplers.Describe()...)
	out = append(out, policy.Migrators.Describe()...)
	out = append(out, engine.Catalog.Describe()...)
	out = append(out, engine.Integrators.Describe()...)
	out = append(out, engine.Starts.Describe()...)
	out = append(out, timeline.Schedules.Describe()...)
	out = append(out, timeline.Events.Describe()...)
	out = append(out, timeline.Tolls.Describe()...)
	return out
}

// WriteCatalog renders the component catalog as an indented human-readable
// listing grouped by component kind — the output of the CLIs' -list flag.
func WriteCatalog(w io.Writer) error {
	kind := ""
	for _, c := range Catalog() {
		if c.Kind != kind {
			if kind != "" {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			kind = c.Kind
			if _, err := fmt.Fprintf(w, "%s:\n", kind); err != nil {
				return err
			}
		}
		params := make([]string, 0, len(c.Params))
		for _, p := range c.Params {
			params = append(params, p.Name+" "+p.Type)
		}
		if _, err := fmt.Fprintf(w, "  %s(%s)\n      %s\n", c.Name, strings.Join(params, ", "), c.Doc); err != nil {
			return err
		}
		for _, p := range c.Params {
			if _, err := fmt.Fprintf(w, "      %s: %s\n", p.Name, p.Doc); err != nil {
				return err
			}
		}
	}
	return nil
}

// Declarative scenario files -----------------------------------------------

// ScenarioSpec is the JSON document shape of one simulation run — the
// single-run counterpart of a campaign cell: instance-or-topology + policy +
// update period + engine + start + run shape. Materialise with its Scenario
// method and execute with Run.
type ScenarioSpec = scenario.Spec

// ParseScenario decodes and validates a JSON scenario specification.
//
//	sc, _ := wardrop.ParseScenario(f)
//	scenario, _ := sc.Scenario()
//	res, _ := wardrop.Run(ctx, scenario)
func ParseScenario(r io.Reader) (*ScenarioSpec, error) { return scenario.Parse(r) }
