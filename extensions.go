package wardrop

import (
	"context"
	"io"

	"wardrop/internal/dynamics"
	"wardrop/internal/policy"
	"wardrop/internal/spec"
)

// Hedge baseline ----------------------------------------------------------------

// HedgeConfig parameterises the multiplicative-weights (no-regret) baseline.
type HedgeConfig = dynamics.HedgeConfig

// SimulateHedge runs the Hedge baseline from the paper's related work: one
// synchronous multiplicative update per bulletin-board refresh. Small Eta
// converges; large Eta·β·T oscillates like best response.
func SimulateHedge(inst *Instance, cfg HedgeConfig, f0 Flow) (*SimResult, error) {
	return dynamics.RunHedge(context.Background(), inst, cfg, f0)
}

// Relative-gain migration ----------------------------------------------------------

// RelativeGainMigrator migrates on the relative latency gain
// min{1, α(ℓP−ℓQ)/max(ℓP, Floor)} — an elasticity-flavoured extension that
// remains (α/Floor)-smooth and therefore keeps Corollary 5's guarantee.
type RelativeGainMigrator = policy.RelativeGain

// NewRelativeGainMigrator validates parameters and builds the rule.
func NewRelativeGainMigrator(alpha, floor float64) (RelativeGainMigrator, error) {
	return policy.NewRelativeGain(alpha, floor)
}

// JSON instance specifications -------------------------------------------------------

// InstanceSpec is the JSON document shape for loading instances from files.
type InstanceSpec = spec.Instance

// EdgeSpec is one edge of an InstanceSpec.
type EdgeSpec = spec.Edge

// CommoditySpec is one commodity of an InstanceSpec.
type CommoditySpec = spec.Commodity

// LatencySpec is the tagged latency-function union of an InstanceSpec.
type LatencySpec = spec.Latency

// ParseInstance decodes a JSON instance specification and builds it.
func ParseInstance(r io.Reader) (*Instance, error) { return spec.Parse(r) }
