package wardrop

import (
	"context"
	"io"

	"wardrop/internal/report"
	"wardrop/internal/sweep"
)

// Table is a titled grid of cells with ASCII rendering and CSV output, the
// result shape shared by the experiment harness and the sweep aggregator.
type Table = report.Table

// Campaign sweep engine ------------------------------------------------------

// Campaign is a batch campaign specification: a cross product of topology,
// policy, update-period, population and seed axes plus shared run-shape
// scalars. See ParseCampaign for the JSON document shape.
type Campaign = sweep.Campaign

// CampaignTopology selects one instance family in a campaign.
type CampaignTopology = sweep.Topology

// CampaignPolicy selects one rerouting policy in a campaign.
type CampaignPolicy = sweep.PolicySpec

// CampaignPeriod is one update-period axis value ("safe" or a number).
type CampaignPeriod = sweep.Period

// SweepTask is one cell × seed of an expanded campaign.
type SweepTask = sweep.Task

// SweepRecord is one task's outcome — one line of the streaming JSONL
// result file.
type SweepRecord = sweep.Record

// SweepOptions configures a sweep run (worker count, streaming JSONL sink,
// progress callback).
type SweepOptions = sweep.Options

// SweepResult is a completed sweep: the campaign, its task list, and one
// record per task sorted by task ID.
type SweepResult = sweep.RunResult

// SweepCell is one aggregated campaign cell (all axes except the seed).
type SweepCell = sweep.Cell

// ParseCampaign decodes and validates a JSON campaign specification.
func ParseCampaign(r io.Reader) (*Campaign, error) { return sweep.ParseCampaign(r) }

// RunSweep expands the campaign into its deterministic task list and executes
// every task on a worker pool, streaming one JSONL record per run to
// opts.Results. Task failures (including panics) are isolated into per-task
// records; the returned error is reserved for invalid campaigns, context
// cancellation and sink failures.
func RunSweep(ctx context.Context, c *Campaign, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(ctx, c, opts)
}

// AggregateSweep groups records into per-cell summaries (mean / median /
// percentiles over the seed replicates).
func AggregateSweep(records []SweepRecord) []SweepCell { return sweep.Aggregate(records) }

// SweepSummaryTable renders aggregated cells as a report table (ASCII render
// and CSV via the report package).
func SweepSummaryTable(name string, cells []SweepCell) *Table {
	return sweep.SummaryTable(name, cells)
}
