package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wardrop/internal/report"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("error = %v", err)
	}
}

func TestRunSingleExperimentAndCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "e1,e2", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2"} {
		data, err := os.ReadFile(filepath.Join(dir, id+".csv"))
		if err != nil {
			t.Fatalf("%s.csv: %v", id, err)
		}
		if !strings.Contains(string(data), "beta") && !strings.Contains(string(data), "eps") {
			t.Errorf("%s.csv missing header: %q", id, string(data[:50]))
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBadBenchScale(t *testing.T) {
	for _, v := range []string{"ten", "0", "-5", "1000,,2000"} {
		if err := run([]string{"-exp", "e1", "-benchscale", v}); err == nil || !strings.Contains(err.Error(), "-benchscale") {
			t.Errorf("-benchscale %q: error = %v", v, err)
		}
	}
}

func TestRunBadBenchLoad(t *testing.T) {
	for _, v := range []string{"many", "0", "-2", "1,,4"} {
		if err := run([]string{"-exp", "e1", "-benchload", v}); err == nil || !strings.Contains(err.Error(), "-benchload") {
			t.Errorf("-benchload %q: error = %v", v, err)
		}
	}
}

func TestRunBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_kernel.json")
	// -benchgrid 0 / -benchserve=false skip the (slow) kernel and serving
	// suites; the experiment entries and document shape are what this test
	// pins.
	if err := run([]string{"-exp", "e1", "-benchjson", path, "-benchgrid", "0", "-benchserve=false", "-benchload=", "-benchmeanfield=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "wardrop/bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "e1" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.WallNs <= 0 || e.AllocsPerOp <= 0 {
		t.Errorf("entry not measured: %+v", e)
	}
	if e.Metric != "worst-rel-amp-err" {
		t.Errorf("headline metric = %q", e.Metric)
	}
}

func TestHeadlineCoversEveryExperiment(t *testing.T) {
	// Every runnable id must map to a headline extractor (or be knowingly
	// headline-free); a new experiment without one should fail loudly here.
	tbl := &report.Table{Rows: [][]string{
		{"1", "1", "1", "1", "1", "1"},
		{"2", "2", "2", "2", "2", "2"},
	}}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "ablation", "e6s", "e7s", "e8s", "e6c", "e7c", "e8c"} {
		if name, _, ok := headline(id, tbl); !ok || name == "" {
			t.Errorf("experiment %s has no headline metric", id)
		}
	}
}

func TestRunBenchJSONServeSuite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_kernel.json")
	if err := run([]string{"-exp", "e1", "-benchjson", path, "-benchgrid", "0", "-benchload=", "-benchmeanfield=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Serve) != 2 {
		t.Fatalf("serve suite has %d measurements, want 2: %+v", len(rep.Serve), rep.Serve)
	}
	byName := map[string]bool{}
	for _, m := range rep.Serve {
		byName[m.Name] = true
		if m.NsPerOp <= 0 || m.RequestsPerSec <= 0 {
			t.Errorf("unmeasured serve workload: %+v", m)
		}
	}
	if !byName["serve/scenario/cached"] || !byName["serve/scenario/uncached"] {
		t.Fatalf("serve suite workloads = %+v", rep.Serve)
	}
}

// TestRunBenchJSONServeLoadSuite pins the serveLoad document shape: a short
// two-step ramp lands in BENCH_kernel.json with a saturation point.
func TestRunBenchJSONServeLoadSuite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_kernel.json")
	if err := run([]string{"-exp", "e1", "-benchjson", path, "-benchgrid", "0", "-benchserve=false", "-benchload", "1,2", "-benchmeanfield=false", "-benchdispatch=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.ServeLoad == nil || len(rep.ServeLoad.Steps) == 0 {
		t.Fatalf("serveLoad suite missing: %+v", rep.ServeLoad)
	}
	if rep.ServeLoad.SaturationClients == 0 || rep.ServeLoad.SaturationRequestsPerSec <= 0 {
		t.Fatalf("serveLoad saturation point incomplete: %+v", rep.ServeLoad)
	}
	for _, s := range rep.ServeLoad.Steps {
		if s.Requests == 0 || s.P99Ms < s.P50Ms {
			t.Errorf("malformed step: %+v", s)
		}
	}
}

// The count experiments run through wardbench end-to-end, and the meanfield
// population-scaling suite lands in the benchjson document.
func TestRunBenchJSONMeanfieldSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full population-scaling benchmark suite")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_kernel.json")
	if err := run([]string{"-exp", "e6c", "-benchjson", path, "-benchgrid", "0", "-benchserve=false", "-benchload="}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "e6c" || rep.Experiments[0].Metric != "rounds-at-max-m" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	// 5 count populations + 3 per-agent populations.
	if len(rep.Meanfield) != 8 {
		t.Fatalf("meanfield suite has %d measurements, want 8", len(rep.Meanfield))
	}
	for _, m := range rep.Meanfield {
		if m.NsPerPhase <= 0 || (m.Engine != "count" && m.Engine != "agents") {
			t.Errorf("unmeasured meanfield workload: %+v", m)
		}
	}
	if rep.CountFlatness <= 0 {
		t.Errorf("countFlatness = %g, want > 0", rep.CountFlatness)
	}
}
