package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("error = %v", err)
	}
}

func TestRunSingleExperimentAndCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "e1,e2", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2"} {
		data, err := os.ReadFile(filepath.Join(dir, id+".csv"))
		if err != nil {
			t.Fatalf("%s.csv: %v", id, err)
		}
		if !strings.Contains(string(data), "beta") && !strings.Contains(string(data), "eps") {
			t.Errorf("%s.csv missing header: %q", id, string(data[:50]))
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
