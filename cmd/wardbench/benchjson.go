package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"

	"wardrop/internal/bench"
	"wardrop/internal/report"
)

// benchReport is the BENCH_kernel.json document: per-experiment wall time
// and headline metric, the kernel-vs-reference micro benchmarks, and the
// derived speedup ratios — the machine-readable perf trajectory tracked
// across PRs (the CI uploads the file as an artifact).
type benchReport struct {
	// Schema versions the document shape.
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// MaxProcs records the parallelism the measurements ran under (the
	// rate-matrix fill fans out above its row threshold).
	MaxProcs int `json:"maxprocs"`
	// GridN is the kernel suite's grid size (0: suite skipped).
	GridN int `json:"gridN,omitempty"`
	// Experiments holds one entry per experiment run in this invocation.
	Experiments []expEntry `json:"experiments,omitempty"`
	// Kernel holds the kernel-vs-reference measurements.
	Kernel []bench.Measurement `json:"kernel,omitempty"`
	// Speedups maps workload prefix to reference-ns / kernel-ns.
	Speedups map[string]float64 `json:"speedups,omitempty"`
	// KernelScaling holds the kernelScaling suite: one row per instance
	// size with reference/serial/parallel ns per full evaluation pass and
	// the derived speedup and parallel-efficiency ratios (empty: suite
	// skipped).
	KernelScaling []bench.ScalingMeasurement `json:"kernelScaling,omitempty"`
	// Serve holds the serving-layer suite: per-request cost and derived
	// requests/sec for cached vs uncached scenario requests.
	Serve []bench.ServeMeasurement `json:"serve,omitempty"`
	// ServeLoad holds the concurrent-client ramp: throughput and latency
	// percentiles per client-count step, plus the saturation point (nil:
	// suite skipped).
	ServeLoad *bench.LoadSummary `json:"serveLoad,omitempty"`
	// Meanfield holds the population-scaling suite: ns/phase for the count
	// engine (10^3..10^7 agents) next to the per-agent engine
	// (10^3..10^5).
	Meanfield []bench.PopulationMeasurement `json:"meanfield,omitempty"`
	// CountFlatness is NsPerPhase(count, 10^6) / NsPerPhase(count, 10^3) —
	// the count engine's headline: near 1 where the per-agent engine's
	// ratio tracks the population ratio.
	CountFlatness float64 `json:"countFlatness,omitempty"`
	// Dispatch holds the distributed-sweep suite: per-task campaign
	// throughput for the local executor vs the coordinator over a cold and a
	// warm two-node fleet.
	Dispatch []bench.DispatchMeasurement `json:"dispatch,omitempty"`
}

// expEntry records one experiment's cost and headline artefact number.
type expEntry struct {
	ID     string  `json:"id"`
	WallNs float64 `json:"wallNs"`
	// AllocsPerOp is the experiment run's heap allocation count.
	AllocsPerOp int64 `json:"allocsPerOp"`
	// Metric names the experiment's headline number (empty when the
	// experiment has no scalar headline).
	Metric string  `json:"metric,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// headline extracts the experiment's headline metric from its table — the
// same cells the root benchmark harness (bench_test.go) reports.
func headline(id string, tbl *report.Table) (string, float64, bool) {
	cell := func(row, col int) (float64, bool) {
		if row < 0 || row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
			return 0, false
		}
		v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
		return v, err == nil
	}
	last := len(tbl.Rows) - 1
	switch id {
	case "e1":
		worst := 0.0
		for r := range tbl.Rows {
			if v, ok := cell(r, 4); ok && v > worst {
				worst = v
			}
		}
		return "worst-rel-amp-err", worst, true
	case "e2":
		ok := 0.0
		for _, row := range tbl.Rows {
			if len(row) > 4 && row[4] == "true" {
				ok++
			}
		}
		return "within-eps-fraction", ok / float64(len(tbl.Rows)), true
	case "e3":
		worst := 0.0
		for r := range tbl.Rows {
			if v, ok := cell(r, 5); ok && v > worst {
				worst = v
			}
		}
		return "worst-phi-gap", worst, true
	case "e4":
		worst := 0.0
		for r := range tbl.Rows {
			if v, ok := cell(r, 2); ok && v > worst {
				worst = v
			}
		}
		return "worst-lemma3-residual", worst, true
	case "e5":
		if v, ok := cell(1, 2); ok {
			return "phi-final-at-Tsafe", v, true
		}
	case "e6", "e6s", "e6c", "e8", "e8s", "e8c":
		if v, ok := cell(last, 2); ok {
			return "rounds-at-max-m", v, true
		}
	case "e7", "e7s", "e7c":
		if v, ok := cell(last, 1); ok {
			return "rounds-at-min-delta", v, true
		}
	case "e9":
		if v, ok := cell(last, 4); ok {
			return "br-osc-score", v, true
		}
	case "e10":
		if v, ok := cell(last, 1); ok {
			return "sup-err-at-max-N", v, true
		}
	case "e11":
		if v, ok := cell(0, 3); ok {
			return "flow-dev-at-min-eta", v, true
		}
	case "e12":
		if v, ok := cell(last, 3); ok {
			return "replicator-rounds-at-max-k", v, true
		}
	case "ablation":
		if v, ok := cell(0, 2); ok {
			return "rk4-err-at-coarsest-step", v, true
		}
	}
	return "", 0, false
}

// writeBenchJSON assembles and writes the report. gridN > 0 runs the
// kernel-vs-reference suite (a few benchmark-seconds per measurement);
// scaleSizes is the edge counts for the kernelScaling suite (nil skips it);
// withServe runs the serving-layer suite; loadClients the client counts of
// the serveLoad ramp (nil skips it); withMeanfield the population-scaling
// suite; withDispatch the distributed-sweep suite.
func writeBenchJSON(w io.Writer, gridN int, scaleSizes []int, withServe bool, loadClients []int, withMeanfield, withDispatch bool, exps []expEntry) error {
	rep := benchReport{
		Schema:      "wardrop/bench/v1",
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		MaxProcs:    runtime.GOMAXPROCS(0),
		GridN:       gridN,
		Experiments: exps,
	}
	if gridN > 0 {
		ms, err := bench.KernelSuite(gridN)
		if err != nil {
			return fmt.Errorf("kernel suite: %w", err)
		}
		rep.Kernel = ms
		rep.Speedups = map[string]float64{}
		for _, prefix := range []string{"fluid/grid", "eval/grid", "delta/grid", "delta/links"} {
			s, err := bench.Speedup(ms, prefix)
			if err != nil {
				return err
			}
			rep.Speedups[prefix] = s
		}
	}
	if len(scaleSizes) > 0 {
		sm, err := bench.ScalingSuite(scaleSizes)
		if err != nil {
			return fmt.Errorf("scaling suite: %w", err)
		}
		rep.KernelScaling = sm
	}
	if withServe {
		sm, err := bench.ServeSuite()
		if err != nil {
			return fmt.Errorf("serve suite: %w", err)
		}
		rep.Serve = sm
	}
	if len(loadClients) > 0 {
		ls, err := bench.LoadSuite(loadClients, 0)
		if err != nil {
			return fmt.Errorf("serve load suite: %w", err)
		}
		rep.ServeLoad = ls
	}
	if withMeanfield {
		pm, err := bench.MeanfieldSuite(nil, nil)
		if err != nil {
			return fmt.Errorf("meanfield suite: %w", err)
		}
		rep.Meanfield = pm
		if r, err := bench.PhaseCostRatio(pm, "count", 1_000_000, 1_000); err == nil {
			rep.CountFlatness = r
		}
	}
	if withDispatch {
		dm, err := bench.DispatchSuite()
		if err != nil {
			return fmt.Errorf("dispatch suite: %w", err)
		}
		rep.Dispatch = dm
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
