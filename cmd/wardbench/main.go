// Command wardbench regenerates the paper's quantitative artefacts (E1–E10
// plus ablations) and prints them as aligned tables, optionally emitting CSV
// files per experiment.
//
// Usage:
//
//	wardbench                              # run everything
//	wardbench -exp e1,e8                   # run a subset
//	wardbench -csv out/                    # also write one CSV per table
//	wardbench -benchjson BENCH_kernel.json # also emit machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"wardrop/internal/experiments"
	"wardrop/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wardbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wardbench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiment ids (e1..e12, ablation) or 'all'")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSV files (optional)")
	benchJSON := fs.String("benchjson", "", "file to write machine-readable results (ns, allocs, headline metric per experiment plus kernel-vs-reference benchmarks)")
	benchGrid := fs.Int("benchgrid", 6, "grid size for the kernel benchmark suite in -benchjson (0 skips the suite)")
	benchScale := fs.String("benchscale", "", "comma-separated edge counts for the kernelScaling suite in -benchjson, e.g. 10000,30000,100000 (empty skips the suite)")
	benchServe := fs.Bool("benchserve", true, "include the serving-layer suite (cached vs uncached scenario requests) in -benchjson")
	benchLoad := fs.String("benchload", "1,2,4,8,16", "comma-separated client counts for the serveLoad ramp in -benchjson (empty skips the suite)")
	benchMeanfield := fs.Bool("benchmeanfield", true, "include the population-scaling suite (count vs per-agent engine) in -benchjson")
	benchDispatch := fs.Bool("benchdispatch", true, "include the distributed-sweep suite (local vs cold/warm fleet) in -benchjson")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scaleSizes []int
	if *benchScale != "" {
		for _, s := range strings.Split(*benchScale, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("-benchscale: bad edge count %q", s)
			}
			scaleSizes = append(scaleSizes, n)
		}
	}
	var loadClients []int
	if *benchLoad != "" {
		for _, s := range strings.Split(*benchLoad, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("-benchload: bad client count %q", s)
			}
			loadClients = append(loadClients, n)
		}
	}

	runners := map[string]func() (*report.Table, error){
		"e1":  func() (*report.Table, error) { return experiments.RunE1(experiments.DefaultE1Params()) },
		"e2":  func() (*report.Table, error) { return experiments.RunE2(experiments.DefaultE2Params()) },
		"e3":  func() (*report.Table, error) { return experiments.RunE3(experiments.DefaultE3Params()) },
		"e4":  func() (*report.Table, error) { return experiments.RunE4(experiments.DefaultE4Params()) },
		"e5":  func() (*report.Table, error) { return experiments.RunE5(experiments.DefaultE5Params()) },
		"e6":  func() (*report.Table, error) { return experiments.RunE6(experiments.DefaultE6Params()) },
		"e7":  func() (*report.Table, error) { return experiments.RunE7(experiments.DefaultE7Params()) },
		"e8":  func() (*report.Table, error) { return experiments.RunE8(experiments.DefaultE8Params()) },
		"e9":  func() (*report.Table, error) { return experiments.RunE9(experiments.DefaultE9Params()) },
		"e10": func() (*report.Table, error) { return experiments.RunE10(experiments.DefaultE10Params()) },
		"e11": func() (*report.Table, error) { return experiments.RunE11(experiments.DefaultE11Params()) },
		"e12": func() (*report.Table, error) { return experiments.RunE12(experiments.DefaultE12Params()) },
		"ablation": func() (*report.Table, error) {
			return experiments.RunAblationStep(experiments.DefaultAblationStepParams())
		},
		// e6s/e7s/e8s run the scaling experiments on the parallel sweep
		// engine; same verdicts as e6/e7/e8, wall time divided by the pool.
		"e6s": func() (*report.Table, error) { return experiments.RunE6Sweep(experiments.DefaultE6Params()) },
		"e7s": func() (*report.Table, error) { return experiments.RunE7Sweep(experiments.DefaultE7Params()) },
		"e8s": func() (*report.Table, error) { return experiments.RunE8Sweep(experiments.DefaultE8Params()) },
		// e6c/e7c/e8c run them on the mean-field count engine at a four-
		// million-agent population: same verdicts, finite-N dynamics.
		"e6c": func() (*report.Table, error) {
			return experiments.RunE6Count(experiments.DefaultE6Params(), experiments.CountPopulation)
		},
		"e7c": func() (*report.Table, error) {
			return experiments.RunE7Count(experiments.DefaultE7Params(), experiments.CountPopulation)
		},
		"e8c": func() (*report.Table, error) {
			return experiments.RunE8Count(experiments.DefaultE8Params(), experiments.CountPopulation)
		},
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "ablation"}

	var ids []string
	if *expFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := runners[id]; !ok {
				return fmt.Errorf("unknown experiment %q (known: %s, e6s, e7s, e8s, e6c, e7c, e8c, all)", id, strings.Join(order, ", "))
			}
			ids = append(ids, id)
		}
	}

	var exps []expEntry
	for _, id := range ids {
		var m0 runtime.MemStats
		var start time.Time
		if *benchJSON != "" {
			runtime.ReadMemStats(&m0)
			start = time.Now()
		}
		tbl, err := runners[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *benchJSON != "" {
			wall := time.Since(start)
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			e := expEntry{ID: id, WallNs: float64(wall.Nanoseconds()), AllocsPerOp: int64(m1.Mallocs - m0.Mallocs)}
			e.Metric, e.Value, _ = headline(id, tbl)
			exps = append(exps, e)
		}
		fmt.Println(tbl.Render())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			return err
		}
		if err := writeBenchJSON(f, *benchGrid, scaleSizes, *benchServe, loadClients, *benchMeanfield, *benchDispatch, exps); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return nil
}
