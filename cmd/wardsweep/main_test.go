package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                             // missing -spec
		{"-spec", "/nonexistent.json"}, // unreadable file
		{"-spec", "testdata/campaign.json", "-workers", "-2"},
		{"-nonsense-flag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"topologies": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-spec", bad}, &bytes.Buffer{}); err == nil {
		t.Error("invalid campaign accepted")
	}
	// A campaign name with path separators must not escape or subdivide -out.
	escapey := filepath.Join(t.TempDir(), "escapey.json")
	doc := `{"name": "../shared", "topologies": [{"family":"pigou"}],
	  "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1}`
	if err := os.WriteFile(escapey, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-spec", escapey, "-out", t.TempDir()}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "file name") {
		t.Errorf("path-escaping campaign name accepted: %v", err)
	}
}

func TestDryRunGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-spec", "testdata/campaign.json", "-dry-run"}, &out); err != nil {
		t.Fatal(err)
	}
	golden(t, "dryrun.golden", out.Bytes())
}

// TestSweepGolden is the CLI's end-to-end check: a 3-topology × 2-policy ×
// 2-period × 2-seed fluid campaign run in parallel must stream exactly one
// valid JSONL record per task and reproduce the golden summary byte for
// byte (the fluid dynamics is deterministic).
func TestSweepGolden(t *testing.T) {
	outDir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-spec", "testdata/campaign.json", "-workers", "4", "-out", outDir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// The JSONL stream has every task exactly once, whatever the worker
	// interleaving.
	jf, err := os.Open(filepath.Join(outDir, "demo.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	seen := make(map[int]int)
	lines := 0
	sc := bufio.NewScanner(jf)
	for sc.Scan() {
		var rec struct {
			ID    int    `json:"id"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		if rec.Error != "" {
			t.Errorf("task %d failed: %s", rec.ID, rec.Error)
		}
		seen[rec.ID]++
		lines++
	}
	const wantTasks = 3 * 2 * 2 * 2
	if lines != wantTasks {
		t.Fatalf("JSONL lines = %d, want %d", lines, wantTasks)
	}
	for id := 0; id < wantTasks; id++ {
		if seen[id] != 1 {
			t.Errorf("task %d appears %d times", id, seen[id])
		}
	}

	// The summary CSV is deterministic: golden-compare it.
	csv, err := os.ReadFile(filepath.Join(outDir, "demo.csv"))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "summary.golden", csv)

	if !strings.Contains(out.String(), "24 tasks, 0 failed") {
		t.Errorf("stdout missing task tally:\n%s", out.String())
	}
}

// TestInterruptFlushesPartialResults drives the SIGINT path: a cancelled
// run context must still flush the JSONL stream, the summary table and the
// CSV, and report the interruption instead of dying mid-write.
func TestInterruptFlushesPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outDir := t.TempDir()
	var out bytes.Buffer
	err := run(ctx, []string{"-spec", "testdata/campaign.json", "-out", outDir}, &out)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	for _, f := range []string{"demo.jsonl", "demo.csv"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Errorf("missing %s after interrupt: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "interrupted:") {
		t.Errorf("summary missing interrupt marker:\n%s", out.String())
	}
}

// TestSweepWorkerInvariance reruns the campaign single-threaded and checks
// the summary equals the parallel run's.
func TestSweepWorkerInvariance(t *testing.T) {
	outs := make([]string, 2)
	for i, workers := range []string{"1", "8"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{
			"-spec", "testdata/campaign.json", "-workers", workers,
		}, &out); err != nil {
			t.Fatal(err)
		}
		outs[i] = out.String()
	}
	if outs[0] != outs[1] {
		t.Errorf("summary differs between 1 and 8 workers:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

// -list prints the registered component catalog without needing a -spec.
func TestListPrintsBuiltinCatalog(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, kind := range []string{"latency:", "topology:", "policy:", "migrator:", "engine:", "start:"} {
		if !strings.Contains(s, kind) {
			t.Errorf("-list output missing kind %q", kind)
		}
	}
	for _, name := range []string{"kink", "layered", "custom", "boltzmann", "alphalinear", "agents", "skewed"} {
		if !strings.Contains(s, "  "+name+"(") {
			t.Errorf("-list output missing builtin %q", name)
		}
	}
}
