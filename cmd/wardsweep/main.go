// Command wardsweep executes a batch campaign — the cross product of
// topology, policy, update-period, population and seed axes declared in a
// JSON spec — on a worker pool, streams one JSONL record per run, and writes
// a per-cell summary table (stdout + CSV).
//
// With -workers given wardserve URLs instead of a pool size, the campaign is
// sharded across that fleet by consistent hashing on task fingerprint and
// the remote records merged locally — the output artifacts are byte-identical
// to a local run, including when a worker dies mid-campaign.
//
// Usage:
//
//	wardsweep -spec campaign.json -workers 8 -out results/
//	wardsweep -spec campaign.json -workers http://a:8080,http://b:8080 -out results/
//	wardsweep -spec campaign.json -v            # per-task progress logs on stderr
//	wardsweep -spec campaign.json -dry-run      # list the expanded tasks
//
// Output files (in -out, named after the campaign):
//
//	<name>.jsonl   one canonical record per task (streamed live in completion
//	               order, rewritten sorted by task ID on completion)
//	<name>.csv     the aggregated per-cell summary
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wardrop"
	"wardrop/internal/drain"
	"wardrop/internal/obs"
)

func main() {
	// SIGINT/SIGTERM cancel the run context (the partial-result flush
	// follows); a second signal terminates the process.
	ctx, stop := drain.Context(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wardsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wardsweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "campaign specification JSON file (required)")
	workersFlag := fs.String("workers", "", "local worker-pool size (default GOMAXPROCS), or comma-separated wardserve URLs for a distributed run")
	outDir := fs.String("out", "", "output directory for <name>.jsonl and <name>.csv (default: no files)")
	verbose := fs.Bool("v", false, "debug-level structured logs (per-task progress included)")
	logJSON := fs.Bool("logjson", false, "structured logs as JSON lines instead of text")
	dryRun := fs.Bool("dry-run", false, "expand and list tasks without running them")
	list := fs.Bool("list", false, "print the registered component catalog and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, *verbose, *logJSON)
	if *list {
		return wardrop.WriteCatalog(stdout)
	}
	if *specPath == "" {
		return fmt.Errorf("missing required -spec")
	}
	workers, workerURLs, err := parseWorkers(*workersFlag)
	if err != nil {
		return err
	}

	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	campaign, err := wardrop.ParseCampaign(f)
	f.Close()
	if err != nil {
		return err
	}
	name := campaign.Name
	if name == "" {
		name = "campaign"
	}
	// The name becomes the output file stem; refuse anything that would
	// escape or subdivide the -out directory.
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("campaign name %q cannot be used as a file name", name)
	}

	if *dryRun {
		tasks, err := campaign.Expand()
		if err != nil {
			return err
		}
		for _, t := range tasks {
			fmt.Fprintf(stdout, "task %d: %s seed=%d\n", t.ID, t.CellKey(), t.Seed)
		}
		fmt.Fprintf(stdout, "%d tasks\n", len(tasks))
		return nil
	}

	var jf *os.File
	var results io.Writer
	jsonlPath := ""
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		jsonlPath = filepath.Join(*outDir, name+".jsonl")
		jf, err = os.Create(jsonlPath)
		if err != nil {
			return err
		}
		defer func() {
			if jf != nil {
				jf.Close()
			}
		}()
		results = jf
	}
	// Failures surface at Warn (always visible); per-task progress is Debug,
	// i.e. -v.
	progress := func(done, total int, rec wardrop.SweepRecord) {
		if rec.Error != "" {
			logger.Warn("task failed", "done", done, "total", total, "task", rec.ID,
				"topology", rec.Topology, "policy", rec.Policy, "period", rec.Period, "agents", rec.Agents,
				"err", rec.Error)
			return
		}
		logger.Debug("task done", "done", done, "total", total, "task", rec.ID,
			"topology", rec.Topology, "policy", rec.Policy, "period", rec.Period, "agents", rec.Agents,
			"wallMs", rec.WallMS)
	}

	// Every run carries an instrument registry: the pool (local) or the
	// coordinator (distributed) fills its histograms and the timing summary
	// below reads them back, replacing the old hand-rolled record scan.
	reg := wardrop.NewMetricsRegistry()

	// The JSONL stream is canonical (wall time stripped) in both modes, so a
	// local and a distributed run of the same campaign write byte-identical
	// lines; the completed file is rewritten sorted by task ID below, making
	// the whole artifact byte-comparable across runs.
	var res *wardrop.SweepResult
	if len(workerURLs) > 0 {
		dopts := wardrop.DistSweepOptions{
			Results:   results,
			Canonical: true,
			Progress:  progress,
			Metrics:   reg,
			// Coordinator lifecycle events are always logged — a dead node or
			// a re-homed task is operational signal, not debug chatter.
			Events: func(ev wardrop.DistSweepEvent) {
				switch ev.Kind {
				case "node-dead":
					logger.Warn("node dead", "node", ev.Node, "tasks", ev.Tasks, "err", ev.Err)
				case "retry":
					logger.Info("retry", "node", ev.Node, "attempt", ev.Attempt, "err", ev.Err)
				case "steal":
					logger.Debug("steal", "node", ev.Node, "from", ev.From)
				}
			},
		}
		res, err = wardrop.RunDistSweep(ctx, campaign, workerURLs, dopts)
	} else {
		res, err = wardrop.RunSweep(ctx, campaign, wardrop.SweepOptions{
			Workers:   workers,
			Results:   results,
			Canonical: true,
			Progress:  progress,
			Metrics:   reg,
		})
	}
	// SIGINT cancels the run context; the engine returns the records
	// completed so far (exactly the ones already streamed to the JSONL
	// sink), so the campaign is flushed cleanly — summary, CSV and a
	// partial-run marker — instead of dying mid-write. A cancellation that
	// lands after the last task completed is not an interruption: the
	// record set is whole, so the campaign counts as a success.
	interrupted := false
	if err != nil {
		if res == nil || !wardrop.IsInterrupt(err) {
			return err
		}
		interrupted = len(res.Records) < len(res.Tasks)
	}
	if jf != nil {
		// A close error means buffered records may not have reached disk —
		// surface it rather than silently dropping the stream.
		err := jf.Close()
		jf = nil
		if err != nil {
			return err
		}
		// Rewrite the streamed (completion-order) file as the canonical
		// ID-sorted stream: the lines are unchanged, only ordered, making
		// the artifact byte-identical across runs, worker counts and
		// local-vs-distributed execution. Partial (interrupted) record sets
		// rewrite the same way.
		if err := rewriteCanonical(jsonlPath, res.Records); err != nil {
			return err
		}
	}
	timingSummary(os.Stderr, reg)

	cells := wardrop.AggregateSweep(res.Records)
	tbl := wardrop.SweepSummaryTable(name, cells)
	fmt.Fprintln(stdout, tbl.Render())

	failed := 0
	for _, r := range res.Records {
		if r.Error != "" {
			failed++
		}
	}
	fmt.Fprintf(stdout, "%d tasks, %d failed\n", len(res.Records), failed)
	if interrupted {
		fmt.Fprintf(stdout, "interrupted: %d/%d tasks completed\n", len(res.Records), len(res.Tasks))
	}

	if *outDir != "" {
		cf, err := os.Create(filepath.Join(*outDir, name+".csv"))
		if err != nil {
			return err
		}
		if err := tbl.WriteCSV(cf); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
	}
	if interrupted {
		return fmt.Errorf("interrupted after %d/%d tasks (partial results flushed)", len(res.Records), len(res.Tasks))
	}
	return nil
}

// parseWorkers resolves the -workers flag: empty (defaults), a pool size, or
// a comma-separated list of worker URLs selecting the distributed path.
func parseWorkers(v string) (pool int, urls []string, err error) {
	if v == "" {
		return 0, nil, nil
	}
	if strings.Contains(v, "://") {
		for _, u := range strings.Split(v, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return 0, nil, fmt.Errorf("invalid -workers %q", v)
		}
		return 0, urls, nil
	}
	pool, err = strconv.Atoi(v)
	if err != nil || pool < 0 {
		return 0, nil, fmt.Errorf("invalid -workers %q", v)
	}
	return pool, nil, nil
}

// rewriteCanonical replaces the streamed JSONL file with the canonical
// ID-sorted stream via a same-directory temp file and rename, so a crash
// mid-rewrite never truncates the streamed records.
func rewriteCanonical(path string, records []wardrop.SweepRecord) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rewrite-*")
	if err != nil {
		return err
	}
	if err := wardrop.EncodeSweepRecords(tmp, records); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// timingSummary reports the run's wall-time distribution on stderr, read back
// from the instrument registry the run filled: sweep_task_ms for a local pool,
// dispatch_transport_ms (per-attempt coordinator round trips) plus
// dispatch_queue_wait_ms for a distributed run. Stderr so the deterministic
// stdout summary stays byte-stable.
func timingSummary(w io.Writer, reg *wardrop.MetricsRegistry) {
	h, label := reg.FindHistogram("sweep_task_ms"), "task"
	if h == nil {
		h, label = reg.FindHistogram("dispatch_transport_ms"), "transport"
	}
	if h == nil || h.Count() == 0 {
		return
	}
	fmt.Fprintf(w, "wardsweep: %s timing %d samples: mean %.1fms p50 %.1fms p95 %.1fms max %.1fms\n",
		label, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max())
	if qw := reg.FindHistogram("dispatch_queue_wait_ms"); qw != nil && qw.Count() > 0 {
		fmt.Fprintf(w, "wardsweep: queue wait: mean %.1fms p95 %.1fms max %.1fms\n",
			qw.Mean(), qw.Quantile(0.95), qw.Max())
	}
}
