// Command wardsweep executes a batch campaign — the cross product of
// topology, policy, update-period, population and seed axes declared in a
// JSON spec — on a worker pool, streams one JSONL record per run, and writes
// a per-cell summary table (stdout + CSV).
//
// Usage:
//
//	wardsweep -spec campaign.json -workers 8 -out results/
//	wardsweep -spec campaign.json -v            # progress on stderr
//	wardsweep -spec campaign.json -dry-run      # list the expanded tasks
//
// Output files (in -out, named after the campaign):
//
//	<name>.jsonl   one record per task, streaming, completion order
//	<name>.csv     the aggregated per-cell summary
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"wardrop"
	"wardrop/internal/drain"
)

func main() {
	// SIGINT/SIGTERM cancel the run context (the partial-result flush
	// follows); a second signal terminates the process.
	ctx, stop := drain.Context(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wardsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wardsweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "campaign specification JSON file (required)")
	workers := fs.Int("workers", 0, "worker-pool size (default GOMAXPROCS)")
	outDir := fs.String("out", "", "output directory for <name>.jsonl and <name>.csv (default: no files)")
	verbose := fs.Bool("v", false, "report per-task progress on stderr")
	dryRun := fs.Bool("dry-run", false, "expand and list tasks without running them")
	list := fs.Bool("list", false, "print the registered component catalog and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return wardrop.WriteCatalog(stdout)
	}
	if *specPath == "" {
		return fmt.Errorf("missing required -spec")
	}
	if *workers < 0 {
		return fmt.Errorf("invalid -workers %d", *workers)
	}

	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	campaign, err := wardrop.ParseCampaign(f)
	f.Close()
	if err != nil {
		return err
	}
	name := campaign.Name
	if name == "" {
		name = "campaign"
	}
	// The name becomes the output file stem; refuse anything that would
	// escape or subdivide the -out directory.
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("campaign name %q cannot be used as a file name", name)
	}

	if *dryRun {
		tasks, err := campaign.Expand()
		if err != nil {
			return err
		}
		for _, t := range tasks {
			fmt.Fprintf(stdout, "task %d: %s seed=%d\n", t.ID, t.CellKey(), t.Seed)
		}
		fmt.Fprintf(stdout, "%d tasks\n", len(tasks))
		return nil
	}

	opts := wardrop.SweepOptions{Workers: *workers}
	var jf *os.File
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		jf, err = os.Create(filepath.Join(*outDir, name+".jsonl"))
		if err != nil {
			return err
		}
		defer func() {
			if jf != nil {
				jf.Close()
			}
		}()
		opts.Results = jf
	}
	if *verbose {
		opts.Progress = func(done, total int, rec wardrop.SweepRecord) {
			status := "ok"
			if rec.Error != "" {
				status = "ERR " + rec.Error
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] task %d %s|%s|T=%s|N=%d: %s (%.0fms)\n",
				done, total, rec.ID, rec.Topology, rec.Policy, rec.Period, rec.Agents, status, rec.WallMS)
		}
	}

	res, err := wardrop.RunSweep(ctx, campaign, opts)
	// SIGINT cancels the run context; the engine returns the records
	// completed so far (exactly the ones already streamed to the JSONL
	// sink), so the campaign is flushed cleanly — summary, CSV and a
	// partial-run marker — instead of dying mid-write. A cancellation that
	// lands after the last task completed is not an interruption: the
	// record set is whole, so the campaign counts as a success.
	interrupted := false
	if err != nil {
		if res == nil || !wardrop.IsInterrupt(err) {
			return err
		}
		interrupted = len(res.Records) < len(res.Tasks)
	}
	if jf != nil {
		// A close error means buffered records may not have reached disk —
		// surface it rather than silently dropping the stream.
		err := jf.Close()
		jf = nil
		if err != nil {
			return err
		}
	}

	cells := wardrop.AggregateSweep(res.Records)
	tbl := wardrop.SweepSummaryTable(name, cells)
	fmt.Fprintln(stdout, tbl.Render())

	failed := 0
	for _, r := range res.Records {
		if r.Error != "" {
			failed++
		}
	}
	fmt.Fprintf(stdout, "%d tasks, %d failed\n", len(res.Records), failed)
	if interrupted {
		fmt.Fprintf(stdout, "interrupted: %d/%d tasks completed\n", len(res.Records), len(res.Tasks))
	}

	if *outDir != "" {
		cf, err := os.Create(filepath.Join(*outDir, name+".csv"))
		if err != nil {
			return err
		}
		if err := tbl.WriteCSV(cf); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
	}
	if interrupted {
		return fmt.Errorf("interrupted after %d/%d tasks (partial results flushed)", len(res.Records), len(res.Tasks))
	}
	return nil
}
