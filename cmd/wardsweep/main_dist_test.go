package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wardrop"
)

// startFleet launches n in-process wardserve workers sharing one durable
// store directory and returns their URLs.
func startFleet(t *testing.T, n int, storeDir string) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := wardrop.ServerConfig{Workers: 2}
		if storeDir != "" {
			st, err := wardrop.OpenResultStore(storeDir, 0)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Store = st
		}
		s := wardrop.NewServer(cfg)
		ts := httptest.NewServer(s)
		urls[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_ = s.Close(ctx)
		})
	}
	return urls
}

// TestDistributedSweepMatchesLocalFiles is the CLI's distributed end-to-end
// check: the same campaign run locally and sharded across a fleet must write
// byte-identical demo.jsonl and demo.csv, and print the same summary.
func TestDistributedSweepMatchesLocalFiles(t *testing.T) {
	urls := startFleet(t, 3, "")
	localDir, distDir := t.TempDir(), t.TempDir()

	var localOut bytes.Buffer
	if err := run(context.Background(), []string{
		"-spec", "testdata/campaign.json", "-workers", "4", "-out", localDir,
	}, &localOut); err != nil {
		t.Fatal(err)
	}
	var distOut bytes.Buffer
	if err := run(context.Background(), []string{
		"-spec", "testdata/campaign.json", "-workers", strings.Join(urls, ","), "-out", distDir,
	}, &distOut); err != nil {
		t.Fatal(err)
	}

	if localOut.String() != distOut.String() {
		t.Errorf("summary differs between local and distributed:\n%s\nvs\n%s", localOut.String(), distOut.String())
	}
	for _, f := range []string{"demo.jsonl", "demo.csv"} {
		local, err := os.ReadFile(filepath.Join(localDir, f))
		if err != nil {
			t.Fatal(err)
		}
		dist, err := os.ReadFile(filepath.Join(distDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(local, dist) {
			t.Errorf("%s differs between local and distributed:\n--- local ---\n%s\n--- distributed ---\n%s", f, local, dist)
		}
	}

	// The canonical JSONL is ID-sorted and wall-time free.
	jf, err := os.Open(filepath.Join(distDir, "demo.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	sc := bufio.NewScanner(jf)
	last := -1
	for sc.Scan() {
		if strings.Contains(sc.Text(), "wallMs") {
			t.Fatalf("canonical JSONL leaks wallMs: %s", sc.Text())
		}
		var rec struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.ID <= last {
			t.Fatalf("JSONL not ID-sorted: %d after %d", rec.ID, last)
		}
		last = rec.ID
	}
}

// TestDistributedRepeatUsesSharedStore reruns a campaign against a fleet
// sharing one store directory: the second run must not move any worker's
// engine-run counter (everything is answered from the caches), which the
// summed /metrics engineRuns across the fleet pins via the CLI path.
func TestDistributedRepeatUsesSharedStore(t *testing.T) {
	storeDir := t.TempDir()
	urls := startFleet(t, 2, storeDir)
	args := []string{"-spec", "testdata/campaign.json", "-workers", strings.Join(urls, ",")}
	var out1, out2 bytes.Buffer
	if err := run(context.Background(), args, &out1); err != nil {
		t.Fatal(err)
	}
	first := fleetEngineRuns(t, urls)
	if first == 0 {
		t.Fatal("no engine runs after the first campaign")
	}
	if err := run(context.Background(), args, &out2); err != nil {
		t.Fatal(err)
	}
	if got := fleetEngineRuns(t, urls); got != first {
		t.Errorf("engine runs moved on a repeat campaign: %d -> %d", first, got)
	}
	if out1.String() != out2.String() {
		t.Error("repeat campaign printed a different summary")
	}
}

func fleetEngineRuns(t *testing.T, urls []string) int64 {
	t.Helper()
	var total int64
	for _, u := range urls {
		resp, err := http.Get(u + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m wardrop.ServerMetrics
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		total += m.EngineRuns
	}
	return total
}
