package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wardrop"
)

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-topo", "moebius"},
		{"-policy", "psychic"},
		{"-T", "-3"},
		{"-T", "soon"},
		{"-instance", "/nonexistent/file.json"},
		{"-scenario", "/nonexistent/file.json"},
		{"-nonsense-flag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunShapeFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-horizon", "0"}, "-horizon"},
		{[]string{"-horizon", "-5"}, "-horizon"},
		{[]string{"-horizon", "NaN"}, "-horizon"},
		{[]string{"-horizon", "Inf"}, "-horizon"},
		{[]string{"-every", "0"}, "-every"},
		{[]string{"-every", "-2"}, "-every"},
		{[]string{"-agents", "-1"}, "-agents"},
		{[]string{"-agents", "16777217"}, "-count"},
		{[]string{"-count", "-1"}, "-count"},
		{[]string{"-agents", "100", "-count", "100"}, "-count"},
	}
	for _, c := range cases {
		err := run(context.Background(), c.args, io.Discard)
		if err == nil {
			t.Errorf("args %v accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not name %s", c.args, err, c.want)
		}
	}
}

func TestRunFluidSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "pigou", "-policy", "replicator", "-horizon", "2", "-every", "4"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBestResponseSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "kink", "-beta", "4", "-policy", "bestresponse", "-T", "0.5", "-horizon", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunAgentsSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "braess", "-policy", "uniform", "-horizon", "2", "-agents", "50"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCountSmoke(t *testing.T) {
	// A million agents through the count engine finishes in test time.
	if err := run(context.Background(), []string{"-topo", "braess", "-policy", "uniform", "-horizon", "2", "-count", "1000000"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBoltzmannSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "links", "-m", "4", "-policy", "boltzmann", "-c", "2", "-horizon", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunInstanceFile(t *testing.T) {
	doc := `{
	  "nodes": ["s", "t"],
	  "edges": [
	    {"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1}},
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	}`
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-instance", path, "-horizon", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Malformed file surfaces a spec error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-instance", bad}, io.Discard); err == nil || !strings.Contains(err.Error(), "spec") {
		t.Errorf("bad instance error = %v", err)
	}
}

// A scenario file selecting the same components as a flag-driven run must
// reproduce its output byte for byte — the declarative format is a second
// front door to the same dispatch, not a second implementation.
func TestScenarioReproducesFlagRun(t *testing.T) {
	var flags bytes.Buffer
	args := []string{"-topo", "braess", "-policy", "replicator", "-T", "safe", "-horizon", "5", "-every", "2"}
	if err := run(context.Background(), args, &flags); err != nil {
		t.Fatal(err)
	}

	doc := `{
	  "topology": {"family": "braess"},
	  "policy": {"kind": "replicator"},
	  "updatePeriod": "safe",
	  "engine": {"kind": "fluid", "integrator": "uniformization"},
	  "horizon": 5,
	  "recordEvery": 2
	}`
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var scen bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", path}, &scen); err != nil {
		t.Fatal(err)
	}
	if flags.String() != scen.String() {
		t.Errorf("scenario output differs from flag-driven run:\nflags:\n%s\nscenario:\n%s", flags.String(), scen.String())
	}
}

func TestScenarioAgentsSmoke(t *testing.T) {
	doc := `{
	  "topology": {"family": "links", "size": 4},
	  "policy": {"kind": "uniform"},
	  "updatePeriod": 0.25,
	  "engine": {"kind": "agents", "n": 50, "seed": 7},
	  "horizon": 2,
	  "recordEvery": 1
	}`
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "time,potential") {
		t.Errorf("no trajectory emitted:\n%s", out.String())
	}
}

func TestScenarioRejectsBadDocs(t *testing.T) {
	cases := map[string]string{
		"no selection":   `{"policy": {"kind": "uniform"}, "horizon": 5}`,
		"both selectors": `{"topology": {"family": "pigou"}, "instance": {"nodes": []}, "policy": {"kind": "uniform"}, "horizon": 5}`,
		"no policy":      `{"topology": {"family": "pigou"}, "horizon": 5}`,
		"no budget":      `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}}`,
		"unknown field":  `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 5, "bogus": 1}`,
		"bad family":     `{"topology": {"family": "moebius"}, "policy": {"kind": "uniform"}, "horizon": 5}`,
	}
	for name, doc := range cases {
		path := filepath.Join(t.TempDir(), "scenario.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(context.Background(), []string{"-scenario", path}, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// -list prints the registered catalog: every builtin component family must
// appear under its kind heading.
func TestListPrintsBuiltinCatalog(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, kind := range []string{"latency:", "topology:", "policy:", "migrator:", "engine:", "integrator:", "start:"} {
		if !strings.Contains(s, kind) {
			t.Errorf("-list output missing kind %q", kind)
		}
	}
	for _, name := range []string{
		"constant", "linear", "polynomial", "monomial", "bpr", "mm1", "pwl", "kink",
		"pigou", "braess", "links", "grid", "layered", "sparse-random", "scalefree", "tntp", "custom",
		"uniform", "replicator", "proportional", "boltzmann",
		"alphalinear", "betterresponse",
		"fluid", "fresh", "bestresponse", "agents", "count",
		"euler", "rk4", "uniformization",
		"worst", "skewed",
	} {
		if !strings.Contains(s, "  "+name+"(") {
			t.Errorf("-list output missing builtin %q", name)
		}
	}
}

// A cancelled context (the SIGINT path) still flushes the partial
// trajectory and surfaces context.Canceled instead of dying mid-write.
func TestRunCancelledContextFlushesPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-topo", "pigou", "-policy", "replicator", "-horizon", "50"}, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParsePeriod(t *testing.T) {
	if v, err := parsePeriod("safe", 0.25); err != nil || v != 0.25 {
		t.Errorf("safe = %g, %v", v, err)
	}
	if v, err := parsePeriod("0.5", 0.25); err != nil || v != 0.5 {
		t.Errorf("number = %g, %v", v, err)
	}
	if _, err := parsePeriod("0", 0.25); err == nil {
		t.Error("zero period accepted")
	}
}

func TestBestResponseRejectsAgents(t *testing.T) {
	err := run(context.Background(), []string{"-topo", "kink", "-policy", "bestresponse", "-agents", "100", "-horizon", "2"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-agents") {
		t.Fatalf("bestresponse+agents accepted: %v", err)
	}
	err = run(context.Background(), []string{"-topo", "kink", "-policy", "bestresponse", "-count", "100", "-horizon", "2"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-count") {
		t.Fatalf("bestresponse+count accepted: %v", err)
	}
}

// -json emits the canonical result document — the exact bytes the serving
// layer returns for the same spec (the library encoder is the shared
// implementation, so comparing against it pins the contract).
func TestScenarioJSONMatchesLibraryEncoder(t *testing.T) {
	doc := `{
	  "name": "json-golden",
	  "topology": {"family": "pigou"},
	  "policy": {"kind": "replicator"},
	  "updatePeriod": 0.05,
	  "maxPhases": 40,
	  "recordEvery": 10
	}`
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", path, "-json"}, &got); err != nil {
		t.Fatal(err)
	}

	spec, err := wardrop.ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, events, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := wardrop.EncodeRunResult(&want, spec, res, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("-json output differs from the library encoder:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
	if !strings.Contains(got.String(), `"fingerprint":"`) {
		t.Fatalf("result document lacks a fingerprint: %s", got.String())
	}
}

func TestJSONRequiresScenario(t *testing.T) {
	err := run(context.Background(), []string{"-topo", "pigou", "-json", "-horizon", "2"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Fatalf("-json without -scenario accepted: %v", err)
	}
}

// TestTraceFlagWritesJSONL pins the -trace contract: one well-formed JSON
// span per line, phase spans on every run path, and — through a timeline
// scenario — event spans marking each applied edge event.
func TestTraceFlagWritesJSONL(t *testing.T) {
	dir := t.TempDir()

	flagTrace := filepath.Join(dir, "flags.jsonl")
	args := []string{"-topo", "braess", "-policy", "replicator", "-horizon", "2", "-trace", flagTrace}
	if err := run(context.Background(), args, io.Discard); err != nil {
		t.Fatal(err)
	}
	phases, events := readTrace(t, flagTrace)
	if phases == 0 || events != 0 {
		t.Fatalf("flag run: %d phase spans, %d event spans; want >0 phases and no events", phases, events)
	}

	doc := `{
	  "topology": {"family": "braess"},
	  "policy": {"kind": "uniform"},
	  "updatePeriod": 0.25,
	  "horizon": 4,
	  "timeline": {
	    "events": [
	      {"at": 0, "action": "block", "from": "a", "to": "b", "penalty": 4},
	      {"at": 2, "action": "restore", "from": "a", "to": "b"}
	    ]
	  }
	}`
	scenPath := filepath.Join(dir, "onset.json")
	if err := os.WriteFile(scenPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	scenTrace := filepath.Join(dir, "scenario.jsonl")
	if err := run(context.Background(), []string{"-scenario", scenPath, "-trace", scenTrace}, io.Discard); err != nil {
		t.Fatal(err)
	}
	phases, events = readTrace(t, scenTrace)
	if phases == 0 || events != 2 {
		t.Fatalf("scenario run: %d phase spans, %d event spans; want >0 phases and 2 events", phases, events)
	}
}

// readTrace parses a trace JSONL file and counts spans by kind, failing on
// any line that is not a well-formed span.
func readTrace(t *testing.T, path string) (phases, events int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var span struct {
			Kind  string   `json:"kind"`
			Time  *float64 `json:"t"`
			Phase *int     `json:"phase"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("line %d: %v (%q)", i+1, err, line)
		}
		switch span.Kind {
		case "phase":
			if span.Time == nil || span.Phase == nil {
				t.Fatalf("line %d: phase span missing t/phase: %q", i+1, line)
			}
			phases++
		case "event":
			if span.Time == nil {
				t.Fatalf("line %d: event span missing t: %q", i+1, line)
			}
			events++
		default:
			t.Fatalf("line %d: unknown span kind %q", i+1, span.Kind)
		}
	}
	return phases, events
}
