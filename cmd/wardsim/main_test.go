package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-topo", "moebius"},
		{"-policy", "psychic"},
		{"-T", "-3"},
		{"-T", "soon"},
		{"-instance", "/nonexistent/file.json"},
		{"-nonsense-flag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunShapeFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-horizon", "0"}, "-horizon"},
		{[]string{"-horizon", "-5"}, "-horizon"},
		{[]string{"-horizon", "NaN"}, "-horizon"},
		{[]string{"-horizon", "Inf"}, "-horizon"},
		{[]string{"-every", "0"}, "-every"},
		{[]string{"-every", "-2"}, "-every"},
		{[]string{"-agents", "-1"}, "-agents"},
	}
	for _, c := range cases {
		err := run(context.Background(), c.args)
		if err == nil {
			t.Errorf("args %v accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not name %s", c.args, err, c.want)
		}
	}
}

func TestRunFluidSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "pigou", "-policy", "replicator", "-horizon", "2", "-every", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBestResponseSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "kink", "-beta", "4", "-policy", "bestresponse", "-T", "0.5", "-horizon", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAgentsSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "braess", "-policy", "uniform", "-horizon", "2", "-agents", "50"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBoltzmannSmoke(t *testing.T) {
	if err := run(context.Background(), []string{"-topo", "links", "-m", "4", "-policy", "boltzmann", "-c", "2", "-horizon", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInstanceFile(t *testing.T) {
	doc := `{
	  "nodes": ["s", "t"],
	  "edges": [
	    {"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1}},
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	}`
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-instance", path, "-horizon", "2"}); err != nil {
		t.Fatal(err)
	}
	// Malformed file surfaces a spec error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-instance", bad}); err == nil || !strings.Contains(err.Error(), "spec") {
		t.Errorf("bad instance error = %v", err)
	}
}

// A cancelled context (the SIGINT path) still flushes the partial
// trajectory and surfaces context.Canceled instead of dying mid-write.
func TestRunCancelledContextFlushesPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-topo", "pigou", "-policy", "replicator", "-horizon", "50"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParsePeriod(t *testing.T) {
	if v, err := parsePeriod("safe", 0.25); err != nil || v != 0.25 {
		t.Errorf("safe = %g, %v", v, err)
	}
	if v, err := parsePeriod("0.5", 0.25); err != nil || v != 0.5 {
		t.Errorf("number = %g, %v", v, err)
	}
	if _, err := parsePeriod("0", 0.25); err == nil {
		t.Error("zero period accepted")
	}
}

func TestBestResponseRejectsAgents(t *testing.T) {
	err := run(context.Background(), []string{"-topo", "kink", "-policy", "bestresponse", "-agents", "100", "-horizon", "2"})
	if err == nil || !strings.Contains(err.Error(), "-agents") {
		t.Fatalf("bestresponse+agents accepted: %v", err)
	}
}
