// Command wardsim runs one rerouting-dynamics simulation and emits the
// trajectory (time, potential, flows) as CSV on stdout. It dispatches
// through the unified wardrop.Run API and the component catalog: the -topo,
// -policy, -agents and -count flags select registered components (fluid
// limit, best response, finite-N agents, or the mean-field count engine),
// and -scenario runs a declarative scenario file instead of flags.
//
// SIGINT cancels the run context; the partial trajectory simulated so far is
// flushed before exiting.
//
// Usage:
//
//	wardsim -topo braess -policy replicator -T 0.1 -horizon 50
//	wardsim -topo kink -beta 8 -policy bestresponse -T 0.5 -horizon 20
//	wardsim -topo links -m 16 -policy uniform -T safe -horizon 100 -agents 1000
//	wardsim -topo pigou -policy uniform -T safe -horizon 100 -count 1000000
//	wardsim -scenario run.json
//	wardsim -topo braess -horizon 10 -trace run-trace.jsonl
//	wardsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"wardrop"
	"wardrop/internal/drain"
)

func main() {
	// SIGINT/SIGTERM cancel the run context (the partial-trajectory flush
	// follows); a second signal terminates the process.
	ctx, stop := drain.Context(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wardsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wardsim", flag.ContinueOnError)
	topoName := fs.String("topo", "braess", "topology: any registered family (see -list)")
	instFile := fs.String("instance", "", "JSON instance file (overrides -topo)")
	scenFile := fs.String("scenario", "", "JSON scenario file (overrides every other selection flag)")
	beta := fs.Float64("beta", 4, "kink slope (topo=kink)")
	m := fs.Int("m", 8, "link count (topo=links) / grid side (topo=grid) / layer width (topo=layered)")
	seed := fs.Uint64("seed", 1, "seed (seeded topologies, agent sim)")
	policyName := fs.String("policy", "replicator", "policy: any registered sampler (see -list), or bestresponse")
	c := fs.Float64("c", 4, "Boltzmann concentration (policy=boltzmann)")
	period := fs.String("T", "safe", "bulletin-board period: a number, or 'safe'")
	horizon := fs.Float64("horizon", 50, "simulated time")
	every := fs.Int("every", 1, "record every k phases")
	agentsN := fs.Int64("agents", 0, "if > 0, run the finite-N per-agent simulator instead of the fluid limit")
	countN := fs.Int64("count", 0, "if > 0, run the mean-field count engine (same process as -agents, O(paths) per phase — use for millions of agents)")
	list := fs.Bool("list", false, "print the registered component catalog and exit")
	jsonOut := fs.Bool("json", false, "with -scenario: emit the canonical JSON result document instead of CSV (byte-identical to wardserve's POST /v1/scenarios response)")
	traceOut := fs.String("trace", "", "write one JSONL span per phase (and per timeline event) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return wardrop.WriteCatalog(stdout)
	}
	if *jsonOut && *scenFile == "" {
		return fmt.Errorf("-json requires -scenario (only scenario files have a canonical result document)")
	}
	// The tracer rides the engine observer pipeline, so every run path —
	// fluid, best response, agents, counts, scenario timelines — traces the
	// same way. The ring bounds memory on unbounded runs; an overflow is
	// reported, not silent.
	var tracer *wardrop.Tracer
	var traceOpts []wardrop.RunOption
	if *traceOut != "" {
		tracer = wardrop.NewTracer(1 << 16)
		traceOpts = append(traceOpts, wardrop.WithObserver(tracer))
	}
	if *scenFile != "" {
		return runScenario(ctx, *scenFile, *jsonOut, tracer, *traceOut, stdout)
	}
	// Reject bad run-shape flags up front instead of passing them to the
	// simulators (where e.g. -every 0 silently disables recording and
	// -agents < 0 only fails deep inside the agent distributor).
	if *horizon <= 0 || math.IsNaN(*horizon) || math.IsInf(*horizon, 0) {
		return fmt.Errorf("invalid -horizon %g: must be positive and finite", *horizon)
	}
	if *every < 1 {
		return fmt.Errorf("invalid -every %d: must be >= 1", *every)
	}
	if *agentsN < 0 {
		return fmt.Errorf("invalid -agents %d: must be >= 0", *agentsN)
	}
	if *agentsN > wardrop.MaxAgentPopulation {
		return fmt.Errorf("invalid -agents %d: the per-agent simulator holds at most %d agents; use -count for larger populations", *agentsN, int64(wardrop.MaxAgentPopulation))
	}
	if *countN < 0 {
		return fmt.Errorf("invalid -count %d: must be >= 0", *countN)
	}
	if *countN > 0 && *agentsN > 0 {
		return fmt.Errorf("-agents and -count select different engines for the same process; pass one of them")
	}

	var inst *wardrop.Instance
	var err error
	if *instFile != "" {
		f, ferr := os.Open(*instFile)
		if ferr != nil {
			return ferr
		}
		inst, err = wardrop.ParseInstance(f)
		f.Close()
	} else {
		// The flags map onto the catalog's topology parameters; any
		// registered family is selectable by name.
		inst, err = wardrop.CampaignTopology{Family: *topoName, Size: *m, Beta: *beta}.Build(*seed)
	}
	if err != nil {
		return err
	}

	scenario := wardrop.Scenario{
		Instance:    inst,
		Horizon:     *horizon,
		RecordEvery: *every,
	}

	if *policyName == "bestresponse" {
		if *agentsN > 0 || *countN > 0 {
			return fmt.Errorf("-agents/-count cannot be combined with -policy bestresponse (a fluid-only dynamics)")
		}
		T, err := parsePeriod(*period, 0.5)
		if err != nil {
			return err
		}
		scenario.Engine = wardrop.BestResponseEngine{}
		scenario.UpdatePeriod = T
		if *topoName == "kink" {
			f1, _, _ := wardrop.TwoLinkOscillation(*beta, T, 0)
			scenario.InitialFlow = wardrop.Flow{f1, 1 - f1}
		}
		res, err := wardrop.Run(ctx, scenario, traceOpts...)
		return finish(stdout, res, err, tracer, *traceOut)
	}

	pol, err := wardrop.CampaignPolicy{Kind: *policyName, C: *c}.Build(inst)
	if err != nil {
		return err
	}
	safe, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		return err
	}
	T, err := parsePeriod(*period, safe)
	if err != nil {
		return err
	}
	scenario.Policy = pol
	scenario.UpdatePeriod = T

	switch {
	case *countN > 0:
		scenario.Engine = wardrop.CountEngine{N: *countN, Seed: *seed}
	case *agentsN > 0:
		scenario.Engine = wardrop.AgentsEngine{N: int(*agentsN), Seed: *seed}
	default:
		scenario.Engine = wardrop.FluidEngine{Integrator: wardrop.Uniformization}
	}
	res, err := wardrop.Run(ctx, scenario, traceOpts...)
	return finish(stdout, res, err, tracer, *traceOut)
}

// runScenario executes a declarative scenario file through the shared
// ScenarioSpec.Run path (stationary specs run exactly as before; timeline
// specs execute segment by segment); with jsonOut it emits the canonical
// result document shared with the serving layer instead of CSV. A tracer
// additionally marks every applied timeline event between its phase spans.
func runScenario(ctx context.Context, path string, jsonOut bool, tracer *wardrop.Tracer, tracePath string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sc, err := wardrop.ParseScenario(f)
	f.Close()
	if err != nil {
		return err
	}
	var onEvent func(wardrop.TimelineEvent)
	var opts []wardrop.RunOption
	if tracer != nil {
		onEvent = func(ev wardrop.TimelineEvent) { tracer.MarkEvent(ev.Action, ev.Time) }
		opts = append(opts, wardrop.WithObserver(tracer))
	}
	res, events, err := sc.Run(ctx, onEvent, opts...)
	if jsonOut {
		if err != nil {
			return err
		}
		doc, err := wardrop.NewRunResult(sc, res, events)
		if err != nil {
			return err
		}
		if err := doc.Encode(stdout); err != nil {
			return err
		}
		return writeTrace(tracer, tracePath)
	}
	if err := finish(stdout, res, err, tracer, tracePath); err != nil {
		return err
	}
	for _, ev := range events {
		fmt.Fprintf(stdout, "# event t=%g action=%s edge=%d\n", ev.Time, ev.Action, ev.Edge)
	}
	return nil
}

func parsePeriod(s string, safe float64) (float64, error) {
	if s == "safe" {
		return safe, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("invalid period %q", s)
	}
	return v, nil
}

// finish emits the trajectory, then flushes the trace file — also on an
// interrupted run, so a cancelled simulation still leaves its partial spans
// on disk next to the partial trajectory.
func finish(w io.Writer, res *wardrop.Result, err error, tracer *wardrop.Tracer, tracePath string) error {
	emitErr := emit(w, res, err)
	if terr := writeTrace(tracer, tracePath); terr != nil && emitErr == nil {
		return terr
	}
	return emitErr
}

// writeTrace dumps the tracer ring as JSONL (one span per line); a nil tracer
// is a no-op. A ring overflow on a long run is reported on stderr.
func writeTrace(tracer *wardrop.Tracer, path string) error {
	if tracer == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if n := tracer.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "wardsim: trace ring overflowed, oldest %d spans dropped\n", n)
	}
	return nil
}

// emit prints the recorded trajectory as CSV. On context cancellation the
// partial trajectory is flushed with an interruption marker instead of the
// run dying mid-write.
func emit(w io.Writer, res *wardrop.Result, err error) error {
	interrupted := err != nil && res != nil && wardrop.IsInterrupt(err)
	if err != nil && !interrupted {
		return err
	}
	fmt.Fprintln(w, "time,potential,flows...")
	for _, s := range res.Trajectory {
		fmt.Fprintf(w, "%g,%g", s.Time, s.Potential)
		for _, f := range s.Flow {
			fmt.Fprintf(w, ",%g", f)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "# phases=%d elapsed=%g finalPotential=%g\n", res.Phases, res.Elapsed, res.FinalPotential)
	if interrupted {
		fmt.Fprintln(w, "# interrupted: partial trajectory flushed")
		return err
	}
	return nil
}
