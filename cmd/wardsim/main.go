// Command wardsim runs one rerouting-dynamics simulation on a named topology
// and emits the trajectory (time, potential, flows) as CSV on stdout. It
// dispatches through the unified wardrop.Run API: the -policy and -agents
// flags select the engine (fluid limit, best response, or finite-N agents).
//
// SIGINT cancels the run context; the partial trajectory simulated so far is
// flushed before exiting.
//
// Usage:
//
//	wardsim -topo braess -policy replicator -T 0.1 -horizon 50
//	wardsim -topo kink -beta 8 -policy bestresponse -T 0.5 -horizon 20
//	wardsim -topo links -m 16 -policy uniform -T safe -horizon 100 -agents 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"

	"wardrop"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Drop the handler after the first SIGINT so a second Ctrl+C terminates
	// the process even if the partial-trajectory flush blocks.
	context.AfterFunc(ctx, stop)
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wardsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wardsim", flag.ContinueOnError)
	topoName := fs.String("topo", "braess", "topology: pigou|braess|kink|links|grid|layered")
	instFile := fs.String("instance", "", "JSON instance file (overrides -topo)")
	beta := fs.Float64("beta", 4, "kink slope (topo=kink)")
	m := fs.Int("m", 8, "link count (topo=links) / grid side (topo=grid)")
	seed := fs.Uint64("seed", 1, "seed (topo=layered, agent sim)")
	policyName := fs.String("policy", "replicator", "policy: replicator|uniform|boltzmann|bestresponse")
	c := fs.Float64("c", 4, "Boltzmann concentration (policy=boltzmann)")
	period := fs.String("T", "safe", "bulletin-board period: a number, or 'safe'")
	horizon := fs.Float64("horizon", 50, "simulated time")
	every := fs.Int("every", 1, "record every k phases")
	agentsN := fs.Int("agents", 0, "if > 0, run the finite-N stochastic simulator instead of the fluid limit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject bad run-shape flags up front instead of passing them to the
	// simulators (where e.g. -every 0 silently disables recording and
	// -agents < 0 only fails deep inside the agent distributor).
	if *horizon <= 0 || math.IsNaN(*horizon) || math.IsInf(*horizon, 0) {
		return fmt.Errorf("invalid -horizon %g: must be positive and finite", *horizon)
	}
	if *every < 1 {
		return fmt.Errorf("invalid -every %d: must be >= 1", *every)
	}
	if *agentsN < 0 {
		return fmt.Errorf("invalid -agents %d: must be >= 0", *agentsN)
	}

	var inst *wardrop.Instance
	var err error
	if *instFile != "" {
		f, ferr := os.Open(*instFile)
		if ferr != nil {
			return ferr
		}
		inst, err = wardrop.ParseInstance(f)
		f.Close()
	} else {
		inst, err = buildTopo(*topoName, *beta, *m, *seed)
	}
	if err != nil {
		return err
	}

	scenario := wardrop.Scenario{
		Instance:    inst,
		Horizon:     *horizon,
		RecordEvery: *every,
	}

	if *policyName == "bestresponse" {
		if *agentsN > 0 {
			return fmt.Errorf("-agents %d cannot be combined with -policy bestresponse (a fluid-only dynamics)", *agentsN)
		}
		T, err := parsePeriod(*period, 0.5)
		if err != nil {
			return err
		}
		scenario.Engine = wardrop.BestResponseEngine{}
		scenario.UpdatePeriod = T
		if *topoName == "kink" {
			f1, _, _ := wardrop.TwoLinkOscillation(*beta, T, 0)
			scenario.InitialFlow = wardrop.Flow{f1, 1 - f1}
		}
		return emit(wardrop.Run(ctx, scenario))
	}

	pol, err := buildPolicy(*policyName, *c, inst)
	if err != nil {
		return err
	}
	safe, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		return err
	}
	T, err := parsePeriod(*period, safe)
	if err != nil {
		return err
	}
	scenario.Policy = pol
	scenario.UpdatePeriod = T

	if *agentsN > 0 {
		scenario.Engine = wardrop.AgentsEngine{N: *agentsN, Seed: *seed}
	} else {
		scenario.Engine = wardrop.FluidEngine{Integrator: wardrop.Uniformization}
	}
	return emit(wardrop.Run(ctx, scenario))
}

func buildTopo(name string, beta float64, m int, seed uint64) (*wardrop.Instance, error) {
	switch name {
	case "pigou":
		return wardrop.Pigou()
	case "braess":
		return wardrop.Braess()
	case "kink":
		return wardrop.TwoLinkKink(beta)
	case "links":
		return wardrop.LinearParallelLinks(m)
	case "grid":
		return wardrop.GridNetwork(m)
	case "layered":
		return wardrop.LayeredRandom(3, m, seed)
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func buildPolicy(name string, c float64, inst *wardrop.Instance) (wardrop.Policy, error) {
	switch name {
	case "replicator":
		return wardrop.Replicator(inst.LMax())
	case "uniform":
		return wardrop.UniformLinear(inst.LMax())
	case "boltzmann":
		lin, err := wardrop.NewLinearMigrator(inst.LMax())
		if err != nil {
			return wardrop.Policy{}, err
		}
		return wardrop.Policy{Sampler: wardrop.BoltzmannSampler{C: c}, Migrator: lin}, nil
	default:
		return wardrop.Policy{}, fmt.Errorf("unknown policy %q", name)
	}
}

func parsePeriod(s string, safe float64) (float64, error) {
	if s == "safe" {
		return safe, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("invalid period %q", s)
	}
	return v, nil
}

// emit prints the recorded trajectory as CSV. On context cancellation the
// partial trajectory is flushed with an interruption marker instead of the
// run dying mid-write.
func emit(res *wardrop.Result, err error) error {
	interrupted := err != nil && res != nil && wardrop.IsInterrupt(err)
	if err != nil && !interrupted {
		return err
	}
	fmt.Println("time,potential,flows...")
	for _, s := range res.Trajectory {
		fmt.Printf("%g,%g", s.Time, s.Potential)
		for _, f := range s.Flow {
			fmt.Printf(",%g", f)
		}
		fmt.Println()
	}
	fmt.Printf("# phases=%d elapsed=%g finalPotential=%g\n", res.Phases, res.Elapsed, res.FinalPotential)
	if interrupted {
		fmt.Println("# interrupted: partial trajectory flushed")
		return err
	}
	return nil
}
