package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"wardrop"
)

// syncBuffer is a mutex-guarded buffer the server goroutine writes and the
// test polls.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// startServer runs the command on a free port and returns its base URL and
// a shutdown func that asserts a clean drain.
func startServer(t *testing.T, args []string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errCh:
			t.Fatalf("server exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen address announced:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("server shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not drain")
		}
	}
}

func TestServeSmoke(t *testing.T) {
	base, shutdown := startServer(t, []string{"-workers", "2", "-grace", "5s"})
	defer shutdown()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	spec, err := os.ReadFile("testdata/pigou.json")
	if err != nil {
		t.Fatal(err)
	}
	post := func() []byte {
		resp, err := http.Post(base+"/v1/scenarios", "application/json", bytes.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/scenarios status %d: %s", resp.StatusCode, body)
		}
		return body
	}
	first := post()

	// The served document must match the library pipeline — the same bytes
	// `wardsim -scenario testdata/pigou.json -json` emits (the CI smoke
	// step compares the actual binaries).
	sc, err := wardrop.ParseScenario(bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, events, err := sc.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := wardrop.EncodeRunResult(&want, sc, res, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, want.Bytes()) {
		t.Fatalf("served result differs from wardsim's pipeline:\n got: %s\nwant: %s", first, want.Bytes())
	}

	// Repeat request: identical bytes from cache.
	if second := post(); !bytes.Equal(first, second) {
		t.Fatalf("cached repeat diverged:\n1st: %s\n2nd: %s", first, second)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"jobsRun":1`, `"cacheHits":1`, `"cacheMisses":1`} {
		if !strings.Contains(string(metrics), field) {
			t.Errorf("metrics %s missing %s", metrics, field)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-nonsense"},
		{"-addr", "999.999.999.999:0"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "topology:") {
		t.Fatalf("-list output lacks the catalog:\n%s", out.String())
	}
}
