// Command wardserve runs the simulation service: an HTTP/JSON server that
// accepts scenario and campaign specifications, schedules them on a bounded
// worker pool, memoizes results in a fingerprint-keyed LRU cache, and
// streams campaign runs as NDJSON.
//
// Endpoints:
//
//	GET  /healthz                 readiness: store probe + queue saturation (503 when not ready)
//	GET  /v1/catalog              the registered component catalog
//	POST /v1/scenarios            run a scenario (sync; ?mode=job for async)
//	POST /v1/campaigns            run a campaign (always a job resource)
//	POST /v1/tasks                run one sweep task (sync; the distributed-sweep work unit)
//	GET  /v1/jobs                 recent jobs
//	GET  /v1/jobs/{id}            one job
//	GET  /v1/jobs/{id}/stream     the job's NDJSON stream (replay + follow)
//	GET  /metrics                 jobs run, cache hit rate, queue depth, latency percentiles
//
// With -store DIR the in-memory result cache gains a durable second tier: a
// content-addressed store of result documents keyed by spec fingerprint,
// shared safely between restarts and between servers pointing at the same
// directory (the backing filesystem must be shared for a multi-node fleet).
//
// SIGINT/SIGTERM drains the server: listeners stop accepting, in-flight and
// queued jobs get -grace to finish, then remaining runs are cancelled. A
// second signal terminates immediately.
//
// Usage:
//
//	wardserve -addr :8080
//	wardserve -addr 127.0.0.1:0 -workers 8 -queue 128 -cache 512
//	wardserve -addr :8080 -store /var/lib/wardrop -store-max 1073741824
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux the -pprof listener serves
	"os"
	"time"

	"wardrop"
	"wardrop/internal/drain"
	"wardrop/internal/obs"
)

// newLogger builds the process logger; see obs.NewLogger for the shared
// conventions.
func newLogger(w io.Writer, verbose, json bool) *slog.Logger {
	return obs.NewLogger(w, verbose, json)
}

func main() {
	ctx, stop := drain.Context(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wardserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wardserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "worker-pool size (default GOMAXPROCS)")
	queue := fs.Int("queue", 0, "job-queue depth (default 64)")
	cache := fs.Int("cache", 0, "result-cache entries (default 256; negative disables)")
	campaignWorkers := fs.Int("campaign-workers", 0, "sweep pool width inside one campaign job (default 1)")
	storeDir := fs.String("store", "", "durable result-store directory (second cache tier; survives restarts)")
	storeMax := fs.Int64("store-max", 0, "result-store byte budget, least-recently-used eviction (0 = unbounded)")
	grace := fs.Duration("grace", 15*time.Second, "shutdown grace period for in-flight jobs")
	list := fs.Bool("list", false, "print the registered component catalog and exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	verbose := fs.Bool("v", false, "debug-level structured logs (per-request access log included)")
	logJSON := fs.Bool("logjson", false, "structured logs as JSON lines instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return wardrop.WriteCatalog(stdout)
	}
	logger := newLogger(os.Stderr, *verbose, *logJSON)

	// Bind before starting the worker pool so a bad -addr never spawns (and
	// leaks) workers.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cfg := wardrop.ServerConfig{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		CampaignWorkers: *campaignWorkers,
	}
	if *storeDir != "" {
		st, err := wardrop.OpenResultStore(*storeDir, *storeMax)
		if err != nil {
			ln.Close()
			return err
		}
		cfg.Store = st
		stats := st.Stats()
		fmt.Fprintf(stdout, "wardserve: store %s (%d objects, %d bytes)\n", *storeDir, stats.Objects, stats.Bytes)
	}
	srv := wardrop.NewServer(cfg)
	// The resolved address line is machine-readable on purpose: tests and
	// scripts bind :0 and scrape the port.
	fmt.Fprintf(stdout, "wardserve: listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(), "workers", cfg.Workers)

	// Opt-in pprof on its own listener: profiling must never share the
	// public address, and a bad -pprof is a startup error, not a silent gap.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		fmt.Fprintf(stdout, "wardserve: pprof on %s\n", pln.Addr())
		logger.Info("pprof", "addr", pln.Addr().String())
		go func() { _ = http.Serve(pln, nil) }()
	}

	hs := &http.Server{Handler: wardrop.ServerAccessLog(logger, srv)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own: tear the pool down before exiting.
		gctx, cancel := drain.Grace(*grace)
		defer cancel()
		_ = srv.Close(gctx)
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, give in-flight handlers and queued jobs the
	// grace period, then cancel whatever is still running.
	fmt.Fprintf(stdout, "wardserve: draining (grace %s)\n", *grace)
	logger.Info("draining", "grace", grace.String())
	gctx, cancel := drain.Grace(*grace)
	defer cancel()
	shutdownErr := hs.Shutdown(gctx)
	closeErr := srv.Close(gctx)
	if errors.Is(closeErr, context.DeadlineExceeded) {
		fmt.Fprintln(stdout, "wardserve: grace period expired, cancelled remaining jobs")
		closeErr = nil
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return closeErr
}
