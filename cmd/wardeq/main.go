// Command wardeq solves the Wardrop equilibrium and social optimum of a
// named topology with the reference Frank–Wolfe solver and prints flows,
// potential, total latencies and the price of anarchy.
//
// With -tolls it additionally applies a toll kind from the timeline catalog
// to every edge, solves the tolled equilibrium, and reports its cost under
// the ORIGINAL latencies — the before/after price-of-anarchy comparison.
// Marginal-cost tolls (ℓ + x·ℓ') make the tolled equilibrium socially
// optimal, driving the after-tolling ratio to 1.
//
// Usage:
//
//	wardeq -topo braess
//	wardeq -topo links -m 16
//	wardeq -topo braess -tolls marginal
//	wardeq -topo pigou -tolls constant:0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wardrop"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wardeq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wardeq", flag.ContinueOnError)
	topoName := fs.String("topo", "braess", "topology: any registered family (see wardsim -list)")
	beta := fs.Float64("beta", 4, "kink slope (topo=kink)")
	m := fs.Int("m", 8, "link count / grid side")
	seed := fs.Uint64("seed", 1, "seed (topo=layered)")
	tolls := fs.String("tolls", "", `toll kind applied to every edge: "marginal" or "constant:<amount>"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := wardrop.CampaignTopology{Family: *topoName, Size: *m, Beta: *beta}.Build(*seed)
	if err != nil {
		return err
	}

	eq, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
	if err != nil {
		return fmt.Errorf("equilibrium: %w", err)
	}
	fmt.Printf("topology          : %s (paths=%d, D=%d, beta=%g, lmax=%g)\n",
		*topoName, inst.NumPaths(), inst.MaxPathLen(), inst.Beta(), inst.LMax())
	fmt.Printf("equilibrium flow  : %v\n", eq.Flow)
	fmt.Printf("potential Φ*      : %.9g  (rel. gap %.2g, %d iters)\n", eq.Potential, eq.RelGap, eq.Iters)

	poa, eqCost, optCost, err := wardrop.PriceOfAnarchy(inst, wardrop.SolverOptions{})
	if err != nil {
		return fmt.Errorf("price of anarchy: %w", err)
	}
	fmt.Printf("equilibrium cost L: %.9g\n", eqCost)
	fmt.Printf("optimal cost      : %.9g\n", optCost)
	fmt.Printf("price of anarchy  : %.6g\n", poa)

	if *tolls == "" {
		return nil
	}
	tl, err := parseTolls(*tolls)
	if err != nil {
		return err
	}
	tolled, err := wardrop.ApplyTolls(tl, inst)
	if err != nil {
		return fmt.Errorf("tolls: %w", err)
	}
	teq, err := wardrop.SolveEquilibrium(tolled, wardrop.SolverOptions{})
	if err != nil {
		return fmt.Errorf("tolled equilibrium: %w", err)
	}
	// The derived instance shares the path enumeration, so the tolled
	// equilibrium flow can be priced under the original latencies: what
	// travellers actually experience once the toll revenue is set aside.
	tolledCost := inst.OverallAvgLatency(teq.Flow, inst.PathLatencies(teq.Flow))
	fmt.Printf("tolls             : %s (every edge)\n", *tolls)
	fmt.Printf("tolled eq flow    : %v\n", teq.Flow)
	fmt.Printf("tolled eq cost L  : %.9g  (under original latencies)\n", tolledCost)
	fmt.Printf("PoA after tolling : %.6g\n", tolledCost/optCost)
	return nil
}

// parseTolls turns the -tolls value into an every-edge timeline toll:
// "marginal", "constant:<amount>", or any registered toll kind (optionally
// with ":<amount>").
func parseTolls(s string) (*wardrop.TimelineSpec, error) {
	kind, amountStr, hasAmount := strings.Cut(s, ":")
	toll := wardrop.TimelineToll{Kind: kind}
	if hasAmount {
		amount, err := strconv.ParseFloat(amountStr, 64)
		if err != nil {
			return nil, fmt.Errorf("tolls: bad amount %q: %v", amountStr, err)
		}
		toll.Amount = amount
	}
	tl := &wardrop.TimelineSpec{Tolls: []wardrop.TimelineToll{toll}}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	return tl, nil
}
