// Command wardeq solves the Wardrop equilibrium and social optimum of a
// named topology with the reference Frank–Wolfe solver and prints flows,
// potential, total latencies and the price of anarchy.
//
// Usage:
//
//	wardeq -topo braess
//	wardeq -topo links -m 16
package main

import (
	"flag"
	"fmt"
	"os"

	"wardrop"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wardeq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wardeq", flag.ContinueOnError)
	topoName := fs.String("topo", "braess", "topology: any registered family (see wardsim -list)")
	beta := fs.Float64("beta", 4, "kink slope (topo=kink)")
	m := fs.Int("m", 8, "link count / grid side")
	seed := fs.Uint64("seed", 1, "seed (topo=layered)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := wardrop.CampaignTopology{Family: *topoName, Size: *m, Beta: *beta}.Build(*seed)
	if err != nil {
		return err
	}

	eq, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
	if err != nil {
		return fmt.Errorf("equilibrium: %w", err)
	}
	fmt.Printf("topology          : %s (paths=%d, D=%d, beta=%g, lmax=%g)\n",
		*topoName, inst.NumPaths(), inst.MaxPathLen(), inst.Beta(), inst.LMax())
	fmt.Printf("equilibrium flow  : %v\n", eq.Flow)
	fmt.Printf("potential Φ*      : %.9g  (rel. gap %.2g, %d iters)\n", eq.Potential, eq.RelGap, eq.Iters)

	poa, eqCost, optCost, err := wardrop.PriceOfAnarchy(inst, wardrop.SolverOptions{})
	if err != nil {
		return fmt.Errorf("price of anarchy: %w", err)
	}
	fmt.Printf("equilibrium cost L: %.9g\n", eqCost)
	fmt.Printf("optimal cost      : %.9g\n", optCost)
	fmt.Printf("price of anarchy  : %.6g\n", poa)
	return nil
}
