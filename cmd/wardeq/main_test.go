package main

import "testing"

func TestRunUnknownTopology(t *testing.T) {
	if err := run([]string{"-topo", "klein-bottle"}); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunAllTopologies(t *testing.T) {
	for _, topo := range []string{"pigou", "braess", "kink", "links", "grid", "layered"} {
		args := []string{"-topo", topo, "-m", "3"}
		if err := run(args); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}
