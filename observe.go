package wardrop

import (
	"log/slog"
	"net/http"

	"wardrop/internal/obs"
	"wardrop/internal/serve"
)

// Observability ---------------------------------------------------------------
//
// The obs layer is the repo's zero-dependency observability core: one typed
// instrument registry shared by the serving layer, the sweep pool and the
// dispatch coordinator, plus a span tracer riding the engine observer
// pipeline. See the README "Observability" section for the metrics catalog
// and the trace JSONL schema.

// MetricsRegistry is a typed instrument registry: atomic counters, gauges
// and fixed-bucket histograms with exact window percentiles, exposable as
// Prometheus text via WritePrometheus. Pass one registry as
// ServerConfig.Metrics / SweepOptions.Metrics / DistSweepOptions.Metrics to
// expose several components through one endpoint — see NewMetricsRegistry.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty instrument registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Tracer records per-phase spans of a simulation run into a bounded ring.
// It implements the engine Observer interface: attach with
// WithObserver(tracer), then dump the spans with WriteJSONL or stream them
// live via OnSpan.
type Tracer = obs.Tracer

// Span is one traced observation — a phase start or a replayed timeline
// event — and one JSONL line of a trace dump.
type Span = obs.Span

// NewTracer builds a tracer whose ring holds capacity spans (<= 0: a 4096
// default). When the ring is full the oldest spans are overwritten, so a
// tracer on an unbounded run holds bounded memory.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// ServerAccessLog wraps an http.Handler (typically a Server) with structured
// per-request logging: method, path, status, duration and, where a handler
// set one, the spec fingerprint. A nil logger returns next unwrapped.
func ServerAccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return serve.AccessLog(logger, next)
}
