package wardrop_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wardrop"
)

func stringsReader(s string) *strings.Reader { return strings.NewReader(s) }

// Cross-module integration tests: each exercises a full pipeline through the
// public API (topology → policy → dynamics → metrics → solver) rather than a
// single package.

// The fluid dynamics' limit point agrees with the Frank–Wolfe solver on every
// canonical topology for both Theorem-6 and Theorem-7 policies.
func TestDynamicsLimitMatchesSolver(t *testing.T) {
	topos := map[string]func() (*wardrop.Instance, error){
		"pigou":   wardrop.Pigou,
		"braess":  wardrop.Braess,
		"links4":  func() (*wardrop.Instance, error) { return wardrop.LinearParallelLinks(4) },
		"twocomm": wardrop.TwoCommodityOverlap,
		"multi":   func() (*wardrop.Instance, error) { return wardrop.MultiCommodityParallel(2, 3) },
	}
	for name, mk := range topos {
		inst, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eq, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
		if err != nil {
			t.Fatalf("%s solve: %v", name, err)
		}
		for _, mkPol := range []func(float64) (wardrop.Policy, error){wardrop.Replicator, wardrop.UniformLinear} {
			pol, err := mkPol(inst.LMax())
			if err != nil {
				t.Fatal(err)
			}
			T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
			if err != nil {
				t.Fatal(err)
			}
			res, err := wardrop.Simulate(inst, wardrop.SimConfig{
				Policy: pol, UpdatePeriod: T, Horizon: 2500 * T,
				Integrator: wardrop.Uniformization,
			}, inst.UniformFlow())
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pol.Name(), err)
			}
			// Compare potentials, not flows: equilibria can be non-unique in
			// flow space but Φ* is unique.
			gap := res.FinalPotential - eq.Potential
			if gap > 5e-3 {
				t.Errorf("%s/%s: potential gap %g after %d phases", name, pol.Name(), gap, res.Phases)
			}
		}
	}
}

// Potential descent at the safe period is not an artifact of the uniform
// start: it holds from random feasible starts (property-based).
func TestPotentialDescentFromRandomStarts(t *testing.T) {
	inst, err := wardrop.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c uint16) bool {
		x := float64(a%997) + 1
		y := float64(b%997) + 1
		z := float64(c%997) + 1
		s := x + y + z
		f0 := wardrop.Flow{x / s, y / s, z / s}
		monotone := true
		prev := math.Inf(1)
		_, err := wardrop.Simulate(inst, wardrop.SimConfig{
			Policy: pol, UpdatePeriod: T, Horizon: 40 * T,
			Integrator: wardrop.Uniformization,
			Hook: func(info wardrop.PhaseInfo) bool {
				if info.Potential > prev+1e-9 {
					monotone = false
				}
				prev = info.Potential
				return false
			},
		}, f0)
		return err == nil && monotone
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The agent simulator, the event-driven engine and the fluid limit all land
// on the same equilibrium region on a multi-commodity instance.
func TestThreeEnginesAgreeMultiCommodity(t *testing.T) {
	inst, err := wardrop.MultiCommodityParallel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := wardrop.Simulate(inst, wardrop.SimConfig{
		Policy: pol, UpdatePeriod: T, Horizon: 400, Integrator: wardrop.Uniformization,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := wardrop.NewAgentSim(inst, wardrop.AgentConfig{
		N: 4000, Policy: pol, UpdatePeriod: T, Horizon: 400, Seed: 1, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := wardrop.NewAgentSim(inst, wardrop.AgentConfig{
		N: 4000, Policy: pol, UpdatePeriod: T, Horizon: 400, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	event, err := sim2.RunEventDriven()
	if err != nil {
		t.Fatal(err)
	}
	if d := batched.Final.MaxAbsDiff(fluid.Final); d > 0.05 {
		t.Errorf("batched engine vs fluid: sup err %g", d)
	}
	if d := event.Final.MaxAbsDiff(fluid.Final); d > 0.05 {
		t.Errorf("event engine vs fluid: sup err %g", d)
	}
}

// K-shortest-path strategy spaces compose with the whole pipeline: on a grid
// whose full path set is larger, the restricted instance still converges to
// a Wardrop equilibrium of the restricted game.
func TestKShortestPipelineOnGrid(t *testing.T) {
	// Build the grid graph manually to apply the K-paths option.
	full, err := wardrop.GridNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	g := full.Graph()
	lats := make([]wardrop.LatencyFunc, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		lats[e] = full.Latency(wardrop.EdgeID(e))
	}
	comms := []wardrop.Commodity{full.Commodity(0)}
	restricted, err := wardrop.NewInstance(g, lats, comms, wardrop.WithKShortestPaths(5))
	if err != nil {
		t.Fatal(err)
	}
	if restricted.NumPaths() != 5 {
		t.Fatalf("restricted paths = %d, want 5", restricted.NumPaths())
	}
	if full.NumPaths() <= 5 {
		t.Fatalf("grid should have more than 5 paths, has %d", full.NumPaths())
	}
	pol, err := wardrop.Replicator(restricted.LMax())
	if err != nil {
		t.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, restricted)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wardrop.Simulate(restricted, wardrop.SimConfig{
		Policy: pol, UpdatePeriod: T, Horizon: 1500 * T, Integrator: wardrop.Uniformization,
	}, restricted.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !restricted.AtWardropEquilibrium(res.Final, 0.05) {
		t.Errorf("restricted game did not reach its equilibrium: %v", res.Final)
	}
}

// A JSON-specified network runs through solver and dynamics end to end.
func TestSpecToSolverToDynamics(t *testing.T) {
	doc := `{
	  "nodes": ["s", "m", "t"],
	  "edges": [
	    {"from": "s", "to": "m", "latency": {"kind": "linear", "slope": 1}},
	    {"from": "m", "to": "t", "latency": {"kind": "constant", "c": 0.2}},
	    {"from": "s", "to": "t", "latency": {"kind": "polynomial", "coeffs": [0.3, 0, 1]}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	}`
	inst, err := wardrop.ParseInstance(stringsReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wardrop.Simulate(inst, wardrop.SimConfig{
		Policy: pol, UpdatePeriod: T, Horizon: 3000 * T, Integrator: wardrop.Uniformization,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if gap := res.FinalPotential - eq.Potential; gap > 1e-3 {
		t.Errorf("dynamics vs solver potential gap = %g", gap)
	}
}
