package wardrop

import (
	"context"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
)

// Unified simulation API ------------------------------------------------------
//
// Run(ctx, scenario, opts...) is the single entry point for every dynamics:
// a Scenario says what to simulate (instance, policy, information model,
// initial flow, run shape), an Engine says how (fluid limit, best response,
// finite-N agents), and Observers watch or stop the run. The legacy
// Simulate/SimulateFresh/SimulateBestResponse/NewAgentSim entry points
// remain as deprecated adapters around the same internals.

// Scenario declares one simulation: instance + policy + information model +
// initial flow + run shape. See engine.Scenario.
type Scenario = engine.Scenario

// Engine executes a Scenario under one dynamics family; implementations are
// FluidEngine, BestResponseEngine, AgentsEngine and CountEngine.
type Engine = engine.Engine

// EngineSpec is the JSON document shape for selecting an engine by name
// ("fluid", "fresh", "bestresponse", "agents", "count").
type EngineSpec = engine.Spec

// FluidEngine integrates the fluid-limit ODE: stale information (Eq. 3) by
// default, fresh information (Eq. 1) when Fresh is set.
type FluidEngine = engine.Fluid

// BestResponseEngine integrates the best-response differential inclusion
// under stale information (Eq. 4) with exact per-phase relaxation.
type BestResponseEngine = engine.BestResponse

// AgentsEngine runs the finite-N stochastic bulletin-board simulation. It
// holds every agent in memory, so N is capped at MaxAgentPopulation; larger
// populations belong on CountEngine.
type AgentsEngine = engine.Agents

// CountEngine runs the mean-field count engine: the same finite-N
// stochastic process as AgentsEngine, represented as integer counts per
// (commodity, path), so a phase costs O(paths) independent of the
// population — millions of agents cost the same as thousands.
type CountEngine = engine.Count

// MaxAgentPopulation is the largest population AgentsEngine accepts; larger
// populations must use CountEngine.
const MaxAgentPopulation = engine.MaxAgentPopulation

// RunOption configures one Run call.
type RunOption = engine.RunOption

// Result is the unified simulation outcome shared by every engine (the same
// shape the deprecated entry points return as SimResult).
type Result = engine.Result

// Run executes the scenario on its engine (FluidEngine when the scenario
// leaves Engine nil). Cancellation is checked between phases: when ctx is
// done the partial result accumulated so far is returned together with
// ctx.Err().
func Run(ctx context.Context, sc Scenario, opts ...RunOption) (*Result, error) {
	return engine.Run(ctx, sc, opts...)
}

// NewEngine returns a default-configured engine by name ("fluid", "fresh",
// "bestresponse"); the agents engine needs a population — use an EngineSpec
// or an AgentsEngine value.
func NewEngine(name string) (Engine, error) { return engine.New(name) }

// IsInterrupt reports whether err is context cancellation (Canceled or
// DeadlineExceeded) — the errors Run and RunSweep return together with a
// partial result, e.g. after SIGINT.
func IsInterrupt(err error) bool { return engine.IsCancellation(err) }

// WithObserver attaches observers to a run; multiple options and multiple
// observers compose (fan-out).
func WithObserver(obs ...Observer) RunOption { return engine.WithObserver(obs...) }

// Observers ------------------------------------------------------------------

// Observer receives every phase start; returning true from ObservePhase
// stops the run. It replaces the legacy bool-returning Hook.
type Observer = dynamics.Observer

// ObserverFunc adapts a plain function (e.g. a legacy Hook closure) to the
// Observer interface.
type ObserverFunc = dynamics.ObserverFunc

// Observers fans one phase stream out to several observers; every observer
// sees every phase and the run stops if any of them asked to.
func Observers(obs ...Observer) Observer { return dynamics.MultiObserver(obs...) }

// TrajectoryRecorder is an Observer recording a Sample every Every phases
// into Samples.
type TrajectoryRecorder = dynamics.TrajectoryRecorder

// EquilibriumStopper is an Observer stopping a run once a configured number
// of consecutive phases start at a (δ,ε)-equilibrium; create with
// NewEquilibriumStopper.
type EquilibriumStopper = dynamics.EquilibriumStopper

// NewEquilibriumStopper builds an EquilibriumStopper for the instance. weak
// selects the Definition 4 metric; streak <= 0 only counts, never stops.
func NewEquilibriumStopper(inst *Instance, delta, eps float64, weak bool, streak int) *EquilibriumStopper {
	return dynamics.NewEquilibriumStopper(inst, delta, eps, weak, streak)
}

// ProgressReporter is an Observer printing a liveness line every Every
// phases to W.
type ProgressReporter = dynamics.ProgressReporter
