package wardrop_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"wardrop"
)

// The golden tests below pin the unified Run API against the deprecated
// entry points (Simulate, SimulateFresh, SimulateBestResponse, NewAgentSim)
// on Pigou, Braess and TwoLinkKink: Final, FinalPotential, Phases,
// UnsatisfiedPhases, Elapsed and the recorded trajectory must be identical,
// and both must reproduce the literal values captured from the
// pre-redesign implementation (so the refactor is provably byte-identical,
// not merely self-consistent).

type goldenCase struct {
	// final is each Final component formatted %.17g (float64 round-trip).
	final []string
	// phi is FinalPotential formatted %.17g.
	phi string
	// phases/unsat/traj pin Phases, UnsatisfiedPhases and len(Trajectory).
	phases, unsat, traj int
}

// Captured from the seed implementation (legacy entry points) before the
// Run/Scenario/Engine redesign.
var goldens = map[string]goldenCase{
	"pigou/stale-uniformization": {
		final:  []string{"0.81877401153425577", "0.18122598846574431"},
		phi:    "0.51642142944769309",
		phases: 50, unsat: 50, traj: 25,
	},
	"pigou/stale-rk4": {
		final:  []string{"0.7527627840613107", "0.24723721593868936"},
		phi:    "0.53056312047255716",
		phases: 16, unsat: 0, traj: 0,
	},
	"pigou/fresh": {
		final:  []string{"0.66666666666616115", "0.3333333333338388"},
		phi:    "0.555555555555724",
		phases: 128, unsat: 0, traj: 0,
	},
	"pigou/bestresponse": {
		final:  []string{"0.97510646581606797", "0.024893534183931972"},
		phi:    "0.50030984402208323",
		phases: 12, unsat: 7, traj: 12,
	},
	"pigou/agents": {
		final:  []string{"0.76000000000000001", "0.24000000000000002"},
		phi:    "0.52880000000000005",
		phases: 12, unsat: 0, traj: 4,
	},
	"braess/stale-uniformization": {
		final:  []string{"0.24656331778962065", "0.50687336442075881", "0.24656331778962065"},
		phi:    "1.0607934696794257",
		phases: 50, unsat: 50, traj: 25,
	},
	"braess/stale-rk4": {
		final:  []string{"0.27241357023314511", "0.45517285953370978", "0.27241357023314511"},
		phi:    "1.0742091532471685",
		phases: 16, unsat: 0, traj: 0,
	},
	"braess/fresh": {
		final:  []string{"0.30000000000000066", "0.39999999999999869", "0.30000000000000066"},
		phi:    "1.0900000000000003",
		phases: 128, unsat: 0, traj: 0,
	},
	"braess/bestresponse": {
		final:  []string{"0.016595689455954646", "0.96680862108809074", "0.016595689455954646"},
		phi:    "1.0002754169085186",
		phases: 12, unsat: 5, traj: 12,
	},
	"braess/agents": {
		final:  []string{"0.26666666666666672", "0.45666666666666667", "0.27666666666666673"},
		phi:    "1.0738277777777778",
		phases: 12, unsat: 0, traj: 4,
	},
	"kink4/stale-uniformization": {
		final:  []string{"0.5", "0.5"},
		phi:    "0",
		phases: 50, unsat: 0, traj: 25,
	},
	"kink4/stale-rk4": {
		final:  []string{"0.5", "0.5"},
		phi:    "0",
		phases: 16, unsat: 0, traj: 0,
	},
	"kink4/fresh": {
		final:  []string{"0.5", "0.5"},
		phi:    "0",
		phases: 128, unsat: 0, traj: 0,
	},
	"kink4/bestresponse": {
		final:  []string{"0.44091908481467762", "0.55908091518532244"},
		phi:    "0.0069811090782705264",
		phases: 12, unsat: 10, traj: 12,
	},
	"kink4/agents": {
		final:  []string{"0.5", "0.5"},
		phi:    "0",
		phases: 12, unsat: 0, traj: 4,
	},
}

func goldenTopologies(t *testing.T) map[string]*wardrop.Instance {
	t.Helper()
	out := make(map[string]*wardrop.Instance, 3)
	for name, mk := range map[string]func() (*wardrop.Instance, error){
		"pigou":  wardrop.Pigou,
		"braess": wardrop.Braess,
		"kink4":  func() (*wardrop.Instance, error) { return wardrop.TwoLinkKink(4) },
	} {
		inst, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		out[name] = inst
	}
	return out
}

// checkIdentical requires the two results to be deeply equal (bit-identical
// floats, identical trajectories) and to match the pinned seed values.
func checkIdentical(t *testing.T, key string, legacy, unified *wardrop.SimResult) {
	t.Helper()
	if !reflect.DeepEqual(legacy, unified) {
		t.Fatalf("%s: Run result differs from legacy:\nlegacy  %+v\nunified %+v", key, legacy, unified)
	}
	want, ok := goldens[key]
	if !ok {
		t.Fatalf("%s: no golden case", key)
	}
	if len(legacy.Final) != len(want.final) {
		t.Fatalf("%s: Final has %d components, want %d", key, len(legacy.Final), len(want.final))
	}
	for i, w := range want.final {
		if got := fmt.Sprintf("%.17g", legacy.Final[i]); got != w {
			t.Errorf("%s: Final[%d] = %s, want %s", key, i, got, w)
		}
	}
	if got := fmt.Sprintf("%.17g", legacy.FinalPotential); got != want.phi {
		t.Errorf("%s: FinalPotential = %s, want %s", key, got, want.phi)
	}
	if legacy.Phases != want.phases {
		t.Errorf("%s: Phases = %d, want %d", key, legacy.Phases, want.phases)
	}
	if legacy.UnsatisfiedPhases != want.unsat {
		t.Errorf("%s: UnsatisfiedPhases = %d, want %d", key, legacy.UnsatisfiedPhases, want.unsat)
	}
	if len(legacy.Trajectory) != want.traj {
		t.Errorf("%s: len(Trajectory) = %d, want %d", key, len(legacy.Trajectory), want.traj)
	}
}

func TestGoldenRunMatchesSimulate(t *testing.T) {
	for name, inst := range goldenTopologies(t) {
		pol, err := wardrop.Replicator(inst.LMax())
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := wardrop.Simulate(inst, wardrop.SimConfig{
			Policy: pol, UpdatePeriod: 0.1, Horizon: 5,
			Integrator: wardrop.Uniformization, RecordEvery: 2,
			Delta: 0.1, Eps: 0.05,
		}, inst.UniformFlow())
		if err != nil {
			t.Fatal(err)
		}
		unified, err := wardrop.Run(context.Background(), wardrop.Scenario{
			Engine:       wardrop.FluidEngine{Integrator: wardrop.Uniformization},
			Instance:     inst,
			Policy:       pol,
			UpdatePeriod: 0.1,
			Horizon:      5,
			RecordEvery:  2,
			Delta:        0.1,
			Eps:          0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, name+"/stale-uniformization", legacy, unified)

		ul, err := wardrop.UniformLinear(inst.LMax())
		if err != nil {
			t.Fatal(err)
		}
		legacy, err = wardrop.Simulate(inst, wardrop.SimConfig{
			Policy: ul, UpdatePeriod: 0.25, Horizon: 4,
			Integrator: wardrop.RK4, Step: 1.0 / 32,
		}, inst.UniformFlow())
		if err != nil {
			t.Fatal(err)
		}
		unified, err = wardrop.Run(context.Background(), wardrop.Scenario{
			Engine:       wardrop.FluidEngine{Integrator: wardrop.RK4, Step: 1.0 / 32},
			Instance:     inst,
			Policy:       ul,
			UpdatePeriod: 0.25,
			Horizon:      4,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, name+"/stale-rk4", legacy, unified)
	}
}

func TestGoldenRunMatchesSimulateFresh(t *testing.T) {
	for name, inst := range goldenTopologies(t) {
		ul, err := wardrop.UniformLinear(inst.LMax())
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := wardrop.SimulateFresh(inst, wardrop.SimConfig{
			Policy: ul, Horizon: 2, Step: 1.0 / 64,
		}, inst.UniformFlow())
		if err != nil {
			t.Fatal(err)
		}
		unified, err := wardrop.Run(context.Background(), wardrop.Scenario{
			Engine:   wardrop.FluidEngine{Fresh: true, Step: 1.0 / 64},
			Instance: inst,
			Policy:   ul,
			Horizon:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, name+"/fresh", legacy, unified)
	}
}

func TestGoldenRunMatchesSimulateBestResponse(t *testing.T) {
	for name, inst := range goldenTopologies(t) {
		legacy, err := wardrop.SimulateBestResponse(inst, wardrop.BestResponseConfig{
			UpdatePeriod: 0.25, Horizon: 3, RecordEvery: 1, Delta: 0.1, Eps: 0.05,
		}, inst.UniformFlow())
		if err != nil {
			t.Fatal(err)
		}
		unified, err := wardrop.Run(context.Background(), wardrop.Scenario{
			Engine:       wardrop.BestResponseEngine{},
			Instance:     inst,
			UpdatePeriod: 0.25,
			Horizon:      3,
			RecordEvery:  1,
			Delta:        0.1,
			Eps:          0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, name+"/bestresponse", legacy, unified)
	}
}

func TestGoldenRunMatchesAgentSim(t *testing.T) {
	for name, inst := range goldenTopologies(t) {
		pol, err := wardrop.Replicator(inst.LMax())
		if err != nil {
			t.Fatal(err)
		}
		sim, err := wardrop.NewAgentSim(inst, wardrop.AgentConfig{
			N: 300, Policy: pol, UpdatePeriod: 0.25, Horizon: 3,
			Seed: 42, Workers: 2, RecordEvery: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		unified, err := wardrop.Run(context.Background(), wardrop.Scenario{
			Engine:       wardrop.AgentsEngine{N: 300, Seed: 42, Workers: 2},
			Instance:     inst,
			Policy:       pol,
			UpdatePeriod: 0.25,
			Horizon:      3,
			RecordEvery:  3,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, name+"/agents", legacy, unified)
	}
}

// TestObserverComposition fans one run out to a trajectory recorder, a
// counting observer and an equilibrium stopper and checks they all see the
// same phases: the recorder reproduces the engine's own trajectory, the
// counter sees every phase, and the stopper ends the run.
func TestObserverComposition(t *testing.T) {
	inst, err := wardrop.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	rec := &wardrop.TrajectoryRecorder{Every: 1}
	stopper := wardrop.NewEquilibriumStopper(inst, 0.5, 0.25, false, 3)
	phases := 0
	counter := wardrop.ObserverFunc(func(wardrop.PhaseInfo) bool {
		phases++
		return false
	})
	res, err := wardrop.Run(context.Background(), wardrop.Scenario{
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: 0.1,
		Horizon:      1000,
		RecordEvery:  1,
	}, wardrop.WithObserver(wardrop.Observers(rec, counter, stopper)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("equilibrium stopper never fired")
	}
	if phases != res.Phases+1 {
		// The stopping phase is observed but not integrated.
		t.Errorf("counter saw %d phases, want %d", phases, res.Phases+1)
	}
	if !reflect.DeepEqual(rec.Samples, res.Trajectory) {
		t.Errorf("recorder trajectory differs from engine trajectory: %d vs %d samples",
			len(rec.Samples), len(res.Trajectory))
	}
	if res.Phases >= 1000/0.1 {
		t.Error("run was not stopped early")
	}
}

// TestMidRunCancellationDeterminism cancels the context from an observer at
// a fixed phase and checks (a) the partial result is exactly the prefix a
// shorter-horizon run would produce, and (b) repeating the cancelled run
// reproduces it bit for bit — for both the fluid and the agent engine.
func TestMidRunCancellationDeterminism(t *testing.T) {
	inst, err := wardrop.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	const (
		T         = 0.1
		cutPhases = 5
	)
	engines := map[string]wardrop.Engine{
		"fluid":  wardrop.FluidEngine{Integrator: wardrop.Uniformization},
		"agents": wardrop.AgentsEngine{N: 200, Seed: 11, Workers: 1},
	}
	for name, eng := range engines {
		cancelled := func() *wardrop.Result {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			res, err := wardrop.Run(ctx, wardrop.Scenario{
				Engine: eng, Instance: inst, Policy: pol,
				UpdatePeriod: T, Horizon: 100,
			}, wardrop.WithObserver(wardrop.ObserverFunc(func(info wardrop.PhaseInfo) bool {
				if info.Index == cutPhases-1 {
					cancel()
				}
				return false
			})))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: err = %v, want context.Canceled", name, err)
			}
			return res
		}
		a, b := cancelled(), cancelled()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: cancelled runs are not deterministic", name)
		}
		if a.Phases != cutPhases {
			t.Fatalf("%s: Phases = %d, want %d", name, a.Phases, cutPhases)
		}
		truncated, err := wardrop.Run(context.Background(), wardrop.Scenario{
			Engine: eng, Instance: inst, Policy: pol,
			UpdatePeriod: T, Horizon: cutPhases * T,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Final, truncated.Final) {
			t.Errorf("%s: partial Final %v differs from truncated-horizon Final %v",
				name, a.Final, truncated.Final)
		}
	}
}

// TestConfigValidationHardening pins the rejection of the previously
// silently-accepted shapes: negative RecordEvery, negative Eps with
// accounting enabled, negative satisfied streak.
func TestConfigValidationHardening(t *testing.T) {
	inst, err := wardrop.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	f0 := inst.UniformFlow()

	bads := []wardrop.SimConfig{
		{Policy: pol, UpdatePeriod: 1, Horizon: 1, RecordEvery: -1},
		{Policy: pol, UpdatePeriod: 1, Horizon: 1, Delta: 0.1, Eps: -0.5},
		{Policy: pol, UpdatePeriod: 1, Horizon: 1, StopAfterSatisfiedStreak: -2},
	}
	for _, cfg := range bads {
		if _, err := wardrop.Simulate(inst, cfg, f0); err == nil {
			t.Errorf("Simulate accepted bad config %+v", cfg)
		}
		if _, err := wardrop.SimulateFresh(inst, cfg, f0); err == nil {
			t.Errorf("SimulateFresh accepted bad config %+v", cfg)
		}
	}
	brBads := []wardrop.BestResponseConfig{
		{UpdatePeriod: 1, Horizon: 1, RecordEvery: -1},
		{UpdatePeriod: 1, Horizon: 1, Delta: 0.1, Eps: -0.5},
		{UpdatePeriod: 1, Horizon: 1, StopAfterSatisfiedStreak: -2},
	}
	for _, cfg := range brBads {
		if _, err := wardrop.SimulateBestResponse(inst, cfg, f0); err == nil {
			t.Errorf("SimulateBestResponse accepted bad config %+v", cfg)
		}
	}
	agBads := []wardrop.AgentConfig{
		{N: 10, Policy: pol, UpdatePeriod: 1, Horizon: 1, RecordEvery: -1},
		{N: 10, Policy: pol, UpdatePeriod: 1, Horizon: 1, Delta: 0.1, Eps: -0.5},
		{N: 10, Policy: pol, UpdatePeriod: 1, Horizon: 1, StopAfterSatisfiedStreak: -2},
	}
	for _, cfg := range agBads {
		if _, err := wardrop.NewAgentSim(inst, cfg); err == nil {
			t.Errorf("NewAgentSim accepted bad config %+v", cfg)
		}
	}
}
