package wardrop

import (
	"io"

	"wardrop/internal/canon"
	"wardrop/internal/scenario"
	"wardrop/internal/serve"
	"wardrop/internal/timeline"
)

// Serving layer ---------------------------------------------------------------
//
// NewServer turns the library into a long-lived HTTP/JSON simulation
// service: POSTed scenario and campaign specs are fingerprinted, memoized in
// an LRU result cache, and scheduled on a bounded worker pool; campaigns
// stream NDJSON records from /v1/jobs/{id}/stream. See cmd/wardserve for the
// standalone binary and the README "Serving" section for the HTTP surface.

// Server is the simulation service: an http.Handler plus the worker pool
// behind it. Serve it with any http.Server; stop it with Close.
type Server = serve.Server

// ServerConfig parameterises a Server (pool width, queue depth, cache size,
// job history, catalog source); the zero value uses serving defaults.
type ServerConfig = serve.Config

// ServerMetrics is the JSON body of the service's GET /metrics endpoint.
type ServerMetrics = serve.Metrics

// ServerJobStatus is the JSON view of one service job.
type ServerJobStatus = serve.JobStatus

// NewServer builds a simulation server and starts its worker pool. The
// /v1/catalog endpoint serves this package's Catalog() listing — including
// every user-registered component — unless cfg.Catalog overrides it.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Catalog == nil {
		cfg.Catalog = Catalog
	}
	return serve.New(cfg)
}

// Canonical specs and fingerprints --------------------------------------------

// CanonicalSpec renders v — a raw JSON document ([]byte / json.RawMessage)
// or any marshallable spec value (ScenarioSpec, Campaign, …) — in canonical
// JSON form: object keys sorted, whitespace stripped. Two spellings of the
// same document canonicalise identically.
func CanonicalSpec(v any) ([]byte, error) { return canon.Canonical(v) }

// SpecFingerprint is the canonical-JSON SHA-256 of v — the identity the
// serving layer keys its result cache on and the sweep engine dedups tasks
// by. ScenarioSpec and Campaign also expose it as a Fingerprint method.
func SpecFingerprint(v any) (string, error) { return canon.Fingerprint(v) }

// Scenario results ------------------------------------------------------------

// ScenarioRunResult is the canonical JSON result document of one scenario
// run — the shape shared by `wardsim -scenario -json` and the server's
// POST /v1/scenarios response (byte-identical for the same spec).
type ScenarioRunResult = scenario.RunResult

// TimelineEvent is one replayed timeline event of a time-varying scenario
// run — ScenarioSpec.Run returns the replayed list, and the result document
// and the server's NDJSON streams record them.
type TimelineEvent = timeline.AppliedEvent

// NewRunResult assembles the canonical result document for a completed run
// of the spec; events is the replayed-event list ScenarioSpec.Run returned
// (nil for stationary runs).
func NewRunResult(s *ScenarioSpec, res *Result, events []TimelineEvent) (ScenarioRunResult, error) {
	return scenario.NewRunResult(s, res, events)
}

// EncodeRunResult writes the canonical result document for a completed run
// of the spec to w as one JSON line.
func EncodeRunResult(w io.Writer, s *ScenarioSpec, res *Result, events []TimelineEvent) error {
	doc, err := scenario.NewRunResult(s, res, events)
	if err != nil {
		return err
	}
	return doc.Encode(w)
}
