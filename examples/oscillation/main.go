// Oscillation: reproduce §3.2 of the paper — best response under stale
// information oscillates forever on two parallel links with latency
// ℓ(x) = max{0, β(x−½)}, with closed-form period-2T orbit and amplitude,
// while the smooth replicator on the exact same instance converges. Both
// dynamics run through wardrop.Run; only the Engine field changes, and an
// Observer prints the orbit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"wardrop"
)

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()

	const (
		beta = 8.0
		T    = 0.25
	)
	replicatorHorizon := 200.0
	if *quick {
		replicatorHorizon = 2
	}
	inst, err := wardrop.TwoLinkKink(beta)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's closed forms for this instance.
	f1Start, amplitude, _ := wardrop.TwoLinkOscillation(beta, T, 0)
	fmt.Printf("§3.2 closed forms (beta=%g, T=%g):\n", beta, T)
	fmt.Printf("  periodic start   f1(0) = 1/(e^-T+1)        = %.6f\n", f1Start)
	fmt.Printf("  latency amplitude X = β(1−e^-T)/(2e^-T+2)  = %.6f\n\n", amplitude)

	// Best response: every activated agent adopts the board's shortest path.
	// An ObserverFunc watches each phase start.
	fmt.Println("best response (board refreshed every T):")
	scenario := wardrop.Scenario{
		Engine:       wardrop.BestResponseEngine{},
		Instance:     inst,
		UpdatePeriod: T,
		InitialFlow:  wardrop.Flow{f1Start, 1 - f1Start},
		Horizon:      8 * T,
	}
	_, err = wardrop.Run(context.Background(), scenario,
		wardrop.WithObserver(wardrop.ObserverFunc(func(info wardrop.PhaseInfo) bool {
			fmt.Printf("  phase %2d  t=%5.2f  f1=%.6f  maxLat=%.6f\n",
				info.Index, info.Time, info.Flow[0],
				math.Max(info.PathLatencies[0], info.PathLatencies[1]))
			return false
		})))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> the orbit returns to f1(0) every 2 phases and sustains latency %.6f forever\n\n", amplitude)

	// The smooth replicator at the same T converges (T happens to be at most
	// the safe period for this instance). Same scenario, different engine.
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		log.Fatal(err)
	}
	tSafe, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		log.Fatal(err)
	}
	scenario.Engine = nil // the default fluid engine
	scenario.Policy = pol
	scenario.UpdatePeriod = math.Min(T, tSafe)
	scenario.Horizon = replicatorHorizon
	res, err := wardrop.Run(context.Background(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicator at T=%.3g (safe %.3g): f1 -> %.6f (equilibrium 0.5), potential -> %.2g\n",
		math.Min(T, tSafe), tSafe, res.Final[0], res.FinalPotential)
	fmt.Println("verdict: the α-smooth policy converges where best response oscillates ✓")
}
