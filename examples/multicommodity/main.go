// Multicommodity: two commodities sharing an edge, simulated both in the
// fluid limit and with the finite-N stochastic agent engine, showing that
// the empirical flow tracks the ODE and both reach a common Wardrop
// equilibrium. The same Scenario value drives every run; only the Engine
// field changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"wardrop"
)

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()
	horizon := 400.0
	populations := []int{100, 1000, 10000}
	if *quick {
		horizon = 2
		populations = []int{100}
	}

	// a→c demand 0.6 (paths a→b→c and the direct a→c), b→c demand 0.4
	// (single path b→c). Edge b→c is shared by both commodities.
	inst, err := wardrop.TwoCommodityOverlap()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d commodities, %d paths, shared edge b→c couples them\n\n",
		inst.NumCommodities(), inst.NumPaths())

	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		log.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		log.Fatal(err)
	}

	scenario := wardrop.Scenario{
		Engine:       wardrop.FluidEngine{Integrator: wardrop.Uniformization},
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: T,
		Horizon:      horizon,
	}
	fluid, err := wardrop.Run(context.Background(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fluid limit      : flow = %v\n", short(fluid.Final))

	for _, n := range populations {
		scenario.Engine = wardrop.AgentsEngine{N: n, Seed: 7}
		res, err := wardrop.Run(context.Background(), scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agents N=%-6d  : flow = %v  (sup err vs fluid %.4f)\n",
			n, short(res.Final), res.Final.MaxAbsDiff(fluid.Final))
	}

	eq, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference solver : flow = %v (Φ* = %.4f)\n", short(eq.Flow), eq.Potential)
	fmt.Println("\nthe stochastic population tracks the fluid limit, and both agree with the solver.")
}

func short(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
