// Meanfield: a million agents on Pigou's two-link network through the
// count engine. The population lives as integer counts per path, so a phase
// costs O(paths) whatever N is — the same run through the per-agent engine
// would walk a million structs per phase (and its population cap is below
// 17M regardless). The verdict checks the (δ,ε)-convergence accounting: the
// satisfied-streak stop must fire and the final empirical flow must sit at
// the solver's Wardrop equilibrium.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"wardrop"
)

func main() {
	quick := flag.Bool("quick", false, "small population and horizon for smoke testing")
	flag.Parse()

	n := int64(1_000_000)
	horizon := 50.0
	if *quick {
		n = 50_000
		horizon = 30
	}

	inst, err := wardrop.Pigou()
	if err != nil {
		log.Fatal(err)
	}
	pol, err := wardrop.UniformLinear(inst.LMax())
	if err != nil {
		log.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		log.Fatal(err)
	}

	const (
		delta  = 0.1
		eps    = 0.05
		streak = 20
	)
	res, err := wardrop.Run(context.Background(), wardrop.Scenario{
		Engine:                   wardrop.CountEngine{N: n, Seed: 42},
		Instance:                 inst,
		Policy:                   pol,
		UpdatePeriod:             T,
		Horizon:                  horizon,
		Delta:                    delta,
		Eps:                      eps,
		StopAfterSatisfiedStreak: streak,
	})
	if err != nil {
		log.Fatal(err)
	}

	eq, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	gap := res.FinalPotential - eq.Potential

	fmt.Printf("count engine: N=%d agents, T=%.3g, %d phases (%d unsatisfied)\n",
		n, T, res.Phases, res.UnsatisfiedPhases)
	fmt.Printf("final flow %v, potential %.6f (solver Phi* %.6f, gap %.2g)\n",
		res.Final, res.FinalPotential, eq.Potential, gap)

	// Verdict: the streak stop fired before the horizon and the stochastic
	// population landed at the equilibrium up to sampling noise (~1/sqrt N).
	tol := 0.01 + 5/math.Sqrt(float64(n))
	switch {
	case !res.Stopped:
		log.Fatalf("FAIL: streak stop never fired within %d phases", res.Phases)
	case math.Abs(gap) > tol:
		log.Fatalf("FAIL: potential gap %g exceeds tolerance %g", gap, tol)
	default:
		fmt.Printf("converged: %d consecutive satisfied phases at (δ=%g, ε=%g), gap within %.3g\n",
			streak, delta, eps, tol)
	}
}
