// Quickstart: build the Pigou network, run the replicator policy at the
// provably safe bulletin-board period through the unified wardrop.Run API,
// and confirm convergence to the Wardrop equilibrium.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"wardrop"
)

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()
	horizon := 300.0
	if *quick {
		horizon = 2
	}

	// 1. A Wardrop instance: two parallel links, ℓ1(x) = x vs ℓ2(x) = 1.
	inst, err := wardrop.Pigou()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The replicator policy: sample a fellow agent proportionally to
	//    flow, migrate with probability (ℓP−ℓQ)/ℓmax.
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's safe update period T = 1/(4·D·α·β) — stale information
	//    refreshed this often provably cannot cause oscillation.
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d paths, D=%d, beta=%g, lmax=%g\n",
		inst.NumPaths(), inst.MaxPathLen(), inst.Beta(), inst.LMax())
	fmt.Printf("safe bulletin-board period T = %g\n", T)

	// 4. A Scenario says what to simulate; Run executes it on the default
	//    fluid engine (the stale-information dynamics, Eq. 3).
	res, err := wardrop.Run(context.Background(), wardrop.Scenario{
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: T,
		Horizon:      horizon,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after t=%g (%d phases): flow = [%.4f %.4f], potential = %.4f\n",
		res.Elapsed, res.Phases, res.Final[0], res.Final[1], res.FinalPotential)

	// 5. Compare against the reference equilibrium solver.
	eq, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference equilibrium: flow = [%.4f %.4f], potential Φ* = %.4f\n",
		eq.Flow[0], eq.Flow[1], eq.Potential)
	if *quick {
		fmt.Println("verdict: quick smoke run (horizon too short for convergence)")
		return
	}
	if inst.AtWardropEquilibrium(res.Final, 0.02) {
		fmt.Println("verdict: dynamics converged to the Wardrop equilibrium despite stale information ✓")
	} else {
		fmt.Println("verdict: NOT at equilibrium — unexpected for the safe period")
	}
}
