// Distributed sweeps: shard a campaign across a fleet of in-process wardserve
// workers sharing one durable result store, check the merged artifact is
// byte-identical to a local run, replay the campaign for free from the store,
// and survive losing a worker.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"wardrop"
)

const campaignDoc = `{
  "name": "dist-demo",
  "topologies": [{"family": "pigou"}, {"family": "braess"}],
  "policies": [{"kind": "replicator"}, {"kind": "boltzmann", "c": 4}],
  "updatePeriods": ["safe"],
  "seeds": %d,
  "maxPhases": %d
}`

func main() {
	quick := flag.Bool("quick", false, "tiny campaign for smoke testing")
	flag.Parse()
	seeds, maxPhases := 6, 40
	if *quick {
		seeds, maxPhases = 2, 10
	}
	doc := fmt.Sprintf(campaignDoc, seeds, maxPhases)
	ctx := context.Background()

	// 1. A three-worker fleet. Every worker opens the same store directory:
	//    results are content-addressed by task fingerprint, so the fleet
	//    shares one durable cache tier (in production this is a shared
	//    filesystem and `wardserve -store DIR` per node).
	storeDir, err := os.MkdirTemp("", "wardrop-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	var workers []string
	var fleet []*httptest.Server
	for i := 0; i < 3; i++ {
		st, err := wardrop.OpenResultStore(storeDir, 0)
		if err != nil {
			log.Fatal(err)
		}
		srv := wardrop.NewServer(wardrop.ServerConfig{Workers: 2, Store: st})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer func() {
			cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Close(cctx)
		}()
		fleet = append(fleet, ts)
		workers = append(workers, ts.URL)
	}
	fmt.Printf("fleet: %d workers sharing store %s\n", len(workers), storeDir)

	// 2. The same campaign, locally and sharded across the fleet. The
	//    coordinator consistent-hashes tasks onto workers by fingerprint,
	//    runs them over POST /v1/tasks, and merges the records; the
	//    canonical JSONL must match the local run byte for byte.
	campaign, err := wardrop.ParseCampaign(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	local, err := wardrop.RunSweep(ctx, campaign, wardrop.SweepOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := wardrop.RunDistSweep(ctx, campaign, workers, wardrop.DistSweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var localBuf, distBuf bytes.Buffer
	if err := wardrop.EncodeSweepRecords(&localBuf, local.Records); err != nil {
		log.Fatal(err)
	}
	if err := wardrop.EncodeSweepRecords(&distBuf, dist.Records); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(localBuf.Bytes(), distBuf.Bytes()) {
		log.Fatal("verdict: distributed JSONL diverged from the local run")
	}
	fmt.Printf("campaign: %d tasks, local and distributed JSONL byte-identical (%d bytes)\n",
		len(dist.Records), distBuf.Len())

	// 3. Replay: every task fingerprint is already in the shared store, so a
	//    repeat campaign answers from cache — no worker runs an engine.
	before := fleetEngineRuns(workers)
	if _, err := wardrop.RunDistSweep(ctx, campaign, workers, wardrop.DistSweepOptions{}); err != nil {
		log.Fatal(err)
	}
	if after := fleetEngineRuns(workers); after != before {
		log.Fatalf("verdict: replay ran engines (%d -> %d)", before, after)
	}
	fmt.Printf("replay: fleet engine runs pinned at %d — the shared store absorbed the repeat\n", before)

	// 4. Failure: drop a worker and run again. If any task hashes onto the
	//    dead node the coordinator declares it dead and re-queues its work
	//    onto the survivors (the ring only moves the dead node's keys); the
	//    artifact comes out identical either way. No task may fail.
	fleet[2].Close()
	retry, err := wardrop.RunDistSweep(ctx, campaign, workers, wardrop.DistSweepOptions{
		Events: func(ev wardrop.DistSweepEvent) {
			if ev.Kind == "node-dead" {
				fmt.Printf("failover: worker %s declared dead, %d queued tasks re-homed\n", ev.Node, ev.Tasks)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range retry.Records {
		if rec.Error != "" {
			log.Fatalf("verdict: task %d failed after the worker loss: %s", rec.ID, rec.Error)
		}
	}
	var retryBuf bytes.Buffer
	if err := wardrop.EncodeSweepRecords(&retryBuf, retry.Records); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(localBuf.Bytes(), retryBuf.Bytes()) {
		log.Fatal("verdict: artifact changed after the worker loss")
	}
	fmt.Println("verdict: sharded, durable, failure-tolerant — and byte-identical throughout ✓")
}

// fleetEngineRuns sums engineRuns across the fleet's /metrics endpoints;
// unreachable workers count zero.
func fleetEngineRuns(workers []string) int64 {
	var total int64
	for _, u := range workers {
		resp, err := http.Get(u + "/metrics")
		if err != nil {
			continue
		}
		var m wardrop.ServerMetrics
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		total += m.EngineRuns
	}
	return total
}
