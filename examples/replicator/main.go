// Replicator: the Theorem 6 vs Theorem 7 contrast. On m parallel links, the
// uniform sampling policy needs more non-equilibrium rounds as m grows
// (Theorem 6's bound is linear in |P|), while proportional sampling — the
// replicator — is insensitive to m (Theorem 7).
package main

import (
	"fmt"
	"log"

	"wardrop"
)

func main() {
	const (
		delta  = 0.2
		eps    = 0.1
		streak = 50
	)
	fmt.Printf("phases not starting at a (δ=%g, ε=%g)-equilibrium, by policy and link count:\n\n", delta, eps)
	fmt.Printf("%6s  %18s  %18s\n", "m", "uniform (Thm 6)", "replicator (Thm 7)")
	for _, m := range []int{2, 4, 8, 16, 32} {
		uniform, err := countRounds(m, false, delta, eps, streak)
		if err != nil {
			log.Fatal(err)
		}
		replicator, err := countRounds(m, true, delta, eps, streak)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %18d  %18d\n", m, uniform, replicator)
	}
	fmt.Println("\npaper: uniform's bound is O(|P|/(εT)·(ℓmax/δ)²); proportional drops the |P| factor")
}

func countRounds(m int, proportional bool, delta, eps float64, streak int) (int, error) {
	inst, err := wardrop.LinearParallelLinks(m)
	if err != nil {
		return 0, err
	}
	var pol wardrop.Policy
	if proportional {
		pol, err = wardrop.Replicator(inst.LMax())
	} else {
		pol, err = wardrop.UniformLinear(inst.LMax())
	}
	if err != nil {
		return 0, err
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		return 0, err
	}
	// Adversarial start: 90% of demand on the worst link, the rest spread
	// evenly so proportional sampling can reach every path.
	f0 := inst.UniformFlow()
	for i := range f0 {
		f0[i] *= 0.1
	}
	f0[m-1] += 0.9
	res, err := wardrop.Simulate(inst, wardrop.SimConfig{
		Policy:                   pol,
		UpdatePeriod:             T,
		Horizon:                  60000 * T,
		Integrator:               wardrop.Uniformization,
		Delta:                    delta,
		Eps:                      eps,
		Weak:                     proportional, // Thm 7 uses the weak metric
		StopAfterSatisfiedStreak: streak,
	}, f0)
	if err != nil {
		return 0, err
	}
	return res.UnsatisfiedPhases, nil
}
