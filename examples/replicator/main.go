// Replicator: the Theorem 6 vs Theorem 7 contrast. On m parallel links, the
// uniform sampling policy needs more non-equilibrium rounds as m grows
// (Theorem 6's bound is linear in |P|), while proportional sampling — the
// replicator — is insensitive to m (Theorem 7). Each cell is one
// wardrop.Run scenario with the (δ,ε) accounting and satisfied-streak stop
// declared on the scenario itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"wardrop"
)

func main() {
	quick := flag.Bool("quick", false, "tiny sweep for smoke testing")
	flag.Parse()

	const (
		delta = 0.2
		eps   = 0.1
	)
	streak := 50
	maxPhases := 60000.0
	links := []int{2, 4, 8, 16, 32}
	if *quick {
		streak = 5
		maxPhases = 200
		links = []int{2, 4}
	}

	fmt.Printf("phases not starting at a (δ=%g, ε=%g)-equilibrium, by policy and link count:\n\n", delta, eps)
	fmt.Printf("%6s  %18s  %18s\n", "m", "uniform (Thm 6)", "replicator (Thm 7)")
	for _, m := range links {
		uniform, err := countRounds(m, false, delta, eps, streak, maxPhases)
		if err != nil {
			log.Fatal(err)
		}
		replicator, err := countRounds(m, true, delta, eps, streak, maxPhases)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %18d  %18d\n", m, uniform, replicator)
	}
	fmt.Println("\npaper: uniform's bound is O(|P|/(εT)·(ℓmax/δ)²); proportional drops the |P| factor")
}

func countRounds(m int, proportional bool, delta, eps float64, streak int, maxPhases float64) (int, error) {
	inst, err := wardrop.LinearParallelLinks(m)
	if err != nil {
		return 0, err
	}
	var pol wardrop.Policy
	if proportional {
		pol, err = wardrop.Replicator(inst.LMax())
	} else {
		pol, err = wardrop.UniformLinear(inst.LMax())
	}
	if err != nil {
		return 0, err
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		return 0, err
	}
	// Adversarial start: 90% of demand on the worst link, the rest spread
	// evenly so proportional sampling can reach every path.
	f0 := inst.UniformFlow()
	for i := range f0 {
		f0[i] *= 0.1
	}
	f0[m-1] += 0.9
	res, err := wardrop.Run(context.Background(), wardrop.Scenario{
		Engine:                   wardrop.FluidEngine{Integrator: wardrop.Uniformization},
		Instance:                 inst,
		Policy:                   pol,
		UpdatePeriod:             T,
		InitialFlow:              f0,
		Horizon:                  maxPhases * T,
		Delta:                    delta,
		Eps:                      eps,
		Weak:                     proportional, // Thm 7 uses the weak metric
		StopAfterSatisfiedStreak: streak,
	})
	if err != nil {
		return 0, err
	}
	return res.UnsatisfiedPhases, nil
}
