// Serving: start the wardrop simulation service in-process, POST the Pigou
// scenario, follow the job's NDJSON trajectory stream, and show the result
// cache absorbing a repeated request.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"wardrop"
)

const scenarioDoc = `{
  "name": "pigou-served",
  "topology": {"family": "pigou"},
  "policy": {"kind": "replicator"},
  "updatePeriod": "safe",
  "horizon": %g,
  "recordEvery": 10
}`

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()
	horizon := 300.0
	if *quick {
		horizon = 2
	}
	doc := fmt.Sprintf(scenarioDoc, horizon)

	// 1. The service: a worker pool plus a fingerprint-keyed result cache
	//    behind an http.Handler. httptest stands in for a real listener —
	//    cmd/wardserve is the standalone binary.
	srv := wardrop.NewServer(wardrop.ServerConfig{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()

	// 2. Submit the scenario as a job resource.
	resp, err := http.Post(ts.URL+"/v1/scenarios?mode=job", "application/json", strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	var job wardrop.ServerJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("job %s (%s) fingerprint=%s...\n", job.ID, job.State, job.Fingerprint[:12])

	// 3. Follow the NDJSON stream: trajectory samples as the simulation
	//    runs, then the final result document.
	sresp, err := http.Get(ts.URL + job.Stream)
	if err != nil {
		log.Fatal(err)
	}
	defer sresp.Body.Close()
	samples := 0
	scanner := bufio.NewScanner(sresp.Body)
	for scanner.Scan() {
		var line struct {
			Sample *struct {
				Time      float64   `json:"time"`
				Potential float64   `json:"potential"`
				Flow      []float64 `json:"flow"`
			} `json:"sample"`
			Result *wardrop.ScenarioRunResult `json:"result"`
			Error  string                     `json:"error"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			log.Fatal(err)
		}
		switch {
		case line.Sample != nil:
			samples++
			if samples <= 3 || samples%10 == 0 {
				fmt.Printf("  t=%7.2f  Φ=%.5f  f=[%.4f %.4f]\n",
					line.Sample.Time, line.Sample.Potential, line.Sample.Flow[0], line.Sample.Flow[1])
			}
		case line.Result != nil:
			fmt.Printf("result: %d phases, Φ=%.5f, final=[%.4f %.4f]\n",
				line.Result.Phases, line.Result.FinalPotential, line.Result.Final[0], line.Result.Final[1])
		case line.Error != "":
			log.Fatalf("job failed: %s", line.Error)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d trajectory samples\n", samples)

	// 4. The identical spec again, synchronously: a cache hit that never
	//    touches an engine.
	resp, err = http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("repeat request: X-Cache=%s (%d result bytes)\n", resp.Header.Get("X-Cache"), body.Len())

	// 5. The service's own view of the work.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var m wardrop.ServerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("metrics: jobsRun=%d engineRuns=%d cacheHitRate=%.2f p50=%.1fms\n",
		m.JobsRun, m.EngineRuns, m.CacheHitRate, m.RunLatencyMsP50)

	if m.EngineRuns != 1 || m.CacheHits != 1 {
		log.Fatal("verdict: expected exactly one engine run and one cache hit")
	}
	fmt.Println("verdict: one simulation served both requests — the cache absorbed the repeat ✓")
}
