// Observability: share one metrics registry between your own instruments and
// an in-process simulation server, scrape it as Prometheus text, and trace a
// run phase by phase into JSONL spans.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"wardrop"
)

const scenarioDoc = `{
  "name": "observe-demo",
  "topology": {"family": "braess"},
  "policy": {"kind": "replicator"},
  "updatePeriod": "safe",
  "horizon": %g,
  "recordEvery": 4
}`

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()
	horizon := 30.0
	if *quick {
		horizon = 5
	}

	// 1. One registry for everything. The server registers its instruments
	//    (serve_jobs_total, serve_run_ms, …) on it; your own application
	//    counters live alongside and come out of the same scrape.
	reg := wardrop.NewMetricsRegistry()
	demoRuns := reg.Counter("example_demo_runs_total", "scenario posts made by this example")

	srv := wardrop.NewServer(wardrop.ServerConfig{Workers: 2, Metrics: reg})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()

	doc := fmt.Sprintf(scenarioDoc, horizon)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(doc))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		demoRuns.Inc()
	}

	// 2. Scrape the shared registry as Prometheus text exposition — the same
	//    document `curl 'http://host/metrics?format=prom'` returns against a
	//    real wardserve. The JSON document (plain /metrics) still works.
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		log.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("-- prometheus scrape (excerpt) --")
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.HasPrefix(line, "serve_jobs_total") ||
			strings.HasPrefix(line, "serve_cache_hits_total") ||
			strings.HasPrefix(line, "example_demo_runs_total") ||
			strings.HasPrefix(line, "serve_run_ms_count") {
			fmt.Println(line)
		}
	}

	// 3. Trace a run: the tracer is an engine observer, so it rides any run
	//    path — here the library API; `wardsim -trace out.jsonl` is the same
	//    mechanism from the command line.
	inst, err := wardrop.CampaignTopology{Family: "braess"}.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := wardrop.CampaignPolicy{Kind: "replicator"}.Build(inst)
	if err != nil {
		log.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		log.Fatal(err)
	}
	tracer := wardrop.NewTracer(0)
	_, err = wardrop.Run(context.Background(), wardrop.Scenario{
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: T,
		Horizon:      horizon,
	}, wardrop.WithObserver(tracer))
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fmt.Printf("-- trace: %d spans, first and last --\n", len(lines))
	fmt.Println(lines[0])
	fmt.Println(lines[len(lines)-1])
}
