// Braess: adaptive routing on the Braess paradox network. The dynamics
// converges to the (inefficient) Wardrop equilibrium that routes everything
// over the zero-latency bridge; the solver quantifies the price of anarchy
// 4/3 against the social optimum.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"wardrop"
)

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()
	horizon := 600.0
	if *quick {
		horizon = 2
	}

	inst, err := wardrop.Braess()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Braess network: s→a→t (x,1), s→b→t (1,x), bridge s→a→b→t (x,0,x)")
	for g := 0; g < inst.NumPaths(); g++ {
		fmt.Printf("  path %d: %v (%d edges)\n", g, inst.Path(g), inst.Path(g).Len())
	}

	// Adaptive routing under stale information at the safe period, on the
	// exact (uniformization) fluid engine.
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		log.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		log.Fatal(err)
	}
	res, err := wardrop.Run(context.Background(), wardrop.Scenario{
		Engine:       wardrop.FluidEngine{Integrator: wardrop.Uniformization},
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: T,
		Horizon:      horizon,
	})
	if err != nil {
		log.Fatal(err)
	}
	pl := inst.PathLatencies(res.Final)
	fmt.Printf("\nreplicator at safe T=%.4g converged to flow %v\n", T, rounded(res.Final))
	fmt.Printf("path latencies at the limit: %v (all ≈ 2: the Braess equilibrium)\n", rounded(pl))

	// Reference solver + price of anarchy.
	poa, eqCost, optCost, err := wardrop.PriceOfAnarchy(inst, wardrop.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nequilibrium cost %.4f vs optimal cost %.4f -> price of anarchy %.4f (= 4/3)\n",
		eqCost, optCost, poa)
	fmt.Println("the bridge lures every agent onto it, hurting everyone — and the adaptive")
	fmt.Println("dynamics finds exactly that equilibrium, as game theory predicts.")
}

func rounded(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
