// Customcatalog: extend wardrop without touching its packages. A custom
// latency function (quartic) and a custom topology family (quartic parallel
// links) are registered into the component catalog, then driven entirely
// from declarative documents: a scenario file runs one simulation and a
// campaign spec sweeps the new family against two builtin policies — the
// same files the wardsim/wardsweep CLIs consume.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strings"

	"wardrop"
)

// Quartic is a user latency function ℓ(x) = c·x⁴ + b, implementing the
// wardrop.LatencyFunc interface with exact calculus.
type Quartic struct {
	C float64 // quartic coefficient
	B float64 // free-flow offset
}

func (q Quartic) Value(x float64) float64      { return q.C*x*x*x*x + q.B }
func (q Quartic) Derivative(x float64) float64 { return 4 * q.C * x * x * x }
func (q Quartic) Integral(x float64) float64   { return q.C*x*x*x*x*x/5 + q.B*x }
func (q Quartic) SlopeBound() float64          { return 4 * q.C }
func (q Quartic) String() string               { return fmt.Sprintf("quartic(%g,%g)", q.C, q.B) }

// register wires the custom components into the catalog. After this, the
// names "quartic" and "quartics" work everywhere a builtin name works:
// instance documents, scenario files, campaign axes and the CLIs.
func register() error {
	if err := wardrop.RegisterLatency(wardrop.LatencyEntry{
		Name: "quartic",
		Doc:  "example latency c·x⁴ + b",
		Params: []wardrop.CatalogParam{
			{Name: "c", Type: "float", Doc: "quartic coefficient"},
			{Name: "b", Type: "float", Doc: "free-flow offset"},
		},
		Build: func(args json.RawMessage) (wardrop.LatencyFunc, error) {
			var p struct {
				C float64 `json:"c"`
				B float64 `json:"b"`
			}
			if err := wardrop.DecodeCatalogParams(args, &p); err != nil {
				return nil, err
			}
			if p.C < 0 || p.B < 0 {
				return nil, fmt.Errorf("quartic needs c >= 0 and b >= 0")
			}
			return Quartic{C: p.C, B: p.B}, nil
		},
	}); err != nil {
		return err
	}
	return wardrop.RegisterTopology(wardrop.TopologyEntry{
		Name: "quartics",
		Doc:  "example family: m parallel links with ℓ_j(x) = (j+1)·x⁴ + j/m",
		Params: []wardrop.CatalogParam{
			{Name: "m", Type: "int", Doc: "link count (>= 2)"},
		},
		Build: func(args json.RawMessage) (wardrop.TopologyBuilder, error) {
			var p struct {
				M int `json:"m"`
			}
			if err := wardrop.DecodeCatalogParams(args, &p); err != nil {
				return wardrop.TopologyBuilder{}, err
			}
			if p.M < 2 {
				return wardrop.TopologyBuilder{}, fmt.Errorf("quartics m %d must be >= 2", p.M)
			}
			return wardrop.TopologyBuilder{
				Key: fmt.Sprintf("quartics(m=%d)", p.M),
				New: func(uint64) (*wardrop.Instance, error) {
					lats := make([]wardrop.LatencyFunc, p.M)
					for j := range lats {
						lats[j] = Quartic{C: float64(j + 1), B: float64(j) / float64(p.M)}
					}
					return wardrop.ParallelLinks(lats)
				},
			}, nil
		},
	})
}

const scenarioDoc = `{
  "name": "quartic-mix",
  "instance": {
    "nodes": ["s", "t"],
    "edges": [
      {"from": "s", "to": "t", "latency": {"kind": "quartic", "params": {"c": 4, "b": 0}}},
      {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 0.25}}
    ],
    "commodities": [{"source": "s", "sink": "t", "demand": 1}]
  },
  "policy": {"kind": "replicator"},
  "updatePeriod": "safe",
  "horizon": %HORIZON%
}`

const campaignDoc = `{
  "name": "quartics-sweep",
  "topologies": [{"family": "quartics", "params": {"m": 3}}],
  "policies": [{"kind": "uniform"}, {"kind": "replicator"}],
  "updatePeriods": ["safe"],
  "maxPhases": %PHASES%,
  "delta": 0.2,
  "eps": 0.1
}`

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()
	horizon, phases := "200", "200"
	if *quick {
		horizon, phases = "2", "5"
	}

	if err := register(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered: latency \"quartic\", topology family \"quartics\"")

	// 1. The custom latency drives a scenario file: 4x⁴ against a constant
	//    0.25, whose Wardrop equilibrium puts x = (1/16)^(1/4) ≈ 0.5 on the
	//    quartic link.
	s, err := wardrop.ParseScenario(strings.NewReader(
		strings.Replace(scenarioDoc, "%HORIZON%", horizon, 1)))
	if err != nil {
		log.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		log.Fatal(err)
	}
	res, err := wardrop.Run(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: after t=%g (%d phases) flow = [%.4f %.4f], potential = %.4f\n",
		s.Name, res.Elapsed, res.Phases, res.Final[0], res.Final[1], res.FinalPotential)

	// 2. The custom family drives a campaign axis, aggregated under its own
	//    cell label.
	c, err := wardrop.ParseCampaign(strings.NewReader(
		strings.Replace(campaignDoc, "%PHASES%", phases, 1)))
	if err != nil {
		log.Fatal(err)
	}
	sweep, err := wardrop.RunSweep(context.Background(), c, wardrop.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range sweep.Records {
		if rec.Error != "" {
			log.Fatalf("task %d: %s", rec.ID, rec.Error)
		}
		fmt.Printf("campaign cell %s | %s: gap = %.2e after %d phases\n",
			rec.Topology, rec.Policy, rec.Gap, rec.Phases)
	}

	if *quick {
		fmt.Println("verdict: quick smoke run (horizon too short for convergence)")
		return
	}
	want := 0.5 // (1/16)^(1/4)
	if diff := res.Final[0] - want; diff < 0.02 && diff > -0.02 {
		fmt.Println("verdict: custom latency converged to its Wardrop equilibrium ✓")
	} else {
		fmt.Printf("verdict: NOT at equilibrium (flow %.4f, want %.4f)\n", res.Final[0], want)
	}
}
