// Braess onset: a time-varying scenario in which the Braess bridge opens
// mid-run. The run starts on the classic four-edge network (the bridge is
// blocked by a timeline event at t = 0), converges to the efficient split
// with travel cost 1.5, and then a "restore" event opens the zero-latency
// shortcut — after which adaptive routing drags everyone onto the bridge and
// the equilibrium cost degrades to 2. Adding capacity made every traveller
// worse off; the timeline makes the onset a replayable experiment.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"wardrop"
)

func main() {
	quick := flag.Bool("quick", false, "tiny horizon for smoke testing")
	flag.Parse()
	onset, horizon := 40.0, 400.0
	if *quick {
		onset, horizon = 2, 6
	}

	period := wardrop.CampaignPeriod{T: 0.25}
	spec := &wardrop.ScenarioSpec{
		Name:         "braess-onset",
		Topology:     &wardrop.CampaignTopology{Family: "braess"},
		Policy:       &wardrop.CampaignPolicy{Kind: "uniform"},
		UpdatePeriod: &period,
		Horizon:      horizon,
		Timeline: &wardrop.TimelineSpec{
			Events: []wardrop.TimelineEventSpec{
				{At: 0, Action: "block", From: "a", To: "b", Penalty: 4},
				{At: onset, Action: "restore", From: "a", To: "b"},
			},
		},
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Braess onset: bridge blocked on [0,%g), opened at t=%g\n\n", onset, onset)
	res, events, err := spec.Run(context.Background(), func(ev wardrop.TimelineEvent) {
		fmt.Printf("  t=%-6g %-8s edge %d  (%s)\n", ev.Time, ev.Action, ev.Edge, ev.Detail)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphases=%d elapsed=%g events=%d\n", res.Phases, res.Elapsed, len(events))
	fmt.Printf("final potential Φ = %.6g\n", res.FinalPotential)

	// Price the terminal flow on the open network and compare both epochs
	// against their Wardrop equilibria.
	inst, err := wardrop.Braess()
	if err != nil {
		log.Fatal(err)
	}
	pl := inst.PathLatencies(res.Final)
	cost := inst.OverallAvgLatency(res.Final, pl)
	fmt.Printf("final travel cost  = %.4g\n", cost)
	if !*quick {
		fmt.Println("\nblocked-bridge equilibrium cost 1.5, open-bridge equilibrium cost 2:")
		fmt.Println("opening the shortcut degraded everyone's commute — the Braess paradox,")
		fmt.Println("reached dynamically by adaptive routing crossing the onset.")
	}
}
