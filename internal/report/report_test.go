package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tbl := Table{Title: "demo", Columns: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer", "2.5")
	out := tbl.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Header and rows align on the same column start.
	hdrIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "1")
	if hdrIdx != rowIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b", "c"}}
	tbl.AddRow("x")
	if len(tbl.Rows[0]) != 3 {
		t.Errorf("row = %v", tbl.Rows[0])
	}
}

func TestNotes(t *testing.T) {
	tbl := Table{Columns: []string{"a"}}
	tbl.AddNote("fit slope = %g", 2.0)
	out := tbl.Render()
	if !strings.Contains(out, "note: fit slope = 2") {
		t.Errorf("notes missing: %q", out)
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b"}}
	tbl.AddRow("1", "x,y")
	tbl.AddNote("hello")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header wrong: %q", out)
	}
	if !strings.Contains(out, "\"x,y\"") {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, "# hello") {
		t.Errorf("note comment missing: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.5) != "1.5" || F3(1.5) != "1.500" || I(7) != "7" {
		t.Errorf("F=%s F3=%s I=%s", F(1.5), F3(1.5), I(7))
	}
}

func TestRenderWithoutTitle(t *testing.T) {
	tbl := Table{Columns: []string{"x"}}
	tbl.AddRow("1")
	if strings.Contains(tbl.Render(), "==") {
		t.Error("untitled table rendered a title banner")
	}
}
