// Package report renders experiment results as aligned ASCII tables and CSV,
// matching the row/series structure of the paper's analytical artefacts so
// EXPERIMENTS.md can record paper-vs-measured values directly.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form lines rendered after the grid (e.g. fitted
	// exponents, verdicts).
	Notes []string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line (Sprintf-style).
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces the aligned ASCII form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for c, h := range t.Columns {
		widths[c] = len(h)
	}
	for _, row := range t.Rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for c := range t.Columns {
			cell := ""
			if c < len(cells) {
				cell = cells[c]
			}
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the table (header + rows) as RFC-4180-ish CSV. Notes are
// emitted as trailing comment lines prefixed with "#".
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				quoted[i] = strconv.Quote(c)
			} else {
				quoted[i] = c
			}
		}
		_, err := io.WriteString(w, strings.Join(quoted, ",")+"\n")
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float compactly for table cells.
func F(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }

// F3 formats with three significant decimals, for aligned numeric columns.
func F3(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }

// I formats an int.
func I(x int) string { return strconv.Itoa(x) }
