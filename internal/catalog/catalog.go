// Package catalog is the library's component model: a generic named-
// constructor registry into which every pluggable component family — latency
// kinds, topology families, rerouting policies, engines, integrators, start
// distributions — self-registers under a stable name together with parameter
// documentation. The spec layers (instance files, campaign files, scenario
// files) and the CLIs dispatch through these registries instead of private
// switches, so adding a component — builtin or user-registered — never means
// editing a core package.
//
// An Entry's Build receives the raw JSON of the selecting document (the
// latency object, the topology object, …) and decodes whatever parameters it
// needs: builtin entries read the document's well-known flat fields
// (DecodeArgs), user-registered entries read the document's nested "params"
// object (DecodeParams), which the spec structs pass through verbatim so
// custom components can carry arbitrary parameters without schema changes.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Sentinel errors.
var (
	// ErrUnknown indicates a name with no registered entry.
	ErrUnknown = errors.New("catalog: unknown component")
	// ErrRegister indicates an invalid or conflicting registration.
	ErrRegister = errors.New("catalog: invalid registration")
)

// Param documents one parameter of a registered component, for listings
// (wardsim -list) and error messages.
type Param struct {
	// Name is the JSON field the component reads.
	Name string
	// Type is a human-readable type label ("float", "int", "[]float", …).
	Type string
	// Doc is a one-line description.
	Doc string
}

// Entry is one registered component: a stable name, documentation, and a
// constructor decoding its parameters from the selecting JSON document.
type Entry[T any] struct {
	// Name is the registry key ("linear", "grid", "boltzmann", …).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Params documents the parameters Build reads, in display order.
	Params []Param
	// Build decodes parameters from the selecting document and constructs
	// the component. args is the raw JSON object that named this entry (nil
	// when the caller has no document, e.g. name-only CLI flags).
	Build func(args json.RawMessage) (T, error)
}

// Description is the non-generic view of a registered entry, the shape
// listings and the root Catalog() export share across component kinds.
type Description struct {
	// Kind is the owning registry's component kind ("latency", "topology", …).
	Kind string
	// Name, Doc and Params mirror the entry.
	Name   string
	Doc    string
	Params []Param
}

// Registry is a named-constructor registry for one component kind. The zero
// value is not usable; create with NewRegistry. Registries are safe for
// concurrent use: builtins register at package initialisation, users at any
// time before (or between) runs.
type Registry[T any] struct {
	kind    string
	mu      sync.RWMutex
	entries map[string]Entry[T]
	aliases map[string]string
}

// NewRegistry returns an empty registry for the given component kind (the
// label used in listings and error messages, e.g. "latency").
func NewRegistry[T any](kind string) *Registry[T] {
	return &Registry[T]{
		kind:    kind,
		entries: make(map[string]Entry[T]),
		aliases: make(map[string]string),
	}
}

// Kind returns the registry's component kind label.
func (r *Registry[T]) Kind() string { return r.kind }

// Register adds an entry. Empty names, nil constructors and duplicate names
// (including collisions with aliases) are rejected.
func (r *Registry[T]) Register(e Entry[T]) error {
	if e.Name == "" {
		return fmt.Errorf("%w: empty %s name", ErrRegister, r.kind)
	}
	if e.Build == nil {
		return fmt.Errorf("%w: %s %q has no constructor", ErrRegister, r.kind, e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("%w: %s %q already registered", ErrRegister, r.kind, e.Name)
	}
	if _, dup := r.aliases[e.Name]; dup {
		return fmt.Errorf("%w: %s %q already registered as an alias", ErrRegister, r.kind, e.Name)
	}
	r.entries[e.Name] = e
	return nil
}

// MustRegister is Register panicking on error — for package-initialisation
// registration of builtins, where a failure is a programming error.
func (r *Registry[T]) MustRegister(e Entry[T]) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Alias makes alias resolve to the canonical entry. Aliases are excluded
// from Names and Describe so listings stay canonical.
func (r *Registry[T]) Alias(alias, canonical string) error {
	if alias == "" {
		return fmt.Errorf("%w: empty %s alias", ErrRegister, r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[canonical]; !ok {
		return fmt.Errorf("%w: %s alias %q targets unregistered %q", ErrRegister, r.kind, alias, canonical)
	}
	if _, dup := r.entries[alias]; dup {
		return fmt.Errorf("%w: %s %q already registered", ErrRegister, r.kind, alias)
	}
	if _, dup := r.aliases[alias]; dup {
		return fmt.Errorf("%w: %s alias %q already registered", ErrRegister, r.kind, alias)
	}
	r.aliases[alias] = canonical
	return nil
}

// Lookup resolves a name (or alias) to its entry.
func (r *Registry[T]) Lookup(name string) (Entry[T], bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if canonical, ok := r.aliases[name]; ok {
		name = canonical
	}
	e, ok := r.entries[name]
	return e, ok
}

// Build resolves the name and runs its constructor on args. Unknown names
// report the registered set, so spec typos surface the fix.
func (r *Registry[T]) Build(name string, args json.RawMessage) (T, error) {
	e, ok := r.Lookup(name)
	if !ok {
		var zero T
		return zero, fmt.Errorf("%w: %s %q (registered: %s)",
			ErrUnknown, r.kind, name, strings.Join(r.Names(), ", "))
	}
	return e.Build(args)
}

// Names returns the registered canonical names in sorted (deterministic)
// order, excluding aliases.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the registered entries as kind-tagged descriptions in
// sorted name order — the deterministic listing the CLIs render.
func (r *Registry[T]) Describe() []Description {
	names := r.Names()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Description, 0, len(names))
	for _, n := range names {
		e := r.entries[n]
		out = append(out, Description{Kind: r.kind, Name: e.Name, Doc: e.Doc, Params: e.Params})
	}
	return out
}

// DecodeArgs decodes a selecting document's parameters into v: the flat
// well-known fields first, then the nested "params" object on top (fields
// present there override their flat counterparts). Builtin entries use it so
// both spellings work — canonical flat fields, or the nested object users
// know from custom components — and parameters never silently vanish into
// an ignored channel. Fields belonging to other components of the same
// document are tolerated (the spec layer's strict decoding has already
// rejected genuinely unknown fields). Nil or empty args leave v at its zero
// value.
func DecodeArgs(args json.RawMessage, v any) error {
	if len(args) == 0 {
		return nil
	}
	if err := json.Unmarshal(args, v); err != nil {
		return err
	}
	return DecodeParams(args, v)
}

// WrapSentinel tags err with a package's sentinel error unless it already
// wraps it — the one definition of the "classify but don't double-wrap"
// idiom every catalog-dispatching package (spec, sweep, engine, scenario)
// applies to errors crossing its boundary.
func WrapSentinel(sentinel, err error) error {
	if err == nil || errors.Is(err, sentinel) {
		return err
	}
	return fmt.Errorf("%w: %v", sentinel, err)
}

// DecodeParams decodes a selecting document's nested "params" object into v
// — the parameter channel for user-registered components, whose fields the
// typed spec structs cannot carry flat. A missing or empty params object
// leaves v untouched.
func DecodeParams(args json.RawMessage, v any) error {
	if len(args) == 0 {
		return nil
	}
	var doc struct {
		Params json.RawMessage `json:"params"`
	}
	if err := json.Unmarshal(args, &doc); err != nil {
		return err
	}
	if len(doc.Params) == 0 {
		return nil
	}
	return json.Unmarshal(doc.Params, v)
}
