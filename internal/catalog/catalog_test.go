package catalog

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func newTestRegistry(t *testing.T) *Registry[int] {
	t.Helper()
	r := NewRegistry[int]("widget")
	for name, v := range map[string]int{"beta": 2, "alpha": 1, "gamma": 3} {
		v := v
		r.MustRegister(Entry[int]{
			Name:  name,
			Doc:   "the " + name + " widget",
			Build: func(json.RawMessage) (int, error) { return v, nil },
		})
	}
	return r
}

func TestRegistryBuildAndLookup(t *testing.T) {
	r := newTestRegistry(t)
	v, err := r.Build("beta", nil)
	if err != nil || v != 2 {
		t.Errorf("Build(beta) = %d, %v", v, err)
	}
	if _, ok := r.Lookup("alpha"); !ok {
		t.Error("Lookup(alpha) missed")
	}
	if _, ok := r.Lookup("delta"); ok {
		t.Error("Lookup(delta) hit")
	}
}

func TestRegistryUnknownNamesRegisteredSet(t *testing.T) {
	r := newTestRegistry(t)
	_, err := r.Build("delta", nil)
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
	// The error teaches the fix: kind, offending name, and the full set.
	for _, want := range []string{"widget", `"delta"`, "alpha, beta, gamma"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := newTestRegistry(t)
	cases := map[string]Entry[int]{
		"empty name": {Build: func(json.RawMessage) (int, error) { return 0, nil }},
		"nil build":  {Name: "delta"},
		"duplicate":  {Name: "alpha", Build: func(json.RawMessage) (int, error) { return 0, nil }},
	}
	for name, e := range cases {
		if err := r.Register(e); !errors.Is(err, ErrRegister) {
			t.Errorf("%s: err = %v, want ErrRegister", name, err)
		}
	}
}

func TestRegistryAlias(t *testing.T) {
	r := newTestRegistry(t)
	if err := r.Alias("a", "alpha"); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Build("a", nil); err != nil || v != 1 {
		t.Errorf("Build(alias) = %d, %v", v, err)
	}
	// Aliases stay out of the deterministic listing.
	if names := r.Names(); !reflect.DeepEqual(names, []string{"alpha", "beta", "gamma"}) {
		t.Errorf("Names() = %v", names)
	}
	// Alias targets must exist; alias names must be free.
	if err := r.Alias("x", "nope"); !errors.Is(err, ErrRegister) {
		t.Errorf("dangling alias err = %v", err)
	}
	if err := r.Alias("beta", "alpha"); !errors.Is(err, ErrRegister) {
		t.Errorf("shadowing alias err = %v", err)
	}
	if err := r.Register(Entry[int]{Name: "a", Build: func(json.RawMessage) (int, error) { return 0, nil }}); !errors.Is(err, ErrRegister) {
		t.Errorf("registering over alias err = %v", err)
	}
}

func TestRegistryDescribeDeterministic(t *testing.T) {
	r := newTestRegistry(t)
	a, b := r.Describe(), r.Describe()
	if !reflect.DeepEqual(a, b) {
		t.Error("Describe not deterministic")
	}
	if len(a) != 3 || a[0].Name != "alpha" || a[0].Kind != "widget" || a[2].Name != "gamma" {
		t.Errorf("Describe() = %+v", a)
	}
}

func TestDecodeArgs(t *testing.T) {
	var v struct {
		A int `json:"a"`
		B int `json:"b"`
	}
	if err := DecodeArgs(nil, &v); err != nil || v.A != 0 {
		t.Errorf("nil args: %+v, %v", v, err)
	}
	if err := DecodeArgs(json.RawMessage(`{"a": 3, "other": true}`), &v); err != nil || v.A != 3 {
		t.Errorf("flat args: %+v, %v", v, err)
	}
	if err := DecodeArgs(json.RawMessage(`{"a": "x"}`), &v); err == nil {
		t.Error("type mismatch accepted")
	}
	// A nested params object overrides its flat counterparts, so parameters
	// placed there by mistake (or by habit, from custom components) still
	// reach builtin builders instead of silently reading as zero.
	v.A, v.B = 0, 0
	if err := DecodeArgs(json.RawMessage(`{"a": 1, "b": 5, "params": {"a": 9}}`), &v); err != nil || v.A != 9 || v.B != 5 {
		t.Errorf("params override: %+v, %v", v, err)
	}
}

func TestDecodeParams(t *testing.T) {
	var v struct {
		A int `json:"a"`
	}
	if err := DecodeParams(json.RawMessage(`{"kind": "w"}`), &v); err != nil || v.A != 0 {
		t.Errorf("absent params: %+v, %v", v, err)
	}
	if err := DecodeParams(json.RawMessage(`{"kind": "w", "params": {"a": 7}}`), &v); err != nil || v.A != 7 {
		t.Errorf("nested params: %+v, %v", v, err)
	}
}
