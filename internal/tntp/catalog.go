package tntp

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"wardrop/internal/catalog"
	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

// The "tntp" topology family loads a TNTP network/trips pair from disk,
// giving scenarios, campaigns and the CLIs real road networks. File I/O
// happens in Builder.New — at task execution, not parse time — so a
// campaign referencing many instances validates quickly; the cell label is
// derived from the network file name (plus k and any demand scale), which
// is how TNTP instances are conventionally identified.
func init() {
	topo.Catalog.MustRegister(catalog.Entry[topo.Builder]{
		Name: "tntp",
		Doc:  "a TNTP traffic-assignment instance loaded from net/trips files",
		Params: []catalog.Param{
			{Name: "net", Type: "string", Doc: "path to the _net.tntp network file"},
			{Name: "trips", Type: "string", Doc: "path to the _trips.tntp demand file"},
			{Name: "kpaths", Type: "int", Doc: "k shortest free-flow paths per OD pair (default 8)"},
			{Name: "scale", Type: "float", Doc: "demand multiplier (default 1)"},
		},
		Build: func(raw json.RawMessage) (topo.Builder, error) {
			var a struct {
				Net    string  `json:"net"`
				Trips  string  `json:"trips"`
				KPaths int     `json:"kpaths"`
				Scale  float64 `json:"scale"`
			}
			if err := catalog.DecodeArgs(raw, &a); err != nil {
				return topo.Builder{}, fmt.Errorf("%w: %v", topo.ErrBadParam, err)
			}
			if a.Net == "" || a.Trips == "" {
				return topo.Builder{}, fmt.Errorf("%w: tntp requires net and trips file paths", topo.ErrBadParam)
			}
			opts := Options{KPaths: a.KPaths, DemandScale: a.Scale}
			base := strings.TrimSuffix(filepath.Base(a.Net), filepath.Ext(a.Net))
			base = strings.TrimSuffix(base, "_net")
			key := fmt.Sprintf("tntp(%s,k=%d)", base, opts.kPaths())
			if s := opts.demandScale(); s != 1 {
				key = fmt.Sprintf("tntp(%s,k=%d,scale=%g)", base, opts.kPaths(), s)
			}
			return topo.Builder{
				Key: key,
				New: func(uint64) (*flow.Instance, error) {
					return Load(a.Net, a.Trips, opts)
				},
			}, nil
		},
	})
}
