package tntp

import (
	"math"
	"os"
	"strings"
	"testing"

	"wardrop/internal/latency"
)

const (
	netFixture   = "testdata/siouxfalls_net.tntp"
	tripsFixture = "testdata/siouxfalls_trips.tntp"
)

// Golden counts for the Sioux Falls fixture: 24 zones/nodes, 76 links,
// a 24×24 trip table totalling 360,600 with 528 positive off-diagonal
// pairs — the canonical shape of the instance.
func TestParseSiouxFallsGolden(t *testing.T) {
	nf, err := os.Open(netFixture)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	net, err := ParseNet(nf)
	if err != nil {
		t.Fatal(err)
	}
	if net.Zones != 24 || net.Nodes != 24 || net.FirstThruNode != 1 {
		t.Fatalf("metadata = zones %d nodes %d firstThru %d, want 24/24/1",
			net.Zones, net.Nodes, net.FirstThruNode)
	}
	if len(net.Links) != 76 {
		t.Fatalf("links = %d, want 76", len(net.Links))
	}
	first := net.Links[0]
	if first.From != 1 || first.To != 2 || first.Capacity != 25900.20064 ||
		first.FreeFlowTime != 6 || first.B != 0.15 || first.Power != 4 {
		t.Fatalf("first link = %+v, want 1→2 cap 25900.20064 fft 6 B 0.15 power 4", first)
	}
	for _, lk := range net.Links {
		if lk.B != 0.15 || lk.Power != 4 {
			t.Fatalf("link %d→%d has B %g power %g; every Sioux Falls link is standard BPR",
				lk.From, lk.To, lk.B, lk.Power)
		}
	}

	tf, err := os.Open(tripsFixture)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	trips, err := ParseTrips(tf)
	if err != nil {
		t.Fatal(err)
	}
	if trips.Zones != 24 || trips.TotalOD != 360600 {
		t.Fatalf("trips metadata = zones %d total %g, want 24/360600", trips.Zones, trips.TotalOD)
	}
	sum := 0.0
	positive := 0
	for _, od := range trips.ODs {
		sum += od.Demand
		if od.Origin != od.Dest && od.Demand > 0 {
			positive++
		}
	}
	if sum != 360600 {
		t.Fatalf("summed OD demand = %g, want 360600", sum)
	}
	if positive != 528 {
		t.Fatalf("positive off-diagonal ODs = %d, want 528", positive)
	}
}

func TestInstanceSiouxFallsGolden(t *testing.T) {
	inst, err := Load(netFixture, tripsFixture, Options{KPaths: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Graph().NumNodes(); got != 24 {
		t.Fatalf("NumNodes = %d, want 24", got)
	}
	if got := inst.Graph().NumEdges(); got != 76 {
		t.Fatalf("NumEdges = %d, want 76", got)
	}
	if got := inst.NumCommodities(); got != 528 {
		t.Fatalf("NumCommodities = %d, want 528", got)
	}
	if got := inst.NumPaths(); got != 528*4 {
		t.Fatalf("NumPaths = %d, want %d (4 per OD pair)", got, 528*4)
	}
	if got := inst.TotalDemand(); got != 360600 {
		t.Fatalf("TotalDemand = %g, want 360600", got)
	}
	// Every link is standard BPR, so the whole instance must land in the
	// kernel's batched BPR group.
	if sizes := inst.Program().GroupSizes(); sizes["bpr"] != 76 {
		t.Fatalf("bpr group = %d, want 76 (%v)", sizes["bpr"], sizes)
	}
	// Demand scaling.
	half, err := Load(netFixture, tripsFixture, Options{KPaths: 4, DemandScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := half.TotalDemand(); got != 180300 {
		t.Fatalf("scaled TotalDemand = %g, want 180300", got)
	}
}

func TestLinkLatencyMapping(t *testing.T) {
	if lat, err := linkLatency(Link{Capacity: 100, FreeFlowTime: 2, B: 0.15, Power: 4}); err != nil {
		t.Fatal(err)
	} else if _, ok := lat.(latency.BPR); !ok {
		t.Fatalf("standard BPR row mapped to %T, want latency.BPR", lat)
	}
	lat, err := linkLatency(Link{Capacity: 100, FreeFlowTime: 2, B: 0.5, Power: 2})
	if err != nil {
		t.Fatal(err)
	}
	// t(x) = 2·(1 + 0.5·(x/100)²); check at x = 100 → 3.
	if got := lat.Value(100); math.Abs(got-3) > 1e-12 {
		t.Fatalf("power-2 latency at capacity = %g, want 3", got)
	}
	if lat, err := linkLatency(Link{FreeFlowTime: 5}); err != nil {
		t.Fatal(err)
	} else if got := lat.Value(123); got != 5 {
		t.Fatalf("B=0 row must be constant free-flow time, got %g", got)
	}
	if _, err := linkLatency(Link{Capacity: 100, FreeFlowTime: 2, B: 0.3, Power: 2.5}); err == nil {
		t.Fatal("non-integer power must be rejected")
	}
	if _, err := linkLatency(Link{Capacity: 0, FreeFlowTime: 2, B: 0.15, Power: 4}); err == nil {
		t.Fatal("zero capacity with positive B must be rejected")
	}
	if _, err := linkLatency(Link{Capacity: 100, FreeFlowTime: -1}); err == nil {
		t.Fatal("negative free-flow time must be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseNet(strings.NewReader("<NUMBER OF ZONES> 2\n")); err == nil {
		t.Error("net without <END OF METADATA> must fail")
	}
	if _, err := ParseNet(strings.NewReader(
		"<NUMBER OF ZONES> 2\n<NUMBER OF NODES> 2\n<NUMBER OF LINKS> 1\n<END OF METADATA>\n1 2 bad 1 1 0.15 4 0 0 1 ;\n")); err == nil {
		t.Error("unparseable link field must fail")
	}
	if _, err := ParseNet(strings.NewReader(
		"<NUMBER OF ZONES> 2\n<NUMBER OF NODES> 2\n<NUMBER OF LINKS> 2\n<END OF METADATA>\n1 2 100 1 1 0.15 4 0 0 1 ;\n")); err == nil {
		t.Error("link count mismatch with metadata must fail")
	}
	if _, err := ParseNet(strings.NewReader(
		"<NUMBER OF ZONES> 2\n<NUMBER OF NODES> 2\n<NUMBER OF LINKS> 1\n<END OF METADATA>\n1 3 100 1 1 0.15 4 0 0 1 ;\n")); err == nil {
		t.Error("link endpoint outside node range must fail")
	}
	if _, err := ParseTrips(strings.NewReader(
		"<NUMBER OF ZONES> 2\n<END OF METADATA>\n1 : 5.0;\n")); err == nil {
		t.Error("OD entry before Origin header must fail")
	}
	if _, err := ParseTrips(strings.NewReader(
		"<NUMBER OF ZONES> 2\n<END OF METADATA>\nOrigin 1\n2 = 5.0;\n")); err == nil {
		t.Error("malformed OD entry must fail")
	}
}
