// Package tntp imports traffic-assignment instances in the TNTP text
// format used by the Transportation Networks repository (Sioux Falls,
// Anaheim, Chicago-regional, …) — the canonical benchmark set for
// Beckmann-potential equilibrium codes — into flow.Instance values, so
// scenarios, campaigns, wardserve and the solver all get real road
// networks through the ordinary topology catalog.
//
// The format is two files. The network file carries `<KEY> value`
// metadata lines up to `<END OF METADATA>`, then one link row per line
// (init node, term node, capacity, length, free-flow time, B, power,
// speed, toll, type) terminated by `;`, with `~` starting comments. The
// trips file carries the same metadata shape, then `Origin o` headers
// followed by `dest : demand;` entries. Node IDs are 1-based; the first
// <NUMBER OF ZONES> nodes double as the zones demand originates from.
//
// Link travel time is the BPR form t(x) = fft·(1 + B·(x/cap)^power).
// Rows with the standard B = 0.15, power = 4 map to the native
// latency.BPR kind (batched by the kernel); other non-negative B with
// positive integer powers map to Constant + Monomial sums; non-integer
// powers are rejected.
package tntp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// Link is one parsed network-file row. From and To are 1-based TNTP node
// IDs.
type Link struct {
	From, To                                              int
	Capacity, Length, FreeFlowTime, B, Power, Speed, Toll float64
	Type                                                  int
}

// Network is a parsed TNTP network file.
type Network struct {
	Zones         int
	Nodes         int
	FirstThruNode int
	Links         []Link
}

// OD is one origin–destination demand (1-based zone IDs).
type OD struct {
	Origin, Dest int
	Demand       float64
}

// Trips is a parsed TNTP trips file. ODs are sorted by (origin, dest), so
// commodity order — and therefore instance fingerprints — never depend on
// file layout quirks.
type Trips struct {
	Zones   int
	TotalOD float64
	ODs     []OD
}

// metadata reads `<KEY> value` lines up to <END OF METADATA>, returning
// the remaining body scanner position. Unknown keys are ignored.
func metadata(sc *bufio.Scanner, meta map[string]string) error {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "~") {
			continue
		}
		if !strings.HasPrefix(line, "<") {
			// Tolerate files without an explicit end marker.
			return fmt.Errorf("tntp: unexpected body line %q before <END OF METADATA>", line)
		}
		end := strings.Index(line, ">")
		if end < 0 {
			return fmt.Errorf("tntp: unterminated metadata tag %q", line)
		}
		key := strings.ToUpper(strings.TrimSpace(line[1:end]))
		if key == "END OF METADATA" {
			return nil
		}
		meta[key] = strings.TrimSpace(line[end+1:])
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("tntp: missing <END OF METADATA>")
}

func metaInt(meta map[string]string, key string) (int, error) {
	v, ok := meta[key]
	if !ok {
		return 0, fmt.Errorf("tntp: missing metadata <%s>", key)
	}
	n, err := strconv.Atoi(strings.Fields(v)[0])
	if err != nil {
		return 0, fmt.Errorf("tntp: metadata <%s> = %q: %v", key, v, err)
	}
	return n, nil
}

// ParseNet parses a TNTP network file.
func ParseNet(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	meta := map[string]string{}
	if err := metadata(sc, meta); err != nil {
		return nil, err
	}
	net := &Network{FirstThruNode: 1}
	var err error
	if net.Zones, err = metaInt(meta, "NUMBER OF ZONES"); err != nil {
		return nil, err
	}
	if net.Nodes, err = metaInt(meta, "NUMBER OF NODES"); err != nil {
		return nil, err
	}
	wantLinks, err := metaInt(meta, "NUMBER OF LINKS")
	if err != nil {
		return nil, err
	}
	if v, ok := meta["FIRST THRU NODE"]; ok {
		if net.FirstThruNode, err = strconv.Atoi(strings.Fields(v)[0]); err != nil {
			return nil, fmt.Errorf("tntp: metadata <FIRST THRU NODE> = %q: %v", v, err)
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "~"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		line = strings.TrimSuffix(strings.TrimSpace(line), ";")
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 7 {
			return nil, fmt.Errorf("tntp: link row %q: want >= 7 fields, got %d", line, len(fields))
		}
		nums := make([]float64, len(fields))
		for i, f := range fields {
			if nums[i], err = strconv.ParseFloat(f, 64); err != nil {
				return nil, fmt.Errorf("tntp: link row %q field %d: %v", line, i, err)
			}
		}
		lk := Link{
			From:         int(nums[0]),
			To:           int(nums[1]),
			Capacity:     nums[2],
			Length:       nums[3],
			FreeFlowTime: nums[4],
			B:            nums[5],
			Power:        nums[6],
		}
		if len(nums) > 7 {
			lk.Speed = nums[7]
		}
		if len(nums) > 8 {
			lk.Toll = nums[8]
		}
		if len(nums) > 9 {
			lk.Type = int(nums[9])
		}
		if lk.From < 1 || lk.From > net.Nodes || lk.To < 1 || lk.To > net.Nodes {
			return nil, fmt.Errorf("tntp: link %d→%d outside node range 1..%d", lk.From, lk.To, net.Nodes)
		}
		net.Links = append(net.Links, lk)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(net.Links) != wantLinks {
		return nil, fmt.Errorf("tntp: parsed %d links, metadata promised %d", len(net.Links), wantLinks)
	}
	return net, nil
}

// ParseTrips parses a TNTP trips file.
func ParseTrips(r io.Reader) (*Trips, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	meta := map[string]string{}
	if err := metadata(sc, meta); err != nil {
		return nil, err
	}
	tr := &Trips{}
	var err error
	if tr.Zones, err = metaInt(meta, "NUMBER OF ZONES"); err != nil {
		return nil, err
	}
	if v, ok := meta["TOTAL OD FLOW"]; ok {
		if tr.TotalOD, err = strconv.ParseFloat(strings.Fields(v)[0], 64); err != nil {
			return nil, fmt.Errorf("tntp: metadata <TOTAL OD FLOW> = %q: %v", v, err)
		}
	}
	origin := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "~") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "Origin"); ok {
			if origin, err = strconv.Atoi(strings.TrimSpace(rest)); err != nil {
				return nil, fmt.Errorf("tntp: origin header %q: %v", line, err)
			}
			continue
		}
		if origin == 0 {
			return nil, fmt.Errorf("tntp: OD entry %q before any Origin header", line)
		}
		for _, ent := range strings.Split(line, ";") {
			ent = strings.TrimSpace(ent)
			if ent == "" {
				continue
			}
			dst, dem, ok := strings.Cut(ent, ":")
			if !ok {
				return nil, fmt.Errorf("tntp: OD entry %q: want dest : demand", ent)
			}
			d, err := strconv.Atoi(strings.TrimSpace(dst))
			if err != nil {
				return nil, fmt.Errorf("tntp: OD entry %q dest: %v", ent, err)
			}
			dm, err := strconv.ParseFloat(strings.TrimSpace(dem), 64)
			if err != nil {
				return nil, fmt.Errorf("tntp: OD entry %q demand: %v", ent, err)
			}
			tr.ODs = append(tr.ODs, OD{Origin: origin, Dest: d, Demand: dm})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(tr.ODs, func(i, j int) bool {
		if tr.ODs[i].Origin != tr.ODs[j].Origin {
			return tr.ODs[i].Origin < tr.ODs[j].Origin
		}
		return tr.ODs[i].Dest < tr.ODs[j].Dest
	})
	return tr, nil
}

// Options shape the imported instance.
type Options struct {
	// KPaths is each commodity's strategy-set size (k shortest free-flow
	// paths). 0 means 8.
	KPaths int
	// DemandScale multiplies every OD demand (0 means 1). Sub-1 scales are
	// the standard way to study the same network under lighter load.
	DemandScale float64
}

func (o Options) kPaths() int {
	if o.KPaths == 0 {
		return 8
	}
	return o.KPaths
}

func (o Options) demandScale() float64 {
	if o.DemandScale == 0 {
		return 1
	}
	return o.DemandScale
}

// linkLatency maps one link's BPR parameters onto a latency function.
func linkLatency(lk Link) (latency.Function, error) {
	fft := lk.FreeFlowTime
	if fft < 0 {
		return nil, fmt.Errorf("tntp: link %d→%d: negative free-flow time %g", lk.From, lk.To, fft)
	}
	if lk.B == 0 || lk.Power == 0 || fft == 0 {
		return latency.Constant{C: fft}, nil
	}
	if lk.B < 0 {
		return nil, fmt.Errorf("tntp: link %d→%d: negative B %g", lk.From, lk.To, lk.B)
	}
	if lk.Capacity <= 0 {
		return nil, fmt.Errorf("tntp: link %d→%d: capacity %g <= 0 with B > 0", lk.From, lk.To, lk.Capacity)
	}
	if lk.B == 0.15 && lk.Power == 4 {
		return latency.BPR{FreeTime: fft, Capacity: lk.Capacity}, nil
	}
	p := int(lk.Power)
	if float64(p) != lk.Power || p < 1 {
		return nil, fmt.Errorf("tntp: link %d→%d: unsupported BPR power %g (need positive integer)", lk.From, lk.To, lk.Power)
	}
	return latency.Sum{
		A: latency.Constant{C: fft},
		B: latency.Monomial{Coef: fft * lk.B / math.Pow(lk.Capacity, float64(p)), Degree: p},
	}, nil
}

// Instance assembles a flow.Instance from parsed network and trips files.
// Nodes keep their TNTP IDs as names; each positive off-diagonal OD pair
// becomes a commodity named "o->d" in (origin, dest) order with the k
// shortest free-flow paths as its strategy set. FirstThruNode is parsed
// but not enforced (zone-through traffic is not excluded).
func Instance(net *Network, trips *Trips, opts Options) (*flow.Instance, error) {
	if net.Zones != trips.Zones {
		return nil, fmt.Errorf("tntp: network has %d zones, trips %d", net.Zones, trips.Zones)
	}
	g := graph.New()
	nodes := make([]graph.NodeID, net.Nodes+1)
	for i := 1; i <= net.Nodes; i++ {
		nodes[i] = g.MustAddNode(strconv.Itoa(i))
	}
	lats := make([]latency.Function, 0, len(net.Links))
	for _, lk := range net.Links {
		if _, err := g.AddEdge(nodes[lk.From], nodes[lk.To]); err != nil {
			return nil, fmt.Errorf("tntp: link %d→%d: %v", lk.From, lk.To, err)
		}
		lat, err := linkLatency(lk)
		if err != nil {
			return nil, err
		}
		lats = append(lats, lat)
	}
	scale := opts.demandScale()
	var comms []flow.Commodity
	for _, od := range trips.ODs {
		if od.Origin == od.Dest || od.Demand <= 0 {
			continue
		}
		if od.Origin < 1 || od.Origin > net.Zones || od.Dest < 1 || od.Dest > net.Zones {
			return nil, fmt.Errorf("tntp: OD %d→%d outside zone range 1..%d", od.Origin, od.Dest, net.Zones)
		}
		comms = append(comms, flow.Commodity{
			Name:   fmt.Sprintf("%d->%d", od.Origin, od.Dest),
			Source: nodes[od.Origin],
			Sink:   nodes[od.Dest],
			Demand: od.Demand * scale,
		})
	}
	if len(comms) == 0 {
		return nil, fmt.Errorf("tntp: no positive off-diagonal OD demands")
	}
	return flow.NewInstance(g, lats, comms, flow.WithKShortestPaths(opts.kPaths()))
}

// Load reads and assembles an instance from network and trips file paths.
func Load(netPath, tripsPath string, opts Options) (*flow.Instance, error) {
	nf, err := os.Open(netPath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	net, err := ParseNet(nf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", netPath, err)
	}
	tf, err := os.Open(tripsPath)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	trips, err := ParseTrips(tf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", tripsPath, err)
	}
	return Instance(net, trips, opts)
}
