package tntp_test

import (
	"math"
	"testing"

	"wardrop/internal/solver"
	"wardrop/internal/tntp"
)

// The published best-known Sioux Falls user equilibrium: total system
// travel time ≈ 7,480,225 veh·min (average trip time 20.74 min at total
// demand 360,600) and Beckmann objective ≈ 4.231335×10⁶. With k = 8
// shortest paths per OD pair our restricted-path equilibrium lands within
// a fraction of a percent (k = 16 reproduces the objective to 5 digits
// but takes several times longer; this is the CI point).
func TestSiouxFallsEquilibriumObjective(t *testing.T) {
	inst, err := tntp.Load("testdata/siouxfalls_net.tntp", "testdata/siouxfalls_trips.tntp",
		tntp.Options{KPaths: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.SolveEquilibrium(inst, solver.Options{MaxIters: 5000, RelGapTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelGap > 1e-6 {
		t.Fatalf("solver did not converge: relGap %g after %d iters", res.RelGap, res.Iters)
	}
	fe := inst.EdgeFlows(res.Flow, nil)
	le := inst.EdgeLatencies(fe, nil)
	tstt := 0.0
	for e := range fe {
		tstt += fe[e] * le[e]
	}
	const (
		wantTSTT      = 7480225.0
		wantObjective = 4231335.0
	)
	if rel := math.Abs(tstt-wantTSTT) / wantTSTT; rel > 0.005 {
		t.Errorf("TSTT = %.1f, want %.1f ± 0.5%% (off by %.3f%%)", tstt, wantTSTT, 100*rel)
	}
	if rel := math.Abs(res.Potential-wantObjective) / wantObjective; rel > 0.005 {
		t.Errorf("Beckmann objective = %.1f, want %.1f ± 0.5%%", res.Potential, wantObjective)
	}
	if avg := tstt / inst.TotalDemand(); math.Abs(avg-20.74) > 0.2 {
		t.Errorf("average trip time = %.3f min, want ≈ 20.74", avg)
	}
}
