package serve

import (
	"log/slog"
	"net/http"
	"time"
)

// statusWriter captures the response status for the access log while keeping
// http.Flusher visible — the NDJSON job streams flush per line and must not
// lose that through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer's Flusher, if any.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps next with structured per-request logging: method, path,
// status, duration, and — when the handler set one — the spec fingerprint,
// so a log line joins directly against cache keys and job resources. Requests
// log at Debug except server errors (5xx), which log at Warn; a nil logger
// returns next unwrapped.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"durationMs", ms(time.Since(start)),
		}
		if fp := sw.Header().Get("X-Fingerprint"); fp != "" {
			attrs = append(attrs, "fingerprint", fp)
		}
		level := slog.LevelDebug
		if status >= http.StatusInternalServerError {
			level = slog.LevelWarn
		}
		logger.Log(r.Context(), level, "request", attrs...)
	})
}
