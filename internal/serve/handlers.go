package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"strconv"

	"wardrop/internal/obs"
	"wardrop/internal/scenario"
	"wardrop/internal/sweep"
)

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps an error to a JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseSpec decodes the request body through parse, distinguishing an
// oversized body (413) from an invalid document (400).
func parseSpec[T any](w http.ResponseWriter, r *http.Request, parse func(io.Reader) (T, error)) (T, bool) {
	v, err := parse(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return v, false
	}
	return v, true
}

// maxTraceSpans caps the per-job tracer ring a client may request; the ring
// is preallocated, so an unbounded ?trace=N would be a memory lever.
const maxTraceSpans = 1 << 16

// submitStatus maps a submission failure to its HTTP status.
func submitStatus(err error) int {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeSubmitError answers a failed submission. A full queue is a transient
// condition — the 503 carries Retry-After so well-behaved clients (the
// dispatch coordinator among them) back off instead of hammering; draining
// is terminal for this process and gets no retry hint.
func writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, submitStatus(err), err)
}

// Health is the JSON body of GET /healthz — a readiness probe, not a
// liveness stub. It exercises the durable store tier with a write/read
// roundtrip under a reserved probe key and reports queue saturation; the
// endpoint answers 503 when the process is draining, the store probe fails,
// or the job queue is saturated, so load balancers and the dispatch
// coordinator stop routing work to a node that would only shed it.
type Health struct {
	// Status is "ok" when the node is ready and "unavailable" otherwise.
	Status string `json:"status"`
	// Draining reports a server refusing new jobs during shutdown.
	Draining bool `json:"draining"`
	// QueueDepth / QueueCapacity / QueueSaturation describe the job queue;
	// saturation 1 means every further submission is shed with 503.
	QueueDepth      int     `json:"queueDepth"`
	QueueCapacity   int     `json:"queueCapacity"`
	QueueSaturation float64 `json:"queueSaturation"`
	// Store is the durable-tier probe outcome: "ok", "disabled" (no -store
	// configured), or the probe error.
	Store string `json:"store"`
}

// Store probe outcomes for the ready states.
const (
	storeOK       = "ok"
	storeDisabled = "disabled"
)

// probeBody is the fixed document the readiness probe writes and reads back;
// probeKey is its own SHA-256, which makes it a valid store key that cannot
// collide with a real result fingerprint (those hash canonical spec
// documents, none of which is this probe body).
var (
	probeBody = []byte(`{"wardserve":"readiness probe"}` + "\n")
	probeKey  = func() string {
		sum := sha256.Sum256(probeBody)
		return hex.EncodeToString(sum[:])
	}()
)

// storeProbe exercises the durable tier with a write/read roundtrip.
func (s *Server) storeProbe() string {
	st := s.cache.store
	if st == nil {
		return storeDisabled
	}
	if err := st.Put(probeKey, probeBody); err != nil {
		return "error: " + err.Error()
	}
	got, err := st.Get(probeKey)
	if err != nil {
		return "error: " + err.Error()
	}
	if !bytes.Equal(got, probeBody) {
		return "error: probe object corrupted"
	}
	return storeOK
}

// Health assembles the readiness document; ready reports whether the node
// should receive traffic.
func (s *Server) Health() (h Health, ready bool) {
	s.mu.Lock()
	h.Draining = s.draining
	s.mu.Unlock()
	h.QueueDepth = len(s.queue)
	h.QueueCapacity = s.cfg.QueueDepth
	h.QueueSaturation = float64(h.QueueDepth) / float64(h.QueueCapacity)
	h.Store = s.storeProbe()
	ready = !h.Draining && h.QueueDepth < h.QueueCapacity &&
		(h.Store == storeOK || h.Store == storeDisabled)
	h.Status = "ok"
	if !ready {
		h.Status = "unavailable"
	}
	return h, ready
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h, ready := s.Health()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Catalog())
}

// handleMetrics answers GET /metrics. The default body is the JSON Metrics
// document; ?format=prom renders the full instrument registry in Prometheus
// text exposition format instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = s.met.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// MetricsSnapshot assembles the current Metrics document.
func (s *Server) MetricsSnapshot() Metrics {
	hits, misses := s.met.cacheHits.Value(), s.met.cacheMisses.Value()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	p50, p99 := s.met.percentiles()
	st := s.cache.StoreStats()
	return Metrics{
		JobsRun:         s.met.jobsRun.Value(),
		JobsFailed:      s.met.jobsFailed.Value(),
		EngineRuns:      s.engineRuns.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheHitRate:    rate,
		CacheEntries:    s.cache.Len(),
		StoreHits:       s.met.storeHits.Value(),
		StorePuts:       s.met.storePuts.Value(),
		StoreErrors:     s.met.storeErrors.Value(),
		StoreObjects:    st.Objects,
		StoreBytes:      st.Bytes,
		QueueDepth:      len(s.queue),
		QueueCapacity:   s.cfg.QueueDepth,
		QueueSaturation: float64(len(s.queue)) / float64(s.cfg.QueueDepth),
		QueueHighWater:  int64(s.met.queueHighWater.Value()),
		StoreProbe:      s.storeProbe(),
		JobsRunning:     s.met.jobsRunning(),
		Workers:         s.cfg.Workers,
		RunLatencyMsP50: p50,
		RunLatencyMsP99: p99,
	}
}

// handleScenarios answers POST /v1/scenarios: parse, fingerprint, serve
// from the result cache when possible, otherwise schedule. The default mode
// runs synchronously — the response body is the scenario's canonical result
// document, byte-identical to `wardsim -scenario <file> -json` on the same
// spec. `?mode=job` detaches the run from the request and answers with a
// job resource instead (stream the trajectory from /v1/jobs/{id}/stream).
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	spec, ok := parseSpec(w, r, scenario.Parse)
	if !ok {
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Fingerprint", fp)
	async := r.URL.Query().Get("mode") == "job"
	// ?trace=N attaches a span tracer (ring capacity N) to the run; each
	// recorded span is streamed as a {"span":…} NDJSON line. A request
	// answered from the cache ran no engine and therefore carries no spans.
	trace := 0
	if t := r.URL.Query().Get("trace"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errors.New("serve: trace must be a non-negative integer"))
			return
		}
		if n > maxTraceSpans {
			n = maxTraceSpans
		}
		trace = n
	}
	if body, tier, ok := s.cacheGet(kindScenario, fp); ok {
		if !async {
			w.Header().Set("X-Cache", tier)
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(body)
			return
		}
		j := s.newJob(kindScenario, fp, context.Background())
		j.spec = spec
		j.complete(body, true)
		s.register(j)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	if async {
		// Detached from the request: an async job outlives its submitter
		// and is cancelled only by server shutdown.
		j := s.newJob(kindScenario, fp, context.Background())
		j.spec = spec
		j.trace = trace
		s.register(j)
		if err := s.submit(j); err != nil {
			j.fail(err)
			writeSubmitError(w, err)
			return
		}
		// Only scheduled work counts as a miss: a 503'd request never
		// consulted an engine, so it must not dilute the hit rate.
		s.met.cacheMisses.Add(1)
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}

	// Synchronous: the job inherits the request context, so a client
	// disconnect cancels the simulation between phases and frees the worker
	// slot; the job is left failed for the audit trail.
	j := s.newJob(kindScenario, fp, r.Context())
	j.spec = spec
	j.trace = trace
	s.register(j)
	if err := s.submit(j); err != nil {
		j.fail(err)
		writeSubmitError(w, err)
		return
	}
	s.met.cacheMisses.Add(1)
	<-j.done
	st := j.status()
	if st.State == JobFailed {
		if r.Context().Err() != nil {
			// The client is gone; nothing can be written.
			return
		}
		writeError(w, http.StatusUnprocessableEntity, errors.New(st.Error))
		return
	}
	w.Header().Set("X-Cache", TierMiss)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(j.resultBytes())
}

// handleTasks answers POST /v1/tasks: the distributed-sweep work unit. The
// body is one self-contained task spec; the response is the task's canonical
// record line, synchronously (a task is one engine run — the job machinery
// provides queueing, panic isolation and disconnect cancellation, not
// detachment). Task-level failures come back inside the record's error field
// with status 200, exactly as a local sweep would record them, so a
// coordinator merging remote records reproduces the local artifact
// byte-for-byte even when cells fail.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	ts, ok := parseSpec(w, r, sweep.ParseTaskSpec)
	if !ok {
		return
	}
	fp, err := ts.Fingerprint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Fingerprint", fp)
	if body, tier, ok := s.cacheGet(kindTask, fp); ok {
		w.Header().Set("X-Cache", tier)
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write(body)
		return
	}
	j := s.newJob(kindTask, fp, r.Context())
	j.task = ts
	s.register(j)
	if err := s.submit(j); err != nil {
		j.fail(err)
		writeSubmitError(w, err)
		return
	}
	s.met.cacheMisses.Add(1)
	<-j.done
	st := j.status()
	if st.State == JobFailed {
		if r.Context().Err() != nil {
			return
		}
		writeError(w, http.StatusUnprocessableEntity, errors.New(st.Error))
		return
	}
	w.Header().Set("X-Cache", TierMiss)
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = w.Write(j.resultBytes())
}

// handleCampaigns answers POST /v1/campaigns: always asynchronous — the
// response is a job resource whose stream delivers one NDJSON record per
// completed task followed by the aggregated summary. A campaign whose
// fingerprint is cached completes immediately with the memoized summary.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	c, ok := parseSpec(w, r, sweep.ParseCampaign)
	if !ok {
		return
	}
	fp, err := c.Fingerprint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Fingerprint", fp)
	j := s.newJob(kindCampaign, fp, context.Background())
	j.campaign = c
	if body, _, ok := s.cacheGet(kindCampaign, fp); ok {
		j.complete(body, true)
		s.register(j)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	s.register(j)
	if err := s.submit(j); err != nil {
		j.fail(err)
		writeSubmitError(w, err)
		return
	}
	s.met.cacheMisses.Add(1)
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobs lists every retained job, oldest first.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobStream replays the job's NDJSON lines and follows live output
// until the job reaches a terminal state or the client disconnects.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Fingerprint", j.fingerprint)
	flusher, _ := w.(http.Flusher)
	for from := 0; ; {
		lines, next, notify, truncated, terminal := j.follow(from)
		from = next
		if truncated {
			if _, err := w.Write(truncatedLine); err != nil {
				return
			}
		}
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}
