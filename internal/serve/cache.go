package serve

import (
	"container/list"
	"sync"
)

// lru is the in-memory result cache: fingerprint-keyed, least-recently-used
// eviction, safe for concurrent use. Values are immutable encoded result
// documents, so hits hand out the stored slice without copying.
type lru struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU builds a cache holding up to max entries; max <= 0 disables
// caching (every Get misses, Add is a no-op).
func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached document and marks it most recently used.
func (c *lru) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add stores the document under key, evicting the least recently used entry
// when full.
func (c *lru) Add(key string, val []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the number of cached documents.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
