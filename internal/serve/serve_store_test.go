package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"wardrop/internal/flow"
	"wardrop/internal/store"
	"wardrop/internal/sweep"
)

// taskDoc is a quick deterministic task spec — one pigou cell at one seed,
// the distributed-sweep work unit.
const taskDoc = `{"topology":{"family":"pigou"},"policy":{"kind":"replicator"},"period":0.05,"seed":42,"maxPhases":40,"delta":0.3,"eps":0.15}`

// referenceTaskRecord runs the task spec through the library directly and
// returns the canonical record line /v1/tasks must reproduce byte-for-byte.
func referenceTaskRecord(t *testing.T, doc string) []byte {
	t.Helper()
	ts, err := sweep.ParseTaskSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rec, aborted := sweep.RunTaskSpec(context.Background(), ts, nil, flow.NewWorkspace())
	if aborted {
		t.Fatal("reference task run aborted")
	}
	b, err := json.Marshal(sweep.CanonicalRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestTaskEndpointByteIdentityAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	want := referenceTaskRecord(t, taskDoc)

	resp, body := postJSON(t, ts.URL+"/v1/tasks", taskDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != TierMiss {
		t.Fatalf("first request X-Cache = %q, want %s", got, TierMiss)
	}
	if string(body) != string(want) {
		t.Fatalf("task record differs from local run:\n got %s\nwant %s", body, want)
	}
	if resp.Header.Get("X-Fingerprint") == "" {
		t.Fatal("missing X-Fingerprint")
	}

	resp, body = postJSON(t, ts.URL+"/v1/tasks", taskDoc)
	if got := resp.Header.Get("X-Cache"); got != TierHit {
		t.Fatalf("second request X-Cache = %q, want %s", got, TierHit)
	}
	if string(body) != string(want) {
		t.Fatalf("cached task record differs:\n got %s\nwant %s", body, want)
	}
	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("EngineRuns = %d after a repeat submission, want 1", runs)
	}
}

// TestTaskFailureComesBackAsRecord pins the distributed error contract: a
// task whose run fails still answers 200 with a record carrying the error —
// the same record a local sweep would emit — so merged artifacts stay
// byte-identical when cells fail. (Better response has no finite smoothness
// constant, so a "safe" period cannot be resolved: the task fails at run
// time after validating cleanly.)
func TestTaskFailureComesBackAsRecord(t *testing.T) {
	const failDoc = `{"topology":{"family":"pigou"},"policy":{"kind":"uniform","migrator":"betterresponse"},"period":"safe","seed":7,"horizon":5}`
	want := referenceTaskRecord(t, failDoc)
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/tasks", failDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	var rec sweep.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Error == "" {
		t.Fatalf("record carries no error: %s", body)
	}
	if string(body) != string(want) {
		t.Fatalf("error record differs from local run:\n got %s\nwant %s", body, want)
	}
	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("EngineRuns = %d, want 1 (failed tasks count like local sweeps)", runs)
	}
}

// TestStoreTierSurvivesRestart is the durability acceptance test: a second
// server opened on the same store directory serves previously computed
// fingerprints from the CAS without re-running any engine.
func TestStoreTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st1})
	want := referenceTaskRecord(t, taskDoc)
	resp, body := postJSON(t, ts1.URL+"/v1/tasks", taskDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	wantScenario := referenceResult(t, pigouQuickDoc)
	if resp, body = postJSON(t, ts1.URL+"/v1/scenarios", pigouQuickDoc); resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario status %d: %s", resp.StatusCode, body)
	}
	if runs := s1.EngineRuns(); runs != 2 {
		t.Fatalf("first server EngineRuns = %d, want 2", runs)
	}
	var m1 Metrics
	getJSON(t, ts1.URL+"/metrics", &m1)
	if m1.StorePuts != 2 || m1.StoreObjects != 2 {
		t.Fatalf("store metrics after two runs: puts=%d objects=%d, want 2/2", m1.StorePuts, m1.StoreObjects)
	}

	// "Restart": a fresh server and a fresh store handle on the same
	// directory — nothing in memory survives.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: st2})
	resp, body = postJSON(t, ts2.URL+"/v1/tasks", taskDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != TierHitStore {
		t.Fatalf("restarted server X-Cache = %q, want %s", got, TierHitStore)
	}
	if string(body) != string(want) {
		t.Fatalf("durable task record differs:\n got %s\nwant %s", body, want)
	}
	resp, body = postJSON(t, ts2.URL+"/v1/scenarios", pigouQuickDoc)
	if got := resp.Header.Get("X-Cache"); got != TierHitStore {
		t.Fatalf("restarted server scenario X-Cache = %q, want %s", got, TierHitStore)
	}
	if string(body) != string(wantScenario) {
		t.Fatal("durable scenario result differs from local run")
	}
	if runs := s2.EngineRuns(); runs != 0 {
		t.Fatalf("restarted server EngineRuns = %d, want 0 (all served from store)", runs)
	}
	var m2 Metrics
	getJSON(t, ts2.URL+"/metrics", &m2)
	if m2.StoreHits != 2 || m2.CacheHits != 2 {
		t.Fatalf("restarted server hits: store=%d cache=%d, want 2/2", m2.StoreHits, m2.CacheHits)
	}
	// The store hit promoted the object into the LRU: a third submission is
	// a pure memory hit.
	resp, _ = postJSON(t, ts2.URL+"/v1/tasks", taskDoc)
	if got := resp.Header.Get("X-Cache"); got != TierHit {
		t.Fatalf("post-promotion X-Cache = %q, want %s", got, TierHit)
	}
}

// TestQueueFullRetryAfterAndHighWater pins the load-shedding contract: a
// queue-full 503 carries Retry-After, and /metrics exposes the queue bound
// and its high-water mark.
func TestQueueFullRetryAfterAndHighWater(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	resp, body := postJSON(t, ts.URL+"/v1/scenarios?mode=job", slowDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow job status %d (%s)", resp.StatusCode, body)
	}
	var full *http.Response
	for i := 0; i < 3 && full == nil; i++ {
		doc := strings.Replace(slowDoc, "slow", "slow-"+string(rune('a'+i)), 1)
		resp, _ = postJSON(t, ts.URL+"/v1/scenarios?mode=job", doc)
		if resp.StatusCode == http.StatusServiceUnavailable {
			full = resp
		}
	}
	if full == nil {
		t.Fatal("queue never reported full")
	}
	if got := full.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("queue-full Retry-After = %q, want 1", got)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.QueueCapacity != 1 {
		t.Fatalf("QueueCapacity = %d, want 1", m.QueueCapacity)
	}
	if m.QueueHighWater < 1 {
		t.Fatalf("QueueHighWater = %d, want >= 1", m.QueueHighWater)
	}
}

// TestHealthzReadiness pins the /healthz contract: a healthy store-backed
// server answers 200 with a passing store probe and queue saturation, a
// broken durable tier flips the endpoint to 503 with the probe error, and a
// draining server is not ready. /metrics mirrors the probe outcome and the
// saturation.
func TestHealthzReadiness(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Store: st})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz status = %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Store != storeOK || h.Draining {
		t.Fatalf("healthy healthz = %+v", h)
	}
	if h.QueueCapacity != 4 || h.QueueSaturation != 0 {
		t.Fatalf("queue fields = %+v", h)
	}

	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.StoreProbe != storeOK || m.QueueSaturation != 0 {
		t.Fatalf("metrics probe fields = %+v", m)
	}

	// Break the durable tier: replace the store directory with a regular
	// file so the probe's write fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = Health{}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("broken-store healthz status = %d", resp.StatusCode)
	}
	if h.Status != "unavailable" || !strings.HasPrefix(h.Store, "error: ") {
		t.Fatalf("broken-store healthz = %+v", h)
	}
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}

	// Draining is terminal for readiness.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = Health{}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !h.Draining {
		t.Fatalf("draining healthz = %d %+v", resp.StatusCode, h)
	}
}
