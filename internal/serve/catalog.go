package serve

import (
	"wardrop/internal/catalog"
	"wardrop/internal/engine"
	"wardrop/internal/latency"
	"wardrop/internal/policy"
	"wardrop/internal/topo"

	// Register the "custom" topology family so served campaign specs accept
	// embedded instance documents.
	_ "wardrop/internal/spec"
)

// defaultCatalog aggregates every component registry in the same
// deterministic order as the root Catalog() export; servers built through
// the root API pass that export directly instead.
func defaultCatalog() []catalog.Description {
	var out []catalog.Description
	out = append(out, latency.Catalog.Describe()...)
	out = append(out, topo.Catalog.Describe()...)
	out = append(out, policy.Samplers.Describe()...)
	out = append(out, policy.Migrators.Describe()...)
	out = append(out, engine.Catalog.Describe()...)
	out = append(out, engine.Integrators.Describe()...)
	out = append(out, engine.Starts.Describe()...)
	return out
}
