package serve

import (
	"errors"

	"wardrop/internal/store"
)

// Cache tiers as reported in the X-Cache response header: an in-memory LRU
// hit, a durable-store hit (promoted into the LRU on the way out), or a miss
// that scheduled real work.
const (
	TierHit      = "hit"
	TierHitStore = "hit-store"
	TierMiss     = "miss"
)

// tieredCache is the server's two-tier result cache: the in-process LRU in
// front of an optional durable content-addressed store. Lookups that miss
// the LRU but hit the store promote the object back into memory, so a
// restarted server re-warms itself from disk as traffic arrives; writes go
// through to both tiers, so cached results survive restarts and the cache
// working set can exceed RAM by the store's budget.
type tieredCache struct {
	lru   *lru
	store *store.Store
}

func newTieredCache(entries int, st *store.Store) *tieredCache {
	return &tieredCache{lru: newLRU(entries), store: st}
}

// Get looks the fingerprint up through the tiers. tier is TierHit or
// TierHitStore on success and TierMiss otherwise; err reports a durable-tier
// read problem (corruption — already quarantined by the store — or IO),
// which callers count and then treat as a miss.
func (c *tieredCache) Get(kind, fp string) (body []byte, tier string, err error) {
	if body, ok := c.lru.Get(kind + ":" + fp); ok {
		return body, TierHit, nil
	}
	if c.store == nil {
		return nil, TierMiss, nil
	}
	body, err = c.store.Get(fp)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, TierMiss, nil
		}
		return nil, TierMiss, err
	}
	c.lru.Add(kind+":"+fp, body)
	return body, TierHitStore, nil
}

// Add writes the document through both tiers. The returned error reports a
// durable-tier write failure; the in-memory tier has already been updated,
// so the server keeps serving either way.
func (c *tieredCache) Add(kind, fp string, body []byte) error {
	c.lru.Add(kind+":"+fp, body)
	if c.store == nil {
		return nil
	}
	return c.store.Put(fp, body)
}

// Len reports the in-memory tier's population.
func (c *tieredCache) Len() int { return c.lru.Len() }

// StoreStats reports the durable tier's census (zero value when no store is
// configured).
func (c *tieredCache) StoreStats() store.Stats {
	if c.store == nil {
		return store.Stats{}
	}
	return c.store.Stats()
}
