// Package serve turns the simulation library into a long-lived HTTP/JSON
// service: the bulletin-board shape of the paper — many clients reading a
// shared store refreshed by expensive recomputation — applied to the
// simulations themselves. Scenario and campaign specs POSTed to the service
// are fingerprinted (canonical-JSON SHA-256), answered from an LRU result
// cache when an identical spec already ran, and otherwise scheduled on a
// bounded job queue drained by a worker pool (one reusable evaluation
// workspace per worker, per-job panic isolation, client-disconnect →
// context cancellation). Small runs answer synchronously; campaigns become
// job resources with NDJSON streaming. The service exposes /healthz, the
// component catalog, and a /metrics snapshot, and drains gracefully on
// shutdown.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wardrop/internal/catalog"
	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/obs"
	"wardrop/internal/scenario"
	"wardrop/internal/store"
	"wardrop/internal/sweep"
	"wardrop/internal/timeline"
)

// Sentinel errors surfaced as HTTP statuses.
var (
	// ErrQueueFull indicates a full job queue (503, retryable).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining indicates a server refusing new jobs during shutdown.
	ErrDraining = errors.New("serve: draining")
)

// maxBodyBytes bounds request documents; a spec larger than this is not a
// simulation request, it is an attack.
const maxBodyBytes = 8 << 20

// Config parameterises a Server. The zero value is usable: every field has
// a serving-appropriate default.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS). Each worker
	// owns one evaluation workspace reused across every job it runs.
	Workers int
	// QueueDepth bounds the job queue (default 64); submissions beyond it
	// are rejected with 503 rather than buffered without limit.
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity (0 means the default
	// 256; negative disables caching).
	CacheEntries int
	// CampaignWorkers is the sweep pool width used inside one campaign job
	// (default 1, keeping the server's worker pool the only concurrency
	// authority; raise it on dedicated campaign servers).
	CampaignWorkers int
	// MaxJobs bounds the finished-job history retained for /v1/jobs
	// (default 1024); the oldest terminal jobs are evicted first.
	MaxJobs int
	// MaxStreamBytes bounds each job's NDJSON replay buffer (default
	// 4 MiB; negative for unbounded): a huge campaign keeps streaming live,
	// but late attachers replay only the newest lines behind a
	// {"truncated":true} marker, so terminal jobs cannot pin unbounded
	// memory.
	MaxStreamBytes int
	// LatencyWindow is the sliding sample window for the /metrics latency
	// percentiles (default 512 jobs).
	LatencyWindow int
	// Catalog supplies the /v1/catalog listing (default: every component
	// registry, mirroring the root Catalog() aggregation).
	Catalog func() []catalog.Description
	// Metrics, when non-nil, is the obs.Registry the server registers its
	// instruments in (default: a private registry). Share one registry to
	// expose several components — the server, a dispatch coordinator, a
	// sweep pool — through one /metrics endpoint.
	Metrics *obs.Registry
	// Store, when non-nil, is the durable second cache tier: every cached
	// result document is written through to it, and LRU misses consult it
	// before scheduling work, so results survive restarts (and can be shared
	// between servers pointing at one directory). See internal/store.
	Store *store.Store
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CampaignWorkers <= 0 {
		c.CampaignWorkers = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxStreamBytes == 0 {
		c.MaxStreamBytes = 4 << 20
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 512
	}
	if c.Catalog == nil {
		c.Catalog = defaultCatalog
	}
	return c
}

// Server is the simulation service: an http.Handler plus the worker pool
// behind it. Create with New, serve with any http.Server, stop with Close.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *tieredCache
	met   *metrics

	// instCache memoizes built instances and their Frank–Wolfe reference
	// potentials across every /v1/tasks job for the server's lifetime: a
	// campaign sharded across a fleet scatters one topology cell's seeds
	// over many task submissions, and each node should pay the cell's
	// construction and Φ* solve once, not once per task.
	instCache *sweep.InstanceCache

	engineRuns atomic.Int64

	mu       sync.Mutex
	queue    chan *job
	jobs     map[string]*job
	jobOrder []string
	nextID   int
	draining bool
	wg       sync.WaitGroup
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		cache:     newTieredCache(cfg.CacheEntries, cfg.Store),
		met:       newMetrics(cfg.LatencyWindow, cfg.Metrics),
		instCache: sweep.NewInstanceCache(),
		queue:     make(chan *job, cfg.QueueDepth),
		jobs:      make(map[string]*job),
	}
	// Live-state instruments read their owners at exposition time; the
	// cumulative engine-run counter stays on the server's atomic (EngineRuns
	// is pinned by the cache tests) and is bridged into the registry.
	reg := s.met.reg
	reg.CounterFunc("serve_engine_runs_total", "simulation runs executed on behalf of jobs",
		func() float64 { return float64(s.engineRuns.Load()) })
	reg.GaugeFunc("serve_queue_depth", "jobs waiting for a worker",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("serve_queue_capacity", "job queue bound",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("serve_cache_entries", "in-memory result-cache population",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("serve_workers", "worker pool size",
		func() float64 { return float64(s.cfg.Workers) })
	s.routes()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	s.mux.HandleFunc("POST /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("POST /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// newJob builds a job carrying the server's stream-buffer budget.
func (s *Server) newJob(kind, fingerprint string, parent context.Context) *job {
	return newJob(kind, fingerprint, parent, s.cfg.MaxStreamBytes)
}

// EngineRuns reports the number of simulation runs executed so far — the
// counter the cache tests pin: a repeated identical request must not move
// it.
func (s *Server) EngineRuns() int64 { return s.engineRuns.Load() }

// Registry returns the server's instrument registry — the source of both
// /metrics expositions and the place to register further instruments that
// should appear alongside the server's own.
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// Close drains the server: no new jobs are accepted, queued and running
// jobs finish, workers exit. If ctx expires first, every live job is
// cancelled (engines abort between phases) and Close returns ctx.Err()
// after the now-prompt drain.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelJobs()
		<-done
		return ctx.Err()
	}
}

// cancelJobs cancels every registered job's context.
func (s *Server) cancelJobs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.cancel()
	}
}

// register assigns the job an ID and retains it for /v1/jobs, evicting the
// oldest terminal jobs beyond the history cap.
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j.id = fmt.Sprintf("j%08d", s.nextID)
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobOrder) <= s.cfg.MaxJobs {
		return
	}
	kept := s.jobOrder[:0]
	excess := len(s.jobOrder) - s.cfg.MaxJobs
	for _, id := range s.jobOrder {
		if excess > 0 {
			if old := s.jobs[id]; old != nil {
				old.mu.Lock()
				terminal := old.terminalLocked()
				old.mu.Unlock()
				if terminal {
					delete(s.jobs, id)
					excess--
					continue
				}
			}
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// submit enqueues the job, refusing when draining or full.
func (s *Server) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	// Stamped before the send: a worker may pick the job up the instant it
	// lands on the queue.
	j.enqueued = time.Now()
	select {
	case s.queue <- j:
		s.met.noteQueueDepth(int64(len(s.queue)))
		return nil
	default:
		return ErrQueueFull
	}
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker drains the job queue; one evaluation workspace is reused across
// every job this worker runs.
func (s *Server) worker() {
	defer s.wg.Done()
	ws := flow.NewWorkspace()
	for j := range s.queue {
		s.runJob(j, ws)
	}
}

// runJob executes one job with panic isolation: a poisoned spec fails its
// own job, never the worker or the process.
func (s *Server) runJob(j *job, ws *flow.Workspace) {
	start := time.Now()
	if !j.enqueued.IsZero() {
		s.met.queueWaitMs.Observe(ms(start.Sub(j.enqueued)))
	}
	s.met.running.Add(1)
	defer s.met.running.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			j.fail(fmt.Errorf("panic: %v", r))
		}
		if j.failed() {
			s.met.jobsFailed.Add(1)
		}
		s.met.jobsRun.Add(1)
		s.met.observe(time.Since(start))
		j.cancel()
	}()
	j.setRunning()
	var err error
	switch j.kind {
	case kindScenario:
		err = s.runScenario(j, ws)
	case kindCampaign:
		err = s.runCampaign(j, ws)
	case kindTask:
		err = s.runTask(j, ws)
	default:
		err = fmt.Errorf("serve: unknown job kind %q", j.kind)
	}
	if err != nil {
		j.fail(err)
	}
}

// runScenario executes a scenario job through the shared Spec.Run path —
// the same execution `wardsim -scenario` uses, so the encoded result
// document is byte-identical — streaming trajectory samples and replayed
// timeline events as they happen, then memoizing the document.
func (s *Server) runScenario(j *job, ws *flow.Workspace) error {
	opts := []engine.RunOption{engine.WithWorkspace(ws)}
	if every := j.spec.RecordEvery; every > 0 {
		opts = append(opts, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
			if info.Index%every == 0 {
				j.appendLine(streamLine{Sample: &scenario.TrajectorySample{
					Time:      info.Time,
					Potential: info.Potential,
					Flow:      append([]float64(nil), info.Flow...),
				}})
			}
			return false
		})))
	}
	// ?trace=N attaches a Tracer and streams each recorded span as a
	// {"span":…} line — the per-phase cost and convergence residual of the
	// run, live over the job's NDJSON stream.
	var tracer *obs.Tracer
	if j.trace > 0 {
		tracer = obs.NewTracer(j.trace)
		tracer.OnSpan(func(sp obs.Span) {
			j.appendLine(streamLine{Span: &sp})
		})
		opts = append(opts, engine.WithObserver(tracer))
	}
	s.engineRuns.Add(1)
	res, events, err := j.spec.Run(j.ctx, func(ev timeline.AppliedEvent) {
		if tracer != nil {
			tracer.MarkEvent(ev.Action, ev.Time)
		}
		j.appendLine(streamLine{Event: &ev})
	}, opts...)
	if err != nil {
		return err
	}
	doc, err := scenario.NewRunResult(j.spec, res, events)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		return err
	}
	body := buf.Bytes()
	s.cacheAdd(kindScenario, j.fingerprint, body)
	j.complete(body, false)
	return nil
}

// cacheAdd writes a finished result document through both cache tiers,
// counting durable-tier activity; a store write failure is an operational
// metric, never a request failure.
func (s *Server) cacheAdd(kind, fp string, body []byte) {
	if err := s.cache.Add(kind, fp, body); err != nil {
		s.met.storeErrors.Add(1)
		return
	}
	if s.cfg.Store != nil {
		s.met.storePuts.Add(1)
	}
}

// cacheGet looks a fingerprint up through the cache tiers, maintaining the
// hit/miss counters and the lookup-latency histogram. The returned tier is
// the X-Cache value for a hit.
func (s *Server) cacheGet(kind, fp string) (body []byte, tier string, ok bool) {
	lookupStart := time.Now()
	body, tier, err := s.cache.Get(kind, fp)
	s.met.cacheLookupMs.Observe(ms(time.Since(lookupStart)))
	if err != nil {
		s.met.storeErrors.Add(1)
	}
	if tier == TierMiss {
		// The miss counter moves only when work is actually scheduled;
		// callers add it after a successful submit.
		return nil, tier, false
	}
	s.met.cacheHits.Add(1)
	if tier == TierHitStore {
		s.met.storeHits.Add(1)
	}
	return body, tier, true
}

// CampaignResult is the final result document of a campaign job: identity,
// counts and the per-cell aggregation (the full per-task records were
// already streamed as they completed).
type CampaignResult struct {
	Name        string       `json:"name,omitempty"`
	Fingerprint string       `json:"fingerprint"`
	Tasks       int          `json:"tasks"`
	Records     int          `json:"records"`
	Failed      int          `json:"failed"`
	Cells       []sweep.Cell `json:"cells"`
}

// runCampaign executes a campaign job, streaming one record line per
// completed task and finishing with the aggregated summary document.
func (s *Server) runCampaign(j *job, ws *flow.Workspace) error {
	_ = ws // campaign workers own their workspaces inside sweep.Run
	res, err := sweep.Run(j.ctx, j.campaign, sweep.Options{
		Workers: s.cfg.CampaignWorkers,
		Progress: func(done, total int, rec sweep.Record) {
			j.appendLine(streamLine{Record: &rec})
		},
	})
	if err != nil {
		return err
	}
	s.engineRuns.Add(int64(len(res.Records)))
	failed := 0
	for _, r := range res.Records {
		if r.Error != "" {
			failed++
		}
	}
	doc := CampaignResult{
		Name:        j.campaign.Name,
		Fingerprint: j.fingerprint,
		Tasks:       len(res.Tasks),
		Records:     len(res.Records),
		Failed:      failed,
		Cells:       sweep.Aggregate(res.Records),
	}
	body, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	body = append(body, '\n')
	s.cacheAdd(kindCampaign, j.fingerprint, body)
	j.complete(body, false)
	return nil
}

// runTask executes one distributed-sweep task job. Task-level failures (a
// diverging policy, an unbuildable cell) come back inside the record's error
// field — exactly as a local sweep.Run records them — so the job itself fails
// only when cancelled before producing a record. The memoized document is the
// canonical record line: wall time is the submitter's measurement to take,
// and a replayed cache hit carrying a stale wall time would poison it.
func (s *Server) runTask(j *job, ws *flow.Workspace) error {
	rec, aborted := sweep.RunTaskSpec(j.ctx, j.task, s.instCache, ws)
	if aborted {
		if err := j.ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	}
	s.engineRuns.Add(1)
	body, err := json.Marshal(sweep.CanonicalRecord(rec))
	if err != nil {
		return err
	}
	body = append(body, '\n')
	s.cacheAdd(kindTask, j.fingerprint, body)
	j.complete(body, false)
	return nil
}
