package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wardrop/internal/obs"
)

// TestMetricsPrometheusExposition runs a job and scrapes ?format=prom: the
// registry exposition must carry the same counters as the JSON document plus
// the per-stage histograms.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	postJSON(t, ts.URL+"/v1/scenarios", pigouQuickDoc)
	postJSON(t, ts.URL+"/v1/scenarios", pigouQuickDoc) // cache hit

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.PrometheusContentType {
		t.Fatalf("Content-Type = %q, want %q", got, obs.PrometheusContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE serve_jobs_total counter",
		"serve_jobs_total 1",
		"serve_cache_hits_total 1",
		"serve_cache_misses_total 1",
		"serve_engine_runs_total 1",
		"# TYPE serve_run_ms histogram",
		"serve_run_ms_count 1",
		"serve_queue_wait_ms_count 1",
		"# TYPE serve_cache_lookup_ms histogram",
		"serve_jobs_running 0",
		"serve_queue_depth 0",
		"serve_workers 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, text)
		}
	}

	// The JSON document must agree with the instruments backing it.
	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.JobsRun != 1 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("JSON metrics diverged from registry: %+v", m)
	}
	if m.RunLatencyMsP99 < m.RunLatencyMsP50 || m.RunLatencyMsP50 <= 0 {
		t.Fatalf("latency percentiles p50=%g p99=%g", m.RunLatencyMsP50, m.RunLatencyMsP99)
	}
}

// TestSharedRegistryConfig pins that a caller-supplied registry receives the
// server's instruments (the cross-component wiring wardserve uses).
func TestSharedRegistryConfig(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newTestServer(t, Config{Workers: 1, Metrics: reg})
	if s.Registry() != reg {
		t.Fatal("server must register into the supplied registry")
	}
	if reg.FindHistogram("serve_run_ms") == nil {
		t.Fatal("serve_run_ms not registered in the shared registry")
	}
}

// TestScenarioTraceStreamsSpans submits ?mode=job&trace=64 and expects
// {"span":…} lines on the NDJSON stream alongside samples and the result.
func TestScenarioTraceStreamsSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/scenarios?mode=job&trace=64", pigouTrajDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Get(ts.URL + st.Stream)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	spans, results := 0, 0
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var line struct {
			Span   *obs.Span       `json:"span"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		if line.Span != nil {
			spans++
			if line.Span.Kind != obs.SpanPhase {
				t.Fatalf("unexpected span kind %q", line.Span.Kind)
			}
		}
		if line.Result != nil {
			results++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// pigouTrajDoc runs 40 phases with a 64-capacity ring: every phase span
	// must arrive.
	if spans < 40 {
		t.Fatalf("streamed %d spans, want >= 40", spans)
	}
	if results != 1 {
		t.Fatalf("streamed %d result lines, want 1", results)
	}

	// An invalid trace parameter is a client error, not a scheduled job.
	resp, _ = postJSON(t, ts.URL+"/v1/scenarios?trace=bogus", pigouQuickDoc)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace=bogus status = %d, want 400", resp.StatusCode)
	}
}

// TestAccessLogMiddleware pins the structured access log: fingerprint field
// on spec routes, Flusher passthrough for streams, nil-logger passthrough.
func TestAccessLogMiddleware(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := httptest.NewServer(AccessLog(logger, s))
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/scenarios", pigouQuickDoc)
	var logged struct {
		Msg         string  `json:"msg"`
		Method      string  `json:"method"`
		Path        string  `json:"path"`
		Status      int     `json:"status"`
		DurationMs  float64 `json:"durationMs"`
		Fingerprint string  `json:"fingerprint"`
	}
	line, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(line), &logged); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if logged.Msg != "request" || logged.Method != "POST" || logged.Path != "/v1/scenarios" ||
		logged.Status != http.StatusOK || logged.Fingerprint == "" {
		t.Fatalf("access log line = %+v", logged)
	}

	if got := AccessLog(nil, s); got != http.Handler(s) {
		t.Fatal("nil logger must return the handler unwrapped")
	}

	rec := httptest.NewRecorder()
	AccessLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("middleware must preserve http.Flusher for NDJSON streams")
		}
		w.WriteHeader(http.StatusTeapot)
	})).ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want 418", rec.Code)
	}
}
