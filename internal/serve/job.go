package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"time"

	"wardrop/internal/obs"
	"wardrop/internal/scenario"
	"wardrop/internal/sweep"
	"wardrop/internal/timeline"
)

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: queued → running → done | failed. Cached submissions are
// born done.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job kinds.
const (
	kindScenario = "scenario"
	kindCampaign = "campaign"
	kindTask     = "task"
)

// JobStatus is the JSON view of one job — the body of GET /v1/jobs/{id} and
// the 202 response of an asynchronous submission.
type JobStatus struct {
	ID          string    `json:"id"`
	Kind        string    `json:"kind"`
	Fingerprint string    `json:"fingerprint"`
	State       JobState  `json:"state"`
	Error       string    `json:"error,omitempty"`
	Cached      bool      `json:"cached,omitempty"`
	Created     time.Time `json:"created"`
	// Lines counts the NDJSON lines emitted so far (see Stream).
	Lines int `json:"lines"`
	// Stream is the job's NDJSON stream path.
	Stream string `json:"stream"`
}

// streamLine is one NDJSON line of a job stream: a trajectory sample
// (scenario jobs), a replayed timeline event (time-varying scenario jobs),
// a task record (campaign jobs), the final result document, a terminal
// error, or a truncation marker (the attacher missed lines that were
// trimmed from the bounded replay buffer). Exactly one field is set per
// line.
type streamLine struct {
	Sample    *scenario.TrajectorySample `json:"sample,omitempty"`
	Event     *timeline.AppliedEvent     `json:"event,omitempty"`
	Record    *sweep.Record              `json:"record,omitempty"`
	Span      *obs.Span                  `json:"span,omitempty"`
	Result    json.RawMessage            `json:"result,omitempty"`
	Error     string                     `json:"error,omitempty"`
	Truncated bool                       `json:"truncated,omitempty"`
}

// truncatedLine is the marker emitted to stream attachers whose replay
// window was trimmed.
var truncatedLine = []byte("{\"truncated\":true}\n")

// job is one scheduled run: the parsed spec, its cancellation scope, and the
// append-only NDJSON line buffer streams replay and follow.
type job struct {
	id          string
	kind        string
	fingerprint string
	spec        *scenario.Spec
	campaign    *sweep.Campaign
	task        *sweep.TaskSpec
	ctx         context.Context
	cancel      context.CancelFunc
	created     time.Time
	// enqueued is when submit placed the job on the queue (zero for jobs
	// born done); trace, when positive, attaches a span tracer with that
	// ring capacity to the run and streams {"span":…} lines.
	enqueued time.Time
	trace    int

	mu     sync.Mutex
	state  JobState
	errMsg string
	cached bool
	// lines is the bounded replay buffer; base is the absolute stream index
	// of lines[0] (> 0 once old lines were trimmed to honour maxBytes) and
	// bufBytes the buffer's current size.
	lines    [][]byte
	base     int
	bufBytes int
	maxBytes int
	// notify is closed and replaced on every append/state change, waking
	// followers; done is closed exactly once on the terminal transition.
	notify chan struct{}
	done   chan struct{}
	// result is the final result document (one JSON line) of a done job.
	result []byte
}

// newJob builds a job whose stream retains at most maxBytes of replay
// buffer (<= 0: unbounded).
func newJob(kind, fingerprint string, parent context.Context, maxBytes int) *job {
	ctx, cancel := context.WithCancel(parent)
	return &job{
		kind:        kind,
		fingerprint: fingerprint,
		ctx:         ctx,
		cancel:      cancel,
		created:     time.Now(),
		state:       JobQueued,
		maxBytes:    maxBytes,
		notify:      make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// wakeLocked signals followers; callers hold j.mu.
func (j *job) wakeLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobQueued {
		j.state = JobRunning
		j.wakeLocked()
	}
}

// appendRawLocked appends one finished NDJSON line and trims the replay
// buffer back under its byte budget (always keeping the newest line, so the
// terminal result survives any budget). Callers hold j.mu.
func (j *job) appendRawLocked(b []byte) {
	j.lines = append(j.lines, b)
	j.bufBytes += len(b)
	for j.maxBytes > 0 && j.bufBytes > j.maxBytes && len(j.lines) > 1 {
		j.bufBytes -= len(j.lines[0])
		j.lines[0] = nil
		j.lines = j.lines[1:]
		j.base++
	}
}

// appendLine marshals v and appends it to the stream buffer. Marshal
// failures are impossible for the line shapes the server emits; they are
// dropped rather than poisoning the stream.
func (j *job) appendLine(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendRawLocked(append(b, '\n'))
	j.wakeLocked()
}

// complete transitions to done with the final result document (one JSON
// line, trailing newline included), appending it to the stream wrapped as a
// result line. cached marks results replayed from the LRU cache.
func (j *job) complete(result []byte, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return
	}
	j.result = result
	j.cached = cached
	var line bytes.Buffer
	line.Grow(len(result) + 16)
	line.WriteString(`{"result":`)
	line.Write(bytes.TrimRight(result, "\n"))
	line.WriteString("}\n")
	j.appendRawLocked(line.Bytes())
	j.state = JobDone
	j.wakeLocked()
	close(j.done)
}

// fail transitions to failed, appending a terminal error line.
func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return
	}
	j.errMsg = err.Error()
	if b, merr := json.Marshal(streamLine{Error: j.errMsg}); merr == nil {
		j.appendRawLocked(append(b, '\n'))
	}
	j.state = JobFailed
	j.wakeLocked()
	close(j.done)
}

func (j *job) terminalLocked() bool {
	return j.state == JobDone || j.state == JobFailed
}

func (j *job) failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == JobFailed
}

// resultBytes returns the final result document of a done job.
func (j *job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		Kind:        j.kind,
		Fingerprint: j.fingerprint,
		State:       j.state,
		Error:       j.errMsg,
		Cached:      j.cached,
		Created:     j.created,
		Lines:       j.base + len(j.lines),
		Stream:      "/v1/jobs/" + j.id + "/stream",
	}
}

// follow returns the buffered lines at absolute stream index from onward,
// the next index, the channel to wait on for more, whether from fell below
// the trimmed replay window (the caller owes the client a truncation
// marker), and whether the job is terminal (no further lines will ever
// come — decided under the same lock as the line snapshot, so a terminal
// report with all lines consumed is final).
func (j *job) follow(from int) (lines [][]byte, next int, notify <-chan struct{}, truncated, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < j.base {
		truncated = true
		from = j.base
	}
	end := j.base + len(j.lines)
	if from > end {
		from = end
	}
	// Copied under the lock: a live sub-slice would alias backing-array
	// slots the trim loop concurrently nils out.
	lines = make([][]byte, end-from)
	copy(lines, j.lines[from-j.base:])
	return lines, end, j.notify, truncated, j.terminalLocked()
}
