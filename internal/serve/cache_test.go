package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"wardrop/internal/catalog"
	"wardrop/internal/flow"
	"wardrop/internal/scenario"
	"wardrop/internal/topo"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// a was just used, so adding c evicts b.
	c.Add("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Re-adding an existing key updates in place without eviction.
	c.Add("a", []byte("A2"))
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("A2")) {
		t.Fatal("update lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len after update = %d, want 2", c.Len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(-1)
	c.Add("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache reports entries")
	}
}

// TestJobPanicIsolation poisons a topology family whose constructor panics:
// the job must fail with a recorded panic while the worker (and every later
// request) keeps serving.
func TestJobPanicIsolation(t *testing.T) {
	err := topo.Catalog.Register(catalog.Entry[topo.Builder]{
		Name: "serve-test-panics",
		Doc:  "test-only family whose constructor panics",
		Build: func(args json.RawMessage) (topo.Builder, error) {
			return topo.Builder{Key: "serve-test-panics", New: func(seed uint64) (*flow.Instance, error) {
				panic("deliberate test panic")
			}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1})
	doc := `{"topology":{"family":"serve-test-panics"},"policy":{"kind":"replicator"},"updatePeriod":0.05,"maxPhases":10}`
	resp, body := postJSON(t, ts.URL+"/v1/scenarios", doc)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("poisoned job status %d (%s), want 422", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Fatalf("error body %q lacks an error field", body)
	}

	// The worker survived the panic.
	resp, _ = postJSON(t, ts.URL+"/v1/scenarios", pigouQuickDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request status %d", resp.StatusCode)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.JobsFailed != 1 {
		t.Fatalf("jobsFailed = %d, want 1", m.JobsFailed)
	}
}

// TestJobStreamBufferBounded pins the replay-buffer budget: a job that
// emits more than MaxStreamBytes keeps streaming live, but the retained
// replay window is trimmed from the front and late attachers are owed a
// truncation marker. The terminal result line always survives.
func TestJobStreamBufferBounded(t *testing.T) {
	j := newJob(kindScenario, "fp", context.Background(), 256)
	total := 50
	for i := 0; i < total; i++ {
		j.appendLine(streamLine{Sample: &scenario.TrajectorySample{Time: float64(i), Flow: []float64{1, 0}}})
	}
	j.complete([]byte("{\"phases\":1}\n"), false)

	lines, next, _, truncated, terminal := j.follow(0)
	if !truncated || !terminal {
		t.Fatalf("follow(0): truncated=%v terminal=%v, want true/true", truncated, terminal)
	}
	if next != total+1 {
		t.Fatalf("next = %d, want %d (every line indexed, trimmed or not)", next, total+1)
	}
	if len(lines) == total+1 {
		t.Fatal("buffer was not trimmed despite the 256-byte budget")
	}
	var bytesKept int
	for _, ln := range lines {
		bytesKept += len(ln)
	}
	if bytesKept > 256+len(lines[len(lines)-1]) {
		t.Fatalf("retained %d bytes, budget 256", bytesKept)
	}
	if !bytes.Contains(lines[len(lines)-1], []byte(`"result"`)) {
		t.Fatalf("terminal result line missing: %q", lines[len(lines)-1])
	}
	if got := j.status().Lines; got != total+1 {
		t.Fatalf("status.Lines = %d, want total emitted %d", got, total+1)
	}
	// A follower already past the window sees no truncation.
	if _, _, _, truncated, _ := j.follow(next); truncated {
		t.Fatal("up-to-date follower reported truncated")
	}
}

// TestFollowTrimRace pins the follow/trim aliasing fix: readers hold a
// copied snapshot, so the trim loop nil-ing old backing-array slots can
// never hand a stream a nil line (fails under -race without the copy).
func TestFollowTrimRace(t *testing.T) {
	j := newJob(kindScenario, "fp", context.Background(), 128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			j.appendLine(streamLine{Sample: &scenario.TrajectorySample{Time: float64(i), Flow: []float64{1}}})
		}
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		lines, _, _, _, _ := j.follow(0)
		for _, ln := range lines {
			if len(ln) == 0 {
				t.Fatal("follow returned a trimmed (nil) line")
			}
		}
	}
}
