package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wardrop/internal/scenario"
)

// Quick, deterministic scenario documents for the tests.
const (
	pigouQuickDoc = `{"name":"pigou-quick","topology":{"family":"pigou"},"policy":{"kind":"replicator"},"updatePeriod":0.05,"maxPhases":40}`
	pigouTrajDoc  = `{"name":"pigou-traj","topology":{"family":"pigou"},"policy":{"kind":"replicator"},"updatePeriod":0.05,"maxPhases":40,"recordEvery":10}`
	// slowDoc runs ~1e8 cheap phases: effectively forever, but it honours
	// cancellation between phases.
	slowDoc = `{"name":"slow","topology":{"family":"pigou"},"policy":{"kind":"replicator"},"updatePeriod":0.01,"horizon":1000000}`

	campaignDoc = `{"name":"mini","topologies":[{"family":"pigou"},{"family":"braess"}],"policies":[{"kind":"replicator"}],"updatePeriods":[0.05],"maxPhases":30,"delta":0.3,"eps":0.15}`

	// countDoc runs half a million agents through the mean-field count
	// engine — a population the per-agent engine would also hold, but here
	// it is cheap enough for a serving test.
	countDoc = `{"name":"pigou-count","topology":{"family":"pigou"},"policy":{"kind":"uniform"},"updatePeriod":0.25,"engine":{"kind":"count","n":500000,"seed":13},"maxPhases":30,"recordEvery":5}`
)

// newTestServer starts a Server on an httptest listener and tears both down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		// A short deadline: tests may leave deliberately slow jobs running,
		// and Close cancels them once it expires.
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// referenceResult runs the scenario through the library directly — the
// exact pipeline `wardsim -scenario -json` uses — and returns the encoded
// result document.
func referenceResult(t *testing.T, doc string) []byte {
	t.Helper()
	spec, err := scenario.Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, events, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := scenario.NewRunResult(spec, res, events)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestScenarioSyncByteIdentityAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	want := referenceResult(t, pigouQuickDoc)

	resp, body := postJSON(t, ts.URL+"/v1/scenarios", pigouQuickDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("served result differs from the library pipeline:\n got: %s\nwant: %s", body, want)
	}
	if n := s.EngineRuns(); n != 1 {
		t.Fatalf("engine runs after first request = %d, want 1", n)
	}

	// The identical spec with reordered fields and different whitespace is
	// the same fingerprint: a cache hit that never touches an engine.
	reordered := "{\n \"maxPhases\": 40, \"updatePeriod\": 0.05,\n \"policy\": {\"kind\": \"replicator\"}, \"topology\": {\"family\": \"pigou\"}, \"name\": \"pigou-quick\"}"
	resp, body = postJSON(t, ts.URL+"/v1/scenarios", reordered)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("cached body differs from the first response")
	}
	if n := s.EngineRuns(); n != 1 {
		t.Fatalf("engine runs after cached repeat = %d, want 1 (cache must not touch an engine)", n)
	}

	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache counters = %d hits / %d misses, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", m.CacheHitRate)
	}
	if m.JobsRun != 1 || m.RunLatencyMsP50 <= 0 || m.RunLatencyMsP99 < m.RunLatencyMsP50 {
		t.Fatalf("unexpected job metrics: %+v", m)
	}
}

// A count-engine spec is a first-class citizen of the serving layer: the
// registry-built engine, the fingerprint and the result cache all apply with
// no count-specific code anywhere in serve.
func TestScenarioCountEngineByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	want := referenceResult(t, countDoc)

	resp, body := postJSON(t, ts.URL+"/v1/scenarios", countDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("served count result differs from the library pipeline:\n got: %s\nwant: %s", body, want)
	}
	// The seeded count engine is deterministic, so the repeat is a pure
	// cache hit with the identical document.
	resp, body = postJSON(t, ts.URL+"/v1/scenarios", countDoc)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("cached count body differs from the first response")
	}
	if n := s.EngineRuns(); n != 1 {
		t.Fatalf("engine runs = %d, want 1", n)
	}
	// A population beyond the per-agent cap surfaces the count hint as a
	// spec error, not an engine crash.
	resp, body = postJSON(t, ts.URL+"/v1/scenarios",
		`{"topology":{"family":"pigou"},"policy":{"kind":"uniform"},"updatePeriod":0.25,"engine":{"kind":"agents","n":16777217},"maxPhases":5}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "count") {
		t.Fatalf("over-cap agents spec: status %d body %s", resp.StatusCode, body)
	}
}

func TestScenarioBadSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, bad := range []string{
		"{not json",
		`{"horizon":10}`, // no instance/topology
		`{"topology":{"family":"nope"},"policy":{"kind":"replicator"},"updatePeriod":0.05,"horizon":1}`,
	} {
		resp, body := postJSON(t, ts.URL+"/v1/scenarios", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d (%s), want 400", bad, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("POST %q: error body %q lacks an error field", bad, body)
		}
	}
}

func TestClientDisconnectFreesWorkerAndFailsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/scenarios", strings.NewReader(slowDoc))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	// Wait for the slow job to occupy the single worker, then disconnect.
	waitFor(t, time.Second, func() bool { return s.met.jobsRunning() >= 1 })
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("expected the aborted request to error")
	}

	// The freed worker slot must be able to run the next request.
	resp, body := postJSON(t, ts.URL+"/v1/scenarios", pigouQuickDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request: status %d (%s)", resp.StatusCode, body)
	}

	// The aborted job is retained in failed state.
	var jobs []JobStatus
	getJSON(t, ts.URL+"/v1/jobs", &jobs)
	if len(jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(jobs))
	}
	if jobs[0].State != JobFailed {
		t.Fatalf("aborted job state = %s, want %s", jobs[0].State, JobFailed)
	}
	if jobs[1].State != JobDone {
		t.Fatalf("follow-up job state = %s, want %s", jobs[1].State, JobDone)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAsyncScenarioJobStreamsTrajectory(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/scenarios?mode=job", pigouTrajDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d (%s), want 202", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Stream == "" {
		t.Fatalf("job resource incomplete: %+v", st)
	}

	sresp, err := http.Get(ts.URL + st.Stream)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var samples int
	var sawResult bool
	scanner := bufio.NewScanner(sresp.Body)
	for scanner.Scan() {
		var line struct {
			Sample *scenario.TrajectorySample `json:"sample"`
			Result *scenario.RunResult        `json:"result"`
			Error  string                     `json:"error"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		switch {
		case line.Sample != nil:
			samples++
			if sawResult {
				t.Fatal("sample after the terminal result line")
			}
		case line.Result != nil:
			sawResult = true
			if line.Result.Phases != 40 {
				t.Fatalf("streamed result phases = %d, want 40", line.Result.Phases)
			}
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	// recordEvery=10 over 40 phases: samples at phases 0,10,20,30.
	if samples != 4 || !sawResult {
		t.Fatalf("stream had %d samples (want 4), result=%v", samples, sawResult)
	}

	getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &st)
	if st.State != JobDone {
		t.Fatalf("job state = %s, want done", st.State)
	}
}

func TestCampaignJobStreamAndMemoization(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", campaignDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d (%s), want 202", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(ts.URL + st.Stream)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var records int
	var result *CampaignResult
	scanner := bufio.NewScanner(sresp.Body)
	for scanner.Scan() {
		var line struct {
			Record *json.RawMessage `json:"record"`
			Result *CampaignResult  `json:"result"`
			Error  string           `json:"error"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		switch {
		case line.Record != nil:
			records++
		case line.Result != nil:
			result = line.Result
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if records != 2 {
		t.Fatalf("streamed %d records, want 2", records)
	}
	if result == nil || result.Tasks != 2 || result.Failed != 0 || len(result.Cells) != 2 {
		t.Fatalf("unexpected campaign result: %+v", result)
	}
	runs := s.EngineRuns()

	// An identical campaign replays the memoized summary without running.
	resp, body = postJSON(t, ts.URL+"/v1/campaigns", campaignDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d (%s), want 200 cached", resp.StatusCode, body)
	}
	var cached JobStatus
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || cached.State != JobDone {
		t.Fatalf("repeat campaign not served from cache: %+v", cached)
	}
	if s.EngineRuns() != runs {
		t.Fatal("cached campaign touched an engine")
	}
}

func TestQueueFullRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the single worker with a slow async job...
	resp, body := postJSON(t, ts.URL+"/v1/scenarios?mode=job", slowDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow job status %d (%s)", resp.StatusCode, body)
	}
	// ...fill the queue, allowing for the race where the worker dequeues
	// the first job before the filler lands...
	var sawFull bool
	for i := 0; i < 3 && !sawFull; i++ {
		doc := strings.Replace(slowDoc, "slow", fmt.Sprintf("slow-%d", i), 1)
		resp, _ = postJSON(t, ts.URL+"/v1/scenarios?mode=job", doc)
		sawFull = resp.StatusCode == http.StatusServiceUnavailable
	}
	if !sawFull {
		t.Fatal("queue never reported full")
	}
}

func TestGracefulCloseDrainsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/scenarios?mode=job", pigouQuickDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	if got := s.jobByID(st.ID).status().State; got != JobDone {
		t.Fatalf("queued job state after drain = %s, want done", got)
	}

	// Draining servers still answer cache hits but refuse new work.
	resp, _ = postJSON(t, ts.URL+"/v1/scenarios", pigouQuickDoc)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-drain cached request: status %d X-Cache %q, want 200 hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	uncached := strings.Replace(pigouQuickDoc, "pigou-quick", "pigou-uncached", 1)
	resp, _ = postJSON(t, ts.URL+"/v1/scenarios", uncached)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission status %d, want 503", resp.StatusCode)
	}
}

func TestCloseDeadlineCancelsRunningJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/scenarios?mode=job", slowDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	waitFor(t, time.Second, func() bool { return s.met.jobsRunning() >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("deadline close returned %v, want context.DeadlineExceeded", err)
	}
}

func TestHealthzAndCatalog(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var h map[string]any
	getJSON(t, ts.URL+"/healthz", &h)
	if h["status"] != "ok" || h["draining"] != false {
		t.Fatalf("healthz = %v", h)
	}
	var cat []struct{ Kind, Name string }
	getJSON(t, ts.URL+"/v1/catalog", &cat)
	if len(cat) == 0 {
		t.Fatal("empty catalog")
	}
	found := false
	for _, c := range cat {
		if c.Kind == "topology" && c.Name == "pigou" {
			found = true
		}
	}
	if !found {
		t.Fatal("catalog lacks the pigou topology")
	}
}

// TestCacheHammer drives the cache from many concurrent clients — the
// -race hammer: a mix of one shared spec (hits after the first miss) and
// per-goroutine unique specs (misses), all of which must return consistent
// bodies.
func TestCacheHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, CacheEntries: 64})
	want := referenceResult(t, pigouQuickDoc)

	const goroutines = 16
	const perG = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				doc := pigouQuickDoc
				unique := i%3 == 0
				if unique {
					doc = strings.Replace(doc, "pigou-quick", fmt.Sprintf("pigou-quick-%d-%d", g, i), 1)
				}
				resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(doc))
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				if !unique && !bytes.Equal(body, want) {
					errs <- fmt.Errorf("shared-spec body diverged: %s", body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
