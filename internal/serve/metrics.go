package serve

import (
	"time"

	"wardrop/internal/obs"
)

// Metrics is the JSON body of GET /metrics: the service's cumulative
// counters plus run-latency percentiles over a sliding window of recent
// jobs. The document is assembled from the server's obs.Registry — the same
// instruments `GET /metrics?format=prom` exposes in Prometheus text format —
// and its shape is pinned byte-for-byte by the serve tests.
type Metrics struct {
	// JobsRun counts jobs executed by the worker pool (cache hits are not
	// jobs); JobsFailed the subset that ended failed (bad specs, panics,
	// client disconnects).
	JobsRun    int64 `json:"jobsRun"`
	JobsFailed int64 `json:"jobsFailed"`
	// EngineRuns counts simulation runs executed on behalf of jobs: one per
	// scenario job, one per completed campaign task record (duplicate-task
	// records cloned by the sweep dedup pass count as their representative).
	EngineRuns int64 `json:"engineRuns"`
	// CacheHits / CacheMisses count result-cache lookups across both tiers;
	// CacheHitRate is hits / (hits + misses), 0 before the first lookup.
	// CacheEntries is the current in-memory cache population.
	CacheHits    int64   `json:"cacheHits"`
	CacheMisses  int64   `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
	CacheEntries int     `json:"cacheEntries"`
	// StoreHits is the subset of CacheHits served from the durable store
	// (an LRU miss promoted from disk); StorePuts counts documents written
	// through to it and StoreErrors its read/write failures (corrupt objects
	// are quarantined and counted here). StoreObjects / StoreBytes are the
	// store's current census. All zero when no -store is configured.
	StoreHits    int64 `json:"storeHits,omitempty"`
	StorePuts    int64 `json:"storePuts,omitempty"`
	StoreErrors  int64 `json:"storeErrors,omitempty"`
	StoreObjects int64 `json:"storeObjects,omitempty"`
	StoreBytes   int64 `json:"storeBytes,omitempty"`
	// QueueDepth is the number of jobs waiting for a worker right now,
	// QueueCapacity the queue bound, and QueueHighWater the deepest the
	// queue has ever been — together they say how close the service has come
	// to shedding load with 503s. JobsRunning is the number of jobs being
	// executed; Workers the pool size.
	QueueDepth      int     `json:"queueDepth"`
	QueueCapacity   int     `json:"queueCapacity"`
	QueueSaturation float64 `json:"queueSaturation"`
	QueueHighWater  int64   `json:"queueHighWater"`
	JobsRunning     int64   `json:"jobsRunning"`
	Workers         int     `json:"workers"`
	// StoreProbe mirrors the /healthz durable-tier probe outcome ("ok",
	// "disabled", or the probe error), so a metrics scrape sees the same
	// readiness signal the probe endpoint reports.
	StoreProbe string `json:"storeProbe"`
	// RunLatencyMsP50 / P99 are percentiles of wall-clock job latency over
	// the sliding sample window (0 before the first completed job).
	RunLatencyMsP50 float64 `json:"runLatencyMsP50"`
	RunLatencyMsP99 float64 `json:"runLatencyMsP99"`
}

// metrics holds the server's instruments, pre-registered in one obs.Registry
// so the hot paths only touch atomics. The run-latency window lives inside
// the serve_run_ms histogram; Quantile answers exactly over the filled part
// of the window, never over unwritten slots.
type metrics struct {
	reg *obs.Registry

	jobsRun, jobsFailed               *obs.Counter
	cacheHits, cacheMisses            *obs.Counter
	storeHits, storePuts, storeErrors *obs.Counter
	queueHighWater                    *obs.Gauge
	running                           *obs.Gauge

	// Per-stage job timings: time spent waiting for a worker, executing the
	// engine, and looking a fingerprint up through the cache tiers.
	runMs, queueWaitMs, cacheLookupMs *obs.Histogram
}

func newMetrics(window int, reg *obs.Registry) *metrics {
	if window <= 0 {
		window = 512
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		reg:            reg,
		jobsRun:        reg.Counter("serve_jobs_total", "jobs executed by the worker pool"),
		jobsFailed:     reg.Counter("serve_jobs_failed_total", "jobs that ended failed"),
		cacheHits:      reg.Counter("serve_cache_hits_total", "result-cache hits across both tiers"),
		cacheMisses:    reg.Counter("serve_cache_misses_total", "result-cache misses that scheduled work"),
		storeHits:      reg.Counter("serve_store_hits_total", "cache hits served from the durable store"),
		storePuts:      reg.Counter("serve_store_puts_total", "result documents written through to the store"),
		storeErrors:    reg.Counter("serve_store_errors_total", "durable-store read/write failures"),
		queueHighWater: reg.Gauge("serve_queue_high_water", "deepest the job queue has ever been"),
		running:        reg.Gauge("serve_jobs_running", "jobs currently executing"),
		runMs:          reg.HistogramWindow("serve_run_ms", "job wall-clock latency, milliseconds", nil, window),
		queueWaitMs:    reg.Histogram("serve_queue_wait_ms", "time jobs wait for a worker, milliseconds", nil),
		cacheLookupMs:  reg.Histogram("serve_cache_lookup_ms", "fingerprint lookup latency across cache tiers, milliseconds", nil),
	}
}

// ms converts a duration to float64 milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// jobsRunning reports the number of jobs currently executing.
func (m *metrics) jobsRunning() int64 { return int64(m.running.Value()) }

// noteQueueDepth ratchets the queue high-water mark up to depth.
func (m *metrics) noteQueueDepth(depth int64) { m.queueHighWater.SetMax(float64(depth)) }

// observe records one job's wall-clock latency.
func (m *metrics) observe(d time.Duration) { m.runMs.Observe(ms(d)) }

// percentiles returns the p50/p99 job latency over the window using the
// nearest-rank rule.
func (m *metrics) percentiles() (p50, p99 float64) {
	return m.runMs.Quantile(0.50), m.runMs.Quantile(0.99)
}
