package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the JSON body of GET /metrics: the service's cumulative
// counters plus run-latency percentiles over a sliding window of recent
// jobs.
type Metrics struct {
	// JobsRun counts jobs executed by the worker pool (cache hits are not
	// jobs); JobsFailed the subset that ended failed (bad specs, panics,
	// client disconnects).
	JobsRun    int64 `json:"jobsRun"`
	JobsFailed int64 `json:"jobsFailed"`
	// EngineRuns counts simulation runs executed on behalf of jobs: one per
	// scenario job, one per completed campaign task record (duplicate-task
	// records cloned by the sweep dedup pass count as their representative).
	EngineRuns int64 `json:"engineRuns"`
	// CacheHits / CacheMisses count result-cache lookups across both tiers;
	// CacheHitRate is hits / (hits + misses), 0 before the first lookup.
	// CacheEntries is the current in-memory cache population.
	CacheHits    int64   `json:"cacheHits"`
	CacheMisses  int64   `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
	CacheEntries int     `json:"cacheEntries"`
	// StoreHits is the subset of CacheHits served from the durable store
	// (an LRU miss promoted from disk); StorePuts counts documents written
	// through to it and StoreErrors its read/write failures (corrupt objects
	// are quarantined and counted here). StoreObjects / StoreBytes are the
	// store's current census. All zero when no -store is configured.
	StoreHits    int64 `json:"storeHits,omitempty"`
	StorePuts    int64 `json:"storePuts,omitempty"`
	StoreErrors  int64 `json:"storeErrors,omitempty"`
	StoreObjects int64 `json:"storeObjects,omitempty"`
	StoreBytes   int64 `json:"storeBytes,omitempty"`
	// QueueDepth is the number of jobs waiting for a worker right now,
	// QueueCapacity the queue bound, and QueueHighWater the deepest the
	// queue has ever been — together they say how close the service has come
	// to shedding load with 503s. JobsRunning is the number of jobs being
	// executed; Workers the pool size.
	QueueDepth      int     `json:"queueDepth"`
	QueueCapacity   int     `json:"queueCapacity"`
	QueueSaturation float64 `json:"queueSaturation"`
	QueueHighWater  int64   `json:"queueHighWater"`
	JobsRunning     int64   `json:"jobsRunning"`
	Workers         int     `json:"workers"`
	// StoreProbe mirrors the /healthz durable-tier probe outcome ("ok",
	// "disabled", or the probe error), so a metrics scrape sees the same
	// readiness signal the probe endpoint reports.
	StoreProbe string `json:"storeProbe"`
	// RunLatencyMsP50 / P99 are percentiles of wall-clock job latency over
	// the sliding sample window (0 before the first completed job).
	RunLatencyMsP50 float64 `json:"runLatencyMsP50"`
	RunLatencyMsP99 float64 `json:"runLatencyMsP99"`
}

// metrics aggregates the service counters. Latencies go into a fixed-size
// ring so the percentile cost is bounded regardless of uptime.
type metrics struct {
	jobsRun, jobsFailed               atomic.Int64
	cacheHits, cacheMisses            atomic.Int64
	storeHits, storePuts, storeErrors atomic.Int64
	queueHighWater                    atomic.Int64
	running                           atomic.Int64

	mu   sync.Mutex
	ring []float64 // job latencies, milliseconds
	next int
	n    int
}

func newMetrics(window int) *metrics {
	if window <= 0 {
		window = 512
	}
	return &metrics{ring: make([]float64, window)}
}

// jobsRunning reports the number of jobs currently executing.
func (m *metrics) jobsRunning() int64 { return m.running.Load() }

// noteQueueDepth ratchets the queue high-water mark up to depth.
func (m *metrics) noteQueueDepth(depth int64) {
	for {
		cur := m.queueHighWater.Load()
		if depth <= cur || m.queueHighWater.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// observe records one job's wall-clock latency.
func (m *metrics) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ring[m.next] = ms
	m.next = (m.next + 1) % len(m.ring)
	if m.n < len(m.ring) {
		m.n++
	}
}

// percentiles returns the p50/p99 job latency over the window using the
// nearest-rank rule.
func (m *metrics) percentiles() (p50, p99 float64) {
	m.mu.Lock()
	sample := append([]float64(nil), m.ring[:m.n]...)
	m.mu.Unlock()
	if len(sample) == 0 {
		return 0, 0
	}
	sort.Float64s(sample)
	rank := func(p float64) float64 {
		i := int(p*float64(len(sample))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sample) {
			i = len(sample) - 1
		}
		return sample[i]
	}
	return rank(0.50), rank(0.99)
}
