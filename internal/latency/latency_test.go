package latency

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConstant(t *testing.T) {
	c := Constant{C: 3}
	if c.Value(0.7) != 3 || c.Derivative(0.2) != 0 || c.SlopeBound() != 0 {
		t.Error("constant basics wrong")
	}
	if !approx(c.Integral(0.5), 1.5, 1e-15) {
		t.Errorf("Integral = %g, want 1.5", c.Integral(0.5))
	}
}

func TestLinear(t *testing.T) {
	l := Linear{Slope: 2, Offset: 1}
	if !approx(l.Value(0.5), 2, 1e-15) {
		t.Errorf("Value = %g", l.Value(0.5))
	}
	if l.Derivative(0.3) != 2 || l.SlopeBound() != 2 {
		t.Error("derivative wrong")
	}
	if !approx(l.Integral(1), 2, 1e-15) { // x^2 + x at 1
		t.Errorf("Integral = %g, want 2", l.Integral(1))
	}
}

func TestLinearNegativeSlopeBoundClamped(t *testing.T) {
	l := Linear{Slope: -1, Offset: 5}
	if l.SlopeBound() != 0 {
		t.Errorf("SlopeBound = %g, want 0 for decreasing affine", l.SlopeBound())
	}
}

func TestPolynomial(t *testing.T) {
	p, err := NewPolynomial(1, 0, 3) // 1 + 3x^2
	if err != nil {
		t.Fatalf("NewPolynomial: %v", err)
	}
	if !approx(p.Value(2), 13, 1e-12) {
		t.Errorf("Value(2) = %g, want 13", p.Value(2))
	}
	if !approx(p.Derivative(2), 12, 1e-12) {
		t.Errorf("Derivative(2) = %g, want 12", p.Derivative(2))
	}
	if !approx(p.Integral(1), 2, 1e-12) { // x + x^3 at 1
		t.Errorf("Integral(1) = %g, want 2", p.Integral(1))
	}
	if !approx(p.SlopeBound(), 6, 1e-12) {
		t.Errorf("SlopeBound = %g, want 6", p.SlopeBound())
	}
}

func TestNewPolynomialRejectsNegativeCoeff(t *testing.T) {
	if _, err := NewPolynomial(1, -2); !errors.Is(err, ErrBadParam) {
		t.Errorf("error = %v, want ErrBadParam", err)
	}
}

func TestMonomial(t *testing.T) {
	m := Monomial{Coef: 2, Degree: 3}
	if !approx(m.Value(0.5), 0.25, 1e-15) {
		t.Errorf("Value = %g", m.Value(0.5))
	}
	if !approx(m.Derivative(1), 6, 1e-15) || !approx(m.SlopeBound(), 6, 1e-15) {
		t.Error("derivative wrong")
	}
	if !approx(m.Integral(1), 0.5, 1e-15) {
		t.Errorf("Integral = %g", m.Integral(1))
	}
	zero := Monomial{Coef: 5, Degree: 0}
	if zero.Derivative(0.3) != 0 {
		t.Error("degree-0 monomial has nonzero derivative")
	}
}

func TestBPR(t *testing.T) {
	b, err := NewBPR(2, 0.8)
	if err != nil {
		t.Fatalf("NewBPR: %v", err)
	}
	if !approx(b.Value(0), 2, 1e-15) {
		t.Errorf("free-flow value = %g", b.Value(0))
	}
	x := 0.8 // at capacity: t0*(1+0.15)
	if !approx(b.Value(x), 2.3, 1e-12) {
		t.Errorf("Value(cap) = %g, want 2.3", b.Value(x))
	}
	// Closed-form integral vs Simpson.
	if !approx(b.Integral(0.9), SimpsonIntegral(b, 0.9, 1e-12), 1e-9) {
		t.Error("BPR integral mismatch with Simpson")
	}
	if _, err := NewBPR(-1, 1); !errors.Is(err, ErrBadParam) {
		t.Error("negative free time accepted")
	}
	if _, err := NewBPR(1, 0); !errors.Is(err, ErrBadParam) {
		t.Error("zero capacity accepted")
	}
}

func TestMM1(t *testing.T) {
	m, err := NewMM1(2)
	if err != nil {
		t.Fatalf("NewMM1: %v", err)
	}
	if !approx(m.Value(1), 1, 1e-15) {
		t.Errorf("Value(1) = %g, want 1", m.Value(1))
	}
	if !approx(m.Derivative(0), 0.5, 1e-15) {
		t.Errorf("Derivative(0) = %g, want 1/2", m.Derivative(0))
	}
	if !approx(m.SlopeBound(), 2, 1e-15) {
		t.Errorf("SlopeBound = %g, want 2", m.SlopeBound())
	}
	if !approx(m.Integral(1), SimpsonIntegral(m, 1, 1e-12), 1e-9) {
		t.Error("MM1 integral mismatch with Simpson")
	}
	if _, err := NewMM1(1); !errors.Is(err, ErrBadParam) {
		t.Error("capacity 1 accepted")
	}
}

func TestScaledShiftedSum(t *testing.T) {
	base := Linear{Slope: 1, Offset: 0}
	s := Scaled{F: base, Factor: 3}
	if !approx(s.Value(2), 6, 1e-15) || !approx(s.Derivative(0), 3, 1e-15) ||
		!approx(s.Integral(1), 1.5, 1e-15) || !approx(s.SlopeBound(), 3, 1e-15) {
		t.Error("Scaled wrong")
	}
	sh := Shifted{F: base, Offset: 2}
	if !approx(sh.Value(1), 3, 1e-15) || !approx(sh.Integral(1), 2.5, 1e-15) ||
		sh.Derivative(0.5) != 1 || sh.SlopeBound() != 1 {
		t.Error("Shifted wrong")
	}
	sum := Sum{A: base, B: Constant{C: 1}}
	if !approx(sum.Value(1), 2, 1e-15) || !approx(sum.Integral(1), 1.5, 1e-15) ||
		sum.Derivative(0.1) != 1 || sum.SlopeBound() != 1 {
		t.Error("Sum wrong")
	}
}

func TestCheckAcceptsMonotone(t *testing.T) {
	for _, f := range []Function{
		Constant{C: 1}, Linear{Slope: 2, Offset: 0}, Monomial{Coef: 1, Degree: 4},
		Kink(3), mustMM1(t, 2),
	} {
		if err := Check(f, 0); err != nil {
			t.Errorf("Check(%s): %v", f, err)
		}
	}
}

func mustMM1(t *testing.T, c float64) MM1 {
	t.Helper()
	m, err := NewMM1(c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckRejectsBadFunctions(t *testing.T) {
	neg := Func{V: func(x float64) float64 { return x - 0.5 }}
	if err := Check(neg, 64); !errors.Is(err, ErrNegativeValue) {
		t.Errorf("negative function error = %v", err)
	}
	dec := Func{V: func(x float64) float64 { return 1 - x }}
	if err := Check(dec, 64); !errors.Is(err, ErrDecreasing) {
		t.Errorf("decreasing function error = %v", err)
	}
}

func TestStringMethods(t *testing.T) {
	for _, f := range []Function{
		Constant{C: 1}, Linear{Slope: 1, Offset: 2}, Polynomial{Coeffs: []float64{1}},
		Monomial{Coef: 1, Degree: 2}, BPR{FreeTime: 1, Capacity: 1}, MM1{Capacity: 2},
		Scaled{F: Constant{C: 1}, Factor: 2}, Shifted{F: Constant{C: 1}, Offset: 1},
		Sum{A: Constant{C: 1}, B: Constant{C: 2}}, Kink(1),
		Func{V: func(x float64) float64 { return x }},
		Func{V: func(x float64) float64 { return x }, Name: "id"},
	} {
		if f.String() == "" {
			t.Errorf("%T has empty String", f)
		}
	}
}

// Property: for every library function, the closed-form Integral matches
// adaptive Simpson on random upper limits in [0,1].
func TestIntegralMatchesSimpsonProperty(t *testing.T) {
	funcs := []Function{
		Linear{Slope: 3, Offset: 1},
		Polynomial{Coeffs: []float64{1, 2, 0, 4}},
		Monomial{Coef: 2, Degree: 5},
		BPR{FreeTime: 1.5, Capacity: 0.9},
		MM1{Capacity: 3},
		Kink(4),
	}
	prop := func(raw float64) bool {
		x := math.Abs(raw)
		x -= math.Floor(x) // into [0,1)
		for _, f := range funcs {
			if !approx(f.Integral(x), SimpsonIntegral(f, x, 1e-12), 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: derivative of Integral equals Value (fundamental theorem),
// checked by finite differences away from kinks.
func TestIntegralDerivativeConsistency(t *testing.T) {
	funcs := []Function{
		Linear{Slope: 2, Offset: 1},
		Polynomial{Coeffs: []float64{0.5, 1, 2}},
		MM1{Capacity: 2.5},
		BPR{FreeTime: 1, Capacity: 1},
	}
	const h = 1e-6
	for _, f := range funcs {
		for _, x := range []float64{0.1, 0.33, 0.5, 0.77, 0.9} {
			got := (f.Integral(x+h) - f.Integral(x-h)) / (2 * h)
			if !approx(got, f.Value(x), 1e-5) {
				t.Errorf("%s: d/dx Integral(%g) = %g, want %g", f, x, got, f.Value(x))
			}
		}
	}
}
