package latency

import "math"

// SimpsonIntegral numerically integrates f.Value over [0, x] with adaptive
// Simpson quadrature to the given absolute tolerance. It exists to
// cross-check the closed-form Integral implementations in tests and to
// support user-defined Funcs without an analytic antiderivative.
func SimpsonIntegral(f Function, x, tol float64) float64 {
	if x == 0 {
		return 0
	}
	sign := 1.0
	a, b := 0.0, x
	if x < 0 {
		sign, a, b = -1.0, x, 0.0
	}
	fa, fb := f.Value(a), f.Value(b)
	m := 0.5 * (a + b)
	fm := f.Value(m)
	whole := simpsonRule(a, b, fa, fm, fb)
	return sign * adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpsonRule(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f Function, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f.Value(lm), f.Value(rm)
	left := simpsonRule(a, m, fa, flm, fm)
	right := simpsonRule(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// Func adapts arbitrary closures into a Function. Derivative defaults to a
// central finite difference and Integral to adaptive Simpson when the
// corresponding closure is nil. SlopeBoundHint must be supplied by the user
// (scanning cannot bound a derivative in general); if zero, SlopeBound scans
// a 1024-point grid of finite differences as a best effort.
type Func struct {
	V              func(x float64) float64
	D              func(x float64) float64
	I              func(x float64) float64
	SlopeBoundHint float64
	Name           string
}

var _ Function = Func{}

// Value implements Function.
func (f Func) Value(x float64) float64 { return f.V(x) }

// Derivative implements Function.
func (f Func) Derivative(x float64) float64 {
	if f.D != nil {
		return f.D(x)
	}
	const h = 1e-6
	return (f.V(x+h) - f.V(x-h)) / (2 * h)
}

// Integral implements Function.
func (f Func) Integral(x float64) float64 {
	if f.I != nil {
		return f.I(x)
	}
	return SimpsonIntegral(f, x, 1e-10)
}

// SlopeBound implements Function.
func (f Func) SlopeBound() float64 {
	if f.SlopeBoundHint > 0 {
		return f.SlopeBoundHint
	}
	const n = 1024
	bound := 0.0
	for i := 0; i <= n; i++ {
		x := float64(i) / n
		bound = math.Max(bound, f.Derivative(x))
	}
	return bound
}

func (f Func) String() string {
	if f.Name != "" {
		return f.Name
	}
	return "func"
}
