package latency

import (
	"encoding/json"
	"fmt"

	"wardrop/internal/catalog"
)

// Catalog is the registry of latency-function kinds. The JSON spec layer
// (spec.Latency) and every file format embedding latency documents dispatch
// construction through it; users add kinds with Register (exposed at the
// root as wardrop.RegisterLatency) instead of editing the spec package.
var Catalog = newCatalog()

// catalogArgs mirrors the flat JSON fields of a latency document — the
// parameter vocabulary shared by the builtin kinds (spec.Latency carries the
// same fields for programmatic construction).
type catalogArgs struct {
	C        float64   `json:"c"`
	Slope    float64   `json:"slope"`
	Offset   float64   `json:"offset"`
	Coeffs   []float64 `json:"coeffs"`
	Coef     float64   `json:"coef"`
	Degree   int       `json:"degree"`
	FreeTime float64   `json:"freeTime"`
	Capacity float64   `json:"capacity"`
	Xs       []float64 `json:"xs"`
	Ys       []float64 `json:"ys"`
	Beta     float64   `json:"beta"`
}

// builtin wraps a constructor on the shared flat-args vocabulary into a
// catalog Build func.
func builtin(build func(a catalogArgs) (Function, error)) func(json.RawMessage) (Function, error) {
	return func(raw json.RawMessage) (Function, error) {
		var a catalogArgs
		if err := catalog.DecodeArgs(raw, &a); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadParam, err)
		}
		return build(a)
	}
}

func newCatalog() *catalog.Registry[Function] {
	r := catalog.NewRegistry[Function]("latency")
	r.MustRegister(catalog.Entry[Function]{
		Name: "constant",
		Doc:  "load-independent latency ℓ(x) = c",
		Params: []catalog.Param{
			{Name: "c", Type: "float", Doc: "the constant latency"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			return Constant{C: a.C}, nil
		}),
	})
	r.MustRegister(catalog.Entry[Function]{
		Name: "linear",
		Doc:  "affine latency ℓ(x) = slope·x + offset",
		Params: []catalog.Param{
			{Name: "slope", Type: "float", Doc: "per-unit-load latency increase"},
			{Name: "offset", Type: "float", Doc: "free-flow latency"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			return Linear{Slope: a.Slope, Offset: a.Offset}, nil
		}),
	})
	r.MustRegister(catalog.Entry[Function]{
		Name: "polynomial",
		Doc:  "ℓ(x) = Σ coeffs[i]·x^i with non-negative coefficients",
		Params: []catalog.Param{
			{Name: "coeffs", Type: "[]float", Doc: "coefficients, constant term first"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			return NewPolynomial(a.Coeffs...)
		}),
	})
	r.MustRegister(catalog.Entry[Function]{
		Name: "monomial",
		Doc:  "ℓ(x) = coef·x^degree",
		Params: []catalog.Param{
			{Name: "coef", Type: "float", Doc: "coefficient"},
			{Name: "degree", Type: "int", Doc: "exponent"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			return Monomial{Coef: a.Coef, Degree: a.Degree}, nil
		}),
	})
	r.MustRegister(catalog.Entry[Function]{
		Name: "bpr",
		Doc:  "Bureau of Public Roads latency freeTime·(1 + 0.15·(x/capacity)⁴)",
		Params: []catalog.Param{
			{Name: "freeTime", Type: "float", Doc: "free-flow travel time (>= 0)"},
			{Name: "capacity", Type: "float", Doc: "edge capacity (> 0)"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			return NewBPR(a.FreeTime, a.Capacity)
		}),
	})
	r.MustRegister(catalog.Entry[Function]{
		Name: "mm1",
		Doc:  "M/M/1 queueing latency x/(capacity − x)",
		Params: []catalog.Param{
			{Name: "capacity", Type: "float", Doc: "service capacity (> 1 so ℓ stays finite on [0,1])"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			return NewMM1(a.Capacity)
		}),
	})
	r.MustRegister(catalog.Entry[Function]{
		Name: "pwl",
		Doc:  "continuous piecewise-linear latency through breakpoints (xs[i], ys[i])",
		Params: []catalog.Param{
			{Name: "xs", Type: "[]float", Doc: "breakpoint loads, strictly increasing"},
			{Name: "ys", Type: "[]float", Doc: "breakpoint latencies, non-decreasing and non-negative"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			return NewPiecewiseLinear(a.Xs, a.Ys)
		}),
	})
	r.MustRegister(catalog.Entry[Function]{
		Name: "kink",
		Doc:  "the paper's §3.2 oscillation latency max{0, beta·(x − ½)}",
		Params: []catalog.Param{
			{Name: "beta", Type: "float", Doc: "slope above half load (> 0)"},
		},
		Build: builtin(func(a catalogArgs) (Function, error) {
			if a.Beta <= 0 {
				return nil, fmt.Errorf("%w: kink beta %g must be positive", ErrBadParam, a.Beta)
			}
			return Kink(a.Beta), nil
		}),
	})
	return r
}
