package latency

import (
	"fmt"
	"math"
)

// This file holds the load-axis and pricing wrappers the timeline subsystem
// composes onto base latency functions: CapacityScaled models capacity drops
// and upgrades by rescaling the congestion axis, and Marginal is the
// marginal-cost (social) latency ℓ̃ = ℓ + x·ℓ' used both for marginal-cost
// tolls and — via internal/solver — for computing social optima.

// CapacityScaled rescales the load axis of a wrapped function: flow x is
// served as if it were x/Capacity of the original edge. Capacity < 1 models
// a capacity drop (the edge congests earlier), Capacity > 1 an upgrade.
type CapacityScaled struct {
	F        Function
	Capacity float64
}

var _ Function = CapacityScaled{}

// Value implements Function.
func (c CapacityScaled) Value(x float64) float64 { return c.F.Value(x / c.Capacity) }

// Derivative implements Function by the chain rule.
func (c CapacityScaled) Derivative(x float64) float64 {
	return c.F.Derivative(x/c.Capacity) / c.Capacity
}

// Integral implements Function: ∫₀ˣ ℓ(u/c) du = c·∫₀^{x/c} ℓ(v) dv.
func (c CapacityScaled) Integral(x float64) float64 {
	return c.Capacity * c.F.Integral(x/c.Capacity)
}

// SlopeBound implements Function. The wrapped bound only certifies [0,1], but
// for Capacity < 1 the rescaled argument x/Capacity leaves that interval, so
// the analytic bound is combined with a conservative grid scan of the actual
// derivative over [0,1].
func (c CapacityScaled) SlopeBound() float64 {
	bound := c.F.SlopeBound() / c.Capacity
	const n = 256
	for i := 0; i <= n; i++ {
		x := float64(i) / n
		bound = math.Max(bound, c.Derivative(x))
	}
	return bound
}

func (c CapacityScaled) String() string {
	return fmt.Sprintf("cap(%s,c=%g)", c.F.String(), c.Capacity)
}

// Marginal wraps ℓ into the marginal-cost function ℓ̃(x) = ℓ(x) + x·ℓ'(x).
// Charging each agent its marginal externality is the classic toll that makes
// the Wardrop equilibrium coincide with the social optimum; it is also the
// transformation under which equilibria of the wrapped instance are optima of
// the original (Beckmann's correspondence).
type Marginal struct {
	F Function
}

var _ Function = Marginal{}

// Value implements Function.
func (m Marginal) Value(x float64) float64 {
	return m.F.Value(x) + x*m.F.Derivative(x)
}

// Derivative implements Function with a finite difference of the marginal
// value (second derivatives are not in the Function contract).
func (m Marginal) Derivative(x float64) float64 {
	const h = 1e-6
	return (m.Value(x+h) - m.Value(math.Max(0, x-h))) / (h + math.Min(x, h))
}

// Integral implements Function: d/dx [x·ℓ(x)] = ℓ + x·ℓ', so the
// antiderivative is exactly x·ℓ(x).
func (m Marginal) Integral(x float64) float64 { return x * m.F.Value(x) }

// SlopeBound implements Function with a conservative scan.
func (m Marginal) SlopeBound() float64 {
	const n = 256
	bound := 0.0
	for i := 0; i <= n; i++ {
		x := float64(i) / n
		bound = math.Max(bound, m.Derivative(x))
	}
	return bound
}

func (m Marginal) String() string { return "marginal(" + m.F.String() + ")" }
