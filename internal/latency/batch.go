package latency

import "sort"

// Program is a compiled batch evaluator over a fixed slice of latency
// functions, indexed by edge. Compile groups the edges by concrete function
// kind (constant, linear, polynomial, monomial, BPR, M/M/1, piecewise
// linear) so the hot loops of the simulation engines evaluate whole edge
// groups with concrete — statically dispatched, inlinable — method calls
// instead of one interface call per edge. Function kinds the compiler does
// not recognise (wrappers like Scaled/Shifted/Sum and user types) fall back
// to the interface, so a Program accepts any []Function.
//
// A Program is numerically transparent: Values and Integrals produce, for
// every edge, exactly the float64 the edge's own Value/Integral method
// produces — the batch loops invoke the same method bodies on concrete
// receivers — so replacing a per-edge interface loop with a Program changes
// no bits. Programs are immutable after Compile and safe for concurrent use.
type Program struct {
	n int

	constIdx []int32
	consts   []Constant

	linIdx []int32
	lins   []Linear

	polyIdx []int32
	polys   []Polynomial

	monoIdx []int32
	monos   []Monomial

	bprIdx []int32
	bprs   []BPR

	mm1Idx []int32
	mm1s   []MM1

	pwlIdx []int32
	pwls   []PiecewiseLinear

	genIdx []int32
	gens   []Function
}

// Compile groups fns by concrete kind and returns the batch program.
func Compile(fns []Function) *Program {
	p := &Program{n: len(fns)}
	for e, f := range fns {
		i := int32(e)
		switch g := f.(type) {
		case Constant:
			p.constIdx = append(p.constIdx, i)
			p.consts = append(p.consts, g)
		case Linear:
			p.linIdx = append(p.linIdx, i)
			p.lins = append(p.lins, g)
		case Polynomial:
			p.polyIdx = append(p.polyIdx, i)
			p.polys = append(p.polys, g)
		case Monomial:
			p.monoIdx = append(p.monoIdx, i)
			p.monos = append(p.monos, g)
		case BPR:
			p.bprIdx = append(p.bprIdx, i)
			p.bprs = append(p.bprs, g)
		case MM1:
			p.mm1Idx = append(p.mm1Idx, i)
			p.mm1s = append(p.mm1s, g)
		case PiecewiseLinear:
			p.pwlIdx = append(p.pwlIdx, i)
			p.pwls = append(p.pwls, g)
		default:
			p.genIdx = append(p.genIdx, i)
			p.gens = append(p.gens, f)
		}
	}
	return p
}

// NumEdges returns the number of functions the program was compiled from.
func (p *Program) NumEdges() int { return p.n }

// GroupSizes reports how many edges landed in each specialized group,
// keyed by kind name; "generic" counts the interface-dispatch fallback.
// Diagnostic: lets tests and docs verify a workload actually compiles to
// batch loops.
func (p *Program) GroupSizes() map[string]int {
	m := map[string]int{}
	add := func(k string, n int) {
		if n > 0 {
			m[k] = n
		}
	}
	add("constant", len(p.consts))
	add("linear", len(p.lins))
	add("polynomial", len(p.polys))
	add("monomial", len(p.monos))
	add("bpr", len(p.bprs))
	add("mm1", len(p.mm1s))
	add("pwl", len(p.pwls))
	add("generic", len(p.gens))
	return m
}

// Values writes out[e] = ℓ_e(flows[e]) for every edge. flows and out must
// have length NumEdges; they may alias distinct slices but not each other.
func (p *Program) Values(flows, out []float64) {
	for k, e := range p.constIdx {
		out[e] = p.consts[k].Value(flows[e])
	}
	for k, e := range p.linIdx {
		out[e] = p.lins[k].Value(flows[e])
	}
	for k, e := range p.polyIdx {
		out[e] = p.polys[k].Value(flows[e])
	}
	for k, e := range p.monoIdx {
		out[e] = p.monos[k].Value(flows[e])
	}
	for k, e := range p.bprIdx {
		out[e] = p.bprs[k].Value(flows[e])
	}
	for k, e := range p.mm1Idx {
		out[e] = p.mm1s[k].Value(flows[e])
	}
	for k, e := range p.pwlIdx {
		out[e] = p.pwls[k].Value(flows[e])
	}
	for k, e := range p.genIdx {
		out[e] = p.gens[k].Value(flows[e])
	}
}

// ValuesRange writes out[e] = ℓ_e(flows[e]) for every edge e in [e0, e1).
// Edges outside the range are untouched, so disjoint ranges may be
// evaluated concurrently into the same output slice: each group's index
// array is ascending (Compile appends in edge order), every edge belongs to
// exactly one group, and each out[e] is written by the same concrete method
// call Values would use — a range decomposition of Values changes no bits.
func (p *Program) ValuesRange(flows, out []float64, e0, e1 int32) {
	for k, n := groupRange(p.constIdx, e0, e1); k < n; k++ {
		out[p.constIdx[k]] = p.consts[k].Value(flows[p.constIdx[k]])
	}
	for k, n := groupRange(p.linIdx, e0, e1); k < n; k++ {
		out[p.linIdx[k]] = p.lins[k].Value(flows[p.linIdx[k]])
	}
	for k, n := groupRange(p.polyIdx, e0, e1); k < n; k++ {
		out[p.polyIdx[k]] = p.polys[k].Value(flows[p.polyIdx[k]])
	}
	for k, n := groupRange(p.monoIdx, e0, e1); k < n; k++ {
		out[p.monoIdx[k]] = p.monos[k].Value(flows[p.monoIdx[k]])
	}
	for k, n := groupRange(p.bprIdx, e0, e1); k < n; k++ {
		out[p.bprIdx[k]] = p.bprs[k].Value(flows[p.bprIdx[k]])
	}
	for k, n := groupRange(p.mm1Idx, e0, e1); k < n; k++ {
		out[p.mm1Idx[k]] = p.mm1s[k].Value(flows[p.mm1Idx[k]])
	}
	for k, n := groupRange(p.pwlIdx, e0, e1); k < n; k++ {
		out[p.pwlIdx[k]] = p.pwls[k].Value(flows[p.pwlIdx[k]])
	}
	for k, n := groupRange(p.genIdx, e0, e1); k < n; k++ {
		out[p.genIdx[k]] = p.gens[k].Value(flows[p.genIdx[k]])
	}
}

// IntegralsRange is ValuesRange for the per-edge potential terms.
func (p *Program) IntegralsRange(flows, out []float64, e0, e1 int32) {
	for k, n := groupRange(p.constIdx, e0, e1); k < n; k++ {
		out[p.constIdx[k]] = p.consts[k].Integral(flows[p.constIdx[k]])
	}
	for k, n := groupRange(p.linIdx, e0, e1); k < n; k++ {
		out[p.linIdx[k]] = p.lins[k].Integral(flows[p.linIdx[k]])
	}
	for k, n := groupRange(p.polyIdx, e0, e1); k < n; k++ {
		out[p.polyIdx[k]] = p.polys[k].Integral(flows[p.polyIdx[k]])
	}
	for k, n := groupRange(p.monoIdx, e0, e1); k < n; k++ {
		out[p.monoIdx[k]] = p.monos[k].Integral(flows[p.monoIdx[k]])
	}
	for k, n := groupRange(p.bprIdx, e0, e1); k < n; k++ {
		out[p.bprIdx[k]] = p.bprs[k].Integral(flows[p.bprIdx[k]])
	}
	for k, n := groupRange(p.mm1Idx, e0, e1); k < n; k++ {
		out[p.mm1Idx[k]] = p.mm1s[k].Integral(flows[p.mm1Idx[k]])
	}
	for k, n := groupRange(p.pwlIdx, e0, e1); k < n; k++ {
		out[p.pwlIdx[k]] = p.pwls[k].Integral(flows[p.pwlIdx[k]])
	}
	for k, n := groupRange(p.genIdx, e0, e1); k < n; k++ {
		out[p.genIdx[k]] = p.gens[k].Integral(flows[p.genIdx[k]])
	}
}

// groupRange returns the position range [k, n) of idx whose edge IDs fall
// in [e0, e1), exploiting that idx is ascending.
func groupRange(idx []int32, e0, e1 int32) (int, int) {
	lo := sort.Search(len(idx), func(i int) bool { return idx[i] >= e0 })
	hi := lo + sort.Search(len(idx)-lo, func(i int) bool { return idx[lo+i] >= e1 })
	return lo, hi
}

// Integrals writes out[e] = ∫₀^{flows[e]} ℓ_e(u) du for every edge — the
// per-edge Beckmann–McGuire–Winsten potential terms. Same shape contract as
// Values.
func (p *Program) Integrals(flows, out []float64) {
	for k, e := range p.constIdx {
		out[e] = p.consts[k].Integral(flows[e])
	}
	for k, e := range p.linIdx {
		out[e] = p.lins[k].Integral(flows[e])
	}
	for k, e := range p.polyIdx {
		out[e] = p.polys[k].Integral(flows[e])
	}
	for k, e := range p.monoIdx {
		out[e] = p.monos[k].Integral(flows[e])
	}
	for k, e := range p.bprIdx {
		out[e] = p.bprs[k].Integral(flows[e])
	}
	for k, e := range p.mm1Idx {
		out[e] = p.mm1s[k].Integral(flows[e])
	}
	for k, e := range p.pwlIdx {
		out[e] = p.pwls[k].Integral(flows[e])
	}
	for k, e := range p.genIdx {
		out[e] = p.gens[k].Integral(flows[e])
	}
}
