package latency

import (
	"math"
	"testing"
)

// TestProgramMatchesInterface pins the batch program to the per-edge
// interface path bit-for-bit for every builtin kind and the generic
// fallback, across a grid of loads including the boundaries.
func TestProgramMatchesInterface(t *testing.T) {
	poly, err := NewPolynomial(0.2, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	bpr, err := NewBPR(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	mm1, err := NewMM1(2)
	if err != nil {
		t.Fatal(err)
	}
	pwl, err := NewPiecewiseLinear([]float64{0, 0.5, 1}, []float64{0, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	fns := []Function{
		Constant{C: 0.3},
		Linear{Slope: 2, Offset: 0.1},
		poly,
		Monomial{Coef: 1.2, Degree: 4},
		bpr,
		mm1,
		pwl,
		Kink(3),
		Scaled{F: Linear{Slope: 1}, Factor: 2}, // generic fallback
		Shifted{F: Monomial{Coef: 1, Degree: 2}, Offset: 0.5},
		Sum{A: Constant{C: 1}, B: Linear{Slope: 1}},
	}
	prog := Compile(fns)
	if prog.NumEdges() != len(fns) {
		t.Fatalf("NumEdges = %d, want %d", prog.NumEdges(), len(fns))
	}
	flows := make([]float64, len(fns))
	values := make([]float64, len(fns))
	integrals := make([]float64, len(fns))
	for step := 0; step <= 64; step++ {
		x := float64(step) / 64
		for e := range flows {
			flows[e] = x
		}
		prog.Values(flows, values)
		prog.Integrals(flows, integrals)
		for e, f := range fns {
			if got, want := values[e], f.Value(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("edge %d (%s): Value(%g) = %v, want %v", e, f, x, got, want)
			}
			if got, want := integrals[e], f.Integral(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("edge %d (%s): Integral(%g) = %v, want %v", e, f, x, got, want)
			}
		}
	}
	sizes := prog.GroupSizes()
	if sizes["generic"] != 3 {
		t.Fatalf("generic group = %d, want 3 (%v)", sizes["generic"], sizes)
	}
}
