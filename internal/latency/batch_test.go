package latency

import (
	"math"
	"testing"
)

// TestProgramMatchesInterface pins the batch program to the per-edge
// interface path bit-for-bit for every builtin kind and the generic
// fallback, across a grid of loads including the boundaries.
func TestProgramMatchesInterface(t *testing.T) {
	poly, err := NewPolynomial(0.2, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	bpr, err := NewBPR(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	mm1, err := NewMM1(2)
	if err != nil {
		t.Fatal(err)
	}
	pwl, err := NewPiecewiseLinear([]float64{0, 0.5, 1}, []float64{0, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	fns := []Function{
		Constant{C: 0.3},
		Linear{Slope: 2, Offset: 0.1},
		poly,
		Monomial{Coef: 1.2, Degree: 4},
		bpr,
		mm1,
		pwl,
		Kink(3),
		Scaled{F: Linear{Slope: 1}, Factor: 2}, // generic fallback
		Shifted{F: Monomial{Coef: 1, Degree: 2}, Offset: 0.5},
		Sum{A: Constant{C: 1}, B: Linear{Slope: 1}},
	}
	prog := Compile(fns)
	if prog.NumEdges() != len(fns) {
		t.Fatalf("NumEdges = %d, want %d", prog.NumEdges(), len(fns))
	}
	flows := make([]float64, len(fns))
	values := make([]float64, len(fns))
	integrals := make([]float64, len(fns))
	for step := 0; step <= 64; step++ {
		x := float64(step) / 64
		for e := range flows {
			flows[e] = x
		}
		prog.Values(flows, values)
		prog.Integrals(flows, integrals)
		for e, f := range fns {
			if got, want := values[e], f.Value(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("edge %d (%s): Value(%g) = %v, want %v", e, f, x, got, want)
			}
			if got, want := integrals[e], f.Integral(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("edge %d (%s): Integral(%g) = %v, want %v", e, f, x, got, want)
			}
		}
	}
	sizes := prog.GroupSizes()
	if sizes["generic"] != 3 {
		t.Fatalf("generic group = %d, want 3 (%v)", sizes["generic"], sizes)
	}
}

// TestProgramRangeDecomposition pins ValuesRange/IntegralsRange to the
// whole-slice methods: any partition of [0, n) into ranges — including
// empty, single-edge and unbalanced cuts — must fill the output with
// exactly the bits Values/Integrals produce, and must never write outside
// its range. This is the contract the parallel evaluator's disjoint edge
// chunks rely on.
func TestProgramRangeDecomposition(t *testing.T) {
	poly, err := NewPolynomial(0.2, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	bpr, err := NewBPR(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Function, 37)
	kinds := []Function{
		Constant{C: 0.3},
		Linear{Slope: 2, Offset: 0.1},
		poly,
		Monomial{Coef: 1.2, Degree: 4},
		bpr,
		Kink(3),
		Scaled{F: Linear{Slope: 1}, Factor: 2},
	}
	for i := range fns {
		fns[i] = kinds[i%len(kinds)]
	}
	prog := Compile(fns)
	n := int32(len(fns))
	flows := make([]float64, n)
	for e := range flows {
		flows[e] = float64(e) / float64(n)
	}
	wantV := make([]float64, n)
	wantI := make([]float64, n)
	prog.Values(flows, wantV)
	prog.Integrals(flows, wantI)
	cuts := [][]int32{
		{0, n},
		{0, 1, n},
		{0, n / 3, n / 3, 2*n/3 + 1, n},
		{0, 5, 6, 7, 8, 9, 10, n - 1, n},
	}
	for _, bounds := range cuts {
		gotV := make([]float64, n)
		gotI := make([]float64, n)
		sentinel := math.Inf(-1)
		for e := range gotV {
			gotV[e] = sentinel
			gotI[e] = sentinel
		}
		for c := 0; c+1 < len(bounds); c++ {
			prog.ValuesRange(flows, gotV, bounds[c], bounds[c+1])
			prog.IntegralsRange(flows, gotI, bounds[c], bounds[c+1])
		}
		for e := range gotV {
			if math.Float64bits(gotV[e]) != math.Float64bits(wantV[e]) {
				t.Fatalf("cuts %v: ValuesRange[%d] = %v, want %v", bounds, e, gotV[e], wantV[e])
			}
			if math.Float64bits(gotI[e]) != math.Float64bits(wantI[e]) {
				t.Fatalf("cuts %v: IntegralsRange[%d] = %v, want %v", bounds, e, gotI[e], wantI[e])
			}
		}
		// A range must leave edges outside it untouched.
		outside := make([]float64, n)
		for e := range outside {
			outside[e] = sentinel
		}
		prog.ValuesRange(flows, outside, 3, 9)
		for e := int32(0); e < n; e++ {
			if (e < 3 || e >= 9) && outside[e] != sentinel {
				t.Fatalf("ValuesRange(3,9) wrote outside its range at edge %d", e)
			}
		}
	}
}
