// Package latency provides the edge latency functions of the Wardrop model:
// continuous, non-decreasing maps ℓ_e : [0,1] → ℝ≥0 with bounded first
// derivative, together with the calculus the dynamics and potential-function
// machinery need (derivatives, exact integrals, slope bounds on [0,1]).
//
// All flows handled by the simulators live in [0,1] after demand
// normalisation, so SlopeBound is defined as sup_{x∈[0,1]} ℓ'(x); functions
// remain usable outside that interval but the bound only covers it.
package latency

import (
	"errors"
	"fmt"
	"math"
)

// Function is a single edge's latency function. Implementations must be
// continuous and non-decreasing on [0,1] with ℓ(x) ≥ 0.
type Function interface {
	// Value returns ℓ(x).
	Value(x float64) float64
	// Derivative returns ℓ'(x) (one-sided at kinks; implementations pick the
	// right-hand derivative).
	Derivative(x float64) float64
	// Integral returns ∫₀ˣ ℓ(u) du, the edge's contribution to the
	// Beckmann–McGuire–Winsten potential.
	Integral(x float64) float64
	// SlopeBound returns an upper bound β_e on ℓ' over [0,1].
	SlopeBound() float64
	// String names the function for reports and debugging.
	String() string
}

// Sentinel validation errors.
var (
	// ErrNegativeValue indicates ℓ(x) < 0 somewhere on [0,1].
	ErrNegativeValue = errors.New("latency: function takes a negative value on [0,1]")
	// ErrDecreasing indicates the function decreases somewhere on [0,1].
	ErrDecreasing = errors.New("latency: function is decreasing on [0,1]")
	// ErrBadParam indicates an invalid constructor parameter.
	ErrBadParam = errors.New("latency: invalid parameter")
)

// Check verifies on a grid of n+1 points that f is non-negative and
// non-decreasing on [0,1]. It is a diagnostic helper for user-supplied
// functions, not a proof.
func Check(f Function, n int) error {
	if n < 1 {
		n = 256
	}
	prev := math.Inf(-1)
	for i := 0; i <= n; i++ {
		x := float64(i) / float64(n)
		v := f.Value(x)
		if v < 0 {
			return fmt.Errorf("%w: ℓ(%g) = %g", ErrNegativeValue, x, v)
		}
		if v < prev-1e-12 {
			return fmt.Errorf("%w: ℓ(%g) = %g < %g", ErrDecreasing, x, v, prev)
		}
		prev = v
	}
	return nil
}

// Constant is the latency function ℓ(x) = C, independent of load.
type Constant struct {
	C float64
}

var _ Function = Constant{}

// Value implements Function.
func (c Constant) Value(float64) float64 { return c.C }

// Derivative implements Function.
func (c Constant) Derivative(float64) float64 { return 0 }

// Integral implements Function.
func (c Constant) Integral(x float64) float64 { return c.C * x }

// SlopeBound implements Function.
func (c Constant) SlopeBound() float64 { return 0 }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.C) }

// Linear is the affine latency function ℓ(x) = Slope·x + Offset.
type Linear struct {
	Slope  float64
	Offset float64
}

var _ Function = Linear{}

// Value implements Function.
func (l Linear) Value(x float64) float64 { return l.Slope*x + l.Offset }

// Derivative implements Function.
func (l Linear) Derivative(float64) float64 { return l.Slope }

// Integral implements Function.
func (l Linear) Integral(x float64) float64 { return 0.5*l.Slope*x*x + l.Offset*x }

// SlopeBound implements Function.
func (l Linear) SlopeBound() float64 { return math.Max(l.Slope, 0) }

func (l Linear) String() string { return fmt.Sprintf("%g*x+%g", l.Slope, l.Offset) }

// Polynomial is ℓ(x) = Σ Coeffs[i]·x^i with non-negative coefficients
// (guaranteeing monotonicity on [0,1]).
type Polynomial struct {
	Coeffs []float64
}

var _ Function = Polynomial{}

// NewPolynomial validates that all coefficients are non-negative and returns
// the polynomial latency function.
func NewPolynomial(coeffs ...float64) (Polynomial, error) {
	for i, c := range coeffs {
		if c < 0 {
			return Polynomial{}, fmt.Errorf("%w: coefficient %d is negative (%g)", ErrBadParam, i, c)
		}
	}
	cp := make([]float64, len(coeffs))
	copy(cp, coeffs)
	return Polynomial{Coeffs: cp}, nil
}

// Value implements Function (Horner evaluation).
func (p Polynomial) Value(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Derivative implements Function.
func (p Polynomial) Derivative(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 1; i-- {
		v = v*x + float64(i)*p.Coeffs[i]
	}
	return v
}

// Integral implements Function.
func (p Polynomial) Integral(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]/float64(i+1)
	}
	return v * x
}

// SlopeBound implements Function. With non-negative coefficients the
// derivative is maximal at x = 1.
func (p Polynomial) SlopeBound() float64 { return p.Derivative(1) }

func (p Polynomial) String() string { return fmt.Sprintf("poly%v", p.Coeffs) }

// Monomial is ℓ(x) = Coef·x^Degree, the canonical "polynomials of fixed
// degree" class from the price-of-anarchy literature.
type Monomial struct {
	Coef   float64
	Degree int
}

var _ Function = Monomial{}

// Value implements Function.
func (m Monomial) Value(x float64) float64 { return m.Coef * math.Pow(x, float64(m.Degree)) }

// Derivative implements Function.
func (m Monomial) Derivative(x float64) float64 {
	if m.Degree == 0 {
		return 0
	}
	return m.Coef * float64(m.Degree) * math.Pow(x, float64(m.Degree-1))
}

// Integral implements Function.
func (m Monomial) Integral(x float64) float64 {
	return m.Coef * math.Pow(x, float64(m.Degree+1)) / float64(m.Degree+1)
}

// SlopeBound implements Function.
func (m Monomial) SlopeBound() float64 { return m.Derivative(1) }

func (m Monomial) String() string { return fmt.Sprintf("%g*x^%d", m.Coef, m.Degree) }

// BPR is the Bureau of Public Roads road-traffic latency
// ℓ(x) = FreeTime·(1 + 0.15·(x/Capacity)^4), the standard workload of the
// road-traffic literature the Wardrop model originates from.
type BPR struct {
	FreeTime float64
	Capacity float64
}

var _ Function = BPR{}

// NewBPR validates parameters (positive free-flow time and capacity).
func NewBPR(freeTime, capacity float64) (BPR, error) {
	if freeTime < 0 {
		return BPR{}, fmt.Errorf("%w: free time %g < 0", ErrBadParam, freeTime)
	}
	if capacity <= 0 {
		return BPR{}, fmt.Errorf("%w: capacity %g <= 0", ErrBadParam, capacity)
	}
	return BPR{FreeTime: freeTime, Capacity: capacity}, nil
}

// Value implements Function.
func (b BPR) Value(x float64) float64 {
	r := x / b.Capacity
	return b.FreeTime * (1 + 0.15*r*r*r*r)
}

// Derivative implements Function.
func (b BPR) Derivative(x float64) float64 {
	r := x / b.Capacity
	return b.FreeTime * 0.6 * r * r * r / b.Capacity
}

// Integral implements Function.
func (b BPR) Integral(x float64) float64 {
	r := x / b.Capacity
	return b.FreeTime * (x + 0.03*r*r*r*r*x)
}

// SlopeBound implements Function.
func (b BPR) SlopeBound() float64 { return b.Derivative(1) }

func (b BPR) String() string { return fmt.Sprintf("bpr(t0=%g,c=%g)", b.FreeTime, b.Capacity) }

// MM1 is the queueing-delay latency ℓ(x) = x/(Capacity−x) for Capacity > 1,
// so that the function stays finite (and its slope bounded) on [0,1]. It
// models an M/M/1 queue's expected backlog contribution.
type MM1 struct {
	Capacity float64
}

var _ Function = MM1{}

// NewMM1 validates that capacity exceeds 1 so the function is finite with a
// bounded slope on the whole flow range [0,1].
func NewMM1(capacity float64) (MM1, error) {
	if capacity <= 1 {
		return MM1{}, fmt.Errorf("%w: MM1 capacity %g must exceed 1", ErrBadParam, capacity)
	}
	return MM1{Capacity: capacity}, nil
}

// Value implements Function.
func (m MM1) Value(x float64) float64 { return x / (m.Capacity - x) }

// Derivative implements Function.
func (m MM1) Derivative(x float64) float64 {
	d := m.Capacity - x
	return m.Capacity / (d * d)
}

// Integral implements Function: ∫₀ˣ u/(c−u) du = −x − c·ln(1 − x/c).
func (m MM1) Integral(x float64) float64 {
	return -x - m.Capacity*math.Log(1-x/m.Capacity)
}

// SlopeBound implements Function (derivative is increasing, maximal at 1).
func (m MM1) SlopeBound() float64 { return m.Derivative(1) }

func (m MM1) String() string { return fmt.Sprintf("mm1(c=%g)", m.Capacity) }

// Scaled wraps a function and multiplies its value by Factor ≥ 0.
type Scaled struct {
	F      Function
	Factor float64
}

var _ Function = Scaled{}

// Value implements Function.
func (s Scaled) Value(x float64) float64 { return s.Factor * s.F.Value(x) }

// Derivative implements Function.
func (s Scaled) Derivative(x float64) float64 { return s.Factor * s.F.Derivative(x) }

// Integral implements Function.
func (s Scaled) Integral(x float64) float64 { return s.Factor * s.F.Integral(x) }

// SlopeBound implements Function.
func (s Scaled) SlopeBound() float64 { return s.Factor * s.F.SlopeBound() }

func (s Scaled) String() string { return fmt.Sprintf("%g*(%s)", s.Factor, s.F) }

// Shifted wraps a function and adds the non-negative constant Offset.
type Shifted struct {
	F      Function
	Offset float64
}

var _ Function = Shifted{}

// Value implements Function.
func (s Shifted) Value(x float64) float64 { return s.F.Value(x) + s.Offset }

// Derivative implements Function.
func (s Shifted) Derivative(x float64) float64 { return s.F.Derivative(x) }

// Integral implements Function.
func (s Shifted) Integral(x float64) float64 { return s.F.Integral(x) + s.Offset*x }

// SlopeBound implements Function.
func (s Shifted) SlopeBound() float64 { return s.F.SlopeBound() }

func (s Shifted) String() string { return fmt.Sprintf("(%s)+%g", s.F, s.Offset) }

// Sum is the pointwise sum of two latency functions.
type Sum struct {
	A, B Function
}

var _ Function = Sum{}

// Value implements Function.
func (s Sum) Value(x float64) float64 { return s.A.Value(x) + s.B.Value(x) }

// Derivative implements Function.
func (s Sum) Derivative(x float64) float64 { return s.A.Derivative(x) + s.B.Derivative(x) }

// Integral implements Function.
func (s Sum) Integral(x float64) float64 { return s.A.Integral(x) + s.B.Integral(x) }

// SlopeBound implements Function.
func (s Sum) SlopeBound() float64 { return s.A.SlopeBound() + s.B.SlopeBound() }

func (s Sum) String() string { return fmt.Sprintf("(%s)+(%s)", s.A, s.B) }
