package latency

import (
	"fmt"
	"math"
	"sort"
)

// PiecewiseLinear is a continuous piecewise-linear latency function defined
// by breakpoints (Xs[i], Ys[i]) with Xs strictly increasing. Outside
// [Xs[0], Xs[last]] the function extends linearly with the slope of the
// nearest segment.
type PiecewiseLinear struct {
	Xs []float64
	Ys []float64
}

var _ Function = PiecewiseLinear{}

// NewPiecewiseLinear validates breakpoints (strictly increasing Xs,
// non-decreasing non-negative Ys, at least two points) and returns the
// function.
func NewPiecewiseLinear(xs, ys []float64) (PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return PiecewiseLinear{}, fmt.Errorf("%w: %d xs vs %d ys", ErrBadParam, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return PiecewiseLinear{}, fmt.Errorf("%w: need at least 2 breakpoints, got %d", ErrBadParam, len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("%w: xs not strictly increasing at %d", ErrBadParam, i)
		}
		if ys[i] < ys[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("%w: ys decreasing at %d", ErrBadParam, i)
		}
	}
	for i, y := range ys {
		if y < 0 {
			return PiecewiseLinear{}, fmt.Errorf("%w: ys[%d] = %g < 0", ErrBadParam, i, y)
		}
	}
	cx := make([]float64, len(xs))
	cy := make([]float64, len(ys))
	copy(cx, xs)
	copy(cy, ys)
	return PiecewiseLinear{Xs: cx, Ys: cy}, nil
}

// Kink returns the paper's §3.2 oscillation instance latency
// ℓ(x) = max{0, β·(x − ½)}: zero until half load, then rising with slope β.
func Kink(beta float64) PiecewiseLinear {
	return PiecewiseLinear{Xs: []float64{0, 0.5, 1}, Ys: []float64{0, 0, 0.5 * beta}}
}

// segment returns the index i of the segment [Xs[i], Xs[i+1]] containing x,
// clamped to the outermost segments for out-of-range x.
func (p PiecewiseLinear) segment(x float64) int {
	n := len(p.Xs)
	if x <= p.Xs[0] {
		return 0
	}
	if x >= p.Xs[n-1] {
		return n - 2
	}
	// sort.SearchFloat64s returns first index with Xs[i] >= x.
	i := sort.SearchFloat64s(p.Xs, x)
	return i - 1
}

func (p PiecewiseLinear) slope(i int) float64 {
	return (p.Ys[i+1] - p.Ys[i]) / (p.Xs[i+1] - p.Xs[i])
}

// Value implements Function.
func (p PiecewiseLinear) Value(x float64) float64 {
	i := p.segment(x)
	return p.Ys[i] + p.slope(i)*(x-p.Xs[i])
}

// Derivative implements Function (right-hand derivative at breakpoints).
func (p PiecewiseLinear) Derivative(x float64) float64 {
	n := len(p.Xs)
	if x >= p.Xs[n-1] {
		return p.slope(n - 2)
	}
	i := p.segment(x)
	if x == p.Xs[i+1] { // breakpoint: take the right segment's slope
		return p.slope(i + 1)
	}
	return p.slope(i)
}

// Integral implements Function: the exact integral of the linear segments
// from 0 to x (assuming Xs[0] <= 0 <= x in typical use; general x handled by
// signed accumulation from 0).
func (p PiecewiseLinear) Integral(x float64) float64 {
	if x == 0 {
		return 0
	}
	if x < 0 {
		return -p.integrateRange(x, 0)
	}
	return p.integrateRange(0, x)
}

// rightSegment returns the segment whose half-open interval [Xs[i], Xs[i+1])
// contains x, i.e. at a breakpoint it picks the segment to the right. Used
// when integrating forward from x.
func (p PiecewiseLinear) rightSegment(x float64) int {
	n := len(p.Xs)
	if x >= p.Xs[n-1] {
		return n - 2
	}
	if x <= p.Xs[0] {
		return 0
	}
	i := sort.SearchFloat64s(p.Xs, x)
	if p.Xs[i] == x {
		return i
	}
	return i - 1
}

// integrateRange integrates between a < b by walking segments.
func (p PiecewiseLinear) integrateRange(a, b float64) float64 {
	total := 0.0
	x := a
	for x < b {
		i := p.rightSegment(x)
		segEnd := b
		if i+1 < len(p.Xs) && p.Xs[i+1] < b && p.Xs[i+1] > x {
			segEnd = p.Xs[i+1]
		}
		va := p.Ys[i] + p.slope(i)*(x-p.Xs[i])
		vb := p.Ys[i] + p.slope(i)*(segEnd-p.Xs[i])
		total += 0.5 * (va + vb) * (segEnd - x)
		if segEnd == x { // safety against zero progress
			break
		}
		x = segEnd
	}
	return total
}

// SlopeBound implements Function: the maximum segment slope intersecting
// [0,1].
func (p PiecewiseLinear) SlopeBound() float64 {
	bound := 0.0
	for i := 0; i+1 < len(p.Xs); i++ {
		if p.Xs[i+1] <= 0 || p.Xs[i] >= 1 {
			continue
		}
		bound = math.Max(bound, p.slope(i))
	}
	// If no segment intersects [0,1] (degenerate breakpoints), fall back to
	// the global max slope.
	if bound == 0 {
		for i := 0; i+1 < len(p.Xs); i++ {
			bound = math.Max(bound, p.slope(i))
		}
	}
	return bound
}

func (p PiecewiseLinear) String() string {
	return fmt.Sprintf("pwl(%d pts)", len(p.Xs))
}
