package latency

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewPiecewiseLinearValidation(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		ys   []float64
	}{
		{"length mismatch", []float64{0, 1}, []float64{0}},
		{"too few points", []float64{0}, []float64{0}},
		{"non-increasing xs", []float64{0, 0}, []float64{0, 1}},
		{"decreasing ys", []float64{0, 1}, []float64{1, 0}},
		{"negative ys", []float64{0, 1}, []float64{-1, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPiecewiseLinear(tc.xs, tc.ys); !errors.Is(err, ErrBadParam) {
				t.Errorf("error = %v, want ErrBadParam", err)
			}
		})
	}
	if _, err := NewPiecewiseLinear([]float64{0, 0.5, 1}, []float64{0, 0, 2}); err != nil {
		t.Errorf("valid breakpoints rejected: %v", err)
	}
}

func TestKinkMatchesClosedForm(t *testing.T) {
	beta := 4.0
	k := Kink(beta)
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.6, 0.75, 1} {
		want := math.Max(0, beta*(x-0.5))
		if !approx(k.Value(x), want, 1e-12) {
			t.Errorf("Kink(%g).Value(%g) = %g, want %g", beta, x, k.Value(x), want)
		}
	}
	if !approx(k.SlopeBound(), beta, 1e-12) {
		t.Errorf("SlopeBound = %g, want %g", k.SlopeBound(), beta)
	}
}

func TestKinkDerivative(t *testing.T) {
	k := Kink(2)
	if k.Derivative(0.25) != 0 {
		t.Errorf("Derivative(0.25) = %g, want 0", k.Derivative(0.25))
	}
	if k.Derivative(0.75) != 2 {
		t.Errorf("Derivative(0.75) = %g, want 2", k.Derivative(0.75))
	}
	// Right-hand derivative at the kink itself.
	if k.Derivative(0.5) != 2 {
		t.Errorf("Derivative(0.5) = %g, want 2 (right-hand)", k.Derivative(0.5))
	}
	// Beyond the last breakpoint the final slope extends.
	if k.Derivative(2) != 2 {
		t.Errorf("Derivative(2) = %g, want 2", k.Derivative(2))
	}
}

func TestKinkIntegral(t *testing.T) {
	beta := 6.0
	k := Kink(beta)
	// ∫₀ˣ max{0, β(u−½)} du = 0 for x ≤ ½, else β(x−½)²/2.
	for _, x := range []float64{0, 0.3, 0.5, 0.7, 1} {
		want := 0.0
		if x > 0.5 {
			want = beta * (x - 0.5) * (x - 0.5) / 2
		}
		if !approx(k.Integral(x), want, 1e-12) {
			t.Errorf("Integral(%g) = %g, want %g", x, k.Integral(x), want)
		}
	}
}

func TestPiecewiseLinearExtension(t *testing.T) {
	p, err := NewPiecewiseLinear([]float64{0, 1}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Linear extension beyond breakpoints.
	if !approx(p.Value(2), 5, 1e-12) {
		t.Errorf("Value(2) = %g, want 5", p.Value(2))
	}
	if !approx(p.Value(-1), -1, 1e-12) {
		t.Errorf("Value(-1) = %g, want -1", p.Value(-1))
	}
}

func TestPiecewiseLinearNegativeIntegral(t *testing.T) {
	p, _ := NewPiecewiseLinear([]float64{-2, 2}, []float64{0, 4}) // slope 1, f(x)=x+2
	// ∫₋₁⁰ (u+2) du = [u²/2+2u] from -1 to 0 = 0 - (0.5-2) = 1.5; Integral(-1) = -∫₋₁⁰ = -1.5.
	if !approx(p.Integral(-1), -1.5, 1e-12) {
		t.Errorf("Integral(-1) = %g, want -1.5", p.Integral(-1))
	}
	if p.Integral(0) != 0 {
		t.Errorf("Integral(0) = %g, want 0", p.Integral(0))
	}
}

// Property: piecewise integral agrees with Simpson on [0,1] for random
// monotone breakpoint sets.
func TestPiecewiseIntegralMatchesSimpson(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		ys := []float64{float64(a % 8), float64(a%8 + b%8), float64(a%8 + b%8 + c%8)}
		p, err := NewPiecewiseLinear([]float64{0, 0.4, 1}, ys)
		if err != nil {
			return false
		}
		for _, x := range []float64{0.2, 0.4, 0.55, 0.9, 1} {
			if !approx(p.Integral(x), SimpsonIntegral(p, x, 1e-12), 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFuncDefaults(t *testing.T) {
	f := Func{V: func(x float64) float64 { return x * x }}
	if !approx(f.Derivative(0.5), 1, 1e-5) {
		t.Errorf("finite-difference derivative = %g, want 1", f.Derivative(0.5))
	}
	if !approx(f.Integral(1), 1.0/3, 1e-8) {
		t.Errorf("Simpson integral = %g, want 1/3", f.Integral(1))
	}
	if !approx(f.SlopeBound(), 2, 1e-3) {
		t.Errorf("scanned slope bound = %g, want 2", f.SlopeBound())
	}
	g := Func{
		V:              func(x float64) float64 { return x },
		D:              func(float64) float64 { return 1 },
		I:              func(x float64) float64 { return x * x / 2 },
		SlopeBoundHint: 1,
	}
	if g.Derivative(0.3) != 1 || g.Integral(2) != 2 || g.SlopeBound() != 1 {
		t.Error("explicit closures not used")
	}
}

func TestSimpsonIntegralNegativeRange(t *testing.T) {
	l := Linear{Slope: 0, Offset: 2}
	if !approx(SimpsonIntegral(l, -1, 1e-12), -2, 1e-10) {
		t.Errorf("SimpsonIntegral(-1) = %g, want -2", SimpsonIntegral(l, -1, 1e-12))
	}
	if SimpsonIntegral(l, 0, 1e-12) != 0 {
		t.Error("SimpsonIntegral(0) != 0")
	}
}
