package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/solver"
	"wardrop/internal/topo"
)

// ScalingMeasurement is one size point of the kernelScaling suite: the full
// evaluation pass (edge flows, edge latencies, path latencies, potential)
// on a seeded sparse-random instance, measured three ways — the seed's
// naive reference pipeline, the compiled kernel pinned to one worker, and
// the kernel at its default parallelism — plus a Frank–Wolfe equilibrium
// solve recorded as a cross-check that the instance is well-posed.
type ScalingMeasurement struct {
	// Family and Edges identify the workload; ActualEdges and Paths are the
	// realised instance shape (the generator hits Edges exactly for
	// sparse-random, but the path count depends on what Yen enumerates).
	Family      string `json:"family"`
	Edges       int    `json:"edges"`
	ActualEdges int    `json:"actualEdges"`
	Paths       int    `json:"paths"`
	// Workers is the parallelism the parallel measurement ran under
	// (min(GOMAXPROCS, evaluator cap)); 1 on a single-core runner, where
	// ParallelNs degenerates to SerialNs.
	Workers int `json:"workers"`
	// ReferenceNs, SerialNs and ParallelNs are ns per full evaluation pass.
	ReferenceNs float64 `json:"referenceNs"`
	SerialNs    float64 `json:"serialNs"`
	ParallelNs  float64 `json:"parallelNs"`
	// Speedup is ReferenceNs/ParallelNs — the headline "kernel vs seed"
	// ratio, which must stay >= 1 at every size (the crossover heuristic's
	// contract). ParSpeedup is SerialNs/ParallelNs and Efficiency is
	// ParSpeedup/Workers.
	Speedup    float64 `json:"speedup"`
	ParSpeedup float64 `json:"parSpeedup"`
	Efficiency float64 `json:"efficiency"`
	// Equilibrium cross-check: the relative gap, Beckmann potential and
	// iteration count Frank–Wolfe reaches on this instance under a capped
	// budget. Recorded, not asserted — the point is that the large random
	// families feed the solver, not a convergence guarantee.
	SolverRelGap    float64 `json:"solverRelGap"`
	SolverPotential float64 `json:"solverPotential"`
	SolverIters     int     `json:"solverIters"`
}

// scalingWorkers mirrors the evaluator's default worker choice so the
// recorded Workers field matches what SetParallelism(0) actually used.
func scalingWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// ScalingSuite measures the evaluation kernel across instance sizes (edge
// counts) on the seeded sparse-random family. Each size gets a fixed seed,
// so reruns on one machine are directly comparable.
func ScalingSuite(sizes []int) ([]ScalingMeasurement, error) {
	var out []ScalingMeasurement
	for _, edges := range sizes {
		m, err := scalingPoint(edges)
		if err != nil {
			return nil, fmt.Errorf("scaling point %d: %w", edges, err)
		}
		out = append(out, m)
	}
	return out, nil
}

func scalingPoint(edges int) (ScalingMeasurement, error) {
	const (
		commodities = 8
		kPaths      = 8
		seed        = 0x5ca1e
	)
	inst, err := topo.SparseRandom(edges, 4, commodities, kPaths, seed)
	if err != nil {
		return ScalingMeasurement{}, err
	}
	nE := inst.Graph().NumEdges()
	nP := inst.NumPaths()
	m := ScalingMeasurement{
		Family:      "sparse-random",
		Edges:       edges,
		ActualEdges: nE,
		Paths:       nP,
		Workers:     scalingWorkers(),
	}

	// A mildly uneven flow so the latency evaluation is not all-zeros.
	f := inst.UniformFlow()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < inst.NumCommodities(); i++ {
		lo, hi := inst.CommodityRange(i)
		p := lo + rng.Intn(hi-lo)
		q := lo + rng.Intn(hi-lo)
		amt := f[p] / 2
		f[p] -= amt
		f[q] += amt
	}

	fe := make([]float64, nE)
	le := make([]float64, nE)
	pl := make([]float64, nP)
	m.ReferenceNs = measure(fmt.Sprintf("scale/%d/reference", edges), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst.EdgeFlows(f, fe)
			inst.EdgeLatencies(fe, le)
			inst.PathLatenciesFromEdges(le, pl)
			_ = inst.PotentialFromEdges(fe)
		}
	}).NsPerOp

	evS := flow.NewEvaluator(inst, nil)
	evS.SetParallelism(1)
	m.SerialNs = measure(fmt.Sprintf("scale/%d/serial", edges), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evS.Eval(f)
			_ = evS.Potential()
		}
	}).NsPerOp

	evP := flow.NewEvaluator(inst, nil)
	evP.SetParallelism(m.Workers)
	m.ParallelNs = measure(fmt.Sprintf("scale/%d/parallel", edges), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evP.Eval(f)
			_ = evP.Potential()
		}
	}).NsPerOp

	m.Speedup = m.ReferenceNs / m.ParallelNs
	m.ParSpeedup = m.SerialNs / m.ParallelNs
	m.Efficiency = m.ParSpeedup / float64(m.Workers)

	res, err := solver.SolveEquilibrium(inst, solver.Options{MaxIters: 100, RelGapTol: 1e-6})
	if err != nil {
		return ScalingMeasurement{}, err
	}
	m.SolverRelGap = res.RelGap
	m.SolverPotential = res.Potential
	m.SolverIters = res.Iters
	return m, nil
}
