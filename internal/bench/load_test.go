package bench

import (
	"testing"
	"time"
)

// TestLoadSuiteSmoke runs a two-step miniature ramp and pins the summary
// invariants: every step records throughput and ordered percentiles, and the
// saturation point is the max-throughput step.
func TestLoadSuiteSmoke(t *testing.T) {
	sum, err := LoadSuite([]int{1, 2}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Steps) == 0 || len(sum.Steps) > 2 {
		t.Fatalf("steps = %d, want 1..2", len(sum.Steps))
	}
	if sum.Workers <= 0 {
		t.Fatalf("workers = %d", sum.Workers)
	}
	best := 0.0
	for _, s := range sum.Steps {
		if s.Requests == 0 {
			t.Fatalf("step %d clients recorded no requests", s.Clients)
		}
		if s.RequestsPerSec <= 0 {
			t.Fatalf("step %d clients: rps = %g", s.Clients, s.RequestsPerSec)
		}
		if s.P99Ms < s.P50Ms {
			t.Fatalf("step %d clients: p99 %g < p50 %g", s.Clients, s.P99Ms, s.P50Ms)
		}
		if s.RequestsPerSec > best {
			best = s.RequestsPerSec
		}
	}
	if sum.SaturationRequestsPerSec != best {
		t.Fatalf("saturation rps = %g, max step rps = %g", sum.SaturationRequestsPerSec, best)
	}
	if sum.SaturationClients == 0 || sum.P99AtSaturationMs <= 0 {
		t.Fatalf("saturation point incomplete: %+v", sum)
	}
}

// TestLoadSuiteRejectsBadInput pins input validation.
func TestLoadSuiteRejectsBadInput(t *testing.T) {
	if _, err := LoadSuite(nil, 0); err == nil {
		t.Error("empty client list accepted")
	}
	if _, err := LoadSuite([]int{4, 0}, 0); err == nil {
		t.Error("zero client count accepted")
	}
}

// TestNearestRank pins the exact percentile rule shared with the obs
// histograms.
func TestNearestRank(t *testing.T) {
	sorted := make([]float64, 100)
	for i := range sorted {
		sorted[i] = float64(i + 1)
	}
	for _, c := range []struct {
		p, want float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}} {
		if got := nearestRank(sorted, c.p); got != c.want {
			t.Errorf("p%g = %g, want %g", c.p*100, got, c.want)
		}
	}
	if got := nearestRank(nil, 0.5); got != 0 {
		t.Errorf("empty sample = %g, want 0", got)
	}
	if got := nearestRank([]float64{7}, 0.01); got != 7 {
		t.Errorf("single sample low p = %g, want 7", got)
	}
}
