package bench

import (
	"math"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

// TestReferenceFluidMatchesKernel pins the benchmark's two sides to each
// other: the seed pipeline copy and the rebuilt engine must produce the
// same final potential bit-for-bit — the kernel is a drop-in replacement,
// not an approximation.
func TestReferenceFluidMatchesKernel(t *testing.T) {
	w, err := NewGridWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	ref := w.ReferenceFluid()
	ker, err := w.KernelFluid(flow.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ref) != math.Float64bits(ker) {
		t.Fatalf("final potential: reference %v (%#x) != kernel %v (%#x)",
			ref, math.Float64bits(ref), ker, math.Float64bits(ker))
	}
}

func TestSpeedupPairing(t *testing.T) {
	ms := []Measurement{
		{Name: "x/reference", NsPerOp: 30},
		{Name: "x/kernel", NsPerOp: 10},
	}
	s, err := Speedup(ms, "x")
	if err != nil || s != 3 {
		t.Fatalf("speedup = %v, %v; want 3, nil", s, err)
	}
	if _, err := Speedup(ms, "y"); err == nil {
		t.Fatal("missing pair must error")
	}
}

// BenchmarkFluidGrid is the tentpole acceptance benchmark: the seed fluid
// pipeline vs the compiled kernel on a 6×6 grid (252 lattice paths).
func BenchmarkFluidGrid(b *testing.B) {
	w, err := NewGridWorkload(6)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = w.ReferenceFluid()
		}
	})
	b.Run("kernel", func(b *testing.B) {
		ws := flow.NewWorkspace()
		if _, err := w.KernelFluid(ws); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.KernelFluid(ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalGrid isolates the full state evaluation (edge flows, edge
// latencies, path latencies, potential): naive reference vs CSR + batch
// kernels.
func BenchmarkEvalGrid(b *testing.B) {
	w, err := NewGridWorkload(6)
	if err != nil {
		b.Fatal(err)
	}
	f := w.Inst.UniformFlow()
	b.Run("reference", func(b *testing.B) {
		fe := make([]float64, w.Inst.Graph().NumEdges())
		le := make([]float64, w.Inst.Graph().NumEdges())
		pl := make([]float64, w.Inst.NumPaths())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = w.ReferenceEval(f, fe, le, pl)
		}
	})
	b.Run("kernel", func(b *testing.B) {
		ev := flow.NewEvaluator(w.Inst, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Eval(f)
			_ = ev.Potential()
		}
	})
}

// BenchmarkDeltaLinks isolates a sparse two-path move on 256 parallel
// links — the disjoint-path regime agent phases live in, where the
// incremental update touches 2 of 256 edges.
func BenchmarkDeltaLinks(b *testing.B) {
	links, err := topo.LinearParallelLinks(256)
	if err != nil {
		b.Fatal(err)
	}
	f := links.UniformFlow()
	lo, hi := links.CommodityRange(0)
	b.Run("reference", func(b *testing.B) {
		fe := make([]float64, links.Graph().NumEdges())
		le := make([]float64, links.Graph().NumEdges())
		pl := make([]float64, links.NumPaths())
		amt := f[lo] / 2
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f[lo] -= amt
			f[hi-1] += amt
			links.EdgeFlows(f, fe)
			links.EdgeLatencies(fe, le)
			links.PathLatenciesFromEdges(le, pl)
			_ = links.PotentialFromEdges(fe)
			amt = -amt
		}
	})
	b.Run("kernel", func(b *testing.B) {
		ev := flow.NewEvaluator(links, nil)
		ev.Eval(f)
		_ = ev.Potential()
		amt := f[lo] / 2
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.ApplyDelta(f, lo, hi-1, amt)
			_ = ev.Potential()
			amt = -amt
		}
	})
}

// BenchmarkDeltaGrid isolates a sparse two-path flow move: reference full
// recomputation vs the evaluator's incremental update.
func BenchmarkDeltaGrid(b *testing.B) {
	w, err := NewGridWorkload(6)
	if err != nil {
		b.Fatal(err)
	}
	f := w.Inst.UniformFlow()
	lo, hi := w.Inst.CommodityRange(0)
	p, q := lo, hi-1
	b.Run("reference", func(b *testing.B) {
		fe := make([]float64, w.Inst.Graph().NumEdges())
		le := make([]float64, w.Inst.Graph().NumEdges())
		pl := make([]float64, w.Inst.NumPaths())
		amt := f[p] / 2
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f[p] -= amt
			f[q] += amt
			_ = w.ReferenceEval(f, fe, le, pl)
			amt = -amt
		}
	})
	b.Run("kernel", func(b *testing.B) {
		ev := flow.NewEvaluator(w.Inst, nil)
		ev.Eval(f)
		_ = ev.Potential()
		amt := f[p] / 2
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.ApplyDelta(f, p, q, amt)
			_ = ev.Potential()
			amt = -amt
		}
	})
}
