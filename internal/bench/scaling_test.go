package bench

import "testing"

// A small scaling point exercises the whole pipeline: the generator, the
// three measurements, the derived ratios and the solver cross-check. Sizes
// here are far below the crossover threshold, so this also pins that the
// suite works in the serial regime (the regime CI's smoke point is not in).
func TestScalingSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	ms, err := ScalingSuite([]int{600})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d measurements, want 1", len(ms))
	}
	m := ms[0]
	if m.Family != "sparse-random" || m.Edges != 600 || m.ActualEdges != 600 {
		t.Errorf("shape = %+v, want sparse-random with exactly 600 edges", m)
	}
	if m.Paths <= 0 {
		t.Errorf("paths = %d, want > 0", m.Paths)
	}
	if m.ReferenceNs <= 0 || m.SerialNs <= 0 || m.ParallelNs <= 0 {
		t.Errorf("non-positive timing: %+v", m)
	}
	if m.Workers < 1 {
		t.Errorf("workers = %d, want >= 1", m.Workers)
	}
	if m.Speedup != m.ReferenceNs/m.ParallelNs {
		t.Errorf("speedup = %g, want referenceNs/parallelNs", m.Speedup)
	}
	if m.ParSpeedup != m.SerialNs/m.ParallelNs {
		t.Errorf("parSpeedup = %g, want serialNs/parallelNs", m.ParSpeedup)
	}
	if m.Efficiency != m.ParSpeedup/float64(m.Workers) {
		t.Errorf("efficiency = %g, want parSpeedup/workers", m.Efficiency)
	}
	if m.SolverIters <= 0 || m.SolverPotential <= 0 {
		t.Errorf("solver cross-check missing: %+v", m)
	}
}

func TestScalingSuiteRejectsBadSize(t *testing.T) {
	if _, err := ScalingSuite([]int{4}); err == nil {
		t.Error("edge count below the generator's minimum accepted")
	}
}
