package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wardrop/internal/serve"
)

// ServeMeasurement is one serving-layer benchmark result destined for
// BENCH_kernel.json's "serve" suite: the handler-path cost of a scenario
// request with and without a result-cache hit.
type ServeMeasurement struct {
	// Name identifies the workload ("serve/scenario/cached", …).
	Name string `json:"name"`
	// NsPerOp, AllocsPerOp and BytesPerOp are per-request costs measured
	// through the HTTP handler (no TCP, so the numbers isolate the service
	// itself).
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	// RequestsPerSec is the derived single-client throughput 1e9/NsPerOp.
	RequestsPerSec float64 `json:"requestsPerSec"`
}

// serveScenarioDoc is the benchmark workload: a tiny deterministic Pigou
// run, cheap enough that the uncached measurement reflects dispatch +
// simulation rather than one huge integration.
const serveScenarioDoc = `{"name":"bench-%s","topology":{"family":"pigou"},"policy":{"kind":"replicator"},"updatePeriod":0.05,"maxPhases":20}`

// ServeSuite measures the serving layer: one synchronous scenario request
// per op, against a single-worker server. The cached workload repeats one
// spec (every request after the first is an LRU hit that never touches an
// engine); the uncached workload makes every request's fingerprint unique,
// forcing a full simulation per op.
func ServeSuite() ([]ServeMeasurement, error) {
	post := func(s *serve.Server, body string) error {
		req := httptest.NewRequest(http.MethodPost, "/v1/scenarios", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("bench: scenario request failed: %d %s", rec.Code, rec.Body.String())
		}
		return nil
	}

	var failure error
	measureServe := func(name string, body func(i int) string) ServeMeasurement {
		s := serve.New(serve.Config{Workers: 1, QueueDepth: 16, CacheEntries: 4})
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := post(s, body(i)); err != nil && failure == nil {
					failure = err
					b.FailNow()
				}
			}
		})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = s.Close(ctx)
		cancel()
		return ServeMeasurement{
			Name:           name,
			NsPerOp:        float64(r.NsPerOp()),
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			RequestsPerSec: 1e9 / float64(r.NsPerOp()),
		}
	}

	cachedDoc := fmt.Sprintf(serveScenarioDoc, "cached")
	out := []ServeMeasurement{
		measureServe("serve/scenario/cached", func(i int) string { return cachedDoc }),
		measureServe("serve/scenario/uncached", func(i int) string {
			return fmt.Sprintf(serveScenarioDoc, fmt.Sprintf("uncached-%d", i))
		}),
	}
	if failure != nil {
		return nil, failure
	}
	return out, nil
}
