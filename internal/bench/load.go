package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"wardrop/internal/serve"
)

// Degradation thresholds for the load ramp: a step is degraded when its p99
// exceeds the single-client baseline by this factor, or when more than this
// fraction of its requests fail. The ramp stops at the first degraded step —
// beyond it the numbers measure queueing collapse, not capacity.
const (
	loadDegradeP99Factor = 4.0
	loadDegradeErrRate   = 0.01
)

// LoadStep is one rung of the concurrent-client ramp: n clients hammering
// the scenario endpoint for a fixed wall-clock window.
type LoadStep struct {
	// Clients is the concurrent client count of this step.
	Clients int `json:"clients"`
	// Requests counts completed successful requests; Errors counts transport
	// failures and non-200 responses.
	Requests int `json:"requests"`
	Errors   int `json:"errors,omitempty"`
	// RequestsPerSec is successful-request throughput over the step window.
	RequestsPerSec float64 `json:"requestsPerSec"`
	// P50Ms and P99Ms are exact nearest-rank percentiles over every
	// successful request's latency.
	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
	// ErrorRate is Errors / (Requests + Errors).
	ErrorRate float64 `json:"errorRate,omitempty"`
	// Degraded marks the step that tripped a threshold and ended the ramp.
	Degraded bool `json:"degraded,omitempty"`
}

// LoadSummary is the serveLoad suite of BENCH_kernel.json: the recorded ramp
// plus the saturation point — the step with the highest throughput, the
// service's capacity headline.
type LoadSummary struct {
	// Workers is the server's worker-pool size the ramp ran against.
	Workers int `json:"workers"`
	// StepMs is the wall-clock window each step measured over.
	StepMs float64 `json:"stepMs"`
	// Steps is the ramp in client-count order, ending at the first degraded
	// step (if any tripped).
	Steps []LoadStep `json:"steps"`
	// SaturationClients, SaturationRequestsPerSec and P99AtSaturationMs
	// describe the max-throughput step.
	SaturationClients        int     `json:"saturationClients"`
	SaturationRequestsPerSec float64 `json:"saturationRequestsPerSec"`
	P99AtSaturationMs        float64 `json:"p99AtSaturationMs"`
}

// LoadSuite ramps concurrent clients against a real HTTP server (TCP
// loopback, not handler-only) posting the cached benchmark scenario, so the
// measurement captures the serving path — routing, cache lookup, response
// encoding — rather than simulation cost. Client counts are tried in order;
// the ramp stops early at the first step whose p99 or error rate degrades
// versus the first step's baseline. stepDuration <= 0 selects a 500ms
// default window.
func LoadSuite(clients []int, stepDuration time.Duration) (*LoadSummary, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("bench: load suite needs at least one client count")
	}
	maxClients := 0
	for _, n := range clients {
		if n <= 0 {
			return nil, fmt.Errorf("bench: bad client count %d", n)
		}
		if n > maxClients {
			maxClients = n
		}
	}
	if stepDuration <= 0 {
		stepDuration = 500 * time.Millisecond
	}

	workers := runtime.GOMAXPROCS(0)
	srv := serve.New(serve.Config{Workers: workers, QueueDepth: 4 * maxClients, CacheEntries: 16})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()

	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: maxClients}}
	url := ts.URL + "/v1/scenarios"
	doc := fmt.Sprintf(serveScenarioDoc, "load")

	// Warm the result cache: the one full simulation happens here, so every
	// measured request is a cache hit exercising only the serving path.
	if err := loadPost(hc, url, doc); err != nil {
		return nil, err
	}

	sum := &LoadSummary{Workers: workers, StepMs: float64(stepDuration) / float64(time.Millisecond)}
	for i, n := range clients {
		st := runLoadStep(hc, url, doc, n, stepDuration)
		if i > 0 {
			base := sum.Steps[0].P99Ms
			st.Degraded = st.ErrorRate > loadDegradeErrRate ||
				(base > 0 && st.P99Ms > loadDegradeP99Factor*base)
		}
		sum.Steps = append(sum.Steps, st)
		if st.Degraded {
			break
		}
	}

	sat := 0
	for i, s := range sum.Steps {
		if s.RequestsPerSec > sum.Steps[sat].RequestsPerSec {
			sat = i
		}
	}
	sum.SaturationClients = sum.Steps[sat].Clients
	sum.SaturationRequestsPerSec = sum.Steps[sat].RequestsPerSec
	sum.P99AtSaturationMs = sum.Steps[sat].P99Ms
	return sum, nil
}

// runLoadStep runs n concurrent clients against url for dur and aggregates
// their latency samples into one step.
func runLoadStep(hc *http.Client, url, doc string, n int, dur time.Duration) LoadStep {
	lats := make([][]float64, n)
	errs := make([]int, n)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := loadPost(hc, url, doc); err != nil {
					errs[c]++
					continue
				}
				lats[c] = append(lats[c], float64(time.Since(t0))/float64(time.Millisecond))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	all := []float64{}
	errors := 0
	for c := 0; c < n; c++ {
		all = append(all, lats[c]...)
		errors += errs[c]
	}
	sort.Float64s(all)
	st := LoadStep{
		Clients:        n,
		Requests:       len(all),
		Errors:         errors,
		RequestsPerSec: float64(len(all)) / elapsed.Seconds(),
		P50Ms:          nearestRank(all, 0.50),
		P99Ms:          nearestRank(all, 0.99),
	}
	if total := len(all) + errors; total > 0 {
		st.ErrorRate = float64(errors) / float64(total)
	} else {
		// Nothing completed inside the window at all: count it as failure.
		st.ErrorRate = 1
	}
	return st
}

// loadPost issues one scenario request and fully drains the response, so the
// connection returns to the keep-alive pool.
func loadPost(hc *http.Client, url, doc string) error {
	resp, err := hc.Post(url, "application/json", strings.NewReader(doc))
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bench: load request failed: %d", resp.StatusCode)
	}
	return nil
}

// nearestRank is the same exact percentile the obs histograms report:
// ceil(p·n) over a sorted sample, clamped to the ends.
func nearestRank(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
