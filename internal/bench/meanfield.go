package bench

import (
	"context"
	"fmt"
	"testing"

	"wardrop/internal/agents"
	"wardrop/internal/flow"
	"wardrop/internal/meanfield"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

// PopulationMeasurement is one point on the population-scaling curve
// destined for BENCH_kernel.json's "meanfield" suite: the per-phase cost of
// one engine at one population.
type PopulationMeasurement struct {
	// Name identifies the point, e.g. "meanfield/count/n=1000000".
	Name string `json:"name"`
	// Engine is "count" or "agents".
	Engine string `json:"engine"`
	// N is the population.
	N int64 `json:"n"`
	// NsPerPhase is wall time per simulated phase. The per-agent engine
	// grows linearly in N; the count engine stays near-flat (O(paths) with
	// a ~log N round factor).
	NsPerPhase float64 `json:"nsPerPhase"`
	// AllocsPerOp is the heap allocation count per full run (workspace
	// reuse keeps both engines' steady-state phases allocation-free).
	AllocsPerOp int64 `json:"allocsPerOp"`
}

// DefaultCountPopulations is the count-engine population axis: four decades,
// ending three decades beyond the per-agent engine's axis.
var DefaultCountPopulations = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// DefaultAgentPopulations is the per-agent population axis; the linear
// growth is visible well before the engine's hard cap.
var DefaultAgentPopulations = []int64{1_000, 10_000, 100_000}

// meanfieldPhases is the phase count of one benchmark run (horizon / T).
const meanfieldPhases = 40

// MeanfieldSuite measures the population-scaling curve on a shared Braess
// workload: one op is a full 40-phase run, reported as ns/phase. Pass nil
// axes to use the defaults.
func MeanfieldSuite(countNs, agentNs []int64) ([]PopulationMeasurement, error) {
	if countNs == nil {
		countNs = DefaultCountPopulations
	}
	if agentNs == nil {
		agentNs = DefaultAgentPopulations
	}
	inst, err := topo.Braess()
	if err != nil {
		return nil, err
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		return nil, err
	}
	const T, horizon = 0.25, 10.0

	var ms []PopulationMeasurement
	ws := flow.NewWorkspace()
	for _, n := range countNs {
		runCount := func() error {
			sim, err := meanfield.New(inst, meanfield.Config{
				N: n, Policy: pol, UpdatePeriod: T, Horizon: horizon,
				Seed: 7, Workspace: ws,
			})
			if err != nil {
				return err
			}
			_, err = sim.RunContext(context.Background())
			return err
		}
		if err := runCount(); err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := runCount(); err != nil {
					b.Fatal(err)
				}
			}
		})
		ms = append(ms, PopulationMeasurement{
			Name:        fmt.Sprintf("meanfield/count/n=%d", n),
			Engine:      "count",
			N:           n,
			NsPerPhase:  float64(r.NsPerOp()) / meanfieldPhases,
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	for _, n := range agentNs {
		runAgents := func() error {
			sim, err := agents.New(inst, agents.Config{
				N: int(n), Policy: pol, UpdatePeriod: T, Horizon: horizon,
				Seed: 7, Workers: 1, Workspace: ws,
			})
			if err != nil {
				return err
			}
			_, err = sim.RunContext(context.Background())
			return err
		}
		if err := runAgents(); err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := runAgents(); err != nil {
					b.Fatal(err)
				}
			}
		})
		ms = append(ms, PopulationMeasurement{
			Name:        fmt.Sprintf("meanfield/agents/n=%d", n),
			Engine:      "agents",
			N:           n,
			NsPerPhase:  float64(r.NsPerOp()) / meanfieldPhases,
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return ms, nil
}

// PhaseCostRatio returns NsPerPhase(engine, nHi) / NsPerPhase(engine, nLo) —
// the flatness headline: ~1 for the count engine across three decades,
// ~nHi/nLo for the per-agent engine.
func PhaseCostRatio(ms []PopulationMeasurement, engine string, nHi, nLo int64) (float64, error) {
	var hi, lo float64
	for _, m := range ms {
		if m.Engine != engine {
			continue
		}
		switch m.N {
		case nHi:
			hi = m.NsPerPhase
		case nLo:
			lo = m.NsPerPhase
		}
	}
	if hi == 0 || lo == 0 {
		return 0, fmt.Errorf("bench: missing %s population pair %d/%d", engine, nHi, nLo)
	}
	return hi / lo, nil
}
