package bench

import (
	"context"
	"fmt"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/meanfield"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

func TestPhaseCostRatioPairing(t *testing.T) {
	ms := []PopulationMeasurement{
		{Engine: "count", N: 1_000, NsPerPhase: 10},
		{Engine: "count", N: 1_000_000, NsPerPhase: 15},
		{Engine: "agents", N: 1_000, NsPerPhase: 12},
	}
	r, err := PhaseCostRatio(ms, "count", 1_000_000, 1_000)
	if err != nil || r != 1.5 {
		t.Fatalf("ratio = %v, %v; want 1.5, nil", r, err)
	}
	if _, err := PhaseCostRatio(ms, "agents", 1_000_000, 1_000); err == nil {
		t.Fatal("missing pair must error")
	}
}

// The tentpole acceptance number: the count engine's per-phase cost at a
// million agents stays within 2x of its cost at a thousand — O(paths) with
// only the Poisson-round tail growing (~log N), not O(agents).
func TestCountPhaseCostNearFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive benchmark comparison")
	}
	ms, err := MeanfieldSuite([]int64{1_000, 1_000_000}, []int64{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := PhaseCostRatio(ms, "count", 1_000_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if r > 2 {
		t.Errorf("count engine phase cost ratio 1e6/1e3 = %.2f, want <= 2", r)
	}
}

// BenchmarkMeanfieldPhase is the population-scaling smoke benchmark: one op
// is a full 40-phase count-engine run; the sub-benchmarks sweep three
// decades of population, and the ns/op column should stay near-flat.
func BenchmarkMeanfieldPhase(b *testing.B) {
	inst, err := topo.Braess()
	if err != nil {
		b.Fatal(err)
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		b.Fatal(err)
	}
	ws := flow.NewWorkspace()
	for _, n := range []int64{1_000, 100_000, 10_000_000} {
		b.Run(fmt.Sprintf("count/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := meanfield.New(inst, meanfield.Config{
					N: n, Policy: pol, UpdatePeriod: 0.25, Horizon: 10,
					Seed: 7, Workspace: ws,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.RunContext(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
