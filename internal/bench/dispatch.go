package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wardrop/internal/dispatch"
	"wardrop/internal/serve"
	"wardrop/internal/sweep"
)

// DispatchMeasurement is one distributed-sweep benchmark result destined for
// BENCH_kernel.json's "dispatch" suite: per-task campaign throughput for the
// local executor next to the distributed coordinator, cold and warm.
type DispatchMeasurement struct {
	// Name identifies the workload ("dispatch/local", "dispatch/remote-cold",
	// "dispatch/remote-warm").
	Name string `json:"name"`
	// NsPerTask is the amortized per-task cost of running the benchmark
	// campaign end to end; TasksPerSec the derived throughput 1e9/NsPerTask.
	NsPerTask   float64 `json:"nsPerTask"`
	TasksPerSec float64 `json:"tasksPerSec"`
}

// dispatchCampaignTasks is the benchmark campaign's task count (one topology
// × one policy × one period × seeds).
const dispatchCampaignTasks = 8

// dispatchCampaignDoc parameterises the campaign by horizon. With maxPhases
// set the horizon is ignored by the engine but still part of every task
// fingerprint, so varying it is a free cache-buster: cold-path iterations
// get fresh fingerprints for identical work.
const dispatchCampaignDoc = `{"name":"bench-dispatch","topologies":[{"family":"pigou"}],"policies":[{"kind":"replicator"}],"updatePeriods":[0.05],"seeds":8,"maxPhases":15,"horizon":%d}`

// DispatchSuite measures campaign execution three ways over the same work:
// the in-process sweep executor, the distributed coordinator against a cold
// two-node fleet (every task simulated remotely), and the same fleet warm
// (every task a cache hit — the coordinator-plus-HTTP overhead floor).
func DispatchSuite() ([]DispatchMeasurement, error) {
	campaign := func(i int) (*sweep.Campaign, error) {
		return sweep.ParseCampaign(strings.NewReader(fmt.Sprintf(dispatchCampaignDoc, i+1)))
	}

	var failure error
	measure := func(name string, run func(i int) error) DispatchMeasurement {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := run(i); err != nil && failure == nil {
					failure = err
					b.FailNow()
				}
			}
		})
		perTask := float64(r.NsPerOp()) / dispatchCampaignTasks
		return DispatchMeasurement{Name: name, NsPerTask: perTask, TasksPerSec: 1e9 / perTask}
	}

	servers := make([]*serve.Server, 2)
	https := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range servers {
		servers[i] = serve.New(serve.Config{Workers: 2, QueueDepth: 64, CacheEntries: 1024})
		https[i] = httptest.NewServer(servers[i])
		urls[i] = https[i].URL
	}
	defer func() {
		for i := range servers {
			https[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = servers[i].Close(ctx)
			cancel()
		}
	}()

	runLocal := func(i int) error {
		c, err := campaign(i)
		if err != nil {
			return err
		}
		_, err = sweep.Run(context.Background(), c, sweep.Options{Workers: 4})
		return err
	}
	runRemote := func(i int) error {
		c, err := campaign(i)
		if err != nil {
			return err
		}
		res, err := dispatch.Run(context.Background(), c, urls, dispatch.Options{})
		if err != nil {
			return err
		}
		for _, rec := range res.Records {
			if rec.Error != "" {
				return fmt.Errorf("bench: task %d failed: %s", rec.ID, rec.Error)
			}
		}
		return nil
	}

	// Warm the fleet with the fixed-horizon campaign before the warm pass.
	out := []DispatchMeasurement{
		measure("dispatch/local", runLocal),
		measure("dispatch/remote-cold", func(i int) error { return runRemote(i + 1_000_000) }),
	}
	if failure == nil {
		if err := runRemote(0); err != nil {
			return nil, err
		}
	}
	out = append(out, measure("dispatch/remote-warm", func(i int) error { return runRemote(0) }))
	if failure != nil {
		return nil, failure
	}
	return out, nil
}
