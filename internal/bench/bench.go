// Package bench measures the compiled evaluation kernel against the seed
// (reference) implementation it replaced, producing the machine-readable
// measurements wardbench writes to BENCH_kernel.json. The reference side is
// a faithful copy of the seed's per-phase pipeline — naive
// EdgeFlows/EdgeLatencies/PathLatenciesFromEdges evaluation, a row-major
// rate matrix filled through per-entry interface dispatch, and the
// column-walk uniformization kernel — kept here both as the performance
// baseline and as one more differential check (the two pipelines must agree
// bit-for-bit; TestReferenceFluidMatchesKernel pins it).
package bench

import (
	"context"
	"fmt"
	"math"
	"testing"

	"wardrop/internal/agents"
	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

// Measurement is one benchmark result destined for BENCH_kernel.json.
type Measurement struct {
	// Name identifies the workload, e.g. "fluid/grid/kernel".
	Name string `json:"name"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp and BytesPerOp are heap allocation counts per operation.
	AllocsPerOp int64 `json:"allocsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
}

// measure runs fn under testing.Benchmark and records it.
func measure(name string, fn func(b *testing.B)) Measurement {
	r := testing.Benchmark(fn)
	return Measurement{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// GridWorkload is the shared fluid-dynamics benchmark workload: an n×n grid
// (monotone lattice paths) under replicator dynamics with a fixed board
// period.
type GridWorkload struct {
	Inst    *flow.Instance
	Pol     policy.Policy
	T       float64
	Horizon float64
	F0      flow.Vector
}

// NewGridWorkload builds the workload on an n×n grid.
func NewGridWorkload(n int) (*GridWorkload, error) {
	inst, err := topo.Grid(n)
	if err != nil {
		return nil, err
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		return nil, err
	}
	return &GridWorkload{
		Inst:    inst,
		Pol:     pol,
		T:       0.5,
		Horizon: 10,
		F0:      inst.SinglePathFlow(0),
	}, nil
}

// --- Reference (seed) pipeline -------------------------------------------

// refRateMatrix is the seed's row-major rate matrix: rates[i][p*n+q] is the
// rate from p to q, filled with one sampler call per origin row and one
// migrator interface call per entry, and read column-wise by the
// uniformization kernel.
type refRateMatrix struct {
	inst    *flow.Instance
	rates   [][]float64
	rowSums [][]float64
	probs   [][]float64
	maxRate float64
}

func newRefRateMatrix(inst *flow.Instance) *refRateMatrix {
	rm := &refRateMatrix{inst: inst}
	for i := 0; i < inst.NumCommodities(); i++ {
		n := inst.NumCommodityPaths(i)
		rm.rates = append(rm.rates, make([]float64, n*n))
		rm.rowSums = append(rm.rowSums, make([]float64, n))
		rm.probs = append(rm.probs, make([]float64, n))
	}
	return rm
}

func (rm *refRateMatrix) fill(pol policy.Policy, boardFlows flow.Vector, boardLats []float64) {
	rm.maxRate = 0
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		rates := rm.rates[i]
		sums := rm.rowSums[i]
		probs := rm.probs[i]
		flows := boardFlows[lo:hi]
		lats := boardLats[lo:hi]
		for p := 0; p < n; p++ {
			pol.Sampler.Probabilities(p, flows, lats, probs)
			row := rates[p*n : (p+1)*n]
			sum := 0.0
			for q := 0; q < n; q++ {
				if q == p {
					row[q] = 0
					continue
				}
				r := probs[q] * pol.Migrator.Probability(lats[p], lats[q])
				row[q] = r
				sum += r
			}
			sums[p] = sum
			if sum > rm.maxRate {
				rm.maxRate = sum
			}
		}
	}
}

func (rm *refRateMatrix) applyTranspose(v, out []float64, lambda float64) {
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		rates := rm.rates[i]
		sums := rm.rowSums[i]
		for p := 0; p < n; p++ {
			acc := v[lo+p] * (1 - sums[p]/lambda)
			for q := 0; q < n; q++ {
				if q == p {
					continue
				}
				acc += v[lo+q] * rates[q*n+p] / lambda
			}
			out[lo+p] = acc
		}
	}
}

func refUniformization(rm *refRateMatrix, f flow.Vector, tau float64, vCur, vNext, acc []float64) {
	lambda := rm.maxRate
	if lambda <= 0 {
		return
	}
	x := lambda * tau
	weight := math.Exp(-x)
	copy(vCur, f)
	for i := range acc {
		acc[i] = weight * vCur[i]
	}
	maxTerms := int(x + 30*math.Sqrt(x+1) + 20)
	cum := weight
	for n := 1; n <= maxTerms; n++ {
		rm.applyTranspose(vCur, vNext, lambda)
		vCur, vNext = vNext, vCur
		weight *= x / float64(n)
		cum += weight
		for i := range acc {
			acc[i] += weight * vCur[i]
		}
		if 1-cum < 1e-14 {
			break
		}
	}
	copy(f, acc)
}

// ReferenceFluid runs the seed fluid pipeline (uniformization) on the
// workload and returns the final potential. It is the "before" side of the
// fluid/grid benchmark and must agree bit-for-bit with dynamics.Run.
func (w *GridWorkload) ReferenceFluid() float64 {
	inst := w.Inst
	f := w.F0.Clone()
	rm := newRefRateMatrix(inst)
	n := inst.NumPaths()
	var (
		fe, le []float64
		pl     = make([]float64, n)
		uA     = make([]float64, n)
		uB     = make([]float64, n)
		uC     = make([]float64, n)
	)
	t := 0.0
	for t < w.Horizon-1e-12 {
		fe = inst.EdgeFlows(f, fe)
		le = inst.EdgeLatencies(fe, le)
		inst.PathLatenciesFromEdges(le, pl)
		_ = inst.PotentialFromEdges(fe)
		rm.fill(w.Pol, f, pl)
		tau := math.Min(w.T, w.Horizon-t)
		refUniformization(rm, f, tau, uA, uB, uC)
		inst.Project(f, 1e-9)
		t += tau
	}
	return inst.Potential(f)
}

// KernelFluid runs the same workload on the rebuilt engine (compiled
// kernel, transposed rates, workspace scratch) and returns the final
// potential.
func (w *GridWorkload) KernelFluid(ws *flow.Workspace) (float64, error) {
	res, err := dynamics.Run(context.Background(), w.Inst, dynamics.Config{
		Policy:       w.Pol,
		UpdatePeriod: w.T,
		Horizon:      w.Horizon,
		Integrator:   dynamics.Uniformization,
		Workspace:    ws,
	}, w.F0)
	if err != nil {
		return 0, err
	}
	return res.FinalPotential, nil
}

// ReferenceEval performs one seed-style full state evaluation (edge flows,
// edge latencies, path latencies, potential) into the provided scratch.
func (w *GridWorkload) ReferenceEval(f flow.Vector, fe, le, pl []float64) float64 {
	w.Inst.EdgeFlows(f, fe)
	w.Inst.EdgeLatencies(fe, le)
	w.Inst.PathLatenciesFromEdges(le, pl)
	return w.Inst.PotentialFromEdges(fe)
}

// --- Suite ----------------------------------------------------------------

// KernelSuite runs the kernel-vs-reference benchmark suite and returns the
// measurements. Pairs share a "<workload>/" prefix with "/reference" and
// "/kernel" leaves; Speedup derives the headline ratios.
func KernelSuite(gridN int) ([]Measurement, error) {
	w, err := NewGridWorkload(gridN)
	if err != nil {
		return nil, err
	}
	inst := w.Inst
	nE := inst.Graph().NumEdges()
	nP := inst.NumPaths()

	var ms []Measurement

	// Full fluid runs: seed pipeline vs rebuilt engine.
	ms = append(ms, measure("fluid/grid/reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = w.ReferenceFluid()
		}
	}))
	ws := flow.NewWorkspace()
	if _, err := w.KernelFluid(ws); err != nil {
		return nil, err
	}
	ms = append(ms, measure("fluid/grid/kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := w.KernelFluid(ws); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Full state evaluation: naive reference vs compiled kernel.
	f := inst.UniformFlow()
	fe := make([]float64, nE)
	le := make([]float64, nE)
	pl := make([]float64, nP)
	ms = append(ms, measure("eval/grid/reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = w.ReferenceEval(f, fe, le, pl)
		}
	}))
	ev := flow.NewEvaluator(inst, nil)
	ms = append(ms, measure("eval/grid/kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.Eval(f)
			_ = ev.Potential()
		}
	}))

	// Sparse update (one two-path move): reference full recompute vs
	// incremental ApplyDelta.
	lo, hi := inst.CommodityRange(0)
	p, q := lo, hi-1
	ms = append(ms, measure("delta/grid/reference", func(b *testing.B) {
		b.ReportAllocs()
		amt := f[p] / 2
		for i := 0; i < b.N; i++ {
			f[p] -= amt
			f[q] += amt
			_ = w.ReferenceEval(f, fe, le, pl)
			amt = -amt
		}
	}))
	ev.Eval(f)
	ms = append(ms, measure("delta/grid/kernel", func(b *testing.B) {
		b.ReportAllocs()
		amt := f[p] / 2
		for i := 0; i < b.N; i++ {
			ev.ApplyDelta(f, p, q, amt)
			_ = ev.Potential()
			amt = -amt
		}
	}))

	// Sparse update on wide parallel links: every path is two edges deep
	// and shares nothing, the incremental regime the agent engine's
	// between-phase moves live in.
	links, err := topo.LinearParallelLinks(256)
	if err != nil {
		return nil, err
	}
	lf := links.UniformFlow()
	lfe := make([]float64, links.Graph().NumEdges())
	lle := make([]float64, links.Graph().NumEdges())
	lpl := make([]float64, links.NumPaths())
	llo, lhi := links.CommodityRange(0)
	ms = append(ms, measure("delta/links/reference", func(b *testing.B) {
		b.ReportAllocs()
		amt := lf[llo] / 2
		for i := 0; i < b.N; i++ {
			lf[llo] -= amt
			lf[lhi-1] += amt
			links.EdgeFlows(lf, lfe)
			links.EdgeLatencies(lfe, lle)
			links.PathLatenciesFromEdges(lle, lpl)
			_ = links.PotentialFromEdges(lfe)
			amt = -amt
		}
	}))
	lev := flow.NewEvaluator(links, nil)
	lev.Eval(lf)
	_ = lev.Potential()
	ms = append(ms, measure("delta/links/kernel", func(b *testing.B) {
		b.ReportAllocs()
		amt := lf[llo] / 2
		for i := 0; i < b.N; i++ {
			lev.ApplyDelta(lf, llo, lhi-1, amt)
			_ = lev.Potential()
			amt = -amt
		}
	}))

	// Agent engine end-to-end allocation profile (the satellite's
	// "measurable allocs/op reduction": the per-phase reference block below
	// allocates, the engine's phases no longer do).
	braess, err := topo.Braess()
	if err != nil {
		return nil, err
	}
	apol, err := policy.Replicator(braess.LMax())
	if err != nil {
		return nil, err
	}
	aws := flow.NewWorkspace()
	runAgents := func() error {
		sim, err := agents.New(braess, agents.Config{
			N: 2000, Policy: apol, UpdatePeriod: 0.25, Horizon: 10,
			Seed: 7, Workers: 1, Workspace: aws,
		})
		if err != nil {
			return err
		}
		_, err = sim.RunContext(context.Background())
		return err
	}
	if err := runAgents(); err != nil {
		return nil, err
	}
	ms = append(ms, measure("agents/braess/run-kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := runAgents(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// The seed's per-phase board refresh: a fresh empirical flow plus naive
	// evaluation plus the two posted copies, 40 phases' worth per op to
	// mirror the run above.
	sim, err := agents.New(braess, agents.Config{
		N: 2000, Policy: apol, UpdatePeriod: 0.25, Horizon: 10, Seed: 7, Workers: 1,
	})
	if err != nil {
		return nil, err
	}
	bfe := make([]float64, braess.Graph().NumEdges())
	ble := make([]float64, braess.Graph().NumEdges())
	bpl := make([]float64, braess.NumPaths())
	ms = append(ms, measure("agents/braess/refresh-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for phase := 0; phase < 40; phase++ {
				bf := sim.EmpiricalFlow()
				braess.EdgeFlows(bf, bfe)
				braess.EdgeLatencies(bfe, ble)
				braess.PathLatenciesFromEdges(ble, bpl)
				_ = braess.PotentialFromEdges(bfe)
				_ = append([]float64(nil), ble...)
				_ = append([]float64(nil), bpl...)
			}
		}
	}))
	return ms, nil
}

// Speedup returns NsPerOp(prefix+"/reference") / NsPerOp(prefix+"/kernel"),
// or an error when either side is missing.
func Speedup(ms []Measurement, prefix string) (float64, error) {
	var ref, ker float64
	for _, m := range ms {
		switch m.Name {
		case prefix + "/reference":
			ref = m.NsPerOp
		case prefix + "/kernel":
			ker = m.NsPerOp
		}
	}
	if ref == 0 || ker == 0 {
		return 0, fmt.Errorf("bench: missing pair for %q", prefix)
	}
	return ref / ker, nil
}
