package agents

import (
	"math"
	"testing"

	"wardrop/internal/dynamics"
	"wardrop/internal/topo"
)

func TestEventDrivenConvergesOnPigou(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{N: 2000, Policy: pol, UpdatePeriod: 0.25, Horizon: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunEventDriven()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[0] < 0.95 {
		t.Errorf("final flow = %v, want mass on the x-link", res.Final)
	}
	if err := inst.Feasible(res.Final, 1e-9); err != nil {
		t.Errorf("final infeasible: %v", err)
	}
}

func TestEventDrivenDeterministic(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	run := func() []float64 {
		s, err := New(inst, Config{N: 400, Policy: pol, UpdatePeriod: 0.25, Horizon: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunEventDriven()
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed differs: %v vs %v", a, b)
		}
	}
}

func TestEventDrivenHookAndPhases(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	calls := 0
	s, err := New(inst, Config{
		N: 100, Policy: pol, UpdatePeriod: 0.5, Horizon: 100, Seed: 1,
		Hook: func(info dynamics.PhaseInfo) bool {
			calls++
			return info.Index >= 6
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunEventDriven()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("hook stop ignored")
	}
	if calls != 7 { // phases 0..6
		t.Errorf("hook calls = %d, want 7", calls)
	}
}

// The two engines sample the same process law: their seed-averaged final
// flows on Pigou agree well within stochastic error.
func TestEngineEquivalenceInDistribution(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	const (
		n      = 1000
		seeds  = 5
		hor    = 20.0
		period = 0.25
	)
	meanF1 := func(event bool) float64 {
		sum := 0.0
		for seed := uint64(1); seed <= seeds; seed++ {
			s, err := New(inst, Config{N: n, Policy: pol, UpdatePeriod: period, Horizon: hor, Seed: seed, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			var res *dynamics.Result
			if event {
				res, err = s.RunEventDriven()
			} else {
				res, err = s.Run()
			}
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Final[0]
		}
		return sum / seeds
	}
	batched, event := meanF1(false), meanF1(true)
	if d := math.Abs(batched - event); d > 0.03 {
		t.Errorf("engines disagree in distribution: batched %g vs event %g (diff %g)", batched, event, d)
	}
}

func TestEventDrivenBraessFeasibilityThroughout(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{
		N: 500, Policy: pol, UpdatePeriod: 0.2, Horizon: 15, Seed: 9,
		Hook: func(info dynamics.PhaseInfo) bool {
			if err := inst.Feasible(info.Flow, 1e-9); err != nil {
				t.Errorf("phase %d: %v", info.Index, err)
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunEventDriven(); err != nil {
		t.Fatal(err)
	}
}
