package agents

import (
	"context"
	"math"

	"wardrop/internal/board"
	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// RunEventDriven simulates the same finite-N bulletin-board system as Run,
// but with an exact global event clock instead of per-phase Poisson
// batching: the superposition of the N agents' rate-1 Poisson clocks is a
// rate-N Poisson process, so the engine draws Exp(N) inter-activation gaps
// and activates a uniformly random agent at each event, refreshing the board
// whenever the clock crosses a multiple of T.
//
// Both engines sample the same process law (within a phase the board is
// frozen, so the batched engine's per-agent Poisson counts are exactly the
// thinned global process); this engine is the single-threaded reference for
// the clock ablation and for workloads where activation-order detail
// matters. It honours Config.Seed/Hook/Observer/RecordEvery and the (δ,ε)
// accounting fields; Workers is ignored.
//
// Deprecated: use RunEventDrivenContext, which adds cancellation.
func (s *Sim) RunEventDriven() (*dynamics.Result, error) {
	return s.RunEventDrivenContext(context.Background())
}

// ctxCheckEvents is how many activation events the event-driven engine
// processes between context checks — often enough that cancellation is
// prompt even when a whole run fits inside one board phase, rarely enough
// that the check cost vanishes against the per-event RNG work.
const ctxCheckEvents = 1024

// RunEventDrivenContext is RunEventDriven with cancellation: ctx is checked
// at every board refresh and every ctxCheckEvents activation events, and
// when it is done the partial result is returned together with ctx.Err().
func (s *Sim) RunEventDrivenContext(ctx context.Context) (*dynamics.Result, error) {
	b, err := board.New(s.cfg.UpdatePeriod)
	if err != nil {
		return nil, err
	}
	rng := NewRNG(s.cfg.Seed ^ 0xd1b54a32d192ed03)

	// Flatten the shards into one agent array with cumulative indexing.
	var all []agentState
	for _, shard := range s.shards {
		all = append(all, shard...)
	}
	nAgents := len(all)
	counts := make([]float64, s.inst.NumPaths())
	for _, a := range all {
		counts[s.inst.GlobalIndex(int(a.commodity), int(a.path))]++
	}

	res := &dynamics.Result{}
	nPaths := s.inst.NumPaths()
	ws := s.cfg.Workspace
	ws.Reset()
	ev := flow.NewEvaluator(s.inst, ws)
	curF := flow.Vector(ws.Floats(nPaths))
	prevF := ws.Floats(nPaths)
	changed := make([]int, 0, nPaths)
	probTab := make([][]float64, s.inst.NumCommodities())
	for i := range probTab {
		n := s.inst.NumCommodityPaths(i)
		probTab[i] = ws.Floats(n * n)
	}
	sharedSampler := policy.OriginInvariant(s.cfg.Policy.Sampler)

	// refresh brings the evaluator in line with the current counts: between
	// board refreshes only individually activated agents moved, so the
	// incremental path touches a handful of edges (bit-identical to the
	// full reference evaluation either way).
	refresh := func() {
		for g := range curF {
			curF[g] = counts[g] * s.weights[s.inst.CommodityOf(g)]
		}
		syncEvaluator(ev, curF, prevF, &changed)
	}

	post := func(t float64, phase int) (dynamics.PhaseInfo, board.Snapshot) {
		refresh()
		pl := ev.PathLatencies()
		snap := board.Snapshot{
			Time:          t,
			EdgeLatencies: ev.EdgeLatencies(),
			PathLatencies: pl,
			PathFlows:     curF,
		}
		b.Post(snap)
		s.fillProbTab(probTab, sharedSampler, snap)
		return dynamics.PhaseInfo{Index: phase, Time: t, Flow: curF, PathLatencies: pl, Potential: ev.Potential()}, snap
	}

	// partial fills the result's terminal fields from the current empirical
	// state; shared by completion and cancellation paths.
	partial := func(elapsed float64) *dynamics.Result {
		refresh()
		res.Final = curF.Clone()
		res.FinalPotential = ev.Potential()
		res.Elapsed = elapsed
		return res
	}

	account := newAcct(s.cfg)
	t := 0.0
	phase := 0
	if err := ctx.Err(); err != nil {
		return partial(0), err
	}
	info, snap := post(t, phase)
	streakStop := account.Observe(s.inst, &info, res)
	if s.cfg.RecordEvery > 0 {
		res.Trajectory = append(res.Trajectory, dynamics.Sample{Time: t, Potential: info.Potential, Flow: append([]float64(nil), info.Flow...)})
	}
	if stop := s.observePhase(info); stop || streakStop {
		res.Stopped = true
	}
	nextBoard := s.cfg.UpdatePeriod
	mig := s.cfg.Policy.Migrator
	for events := 0; !res.Stopped; events++ {
		if events%ctxCheckEvents == 0 {
			if err := ctx.Err(); err != nil {
				return partial(math.Min(t, s.cfg.Horizon)), err
			}
		}
		// Exp(N) inter-activation gap.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		gap := -math.Log(u) / float64(nAgents)
		t += gap
		if t >= s.cfg.Horizon {
			t = s.cfg.Horizon
			break
		}
		// Board refreshes strictly between activations (measure-zero ties).
		for nextBoard <= t {
			if err := ctx.Err(); err != nil {
				return partial(nextBoard), err
			}
			phase++
			res.Phases++
			var hinfo dynamics.PhaseInfo
			hinfo, snap = post(nextBoard, phase)
			hStreakStop := account.Observe(s.inst, &hinfo, res)
			if s.cfg.RecordEvery > 0 && phase%s.cfg.RecordEvery == 0 {
				res.Trajectory = append(res.Trajectory, dynamics.Sample{
					Time: nextBoard, Potential: hinfo.Potential, Flow: append([]float64(nil), hinfo.Flow...),
				})
			}
			if stop := s.observePhase(hinfo); stop || hStreakStop {
				res.Stopped = true
				break
			}
			nextBoard += s.cfg.UpdatePeriod
		}
		if res.Stopped {
			break
		}
		// Activate a uniformly random agent.
		a := &all[rng.Uint64()%uint64(nAgents)]
		i := int(a.commodity)
		lo, _ := s.inst.CommodityRange(i)
		n := s.inst.NumCommodityPaths(i)
		lats := snap.PathLatencies[lo : lo+n]
		origin := int(a.path)
		row := probTab[i][origin*n : (origin+1)*n]
		q := policy.SampleIndex(row, rng.Float64())
		if q == origin {
			continue
		}
		p := mig.Probability(lats[origin], lats[q])
		if p > 0 && rng.Float64() < p {
			counts[lo+origin]--
			counts[lo+q]++
			a.path = int32(q)
		}
	}
	return partial(math.Min(t, s.cfg.Horizon)), nil
}
