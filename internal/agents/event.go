package agents

import (
	"context"
	"math"

	"wardrop/internal/board"
	"wardrop/internal/dynamics"
	"wardrop/internal/policy"
)

// RunEventDriven simulates the same finite-N bulletin-board system as Run,
// but with an exact global event clock instead of per-phase Poisson
// batching: the superposition of the N agents' rate-1 Poisson clocks is a
// rate-N Poisson process, so the engine draws Exp(N) inter-activation gaps
// and activates a uniformly random agent at each event, refreshing the board
// whenever the clock crosses a multiple of T.
//
// Both engines sample the same process law (within a phase the board is
// frozen, so the batched engine's per-agent Poisson counts are exactly the
// thinned global process); this engine is the single-threaded reference for
// the clock ablation and for workloads where activation-order detail
// matters. It honours Config.Seed/Hook/Observer/RecordEvery and the (δ,ε)
// accounting fields; Workers is ignored.
//
// Deprecated: use RunEventDrivenContext, which adds cancellation.
func (s *Sim) RunEventDriven() (*dynamics.Result, error) {
	return s.RunEventDrivenContext(context.Background())
}

// ctxCheckEvents is how many activation events the event-driven engine
// processes between context checks — often enough that cancellation is
// prompt even when a whole run fits inside one board phase, rarely enough
// that the check cost vanishes against the per-event RNG work.
const ctxCheckEvents = 1024

// RunEventDrivenContext is RunEventDriven with cancellation: ctx is checked
// at every board refresh and every ctxCheckEvents activation events, and
// when it is done the partial result is returned together with ctx.Err().
func (s *Sim) RunEventDrivenContext(ctx context.Context) (*dynamics.Result, error) {
	b, err := board.New(s.cfg.UpdatePeriod)
	if err != nil {
		return nil, err
	}
	rng := NewRNG(s.cfg.Seed ^ 0xd1b54a32d192ed03)

	// Flatten the shards into one agent array with cumulative indexing.
	var all []agentState
	for _, shard := range s.shards {
		all = append(all, shard...)
	}
	nAgents := len(all)
	counts := make([]float64, s.inst.NumPaths())
	for _, a := range all {
		counts[s.inst.GlobalIndex(int(a.commodity), int(a.path))]++
	}
	empirical := func() []float64 {
		f := make([]float64, len(counts))
		for g, c := range counts {
			f[g] = c * s.weights[s.inst.CommodityOf(g)]
		}
		return f
	}

	res := &dynamics.Result{}
	nPaths := s.inst.NumPaths()
	var fe, le []float64
	pl := make([]float64, nPaths)
	probTab := make([][]float64, s.inst.NumCommodities())
	for i := range probTab {
		n := s.inst.NumCommodityPaths(i)
		probTab[i] = make([]float64, n*n)
	}

	post := func(t float64, phase int) (dynamics.PhaseInfo, board.Snapshot) {
		f := empirical()
		fe = s.inst.EdgeFlows(f, fe)
		le = s.inst.EdgeLatencies(fe, le)
		s.inst.PathLatenciesFromEdges(le, pl)
		phi := s.inst.PotentialFromEdges(fe)
		snap := board.Snapshot{
			Time:          t,
			EdgeLatencies: append([]float64(nil), le...),
			PathLatencies: append([]float64(nil), pl...),
			PathFlows:     f,
		}
		b.Post(snap)
		for i := range probTab {
			lo, hi := s.inst.CommodityRange(i)
			n := hi - lo
			for origin := 0; origin < n; origin++ {
				s.cfg.Policy.Sampler.Probabilities(origin, snap.PathFlows[lo:hi], snap.PathLatencies[lo:hi],
					probTab[i][origin*n:(origin+1)*n])
			}
		}
		return dynamics.PhaseInfo{Index: phase, Time: t, Flow: f, PathLatencies: pl, Potential: phi}, snap
	}

	// partial fills the result's terminal fields from the current empirical
	// state; shared by completion and cancellation paths.
	partial := func(elapsed float64) *dynamics.Result {
		final := empirical()
		res.Final = final
		res.FinalPotential = s.inst.Potential(final)
		res.Elapsed = elapsed
		return res
	}

	account := newAcct(s.cfg)
	t := 0.0
	phase := 0
	if err := ctx.Err(); err != nil {
		return partial(0), err
	}
	info, snap := post(t, phase)
	streakStop := account.Observe(s.inst, &info, res)
	if s.cfg.RecordEvery > 0 {
		res.Trajectory = append(res.Trajectory, dynamics.Sample{Time: t, Potential: info.Potential, Flow: append([]float64(nil), info.Flow...)})
	}
	if stop := s.observePhase(info); stop || streakStop {
		res.Stopped = true
	}
	nextBoard := s.cfg.UpdatePeriod
	mig := s.cfg.Policy.Migrator
	for events := 0; !res.Stopped; events++ {
		if events%ctxCheckEvents == 0 {
			if err := ctx.Err(); err != nil {
				return partial(math.Min(t, s.cfg.Horizon)), err
			}
		}
		// Exp(N) inter-activation gap.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		gap := -math.Log(u) / float64(nAgents)
		t += gap
		if t >= s.cfg.Horizon {
			t = s.cfg.Horizon
			break
		}
		// Board refreshes strictly between activations (measure-zero ties).
		for nextBoard <= t {
			if err := ctx.Err(); err != nil {
				return partial(nextBoard), err
			}
			phase++
			res.Phases++
			var hinfo dynamics.PhaseInfo
			hinfo, snap = post(nextBoard, phase)
			hStreakStop := account.Observe(s.inst, &hinfo, res)
			if s.cfg.RecordEvery > 0 && phase%s.cfg.RecordEvery == 0 {
				res.Trajectory = append(res.Trajectory, dynamics.Sample{
					Time: nextBoard, Potential: hinfo.Potential, Flow: append([]float64(nil), hinfo.Flow...),
				})
			}
			if stop := s.observePhase(hinfo); stop || hStreakStop {
				res.Stopped = true
				break
			}
			nextBoard += s.cfg.UpdatePeriod
		}
		if res.Stopped {
			break
		}
		// Activate a uniformly random agent.
		a := &all[rng.Uint64()%uint64(nAgents)]
		i := int(a.commodity)
		lo, _ := s.inst.CommodityRange(i)
		n := s.inst.NumCommodityPaths(i)
		lats := snap.PathLatencies[lo : lo+n]
		origin := int(a.path)
		row := probTab[i][origin*n : (origin+1)*n]
		q := policy.SampleIndex(row, rng.Float64())
		if q == origin {
			continue
		}
		p := mig.Probability(lats[origin], lats[q])
		if p > 0 && rng.Float64() < p {
			counts[lo+origin]--
			counts[lo+q]++
			a.path = int32(q)
		}
	}
	return partial(math.Min(t, s.cfg.Horizon)), nil
}
