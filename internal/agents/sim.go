// Package agents implements the finite-population counterpart of the fluid
// limit: N agents with independent Poisson activation clocks reroute against
// a shared bulletin board. Within a phase every decision depends only on the
// frozen board and the agent's own current path, so agents are simulated in
// parallel shards (one goroutine each) with a barrier at phase boundaries —
// an exact simulation of the bulletin-board model, not an approximation.
// Comparing its empirical flows against the dynamics package validates that
// the paper's ODE is the N→∞ limit (experiment E10).
package agents

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"wardrop/internal/board"
	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// Sentinel errors.
var (
	// ErrBadConfig indicates an invalid simulation configuration.
	ErrBadConfig = errors.New("agents: invalid config")
)

// Config parameterises a finite-N stochastic simulation.
type Config struct {
	// N is the total number of agents, split across commodities in
	// proportion to demand (each commodity gets at least one agent). Each
	// agent of commodity i carries weight r_i/n_i flow.
	N int
	// Policy is the rerouting policy.
	Policy policy.Policy
	// UpdatePeriod is the bulletin-board period T (> 0).
	UpdatePeriod float64
	// Horizon is the simulated time budget.
	Horizon float64
	// Seed makes runs reproducible. Runs are deterministic for a fixed
	// (Seed, Workers) pair.
	Seed uint64
	// Workers is the number of simulation goroutines (default: GOMAXPROCS,
	// capped by N).
	Workers int
	// RecordEvery records a sample every k phases (0 disables).
	RecordEvery int
	// Hook observes phase starts (with the empirical flow); returning true
	// stops the run.
	//
	// Deprecated: use Observer; when both are set, both run.
	Hook dynamics.Hook
	// Observer observes phase starts; compose several with
	// dynamics.MultiObserver.
	Observer dynamics.Observer
	// InitialFlow, if non-nil, distributes each commodity's agents over its
	// paths proportionally to this (feasible) flow vector instead of the
	// default even spread. Rounding drift lands on the commodity's first
	// path.
	InitialFlow flow.Vector

	// Delta and Eps enable the (δ,ε)-equilibrium round accounting on the
	// empirical flow at each phase start, with the same semantics as the
	// fluid dynamics (Theorems 6 and 7). Delta <= 0 disables accounting.
	Delta float64
	Eps   float64
	// Weak selects the weak (δ,ε) metric (Definition 4).
	Weak bool
	// StopAfterSatisfiedStreak stops the run once this many consecutive
	// phases started at the configured approximate equilibrium (0 disables).
	StopAfterSatisfiedStreak int
	// Workspace, if non-nil, supplies the run's evaluation scratch (board
	// latencies, sampling tables, flow buffers; Reset at run entry); nil
	// allocates privately. See flow.Workspace for the reuse contract.
	Workspace *flow.Workspace
}

// Sim is a configured simulation bound to an instance. Create with New, run
// with Run.
type Sim struct {
	inst *flow.Instance
	cfg  Config
	// agent state, sharded: shard s owns agents[s]. Agents never move
	// between shards; only their path index mutates.
	shards [][]agentState
	// weights[i] is the flow carried by one agent of commodity i.
	weights []float64
	// counts[s][g] is shard s's number of agents on global path g.
	counts [][]float64
}

type agentState struct {
	commodity int32
	path      int32 // commodity-local path index
}

// New validates the configuration and distributes agents over shards.
func New(inst *flow.Instance, cfg Config) (*Sim, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: N=%d", ErrBadConfig, cfg.N)
	}
	if cfg.UpdatePeriod <= 0 {
		return nil, fmt.Errorf("%w: update period %g", ErrBadConfig, cfg.UpdatePeriod)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %g", ErrBadConfig, cfg.Horizon)
	}
	if cfg.Policy.Sampler == nil || cfg.Policy.Migrator == nil {
		return nil, fmt.Errorf("%w: policy requires sampler and migrator", ErrBadConfig)
	}
	if err := dynamics.ValidateRunShape(ErrBadConfig, cfg.RecordEvery, cfg.Delta, cfg.Eps, cfg.StopAfterSatisfiedStreak); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.N {
		cfg.Workers = cfg.N
	}

	s := &Sim{inst: inst, cfg: cfg}
	total := inst.TotalDemand()
	// Per-commodity agent counts proportional to demand, ≥ 1 each.
	perComm := make([]int, inst.NumCommodities())
	assigned := 0
	for i := range perComm {
		ni := int(math.Round(float64(cfg.N) * inst.Commodity(i).Demand / total))
		if ni < 1 {
			ni = 1
		}
		perComm[i] = ni
		assigned += ni
	}
	// Adjust the largest commodity for rounding drift.
	largest := 0
	for i := range perComm {
		if perComm[i] > perComm[largest] {
			largest = i
		}
	}
	perComm[largest] += cfg.N - assigned
	if perComm[largest] < 1 {
		return nil, fmt.Errorf("%w: N=%d too small for %d commodities", ErrBadConfig, cfg.N, inst.NumCommodities())
	}

	if cfg.InitialFlow != nil {
		if err := inst.Feasible(cfg.InitialFlow, 1e-9); err != nil {
			return nil, fmt.Errorf("%w: initial flow: %v", ErrBadConfig, err)
		}
	}
	s.weights = make([]float64, inst.NumCommodities())
	var all []agentState
	for i := range perComm {
		s.weights[i] = inst.Commodity(i).Demand / float64(perComm[i])
		np := inst.NumCommodityPaths(i)
		if cfg.InitialFlow == nil {
			// Spread each commodity's agents evenly over its paths (matching
			// the fluid runs' uniform initial flow as closely as integrality
			// allows).
			for a := 0; a < perComm[i]; a++ {
				all = append(all, agentState{commodity: int32(i), path: int32(a % np)})
			}
			continue
		}
		// Proportional placement: floor per path, drift onto the first path.
		lo, _ := inst.CommodityRange(i)
		demand := inst.Commodity(i).Demand
		placed := 0
		for p := 0; p < np; p++ {
			n := int(math.Floor(cfg.InitialFlow[lo+p] / demand * float64(perComm[i])))
			for a := 0; a < n && placed < perComm[i]; a++ {
				all = append(all, agentState{commodity: int32(i), path: int32(p)})
				placed++
			}
		}
		for ; placed < perComm[i]; placed++ {
			all = append(all, agentState{commodity: int32(i), path: 0})
		}
	}
	// Round-robin deal to shards so every shard holds a commodity mix.
	s.shards = make([][]agentState, cfg.Workers)
	for idx, a := range all {
		w := idx % cfg.Workers
		s.shards[w] = append(s.shards[w], a)
	}
	s.counts = make([][]float64, cfg.Workers)
	for w := range s.counts {
		s.counts[w] = make([]float64, inst.NumPaths())
		for _, a := range s.shards[w] {
			g := inst.GlobalIndex(int(a.commodity), int(a.path))
			s.counts[w][g]++
		}
	}
	return s, nil
}

// EmpiricalFlow returns the current empirical flow vector (agent counts
// times agent weights).
func (s *Sim) EmpiricalFlow() flow.Vector {
	f := make(flow.Vector, s.inst.NumPaths())
	s.empiricalInto(f)
	return f
}

// empiricalInto writes the current empirical flow into f, reusing the
// caller's buffer. The accumulation (shard-major, ascending path, zero
// counts skipped) is exactly EmpiricalFlow's, so the reused-buffer value is
// bitwise the allocating one.
func (s *Sim) empiricalInto(f flow.Vector) {
	for g := range f {
		f[g] = 0
	}
	for w := range s.counts {
		for g, c := range s.counts[w] {
			if c != 0 {
				f[g] += c * s.weights[s.inst.CommodityOf(g)]
			}
		}
	}
}

// Run simulates until the horizon (or a hook stop) and returns the result.
//
// Deprecated: use RunContext, which adds cancellation.
func (s *Sim) Run() (*dynamics.Result, error) {
	return s.RunContext(context.Background())
}

// newAcct builds the shared (δ,ε) round accounting from the config.
func newAcct(cfg Config) dynamics.RoundAccounting {
	return dynamics.NewRoundAccounting(cfg.Delta, cfg.Eps, cfg.Weak, cfg.StopAfterSatisfiedStreak)
}

// RunContext simulates until the horizon (or an observer stop) and returns
// the result. The Result's Phases/Trajectory/UnsatisfiedPhases semantics
// match the dynamics package. Cancellation is checked between phases: when
// ctx is done the partial result accumulated so far is returned together
// with ctx.Err().
//
// Board refreshes run on the compiled flow.Evaluator kernel: because a
// phase only moves agents between a few paths, the refresh diffs the
// empirical flow against the previous phase and applies an incremental
// update touching only the affected edges and dependent paths (falling
// back to a full evaluation when the phase churned most of the strategy
// space). Both modes are bit-identical to the full reference evaluation,
// so the board — and hence every sampled decision — is unchanged.
func (s *Sim) RunContext(ctx context.Context) (*dynamics.Result, error) {
	b, err := board.New(s.cfg.UpdatePeriod)
	if err != nil {
		return nil, fmt.Errorf("agents: %w", err)
	}
	res := &dynamics.Result{}
	nPaths := s.inst.NumPaths()
	ws := s.cfg.Workspace
	ws.Reset()
	ev := flow.NewEvaluator(s.inst, ws)
	// Double-buffered empirical flow: curF is the phase-start state posted
	// on the board (stable while shards run), prevF the previous phase's,
	// so the refresh knows exactly which paths changed.
	curF := flow.Vector(ws.Floats(nPaths))
	prevF := ws.Floats(nPaths)
	changed := make([]int, 0, nPaths)

	// Per-phase sampler probability tables: probTab[i] is an n_i×n_i
	// row-major table, row = origin. Computed once per phase (board frozen),
	// shared read-only by all workers; the backing memory comes from the
	// run's workspace.
	probTab := make([][]float64, s.inst.NumCommodities())
	for i := range probTab {
		n := s.inst.NumCommodityPaths(i)
		probTab[i] = ws.Floats(n * n)
	}
	sharedSampler := policy.OriginInvariant(s.cfg.Policy.Sampler)

	rngs := make([]*RNG, s.cfg.Workers)
	for w := range rngs {
		rngs[w] = NewRNG(s.cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1)))
	}

	// refresh brings the evaluator in line with the current agent counts.
	refresh := func() {
		s.empiricalInto(curF)
		syncEvaluator(ev, curF, prevF, &changed)
	}
	// finish fills the result's terminal fields from the current empirical
	// state; shared by normal completion and cancellation paths.
	finish := func(t float64) *dynamics.Result {
		refresh()
		res.Final = curF.Clone()
		res.FinalPotential = ev.Potential()
		res.Elapsed = t
		return res
	}

	account := newAcct(s.cfg)
	t := 0.0
	for phase := 0; t < s.cfg.Horizon-1e-12; phase++ {
		if err := ctx.Err(); err != nil {
			return finish(t), err
		}
		refresh()
		pl := ev.PathLatencies()
		phi := ev.Potential()
		b.Post(board.Snapshot{
			Time:          t,
			EdgeLatencies: ev.EdgeLatencies(),
			PathLatencies: pl,
			PathFlows:     curF,
		})

		info := dynamics.PhaseInfo{Index: phase, Time: t, Flow: curF, PathLatencies: pl, Potential: phi}
		streakStop := account.Observe(s.inst, &info, res)
		if s.cfg.RecordEvery > 0 && phase%s.cfg.RecordEvery == 0 {
			res.Trajectory = append(res.Trajectory, dynamics.Sample{Time: t, Potential: phi, Flow: curF.Clone()})
		}
		if stop := s.observePhase(info); stop || streakStop {
			res.Stopped = true
			break
		}

		// Fill per-commodity sampling tables from the board.
		snap, _ := b.Read()
		s.fillProbTab(probTab, sharedSampler, snap)

		tau := math.Min(s.cfg.UpdatePeriod, s.cfg.Horizon-t)
		phaseDone := true
		if s.cfg.Workers == 1 {
			// Single-worker runs (the sweep engine's per-task default) stay
			// on this goroutine: no spawn, no barrier, no per-phase
			// allocation — and the same RNG stream as the spawned form.
			phaseDone = s.runShard(ctx, 0, rngs[0], snap, probTab, tau)
		} else {
			var (
				wg      sync.WaitGroup
				aborted atomic.Bool
			)
			for w := 0; w < s.cfg.Workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					if !s.runShard(ctx, w, rngs[w], snap, probTab, tau) {
						aborted.Store(true)
					}
				}(w)
			}
			wg.Wait()
			phaseDone = !aborted.Load()
		}
		// Shards bail between agents once ctx is done, so even a single
		// giant phase (Horizon <= UpdatePeriod, large N) stays
		// interruptible. Only a genuinely abandoned phase returns here —
		// a phase that completed despite a late cancellation is counted
		// normally and the loop-top check reports the cancellation at the
		// next phase boundary, matching the fluid engine.
		if !phaseDone {
			return finish(t), ctx.Err()
		}
		t += tau
		res.Phases++
	}
	return finish(t), nil
}

// observePhase delivers a phase start to the configured hook and observer
// under the shared composition rule.
func (s *Sim) observePhase(info dynamics.PhaseInfo) bool {
	return dynamics.DeliverPhase(s.cfg.Hook, s.cfg.Observer, info)
}

// syncEvaluator diffs curF against prevF, applies the (incremental when
// sparse) kernel update, and records curF as the evaluator's last-seen
// state. changed is reused diff scratch. It is the one definition of the
// between-phase refresh bookkeeping, shared by the batched and
// event-driven engines so their boards can never desynchronize.
func syncEvaluator(ev *flow.Evaluator, curF flow.Vector, prevF []float64, changed *[]int) {
	cs := (*changed)[:0]
	for g := range curF {
		if curF[g] != prevF[g] {
			cs = append(cs, g)
		}
	}
	*changed = cs
	ev.Update(curF, cs)
	copy(prevF, curF)
}

// fillProbTab fills the per-commodity sampling tables (probTab[i] is an
// n_i×n_i row-major table, row = origin) from the board snapshot. With an
// origin-invariant (shared) sampler one row is computed per commodity and
// copied across origins instead of re-deriving it n times. Shared by the
// batched and event-driven engines so they sample identically.
func (s *Sim) fillProbTab(probTab [][]float64, shared bool, snap board.Snapshot) {
	for i := range probTab {
		lo, hi := s.inst.CommodityRange(i)
		n := hi - lo
		flows := snap.PathFlows[lo:hi]
		lats := snap.PathLatencies[lo:hi]
		if shared && n > 0 {
			s.cfg.Policy.Sampler.Probabilities(0, flows, lats, probTab[i][:n])
			for origin := 1; origin < n; origin++ {
				copy(probTab[i][origin*n:(origin+1)*n], probTab[i][:n])
			}
			continue
		}
		for origin := 0; origin < n; origin++ {
			s.cfg.Policy.Sampler.Probabilities(origin, flows, lats, probTab[i][origin*n:(origin+1)*n])
		}
	}
}

// runShard advances one shard through a phase of length tau against the
// frozen board snapshot. Every agent activates Poisson(tau) times; each
// activation samples a path from the board-derived table and migrates with
// the policy's probability computed on board latencies. The shard checks
// ctx every ctxCheckEvents activation events (like the event-driven engine,
// and never before the first, so short phases always complete) and reports
// whether it finished the phase; the per-shard counts remain consistent at
// whatever activation it stopped at.
func (s *Sim) runShard(ctx context.Context, w int, rng *RNG, snap board.Snapshot, probTab [][]float64, tau float64) bool {
	shard := s.shards[w]
	counts := s.counts[w]
	mig := s.cfg.Policy.Migrator
	events := 0
	for idx := range shard {
		a := &shard[idx]
		k := rng.Poisson(tau)
		if k == 0 {
			continue
		}
		i := int(a.commodity)
		lo, _ := s.inst.CommodityRange(i)
		n := s.inst.NumCommodityPaths(i)
		lats := snap.PathLatencies[lo : lo+n]
		for act := 0; act < k; act++ {
			if events > 0 && events%ctxCheckEvents == 0 && ctx.Err() != nil {
				return false
			}
			events++
			origin := int(a.path)
			row := probTab[i][origin*n : (origin+1)*n]
			q := policy.SampleIndex(row, rng.Float64())
			if q == origin {
				continue
			}
			p := mig.Probability(lats[origin], lats[q])
			if p > 0 && rng.Float64() < p {
				counts[lo+origin]--
				counts[lo+q]++
				a.path = int32(q)
			}
		}
	}
	return true
}
