package agents

import (
	"context"
	"errors"
	"math"
	"testing"

	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

func mustPigou(t testing.TB) *flow.Instance {
	t.Helper()
	inst, err := topo.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func mustReplicator(t testing.TB, lmax float64) policy.Policy {
	t.Helper()
	p, err := policy.Replicator(lmax)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	base := Config{N: 100, Policy: pol, UpdatePeriod: 0.25, Horizon: 1}
	cases := []struct {
		name string
		mut  func(Config) Config
	}{
		{"zero N", func(c Config) Config { c.N = 0; return c }},
		{"zero period", func(c Config) Config { c.UpdatePeriod = 0; return c }},
		{"zero horizon", func(c Config) Config { c.Horizon = 0; return c }},
		{"no policy", func(c Config) Config { c.Policy = policy.Policy{}; return c }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(inst, tc.mut(base)); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
	if _, err := New(inst, base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEmpiricalFlowIsFeasible(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{N: 101, Policy: pol, UpdatePeriod: 0.25, Horizon: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Feasible(s.EmpiricalFlow(), 1e-9); err != nil {
		t.Errorf("initial empirical flow infeasible: %v", err)
	}
}

func TestAgentSplitAcrossCommodities(t *testing.T) {
	inst, err := topo.TwoCommodityOverlap() // demands 0.6 / 0.4
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{N: 10, Policy: pol, UpdatePeriod: 0.1, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := s.EmpiricalFlow()
	if err := inst.Feasible(f, 1e-9); err != nil {
		t.Errorf("two-commodity empirical flow infeasible: %v", err)
	}
}

func TestRunConvergesOnPigou(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{
		N: 2000, Policy: pol, UpdatePeriod: 0.25, Horizon: 120, Seed: 42, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[0] < 0.95 {
		t.Errorf("final flow = %v, want most mass on the x-link", res.Final)
	}
	if err := inst.Feasible(res.Final, 1e-9); err != nil {
		t.Errorf("final flow infeasible: %v", err)
	}
}

func TestDeterminismForFixedSeedAndWorkers(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	run := func() flow.Vector {
		s, err := New(inst, Config{N: 500, Policy: pol, UpdatePeriod: 0.25, Horizon: 10, Seed: 7, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	a, b := run(), run()
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Errorf("same seed+workers differ by %g", d)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	run := func(seed uint64) flow.Vector {
		s, err := New(inst, Config{N: 500, Policy: pol, UpdatePeriod: 0.25, Horizon: 5, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	if d := run(1).MaxAbsDiff(run(2)); d == 0 {
		t.Error("different seeds produced identical trajectories")
	}
}

// E10 core claim: the finite-N empirical trajectory approaches the fluid
// limit as N grows (sup-norm error at a fixed time shrinks).
func TestFluidLimitAgreementImprovesWithN(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	fluidRes, err := dynamics.Run(context.Background(), inst, dynamics.Config{
		Policy: pol, UpdatePeriod: 0.25, Horizon: 20,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(n int) float64 {
		// Average over a few seeds to tame variance.
		sum := 0.0
		const seeds = 3
		for seed := uint64(1); seed <= seeds; seed++ {
			s, err := New(inst, Config{N: n, Policy: pol, UpdatePeriod: 0.25, Horizon: 20, Seed: seed, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Final.MaxAbsDiff(fluidRes.Final)
		}
		return sum / seeds
	}
	small, large := errAt(50), errAt(5000)
	if large >= small {
		t.Errorf("error did not shrink with N: N=50 err %g vs N=5000 err %g", small, large)
	}
}

func TestHookAndTrajectory(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	calls := 0
	s, err := New(inst, Config{
		N: 100, Policy: pol, UpdatePeriod: 0.5, Horizon: 100, Seed: 1,
		RecordEvery: 1,
		Hook: func(info dynamics.PhaseInfo) bool {
			calls++
			return info.Index >= 9
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Phases != 9 {
		t.Errorf("stopped=%v phases=%d, want stop at phase 9", res.Stopped, res.Phases)
	}
	if calls != 10 {
		t.Errorf("hook calls = %d, want 10", calls)
	}
	if len(res.Trajectory) != 10 {
		t.Errorf("trajectory = %d samples, want 10", len(res.Trajectory))
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := NewRNG(99)
	for _, mean := range []float64{0.3, 2.0, 50.0} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(rng.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%g) sample mean = %g", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
	if NewRNG(1).Poisson(-1) != 0 {
		t.Error("Poisson(-1) != 0")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 10000; i++ {
		u := rng.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %g", u)
		}
	}
}

func TestConservationUnderConcurrency(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{
		N: 999, Policy: pol, UpdatePeriod: 0.1, Horizon: 20, Seed: 3, Workers: 8,
		Hook: func(info dynamics.PhaseInfo) bool {
			if err := inst.Feasible(info.Flow, 1e-9); err != nil {
				t.Errorf("phase %d: %v", info.Index, err)
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunContextCancellation covers the satellite contract: both finite-N
// engines honour ctx.Done() and return the partial result with ctx.Err() —
// including the event-driven engine when the whole run fits inside a single
// board phase (Horizon < UpdatePeriod), where there are no phase boundaries
// to check at.
func TestRunContextCancellation(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	runs := map[string]func(*Sim) (*dynamics.Result, error){
		"batched": func(s *Sim) (*dynamics.Result, error) {
			return s.RunContext(cancelled)
		},
		"event-driven": func(s *Sim) (*dynamics.Result, error) {
			return s.RunEventDrivenContext(cancelled)
		},
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			// Horizon < UpdatePeriod: the run would complete without ever
			// crossing a phase boundary.
			sim, err := New(inst, Config{
				N: 50, Policy: pol, UpdatePeriod: 10, Horizon: 5, Seed: 3, Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := run(sim)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil {
				t.Fatal("no partial result returned")
			}
			if ferr := inst.Feasible(res.Final, 1e-9); ferr != nil {
				t.Errorf("partial final flow infeasible: %v", ferr)
			}
		})
	}
}

// TestRunContextCancellationWithinGiantPhase pins the in-phase cancellation
// path of the batched engine: with Horizon <= UpdatePeriod the whole run is
// one phase, so the only chance to observe a cancel raised at the phase
// start is the shards' between-agent check.
func TestRunContextCancellationWithinGiantPhase(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sim, err := New(inst, Config{
		// Enough agents that the shard passes several ctx checkpoints.
		N: 4 * ctxCheckEvents, Policy: pol, UpdatePeriod: 10, Horizon: 10,
		Seed: 5, Workers: 1,
		Hook: func(dynamics.PhaseInfo) bool {
			cancel() // fires at the phase-0 start, before the shards run
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (single-phase run uninterruptible)", err)
	}
	if res == nil || res.Phases != 0 {
		t.Fatalf("partial result %+v, want the abandoned phase not counted", res)
	}
}
