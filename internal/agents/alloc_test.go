package agents

// Steady-state allocation test: with a Workspace supplied and a single
// worker (the sweep engine's per-task shape), the agent engine's phase loop
// — empirical-flow refresh, incremental board evaluation, sampling-table
// fill, shard simulation — must not allocate. Measured as the marginal
// allocations of extra phases, which isolates the loop from per-run setup.

import (
	"context"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

func TestRunSteadyStateAllocationFree(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	ws := flow.NewWorkspace()
	run := func(phases int) {
		sim, err := New(inst, Config{
			N:            500,
			Policy:       pol,
			UpdatePeriod: 0.25,
			Horizon:      float64(phases) * 0.25,
			Seed:         7,
			Workers:      1,
			Workspace:    ws,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunContext(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	run(1) // warm the workspace before measuring
	short := testing.AllocsPerRun(5, func() { run(10) })
	long := testing.AllocsPerRun(5, func() { run(110) })
	// Setup (Sim construction, RNGs, evaluator, final clone) is a constant;
	// the 100 extra phases must contribute nothing.
	if extra := long - short; extra > 0.5 {
		t.Fatalf("agents: %g allocations per 100 extra phases, want 0", extra)
	}
}
