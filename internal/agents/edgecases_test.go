package agents

import (
	"math"
	"testing"

	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/latency"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

// A single agent is a legal population: it must hop between links without
// ever violating feasibility, and Workers is clamped to N.
func TestSingleAgent(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{N: 1, Policy: pol, UpdatePeriod: 0.5, Horizon: 20, Seed: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Feasible(res.Final, 1e-9); err != nil {
		t.Errorf("single-agent flow infeasible: %v", err)
	}
	// Exactly one path carries the whole unit of demand.
	ones := 0
	for _, x := range res.Final {
		if math.Abs(x-1) < 1e-12 {
			ones++
		}
	}
	if ones != 1 {
		t.Errorf("single agent spread across paths: %v", res.Final)
	}
}

// More commodities than agents is rejected rather than silently dropping a
// commodity.
func TestTooFewAgentsForCommodities(t *testing.T) {
	inst, err := topo.MultiCommodityParallel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	// N=2 but 4 commodities: every commodity still gets >= 1 agent, so the
	// adjustment must fail loudly (largest commodity would go below 1).
	if _, err := New(inst, Config{N: 2, Policy: pol, UpdatePeriod: 0.5, Horizon: 1}); err == nil {
		t.Error("N < commodities accepted")
	}
}

// With better response as the migrator, the finite population reproduces the
// §3.2 flip-flopping: the majority share alternates across phases.
func TestFiniteAgentsBestResponseOscillation(t *testing.T) {
	beta := 8.0
	inst, err := topo.TwoLinkKink(beta)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.Policy{Sampler: policy.Uniform{}, Migrator: policy.BetterResponse{}}
	var f1s []float64
	s, err := New(inst, Config{
		N: 4000, Policy: pol, UpdatePeriod: 1.0, Horizon: 30, Seed: 4, Workers: 2,
		InitialFlow: flow.Vector{0.9, 0.1},
		Hook: func(info dynamics.PhaseInfo) bool {
			f1s = append(f1s, info.Flow[0])
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	flips := 0
	for i := 1; i < len(f1s); i++ {
		if (f1s[i] > 0.5) != (f1s[i-1] > 0.5) {
			flips++
		}
	}
	if flips < len(f1s)/3 {
		t.Errorf("finite-N better response did not oscillate: %d flips in %d phases (%v)", flips, len(f1s), f1s[:6])
	}
}

// Degenerate constant-latency instance: agents never migrate (no strict
// improvement exists), so the empirical flow is frozen.
func TestAgentsFrozenOnConstantLatencies(t *testing.T) {
	inst, err := topo.ParallelLinks([]latency.Function{
		latency.Constant{C: 2}, latency.Constant{C: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	s, err := New(inst, Config{N: 100, Policy: pol, UpdatePeriod: 0.5, Horizon: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := s.EmpiricalFlow()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Final.MaxAbsDiff(before); d != 0 {
		t.Errorf("agents migrated %g on equal latencies", d)
	}
}

// Workers exceeding GOMAXPROCS or N must not break determinism of the
// per-shard decomposition (counts always sum to N).
func TestShardCountInvariant(t *testing.T) {
	inst, err := topo.MultiCommodityParallel(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	for _, workers := range []int{1, 3, 7, 64} {
		s, err := New(inst, Config{N: 97, Policy: pol, UpdatePeriod: 0.3, Horizon: 6, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, x := range res.Final {
			total += x
		}
		if math.Abs(total-inst.TotalDemand()) > 1e-9 {
			t.Errorf("workers=%d: demand drifted to %g", workers, total)
		}
	}
}

var benchSink flow.Vector

func BenchmarkAgentPhase(b *testing.B) {
	inst, err := topo.LinearParallelLinks(16)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := New(inst, Config{N: 10000, Policy: pol, UpdatePeriod: 0.25, Horizon: 2.5, Seed: 1, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res.Final
	}
}
