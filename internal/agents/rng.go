package agents

import "math"

// RNG is a splitmix64 generator: tiny, fast, and deterministic across
// platforms, so simulation results are reproducible from a seed without
// depending on math/rand internals.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit output.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Poisson returns a Poisson(mean) variate via Knuth's product method —
// appropriate for the small per-phase activation means (T ≈ 0.01…5) this
// simulator uses. For large means it falls back to a normal approximation.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		n := int(math.Round(mean + math.Sqrt(mean)*r.normal()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// normal returns a standard normal variate (Box–Muller).
func (r *RNG) normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
