package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the CLIs' shared structured logger: Info level by default,
// Debug with verbose, text lines for humans or JSON lines for collectors.
// Using one constructor keeps the field conventions (job id, fingerprint,
// node URL) consistent across wardserve and wardsweep.
func NewLogger(w io.Writer, verbose, json bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
