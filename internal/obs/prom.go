package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// splitName separates an instrument name into its metric family and its
// inline constant label set: `sweep_task_ms{worker="3"}` → ("sweep_task_ms",
// `worker="3"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// joinLabels merges an inline label set with one extra label (the histogram
// le bound) into a rendered {...} block; both parts may be empty.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a help string for the # HELP line.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders every registered instrument in the Prometheus text
// exposition format, in registration order. Instruments sharing a family get
// one # HELP/# TYPE header (the first registration's help text wins);
// histograms render cumulative le buckets plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	seen := make(map[string]bool)
	for _, e := range r.snapshot() {
		family, labels := splitName(e.name)
		if !seen[family] {
			seen[family] = true
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(e.help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, e.kind); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", family, joinLabels(labels, ""), e.counter.Value())
		case kindCounterFunc, kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s%s %s\n", family, joinLabels(labels, ""), formatValue(e.fn()))
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", family, joinLabels(labels, ""), formatValue(e.gauge.Value()))
		case kindHistogram:
			err = writePromHistogram(w, family, labels, e.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, family, labels string, h *Histogram) error {
	bounds, counts := h.Buckets()
	cum := int64(0)
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatValue(bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, joinLabels(labels, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, joinLabels(labels, ""), formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, joinLabels(labels, ""), h.Count())
	return err
}
