package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

func phase(i int, t, phi float64) dynamics.PhaseInfo {
	return dynamics.PhaseInfo{Index: i, Time: t, Potential: phi}
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(8)
	tr.ObservePhase(phase(0, 0, 5))
	tr.ObservePhase(phase(1, 0.25, 3))
	tr.MarkEvent("block edge 3", 0.25)
	tr.ObservePhase(phase(2, 0.5, 2.5))

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Kind != SpanPhase || spans[0].Residual != 0 {
		t.Fatalf("first span = %+v, want phase span with zero residual", spans[0])
	}
	if spans[1].Residual != 2 {
		t.Fatalf("second span residual = %g, want |3-5| = 2", spans[1].Residual)
	}
	if spans[2].Kind != SpanEvent || spans[2].Label != "block edge 3" {
		t.Fatalf("event span = %+v", spans[2])
	}
	if spans[3].Residual != 0.5 {
		t.Fatalf("residual after event = %g, want |2.5-3| = 0.5 (events do not move the baseline)", spans[3].Residual)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.ObservePhase(phase(i, float64(i), 0))
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(spans))
	}
	for i, sp := range spans {
		if sp.Phase != 6+i {
			t.Fatalf("span %d phase = %d, want %d (oldest-first newest window)", i, sp.Phase, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset must clear spans and the dropped count")
	}
	tr.ObservePhase(phase(0, 0, 7))
	if got := tr.Spans(); len(got) != 1 || got[0].Residual != 0 {
		t.Fatalf("after Reset the residual baseline must restart: %+v", got)
	}
}

func TestTracerOnSpanStream(t *testing.T) {
	tr := NewTracer(2) // smaller than the span count: streaming must still see all
	var streamed []Span
	tr.OnSpan(func(sp Span) { streamed = append(streamed, sp) })
	for i := 0; i < 5; i++ {
		tr.ObservePhase(phase(i, float64(i), 0))
	}
	if len(streamed) != 5 {
		t.Fatalf("streamed %d spans, want all 5 despite ring capacity 2", len(streamed))
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.ObservePhase(phase(0, 0, 5))
	tr.MarkEvent("segment t=0.5", 0.5)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Span
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, sp)
	}
	if len(lines) != 2 || lines[0].Kind != SpanPhase || lines[1].Label != "segment t=0.5" {
		t.Fatalf("JSONL round trip = %+v", lines)
	}
	// Schema spot check: the dump uses the documented field names.
	var raw bytes.Buffer
	_ = tr.WriteJSONL(&raw)
	first, _, _ := strings.Cut(raw.String(), "\n")
	for _, key := range []string{`"kind"`, `"phase"`, `"t"`, `"phi"`, `"residual"`, `"wallNs"`} {
		if !strings.Contains(first, key) {
			t.Fatalf("JSONL line %s missing %s", first, key)
		}
	}
}

// TestTracerFluidRunAllocationFree attaches a Tracer to the fluid engine and
// pins the per-phase loop at zero marginal allocations — the engines'
// steady-state contract must survive instrumentation.
func TestTracerFluidRunAllocationFree(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	f0 := inst.UniformFlow()
	ws := flow.NewWorkspace()
	tr := NewTracer(256)
	cfg := dynamics.Config{
		Policy:       pol,
		UpdatePeriod: 0.25,
		Integrator:   dynamics.Uniformization,
		Workspace:    ws,
		Observer:     tr,
	}
	run := func(phases int) {
		cfg.Horizon = float64(phases) * cfg.UpdatePeriod
		tr.Reset()
		if _, err := dynamics.Run(context.Background(), inst, cfg, f0); err != nil {
			t.Fatal(err)
		}
	}
	run(1) // warm the workspace before measuring
	short := testing.AllocsPerRun(5, func() { run(10) })
	long := testing.AllocsPerRun(5, func() { run(110) })
	if extra := long - short; extra > 0.5 {
		t.Fatalf("traced fluid run: %g allocations per 100 extra phases, want 0", extra)
	}
	run(20)
	if got := len(tr.Spans()); got < 20 {
		t.Fatalf("tracer recorded %d spans for a 20-phase run", got)
	}
}
