// Package obs is the repo's zero-dependency observability core: a typed
// instrument registry (atomic counters, gauges, fixed-bucket histograms with
// exact window percentiles) shared by the serving layer, the sweep worker
// pool and the dispatch coordinator, plus a run tracer built on the engine
// observer pipeline (trace.go). Instruments are pre-registered once and then
// updated lock-free (histograms take one short mutex for their percentile
// window), so hot paths stay allocation-free; exposition is pull-based — the
// JSON /metrics document is assembled from instrument values by its owner,
// and WritePrometheus (prom.go) renders the whole registry in Prometheus
// text format.
//
// Instrument names follow Prometheus conventions and may carry a constant
// label set inline: `sweep_task_ms{worker="3"}`. Instruments sharing a
// family (the name before '{') are grouped under one # TYPE line.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultWindow is the percentile sample window used when a histogram is
// registered without an explicit window size.
const DefaultWindow = 512

// DefMsBuckets are the default histogram bucket upper bounds for
// millisecond latencies, spanning sub-50µs handler hits to 10s jobs.
var DefMsBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// kind discriminates registered instruments.
type kind int

const (
	kindCounter kind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered instrument.
type entry struct {
	name string // full name, optional inline labels
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc / GaugeFunc value source
	hist    *Histogram
}

// Registry holds the registered instruments in registration order. All
// methods are safe for concurrent use; registration is get-or-create, so
// several components can share one instrument by name.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register returns the instrument registered under name, creating it with
// build on first registration. A name re-registered as a different kind is a
// programming error and panics.
func (r *Registry) register(name, help string, k kind, build func(*entry)) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: %q re-registered as %s (was %s)", name, k, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: k}
	build(e)
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e
}

// Counter registers (or finds) the cumulative counter name.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter, func(e *entry) { e.counter = &Counter{} })
	return e.counter
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — the bridge for cumulative counters owned elsewhere (an existing
// atomic a test already pins, a store's census).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc, func(e *entry) { e.fn = fn })
}

// Gauge registers (or finds) the gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge, func(e *entry) { e.gauge = &Gauge{} })
	return e.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (queue depths, cache populations — state owned by its structure).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, func(e *entry) { e.fn = fn })
}

// Histogram registers (or finds) the histogram name with the given bucket
// upper bounds (nil: DefMsBuckets) and the default percentile window.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramWindow(name, help, buckets, 0)
}

// HistogramWindow is Histogram with an explicit percentile sample window
// (<= 0: DefaultWindow).
func (r *Registry) HistogramWindow(name, help string, buckets []float64, window int) *Histogram {
	e := r.register(name, help, kindHistogram, func(e *entry) {
		e.hist = newHistogram(buckets, window)
	})
	return e.hist
}

// FindHistogram returns the histogram registered under name, or nil.
func (r *Registry) FindHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok && e.kind == kindHistogram {
		return e.hist
	}
	return nil
}

// snapshot copies the entry list for exposition without holding the lock
// through value reads (fn sources may take their own locks).
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.entries...)
}

// Names returns the registered instrument names in registration order.
func (r *Registry) Names() []string {
	es := r.snapshot()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.name
	}
	return out
}

// Counter is a cumulative monotonic counter. The zero value is usable.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 instantaneous value. The zero value is usable.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// SetMax ratchets the gauge up to v (a high-water mark).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v || g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with an exact-percentile sample
// window: bucket counts and the sum/count/max accumulators are cumulative
// over the instrument's lifetime (the Prometheus exposition), while Quantile
// answers exactly — nearest rank over the raw samples — for a sliding window
// of the most recent observations. Observe allocates nothing.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; the +Inf bucket is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64

	mu     sync.Mutex
	window []float64
	next   int
	filled int
}

func newHistogram(bounds []float64, window int) *Histogram {
	if bounds == nil {
		bounds = DefMsBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	if window <= 0 {
		window = DefaultWindow
	}
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
		window: make([]float64, window),
	}
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short and a scan beats binary search's
	// branch misses at these sizes; either way, no allocation.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.mu.Lock()
	h.window[h.next] = v
	h.next = (h.next + 1) % len(h.window)
	if h.filled < len(h.window) {
		h.filled++
	}
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 before the first).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the largest observation ever recorded (0 before the first).
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns the exact p-quantile (nearest rank) over the sample
// window. A window not yet full answers over exactly the samples observed so
// far — never over unwritten zero slots — and an empty histogram answers 0.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	sample := append([]float64(nil), h.window[:h.filled]...)
	h.mu.Unlock()
	if len(sample) == 0 {
		return 0
	}
	sort.Float64s(sample)
	i := int(p*float64(len(sample))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sample) {
		i = len(sample) - 1
	}
	return sample[i]
}

// Buckets returns the bucket upper bounds and their per-bucket (not
// cumulative) counts; the final count is the +Inf overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}
