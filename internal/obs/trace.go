package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"

	"wardrop/internal/dynamics"
)

// Span kinds: a bulletin-board phase start, or a point event replayed from a
// timeline (edge blocks, capacity patches, segment boundaries).
const (
	SpanPhase = "phase"
	SpanEvent = "event"
)

// Span is one traced observation of a run — one JSONL line of a trace dump
// and the payload of a wardserve `{"span":…}` stream line.
type Span struct {
	// Kind is SpanPhase or SpanEvent.
	Kind string `json:"kind"`
	// Phase is the phase index (phase spans; 0 for events).
	Phase int `json:"phase"`
	// Time is the simulated time of the observation.
	Time float64 `json:"t"`
	// Phi is the potential Φ at the phase start (phase spans).
	Phi float64 `json:"phi"`
	// Residual is |Φ − Φ_prev| between consecutive phase starts — the
	// convergence signal; 0 on the first phase and on events.
	Residual float64 `json:"residual"`
	// WallNs is the wall-clock nanoseconds since the previous span (for the
	// first span, since the tracer was created): the per-phase cost as seen
	// from the observer pipeline, queue and evaluation included.
	WallNs int64 `json:"wallNs"`
	// Unsatisfied and AtEquilibrium mirror the engine's (δ,ε) round
	// accounting when it is enabled.
	Unsatisfied   float64 `json:"unsatisfied,omitempty"`
	AtEquilibrium bool    `json:"atEquilibrium,omitempty"`
	// Label describes an event span ("block edge 3", "segment t=12.5").
	Label string `json:"label,omitempty"`
}

// Tracer records per-phase spans of a simulation run into a bounded ring.
// It implements dynamics.Observer, so it attaches to any engine through the
// standard observer pipeline (engine.WithObserver); timeline events are
// marked through MarkEvent by whoever replays them. When the ring is full
// the oldest spans are overwritten (Dropped counts them), so a tracer on an
// unbounded service run holds bounded memory. ObservePhase allocates
// nothing, keeping instrumented runs inside the engines' zero-allocs-per-
// phase contract.
//
// A tracer is locked per span, so one tracer must not be shared by
// concurrent runs; its accumulated spans survive the run for Spans and
// WriteJSONL.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	filled  int
	dropped int64
	last    time.Time
	prevPhi float64
	started bool
	onSpan  func(Span)
}

// DefaultTraceCapacity is the span ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer whose ring holds capacity spans (<= 0:
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity), last: time.Now()}
}

// OnSpan installs a callback invoked with every recorded span (streaming
// consumers: wardserve's NDJSON job streams). The callback runs under the
// tracer's lock on the observing goroutine; keep it short. Install before
// the run starts.
func (t *Tracer) OnSpan(fn func(Span)) { t.onSpan = fn }

// ObservePhase records a phase span. It never stops the run.
func (t *Tracer) ObservePhase(info dynamics.PhaseInfo) bool {
	now := time.Now()
	t.mu.Lock()
	sp := Span{
		Kind:          SpanPhase,
		Phase:         info.Index,
		Time:          info.Time,
		Phi:           info.Potential,
		WallNs:        now.Sub(t.last).Nanoseconds(),
		Unsatisfied:   info.Unsatisfied,
		AtEquilibrium: info.AtEquilibrium,
	}
	if t.started {
		sp.Residual = math.Abs(info.Potential - t.prevPhi)
	}
	t.started = true
	t.prevPhi = info.Potential
	t.last = now
	t.pushLocked(sp)
	t.mu.Unlock()
	return false
}

// MarkEvent records an event span (timeline event replays, segment
// boundaries) at simulated time tm.
func (t *Tracer) MarkEvent(label string, tm float64) {
	now := time.Now()
	t.mu.Lock()
	t.pushLocked(Span{Kind: SpanEvent, Time: tm, WallNs: now.Sub(t.last).Nanoseconds(), Label: label})
	t.last = now
	t.mu.Unlock()
}

// pushLocked appends a span, overwriting the oldest when full; callers hold
// t.mu.
func (t *Tracer) pushLocked(sp Span) {
	if t.filled == len(t.ring) {
		t.dropped++
	} else {
		t.filled++
	}
	t.ring[t.next] = sp
	t.next = (t.next + 1) % len(t.ring)
	if t.onSpan != nil {
		t.onSpan(sp)
	}
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.filled)
	start := t.next - t.filled
	for i := 0; i < t.filled; i++ {
		out = append(out, t.ring[((start+i)%len(t.ring)+len(t.ring))%len(t.ring)])
	}
	return out
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the ring and the residual baseline so the tracer can serve
// another run.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next, t.filled, t.dropped = 0, 0, 0
	t.started = false
	t.last = time.Now()
}

// WriteJSONL writes the retained spans as JSON lines, oldest first — the
// `wardsim -trace out.jsonl` dump format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Spans() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}
