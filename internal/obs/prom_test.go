package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exact text exposition — header grouping,
// label merging, cumulative buckets, value formatting — against a golden
// file. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("serve_jobs_total", "jobs run to completion")
	jobs.Add(42)
	r.Counter(`dispatch_retries_total{reason="node-dead"}`, "tasks retried").Add(3)
	r.Counter(`dispatch_retries_total{reason="transient"}`, "ignored second help").Add(1)
	g := r.Gauge("serve_jobs_running", "jobs currently executing")
	g.Set(2)
	r.GaugeFunc("serve_cache_entries", "scenario cache population", func() float64 { return 17 })
	h := r.Histogram("serve_run_ms", "engine run latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	r.Histogram(`sweep_task_ms{worker="0"}`, "per-worker task latency", []float64{10}).Observe(4)
	r.Histogram(`sweep_task_ms{worker="1"}`, "", []float64{10}).Observe(25)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
