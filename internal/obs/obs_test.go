package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	g.SetMax(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after SetMax = %g, want 7 (ratchet only up)", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "")
}

// TestHistogramBucketBoundaryExactness pins the le semantics: a sample equal
// to a bound lands in that bound's bucket (le is inclusive), one ulp above
// lands in the next.
func TestHistogramBucketBoundaryExactness(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ms", "", []float64{1, 10, 100})
	h.Observe(1)                        // le="1"
	h.Observe(math.Nextafter(1, 2))     // le="10"
	h.Observe(10)                       // le="10"
	h.Observe(100)                      // le="100"
	h.Observe(math.Nextafter(100, 200)) // +Inf
	h.Observe(-5)                       // le="1" (below the first bound)
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets shape = %d bounds / %d counts", len(bounds), len(counts))
	}
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(1+1+10+100+100-5)) > 1e-9 {
		t.Fatalf("sum = %g", got)
	}
	if got := h.Max(); got != math.Nextafter(100, 200) {
		t.Fatalf("max = %g", got)
	}
}

// TestQuantileKnownDistributions pins the exact nearest-rank percentiles
// against hand-computable sample sets, including a window that is only
// partially filled: unwritten slots must never enter the computation.
func TestQuantileKnownDistributions(t *testing.T) {
	r := NewRegistry()

	// 1..100 in a window large enough to hold them all.
	h := r.HistogramWindow("uniform_ms", "", []float64{50}, 512)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Fatalf("uniform p%g = %g, want %g", tc.p*100, got, tc.want)
		}
	}

	// Partially filled window: 3 samples in a 512 window. A naive
	// implementation averaging the whole ring would report 0s here.
	p := r.HistogramWindow("partial_ms", "", nil, 512)
	for _, v := range []float64{30, 10, 20} {
		p.Observe(v)
	}
	if got := p.Quantile(0.50); got != 20 {
		t.Fatalf("partial p50 = %g, want 20 (zero slots must not dilute the window)", got)
	}
	if got := p.Quantile(0.99); got != 30 {
		t.Fatalf("partial p99 = %g, want 30", got)
	}
	if got := p.Quantile(0.01); got != 10 {
		t.Fatalf("partial p1 = %g, want 10", got)
	}

	// Single sample: every percentile is that sample.
	s := r.HistogramWindow("single_ms", "", nil, 8)
	s.Observe(42)
	if got := s.Quantile(0.99); got != 42 {
		t.Fatalf("single-sample p99 = %g, want 42", got)
	}

	// Wrapped window: 10 slots, 25 observations 1..25 — the window holds
	// 16..25, so p50 is the 5th of those.
	wr := r.HistogramWindow("wrap_ms", "", nil, 10)
	for i := 1; i <= 25; i++ {
		wr.Observe(float64(i))
	}
	if got := wr.Quantile(0.50); got != 20 {
		t.Fatalf("wrapped p50 = %g, want 20 (window must be the newest 10 samples)", got)
	}

	// Empty histogram answers 0.
	e := r.Histogram("empty_ms", "", nil)
	if got := e.Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %g, want 0", got)
	}
}

// TestRegistryConcurrentHammer exercises every instrument type from many
// goroutines under -race, including concurrent get-or-create registration
// and exposition.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("dyn", "", func() float64 { return 1 })
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_gauge", "")
			h := r.Histogram("hammer_ms", "", nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(float64(i % 100))
				if i%500 == 0 {
					_ = h.Quantile(0.99)
					_ = r.Names()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	h := r.FindHistogram("hammer_ms")
	if h == nil || h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %v", h)
	}
	if got := r.Counter("hammer_gauge_missing", "").Value(); got != 0 {
		t.Fatalf("fresh counter = %d", got)
	}
}

// TestObserveAllocationFree pins the registry hot paths at zero allocations.
func TestObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_ms", "", nil)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(1.5)
	}); n > 0 {
		t.Fatalf("hot path allocates %g per op, want 0", n)
	}
}
