// Package drain is the shared SIGINT/SIGTERM lifecycle of the long-running
// commands (wardsweep, wardserve, wardsim): one definition of "interrupt
// cancels the run context, a second signal kills the process, cleanup gets
// a bounded grace period" instead of per-command ad-hoc signal handling.
package drain

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Context returns a copy of parent that is cancelled on SIGINT or SIGTERM.
// The handler is dropped after the first signal, so a second signal
// terminates the process through the default disposition even if the
// post-interrupt flush hangs. The returned stop releases the handler early.
func Context(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}

// Grace returns a deadline context for cleanup that must run after the run
// context was already interrupted — draining a server, flushing partial
// results. It is detached from the interrupt (deliberately: the cleanup is
// what the interrupt asked for) and expires after d, bounding how long a
// drain can hold the process.
func Grace(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
