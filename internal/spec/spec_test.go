package spec

import (
	"errors"
	"math"
	"strings"
	"testing"

	"wardrop/internal/latency"
)

const pigouJSON = `{
  "nodes": ["s", "t"],
  "edges": [
    {"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1}},
    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
  ],
  "commodities": [{"source": "s", "sink": "t", "demand": 1}]
}`

func TestParsePigou(t *testing.T) {
	inst, err := Parse(strings.NewReader(pigouJSON))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 2 || inst.NumCommodities() != 1 {
		t.Errorf("paths=%d commodities=%d", inst.NumPaths(), inst.NumCommodities())
	}
	f := inst.PathLatencies(inst.UniformFlow())
	if math.Abs(f[0]-0.5) > 1e-12 || math.Abs(f[1]-1) > 1e-12 {
		t.Errorf("latencies = %v", f)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := `{"nodes": ["a","b"], "edges": [], "commodities": [], "bogus": 1}`
	if _, err := Parse(strings.NewReader(bad)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("error = %v", err)
	}
}

func TestParseStructuralErrors(t *testing.T) {
	cases := map[string]string{
		"no nodes":       `{"nodes": [], "edges": [{"from":"a","to":"b","latency":{"kind":"constant"}}], "commodities": [{"source":"a","sink":"b","demand":1}]}`,
		"no edges":       `{"nodes": ["a","b"], "edges": [], "commodities": [{"source":"a","sink":"b","demand":1}]}`,
		"no commodities": `{"nodes": ["a","b"], "edges": [{"from":"a","to":"b","latency":{"kind":"constant"}}], "commodities": []}`,
		"unknown from":   `{"nodes": ["a","b"], "edges": [{"from":"x","to":"b","latency":{"kind":"constant"}}], "commodities": [{"source":"a","sink":"b","demand":1}]}`,
		"unknown to":     `{"nodes": ["a","b"], "edges": [{"from":"a","to":"x","latency":{"kind":"constant"}}], "commodities": [{"source":"a","sink":"b","demand":1}]}`,
		"unknown source": `{"nodes": ["a","b"], "edges": [{"from":"a","to":"b","latency":{"kind":"constant"}}], "commodities": [{"source":"x","sink":"b","demand":1}]}`,
		"unknown sink":   `{"nodes": ["a","b"], "edges": [{"from":"a","to":"b","latency":{"kind":"constant"}}], "commodities": [{"source":"a","sink":"x","demand":1}]}`,
		"bad latency":    `{"nodes": ["a","b"], "edges": [{"from":"a","to":"b","latency":{"kind":"warp"}}], "commodities": [{"source":"a","sink":"b","demand":1}]}`,
		"bad json":       `{`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(doc)); err == nil {
				t.Error("accepted invalid spec")
			}
		})
	}
}

func TestLatencyBuildAllKinds(t *testing.T) {
	cases := []struct {
		spec Latency
		x    float64
		want float64
	}{
		{Latency{Kind: "constant", C: 2}, 0.5, 2},
		{Latency{Kind: "linear", Slope: 2, Offset: 1}, 0.5, 2},
		{Latency{Kind: "polynomial", Coeffs: []float64{1, 0, 1}}, 2, 5},
		{Latency{Kind: "monomial", Coef: 3, Degree: 2}, 2, 12},
		{Latency{Kind: "bpr", FreeTime: 1, Capacity: 1}, 1, 1.15},
		{Latency{Kind: "mm1", Capacity: 2}, 1, 1},
		{Latency{Kind: "pwl", Xs: []float64{0, 1}, Ys: []float64{0, 2}}, 0.5, 1},
		{Latency{Kind: "kink", Beta: 4}, 0.75, 1},
	}
	for _, tc := range cases {
		f, err := tc.spec.Build()
		if err != nil {
			t.Errorf("%s: %v", tc.spec.Kind, err)
			continue
		}
		if got := f.Value(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Value(%g) = %g, want %g", tc.spec.Kind, tc.x, got, tc.want)
		}
	}
}

func TestLatencyBuildErrors(t *testing.T) {
	bad := []Latency{
		{Kind: "kink", Beta: 0},
		{Kind: "mm1", Capacity: 0.5},
		{Kind: "bpr", FreeTime: -1, Capacity: 1},
		{Kind: "polynomial", Coeffs: []float64{-1}},
		{Kind: "pwl", Xs: []float64{0}, Ys: []float64{0}},
		{Kind: ""},
	}
	for _, l := range bad {
		if _, err := l.Build(); err == nil {
			t.Errorf("kind %q accepted invalid params", l.Kind)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := Instance{
		Nodes: []string{"s", "t"},
		Edges: []Edge{
			{From: "s", To: "t", Latency: Latency{Kind: "linear", Slope: 1}},
			{From: "s", To: "t", Latency: Latency{Kind: "constant", C: 1}},
		},
		Commodities: []Commodity{{Source: "s", Sink: "t", Demand: 1}},
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if inst.NumPaths() != 2 {
		t.Errorf("paths = %d", inst.NumPaths())
	}
}

func TestParsedInstanceMatchesLibraryPigou(t *testing.T) {
	inst, err := Parse(strings.NewReader(pigouJSON))
	if err != nil {
		t.Fatal(err)
	}
	// Same structure as the library's Pigou builder.
	if inst.LMax() != 1 || inst.MaxSlope() != 1 || inst.MaxPathLen() != 1 {
		t.Errorf("lmax=%g beta=%g D=%d", inst.LMax(), inst.MaxSlope(), inst.MaxPathLen())
	}
	var _ latency.Function = inst.Latency(0)
}

func TestMaxPathLenRespected(t *testing.T) {
	doc := `{
	  "nodes": ["s", "m", "t"],
	  "edges": [
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}},
	    {"from": "s", "to": "m", "latency": {"kind": "constant", "c": 1}},
	    {"from": "m", "to": "t", "latency": {"kind": "constant", "c": 1}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}],
	  "maxPathLen": 1
	}`
	inst, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 1 {
		t.Errorf("paths = %d, want 1 (maxPathLen=1)", inst.NumPaths())
	}
}

func TestDecodeWithoutBuild(t *testing.T) {
	doc := `{
	  "nodes": ["s", "t"],
	  "edges": [{"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1}}],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	}`
	s, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 2 || len(s.Edges) != 1 || len(s.Commodities) != 1 {
		t.Errorf("decoded shape = %+v", s)
	}
	if _, err := s.Build(); err != nil {
		t.Errorf("decoded spec failed to build: %v", err)
	}
	if _, err := Decode(strings.NewReader(`{"nodes": [], "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
