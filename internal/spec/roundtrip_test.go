package spec

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"wardrop/internal/latency"
)

// sampleLatencies gives one representative document per registered builtin
// latency kind. The round-trip test fails when a registered kind has no
// sample, so new kinds cannot silently escape coverage.
var sampleLatencies = map[string]Latency{
	"constant":   {Kind: "constant", C: 2.5},
	"linear":     {Kind: "linear", Slope: 1.5, Offset: 0.25},
	"polynomial": {Kind: "polynomial", Coeffs: []float64{0.5, 0, 2, 1}},
	"monomial":   {Kind: "monomial", Coef: 3, Degree: 4},
	"bpr":        {Kind: "bpr", FreeTime: 1.2, Capacity: 0.8},
	"mm1":        {Kind: "mm1", Capacity: 2.5},
	"pwl":        {Kind: "pwl", Xs: []float64{0, 0.3, 1}, Ys: []float64{0.1, 0.1, 2}},
	"kink":       {Kind: "kink", Beta: 6},
}

// Every registered latency kind must survive Marshal → Decode → Build with
// identical behavior on a probe grid: the JSON form is a faithful encoding
// of the function, not an approximation of it.
func TestEveryRegisteredLatencyKindRoundTrips(t *testing.T) {
	for _, kind := range latency.Catalog.Names() {
		sample, ok := sampleLatencies[kind]
		if !ok {
			t.Errorf("registered latency kind %q has no round-trip sample; add one", kind)
			continue
		}
		direct, err := sample.Build()
		if err != nil {
			t.Errorf("%s: direct build: %v", kind, err)
			continue
		}
		doc := Instance{
			Nodes: []string{"s", "t"},
			Edges: []Edge{
				{From: "s", To: "t", Latency: sample},
				{From: "s", To: "t", Latency: Latency{Kind: "constant", C: 1}},
			},
			Commodities: []Commodity{{Source: "s", Sink: "t", Demand: 1}},
		}
		data, err := doc.Marshal()
		if err != nil {
			t.Errorf("%s: marshal: %v", kind, err)
			continue
		}
		decoded, err := Decode(strings.NewReader(string(data)))
		if err != nil {
			t.Errorf("%s: decode: %v", kind, err)
			continue
		}
		rebuilt, err := decoded.Edges[0].Latency.Build()
		if err != nil {
			t.Errorf("%s: rebuild: %v", kind, err)
			continue
		}
		for i := 0; i <= 16; i++ {
			x := float64(i) / 16
			if v, w := direct.Value(x), rebuilt.Value(x); v != w {
				t.Errorf("%s: Value(%g) = %g after round trip, want %g", kind, x, w, v)
			}
			if v, w := direct.Derivative(x), rebuilt.Derivative(x); v != w {
				t.Errorf("%s: Derivative(%g) = %g after round trip, want %g", kind, x, w, v)
			}
			if v, w := direct.Integral(x), rebuilt.Integral(x); v != w {
				t.Errorf("%s: Integral(%g) = %g after round trip, want %g", kind, x, w, v)
			}
		}
		if v, w := direct.SlopeBound(), rebuilt.SlopeBound(); v != w {
			t.Errorf("%s: SlopeBound = %g after round trip, want %g", kind, w, v)
		}
	}
}

// The catalog dispatch must agree with the historical direct constructors:
// the builtin names stay byte-compatible wrappers, not near-copies.
func TestCatalogMatchesDirectConstructors(t *testing.T) {
	direct := map[string]latency.Function{
		"constant": latency.Constant{C: 2.5},
		"linear":   latency.Linear{Slope: 1.5, Offset: 0.25},
		"kink":     latency.Kink(6),
	}
	for kind, want := range direct {
		got, err := sampleLatencies[kind].Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := 0; i <= 8; i++ {
			x := float64(i) / 8
			if got.Value(x) != want.Value(x) {
				t.Errorf("%s: Value(%g) = %g, want %g", kind, x, got.Value(x), want.Value(x))
			}
		}
	}
}

// Builtin kinds read a nested "params" object as an override of their flat
// fields, so parameters placed there (the custom-component idiom) configure
// the function instead of silently reading as zero.
func TestBuiltinLatencyAcceptsNestedParams(t *testing.T) {
	doc := `{"kind": "linear", "params": {"slope": 2, "offset": 1}}`
	var l Latency
	if err := json.Unmarshal([]byte(doc), &l); err != nil {
		t.Fatal(err)
	}
	f, err := l.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Value(0.5); got != 2 {
		t.Errorf("Value(0.5) = %g, want 2 (params ignored?)", got)
	}
	// Flat and nested compose, nested winning on conflicts.
	mixed := Latency{Kind: "linear", Slope: 3, Params: json.RawMessage(`{"slope": 2}`)}
	f, err = mixed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Derivative(0); got != 2 {
		t.Errorf("Derivative = %g, want 2 (nested params should override flat)", got)
	}
}

func TestKShortestPathsSpec(t *testing.T) {
	// Diamond with 3 s→t routes; k=2 keeps the two cheapest.
	doc := `{
	  "nodes": ["s", "a", "t"],
	  "edges": [
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}},
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 3}},
	    {"from": "s", "to": "a", "latency": {"kind": "constant", "c": 1}},
	    {"from": "a", "to": "t", "latency": {"kind": "constant", "c": 1}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}],
	  "kShortestPaths": 2
	}`
	inst, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 2 {
		t.Errorf("paths = %d, want 2 (kShortestPaths=2)", inst.NumPaths())
	}
	// The kept strategy space is the two cheapest free-flow routes (cost 1
	// and 2), not the expensive direct link.
	freeFlow := inst.PathLatencies(make([]float64, inst.NumPaths()))
	for _, l := range freeFlow {
		if l > 2+1e-12 {
			t.Errorf("kept a path with free-flow latency %g (want the 2 cheapest)", l)
		}
	}
}

func TestKShortestPathsValidation(t *testing.T) {
	base := `{
	  "nodes": ["s", "t"],
	  "edges": [
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}},
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 2}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}]`
	cases := map[string]string{
		"negative k":          base + `, "kShortestPaths": -1}`,
		"negative maxPathLen": base + `, "maxPathLen": -1}`,
		"both bounds":         base + `, "kShortestPaths": 2, "maxPathLen": 3}`,
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: error %v does not wrap ErrBadSpec", name, err)
		}
	}
	// Round trip keeps the field.
	s, err := Decode(strings.NewReader(base + `, "kShortestPaths": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.KShortestPaths != 2 {
		t.Errorf("KShortestPaths = %d, want 2", s.KShortestPaths)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "kShortestPaths") {
		t.Errorf("marshal dropped kShortestPaths:\n%s", data)
	}
}
