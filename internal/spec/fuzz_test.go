package spec

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode asserts the decode contract: Decode never panics, and every
// failure wraps ErrBadSpec so callers can classify it. Structurally valid
// small documents are also built, which must not panic either (build
// failures may carry graph/flow errors and are fine).
func FuzzDecode(f *testing.F) {
	f.Add([]byte(pigouJSON))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"nodes": [], "bogus": 1}`))
	f.Add([]byte(`{"nodes": ["s","t"], "edges": [{"from":"s","to":"t","latency":{"kind":"kink","beta":-1}}], "commodities": [{"source":"s","sink":"t","demand":1}]}`))
	f.Add([]byte(`{"nodes": ["s","t"], "edges": [{"from":"s","to":"t","latency":{"kind":"mystery","params":{"a":1}}},{"from":"s","to":"t","latency":{"kind":"constant","c":1}}], "commodities": [{"source":"s","sink":"t","demand":1}], "kShortestPaths": 2}`))
	f.Add([]byte(`{"nodes": ["a"], "edges": [{"from":"a","to":"a","latency":{"kind":"pwl","xs":[0],"ys":[0]}}], "commodities": [{"source":"a","sink":"a","demand":-1}], "maxPathLen": -3}`))
	// Individually representable parameters that overflow to +Inf when the
	// built function combines them: Build must reject the non-finite latency.
	f.Add([]byte(`{"nodes": ["s","t"], "edges": [{"from":"s","to":"t","latency":{"kind":"linear","slope":1e308,"offset":1e308}}], "commodities": [{"source":"s","sink":"t","demand":1}]}`))
	f.Add([]byte(`{"nodes": ["s","t"], "edges": [{"from":"s","to":"t","latency":{"kind":"constant","c":1}}], "commodities": [{"source":"s","sink":"t","demand":1e308}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("Decode failure does not wrap ErrBadSpec: %v", err)
			}
			return
		}
		// Keep path enumeration trivially cheap: fuzzing is about panics and
		// error classification, not about building large instances.
		if len(s.Nodes) <= 6 && len(s.Edges) <= 12 {
			_, _ = s.Build()
		}
	})
}
