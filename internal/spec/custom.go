package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"wardrop/internal/catalog"
	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

// The "custom" topology family — a full instance document embedded in a
// campaign or scenario file — is owned by this package (it owns the instance
// file format) and registered into the topology catalog at initialisation.
// Any consumer of the topology catalog that can reach a JSON file imports
// spec, so the family is always available where documents are parsed.
func init() {
	topo.Catalog.MustRegister(catalog.Entry[topo.Builder]{
		Name: "custom",
		Doc:  "an embedded instance document (nodes, edges, commodities)",
		Params: []catalog.Param{
			{Name: "instance", Type: "object", Doc: "full instance specification"},
		},
		Build: buildCustomTopology,
	})
}

// buildCustomTopology validates the embedded document eagerly (construction
// errors must surface at parse time, before any worker starts) and labels
// the cell with a digest of the document, so distinct custom instances in
// one campaign never collide in aggregation keys or the instance cache.
func buildCustomTopology(args json.RawMessage) (topo.Builder, error) {
	var a struct {
		Instance json.RawMessage `json:"instance"`
	}
	if err := catalog.DecodeArgs(args, &a); err != nil {
		return topo.Builder{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if len(a.Instance) == 0 {
		return topo.Builder{}, fmt.Errorf("%w: custom topology requires an instance document", ErrBadSpec)
	}
	doc, err := Decode(bytes.NewReader(a.Instance))
	if err != nil {
		return topo.Builder{}, err
	}
	h := fnv.New32a()
	h.Write(a.Instance)
	return topo.Builder{
		Key: fmt.Sprintf("custom(%08x)", h.Sum32()),
		New: func(uint64) (*flow.Instance, error) { return doc.Build() },
	}, nil
}
