// Package spec declares a JSON schema for Wardrop instances so networks can
// be loaded from files by the CLIs and by downstream users, without writing
// Go code: named nodes, edges with tagged latency functions, commodities
// with demands.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"wardrop/internal/catalog"
	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// The spec package contributes the "custom" topology family (an embedded
// instance document) to the topology catalog — see custom.go.

// Sentinel errors.
var (
	// ErrBadSpec indicates a structurally invalid instance specification.
	ErrBadSpec = errors.New("spec: invalid instance specification")
)

// Instance is the JSON document shape.
type Instance struct {
	// Nodes lists node names (unique).
	Nodes []string `json:"nodes"`
	// Edges lists directed edges with their latency functions.
	Edges []Edge `json:"edges"`
	// Commodities lists demands.
	Commodities []Commodity `json:"commodities"`
	// MaxPathLen optionally bounds path enumeration (0 = all simple paths).
	MaxPathLen int `json:"maxPathLen,omitempty"`
	// KShortestPaths optionally restricts each commodity's strategy space to
	// its k cheapest free-flow paths (Yen's algorithm) instead of full
	// enumeration — use on graphs whose simple-path count explodes. Mutually
	// exclusive with MaxPathLen, which Yen's enumeration would silently
	// ignore.
	KShortestPaths int `json:"kShortestPaths,omitempty"`
}

// Edge is one directed edge.
type Edge struct {
	From    string  `json:"from"`
	To      string  `json:"to"`
	Latency Latency `json:"latency"`
}

// Commodity is one demand.
type Commodity struct {
	Name   string  `json:"name,omitempty"`
	Source string  `json:"source"`
	Sink   string  `json:"sink"`
	Demand float64 `json:"demand"`
}

// Latency is a tagged union of the library's latency functions, resolved
// through the latency catalog — any registered kind (builtin or user-added)
// is selectable by name.
type Latency struct {
	// Kind selects the function: constant, linear, polynomial, monomial,
	// bpr, mm1, pwl, kink, or any registered latency kind.
	Kind string `json:"kind"`

	C        float64   `json:"c,omitempty"`        // constant
	Slope    float64   `json:"slope,omitempty"`    // linear
	Offset   float64   `json:"offset,omitempty"`   // linear
	Coeffs   []float64 `json:"coeffs,omitempty"`   // polynomial
	Coef     float64   `json:"coef,omitempty"`     // monomial
	Degree   int       `json:"degree,omitempty"`   // monomial
	FreeTime float64   `json:"freeTime,omitempty"` // bpr
	Capacity float64   `json:"capacity,omitempty"` // bpr, mm1
	Xs       []float64 `json:"xs,omitempty"`       // pwl
	Ys       []float64 `json:"ys,omitempty"`       // pwl
	Beta     float64   `json:"beta,omitempty"`     // kink

	// Params carries a user-registered kind's parameters (decode with
	// catalog.DecodeParams). Builtin kinds read the flat fields above and
	// also honour overrides placed here (a field present in both spellings
	// resolves to the params value).
	Params json.RawMessage `json:"params,omitempty"`
}

// Build materialises the latency function through the latency catalog.
func (l Latency) Build() (latency.Function, error) {
	args, err := json.Marshal(l)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	f, err := latency.Catalog.Build(l.Kind, args)
	if err != nil {
		return nil, badSpec(err)
	}
	return f, nil
}

// badSpec wraps errors from the catalog layer with the package sentinel,
// leaving already-tagged errors untouched.
func badSpec(err error) error { return catalog.WrapSentinel(ErrBadSpec, err) }

// Build materialises the instance: graph construction, latency functions,
// commodities, path enumeration.
func (s Instance) Build() (*flow.Instance, error) {
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadSpec)
	}
	if len(s.Edges) == 0 {
		return nil, fmt.Errorf("%w: no edges", ErrBadSpec)
	}
	if len(s.Commodities) == 0 {
		return nil, fmt.Errorf("%w: no commodities", ErrBadSpec)
	}
	if s.MaxPathLen < 0 {
		return nil, fmt.Errorf("%w: maxPathLen %d must be >= 0", ErrBadSpec, s.MaxPathLen)
	}
	if s.KShortestPaths < 0 {
		return nil, fmt.Errorf("%w: kShortestPaths %d must be >= 0", ErrBadSpec, s.KShortestPaths)
	}
	if s.KShortestPaths > 0 && s.MaxPathLen > 0 {
		return nil, fmt.Errorf("%w: kShortestPaths and maxPathLen are mutually exclusive (Yen's enumeration ignores the length bound)", ErrBadSpec)
	}
	g := graph.New()
	for _, name := range s.Nodes {
		if _, err := g.AddNode(name); err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
	}
	lats := make([]latency.Function, 0, len(s.Edges))
	for i, e := range s.Edges {
		from, ok := g.Node(e.From)
		if !ok {
			return nil, fmt.Errorf("%w: edge %d references unknown node %q", ErrBadSpec, i, e.From)
		}
		to, ok := g.Node(e.To)
		if !ok {
			return nil, fmt.Errorf("%w: edge %d references unknown node %q", ErrBadSpec, i, e.To)
		}
		if _, err := g.AddEdge(from, to); err != nil {
			return nil, fmt.Errorf("spec: edge %d: %w", i, err)
		}
		f, err := e.Latency.Build()
		if err != nil {
			return nil, fmt.Errorf("spec: edge %d: %w", i, err)
		}
		// Probe the built function at the ends of the certified load range:
		// parameters that are individually representable can still overflow
		// to ±Inf when combined (slope 1e308 + offset 1e308), and a NaN or
		// Inf latency would flow straight into the kernel.
		for _, x := range [...]float64{0, 1} {
			if v := f.Value(x); math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: edge %d latency %s is non-finite at x=%g", ErrBadSpec, i, f, x)
			}
		}
		if b := f.SlopeBound(); math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("%w: edge %d latency %s has non-finite slope bound", ErrBadSpec, i, f)
		}
		lats = append(lats, f)
	}
	comms := make([]flow.Commodity, 0, len(s.Commodities))
	for i, c := range s.Commodities {
		src, ok := g.Node(c.Source)
		if !ok {
			return nil, fmt.Errorf("%w: commodity %d references unknown node %q", ErrBadSpec, i, c.Source)
		}
		sink, ok := g.Node(c.Sink)
		if !ok {
			return nil, fmt.Errorf("%w: commodity %d references unknown node %q", ErrBadSpec, i, c.Sink)
		}
		if c.Demand <= 0 || math.IsNaN(c.Demand) || math.IsInf(c.Demand, 0) {
			return nil, fmt.Errorf("%w: commodity %d demand %g must be finite and > 0", ErrBadSpec, i, c.Demand)
		}
		comms = append(comms, flow.Commodity{Name: c.Name, Source: src, Sink: sink, Demand: c.Demand})
	}
	return flow.NewInstance(g, lats, comms,
		flow.WithMaxPathLen(s.MaxPathLen), flow.WithKShortestPaths(s.KShortestPaths))
}

// Decode reads a JSON instance specification without building it, rejecting
// unknown fields. Callers that embed instance documents in larger files (e.g.
// sweep campaign specs) decode first and build per use.
func Decode(r io.Reader) (Instance, error) {
	var s Instance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Instance{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return s, nil
}

// Parse decodes a JSON instance specification and builds it.
func Parse(r io.Reader) (*flow.Instance, error) {
	s, err := Decode(r)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// Marshal encodes the specification as indented JSON.
func (s Instance) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
