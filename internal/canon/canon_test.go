package canon

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCanonicalSortsKeysAndStripsWhitespace(t *testing.T) {
	got, err := Canonical([]byte("{\n  \"b\": [1, 2.0, 3e1],\n  \"a\": {\"y\": null, \"x\": true}\n}"))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":{"x":true,"y":null},"b":[1,2.0,3e1]}`
	if string(got) != want {
		t.Fatalf("canonical = %s, want %s", got, want)
	}
}

func TestFingerprintInsensitiveToOrderAndWhitespace(t *testing.T) {
	a := `{"name":"p","horizon":50,"policy":{"kind":"replicator"}}`
	b := "{\n\t\"policy\": {\"kind\": \"replicator\"},\n\t\"horizon\": 50,\n\t\"name\": \"p\"\n}"
	fa, err := Fingerprint([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("reordered document fingerprints differ: %s vs %s", fa, fb)
	}
	fc, err := Fingerprint([]byte(`{"name":"q","horizon":50,"policy":{"kind":"replicator"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Fatal("semantically different documents share a fingerprint")
	}
}

func TestFingerprintGoValueMatchesRawDocument(t *testing.T) {
	type doc struct {
		A int    `json:"a"`
		B string `json:"b,omitempty"`
	}
	fv, err := Fingerprint(doc{A: 3})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Fingerprint([]byte(` { "a" : 3 } `))
	if err != nil {
		t.Fatal(err)
	}
	if fv != fr {
		t.Fatalf("struct and raw fingerprints differ: %s vs %s", fv, fr)
	}
}

func TestCanonicalPreservesNumberLiterals(t *testing.T) {
	got, err := Canonical(json.RawMessage(`{"x": 1.0, "y": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"x":1.0,"y":1}` {
		t.Fatalf("number literals rewritten: %s", got)
	}
}

func TestCanonicalRejectsBadDocuments(t *testing.T) {
	for _, bad := range []string{"", "{", `{"a":1} {"b":2}`, `{"a":1}tail`} {
		if _, err := Canonical([]byte(bad)); err == nil {
			t.Errorf("Canonical(%q) accepted invalid input", bad)
		}
	}
	if _, err := Fingerprint(func() {}); err == nil {
		t.Error("Fingerprint accepted an unmarshallable value")
	}
}

func TestFingerprintShape(t *testing.T) {
	fp, err := Fingerprint([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 64 || strings.ToLower(fp) != fp {
		t.Fatalf("fingerprint %q is not lowercase hex sha256", fp)
	}
}
