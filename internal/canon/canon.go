// Package canon renders JSON documents in a canonical form — object keys
// sorted, insignificant whitespace removed, strings re-escaped by
// encoding/json — and hashes that form into a stable SHA-256 fingerprint.
// Fingerprints are the serving layer's cache keys and the sweep engine's
// task-dedup keys: two specs that differ only in field order or whitespace
// fingerprint identically, while any semantic difference (a changed
// parameter, an extra axis value) changes the hash.
//
// Number literals are preserved verbatim ("1.0" and "1" are distinct), so
// documents that round-trip through Go structs — whose marshaller formats
// numbers deterministically — always agree, and embedded raw documents
// (instance specs) are never silently re-formatted.
package canon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// ErrBadDocument indicates input that is not a single well-formed JSON
// document.
var ErrBadDocument = errors.New("canon: invalid JSON document")

// Canonical renders v as canonical JSON. v is either a raw JSON document
// ([]byte or json.RawMessage) or any marshallable Go value, which is
// marshalled first. The result is a compact document with every object's
// keys in sorted order.
func Canonical(v any) ([]byte, error) {
	raw, err := rawJSON(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	// A second document (or any trailing token) means the input was not one
	// JSON value; a trailing-garbage spec must not fingerprint like its
	// prefix.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after document", ErrBadDocument)
	}
	var buf bytes.Buffer
	if err := write(&buf, doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Fingerprint returns the lowercase-hex SHA-256 of v's canonical form.
func Fingerprint(v any) (string, error) {
	b, err := Canonical(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// rawJSON returns v's JSON bytes: verbatim for raw documents, marshalled
// otherwise.
func rawJSON(v any) ([]byte, error) {
	switch b := v.(type) {
	case json.RawMessage:
		return b, nil
	case []byte:
		return b, nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	return b, nil
}

// write renders one decoded JSON value canonically.
func write(buf *bytes.Buffer, v any) error {
	switch t := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if t {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(t.String())
	case string:
		// encoding/json's escaping (including its HTML escapes) is the one
		// canonical string form; both the struct-marshal and raw-document
		// paths funnel through it.
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := write(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := write(buf, t[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("%w: unexpected value %T", ErrBadDocument, v)
	}
	return nil
}
