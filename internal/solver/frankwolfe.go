// Package solver computes reference Wardrop equilibria and social optima by
// convex minimisation of the Beckmann–McGuire–Winsten potential with the
// Frank–Wolfe (conditional gradient) method: the linearised subproblem is an
// all-or-nothing assignment to each commodity's minimum-latency path, and the
// step size comes from exact bisection line search on the one-dimensional
// convex restriction.
package solver

import (
	"errors"
	"fmt"
	"math"

	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// Sentinel errors.
var (
	// ErrBadConfig indicates invalid solver options.
	ErrBadConfig = errors.New("solver: invalid config")
	// ErrNotConverged indicates the iteration budget was exhausted before
	// reaching the requested duality gap.
	ErrNotConverged = errors.New("solver: not converged")
)

// Options configures the solve.
type Options struct {
	// MaxIters bounds Frank–Wolfe iterations (default 10_000).
	MaxIters int
	// RelGapTol is the relative duality gap stopping threshold
	// (default 1e-9).
	RelGapTol float64
	// LineSearchTol is the bisection interval tolerance (default 1e-12).
	LineSearchTol float64
}

func (o *Options) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 10_000
	}
	if o.RelGapTol <= 0 {
		o.RelGapTol = 1e-9
	}
	if o.LineSearchTol <= 0 {
		o.LineSearchTol = 1e-12
	}
}

// Result reports the solve outcome.
type Result struct {
	// Flow is the computed (approximate) minimiser.
	Flow flow.Vector
	// Potential is Φ(Flow).
	Potential float64
	// RelGap is the final relative duality gap.
	RelGap float64
	// Iters is the number of iterations performed.
	Iters int
}

// SolveEquilibrium minimises Φ over feasible flows, returning an approximate
// Wardrop equilibrium (Beckmann et al.: the minimisers of Φ are exactly the
// Wardrop equilibria). It uses pairwise Frank–Wolfe steps (path
// equalisation): each iteration moves flow, per commodity, from the worst
// used path to the best path with exact bisection line search — the pairwise
// variant converges linearly where classic FW zigzags at O(1/k). The
// returned error wraps ErrNotConverged if the gap tolerance was not met; the
// Result is still the best iterate.
func SolveEquilibrium(inst *flow.Instance, opts Options) (*Result, error) {
	opts.defaults()
	f := inst.UniformFlow()
	n := inst.NumPaths()
	nEdges := inst.Graph().NumEdges()
	var (
		fe = inst.EdgeFlows(f, nil)
		le = make([]float64, nEdges)
		pl = make([]float64, n)
	)
	res := &Result{}
	const usedTol = 1e-15
	for iter := 0; iter < opts.MaxIters; iter++ {
		res.Iters = iter + 1
		inst.EdgeLatencies(fe, le)
		inst.PathLatenciesFromEdges(le, pl)

		// Duality gap of the all-or-nothing assignment y:
		// gap = Σ_P (f_P − y_P)·ℓ_P = L(f) − Σ_i r_i·ℓ^i_min ≥ Φ(f) − Φ*.
		y := inst.BestResponse(pl)
		gap := 0.0
		total := 0.0
		for g := 0; g < n; g++ {
			gap += (f[g] - y[g]) * pl[g]
			total += f[g] * pl[g]
		}
		if total <= 0 {
			res.RelGap = 0
		} else {
			res.RelGap = gap / total
		}
		if res.RelGap <= opts.RelGapTol {
			break
		}

		improved := false
		for i := 0; i < inst.NumCommodities(); i++ {
			lo, hi := inst.CommodityRange(i)
			// Refresh latencies for this commodity (fe mutates as we go).
			inst.EdgeLatencies(fe, le)
			inst.PathLatenciesFromEdges(le, pl)
			best, worst := lo, -1
			for g := lo; g < hi; g++ {
				if pl[g] < pl[best] {
					best = g
				}
				if f[g] > usedTol && (worst < 0 || pl[g] > pl[worst]) {
					worst = g
				}
			}
			if worst < 0 || worst == best || pl[worst]-pl[best] <= opts.RelGapTol*1e-3 {
				continue
			}
			gamma := pairwiseLineSearch(inst, fe, inst.Path(best), inst.Path(worst), f[worst], opts.LineSearchTol)
			if gamma <= 0 {
				continue
			}
			f[best] += gamma
			f[worst] -= gamma
			for _, e := range inst.Path(best).Edges {
				fe[e] += gamma
			}
			for _, e := range inst.Path(worst).Edges {
				fe[e] -= gamma
			}
			improved = true
		}
		if !improved {
			break
		}
	}
	inst.Project(f, 1e-12)
	res.Flow = f
	res.Potential = inst.Potential(f)
	if res.RelGap > opts.RelGapTol {
		return res, fmt.Errorf("%w: relative gap %g after %d iters", ErrNotConverged, res.RelGap, res.Iters)
	}
	return res, nil
}

// pairwiseLineSearch finds γ ∈ [0, gammaMax] minimising
// φ(γ) = Φ(f + γ(e_best − e_worst)) by bisection on the monotone derivative
// φ'(γ) = Σ_{e∈best∖worst} ℓ_e(f_e+γ) − Σ_{e∈worst∖best} ℓ_e(f_e−γ).
func pairwiseLineSearch(inst *flow.Instance, fe []float64, best, worst graph.Path, gammaMax, tol float64) float64 {
	inBest := make(map[graph.EdgeID]bool, len(best.Edges))
	for _, e := range best.Edges {
		inBest[e] = true
	}
	var up, down []graph.EdgeID // edges gaining / losing flow
	for _, e := range best.Edges {
		up = append(up, e)
	}
	for _, e := range worst.Edges {
		if inBest[e] {
			// Shared edge: net change zero; also cancel it from up.
			for k, u := range up {
				if u == e {
					up = append(up[:k], up[k+1:]...)
					break
				}
			}
			continue
		}
		down = append(down, e)
	}
	deriv := func(gamma float64) float64 {
		s := 0.0
		for _, e := range up {
			s += inst.Latency(e).Value(fe[e] + gamma)
		}
		for _, e := range down {
			s -= inst.Latency(e).Value(fe[e] - gamma)
		}
		return s
	}
	if deriv(0) >= 0 {
		return 0
	}
	if deriv(gammaMax) <= 0 {
		return gammaMax
	}
	lo, hi := 0.0, gammaMax
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		if deriv(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// SolveSocialOptimum minimises total latency Σ_P f_P·ℓ_P(f) by running
// Frank–Wolfe on the marginal-cost transformed instance
// ℓ̃_e(x) = ℓ_e(x) + x·ℓ'_e(x) (Beckmann's correspondence between optima and
// equilibria). The returned Result's Potential is the total latency of the
// optimum under the ORIGINAL latencies.
func SolveSocialOptimum(inst *flow.Instance, opts Options) (*Result, error) {
	g := inst.Graph()
	marginal := make([]latency.Function, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		marginal[e] = latency.Marginal{F: inst.Latency(graph.EdgeID(e))}
	}
	comms := make([]flow.Commodity, inst.NumCommodities())
	for i := range comms {
		comms[i] = inst.Commodity(i)
	}
	minst, err := flow.NewInstance(g, marginal, comms, flow.WithMaxPathLen(inst.MaxPathLen()))
	if err != nil {
		return nil, fmt.Errorf("solver: marginal instance: %w", err)
	}
	res, err := SolveEquilibrium(minst, opts)
	if err != nil {
		return res, err
	}
	// Report total latency under the original functions.
	pl := inst.PathLatencies(res.Flow)
	res.Potential = inst.OverallAvgLatency(res.Flow, pl)
	return res, nil
}

// PriceOfAnarchy returns L(equilibrium)/L(optimum) for the instance, along
// with both total latencies.
func PriceOfAnarchy(inst *flow.Instance, opts Options) (poa, eqCost, optCost float64, err error) {
	eq, err := SolveEquilibrium(inst, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	pl := inst.PathLatencies(eq.Flow)
	eqCost = inst.OverallAvgLatency(eq.Flow, pl)
	opt, err := SolveSocialOptimum(inst, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	optCost = opt.Potential
	if optCost <= 0 {
		return math.Inf(1), eqCost, optCost, nil
	}
	return eqCost / optCost, eqCost, optCost, nil
}
