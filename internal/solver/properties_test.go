package solver

import (
	"testing"
	"testing/quick"

	"wardrop/internal/topo"
)

// Property: on random layered instances, the Frank–Wolfe minimiser is a
// Wardrop equilibrium (Beckmann's equivalence) and the duality gap really
// upper-bounds the potential gap of perturbed flows.
func TestEquilibriumEquivalenceOnRandomInstances(t *testing.T) {
	prop := func(seed uint16) bool {
		inst, err := topo.LayeredRandom(2, 3, uint64(seed)+1)
		if err != nil {
			return false
		}
		res, err := SolveEquilibrium(inst, Options{RelGapTol: 1e-9})
		if err != nil {
			return false
		}
		if !inst.AtWardropEquilibrium(res.Flow, 1e-4) {
			return false
		}
		// Potential optimality against a family of perturbations: moving any
		// mass between two paths cannot reduce Φ.
		for a := 0; a < inst.NumPaths(); a++ {
			for b := 0; b < inst.NumPaths(); b++ {
				if a == b || res.Flow[a] < 1e-6 {
					continue
				}
				pert := res.Flow.Clone()
				d := 0.25 * pert[a]
				pert[a] -= d
				pert[b] += d
				if inst.Potential(pert) < res.Potential-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the price of anarchy is at least 1 on every instance (the
// optimum cannot be worse than the equilibrium) and at most 4/3 for affine
// latencies (Roughgarden–Tardos), which all our random layered instances
// have.
func TestPoABoundsOnAffineInstances(t *testing.T) {
	prop := func(seed uint16) bool {
		inst, err := topo.LayeredRandom(2, 2, uint64(seed)+100)
		if err != nil {
			return false
		}
		poa, eq, opt, err := PriceOfAnarchy(inst, Options{RelGapTol: 1e-9})
		if err != nil {
			return false
		}
		if eq < opt-1e-9 {
			return false // equilibrium cheaper than optimum: impossible
		}
		return poa >= 1-1e-9 && poa <= 4.0/3+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the social optimum never has higher total latency than the
// equilibrium, and both are feasible flows.
func TestOptimumDominatesEquilibriumCost(t *testing.T) {
	instances := []uint64{3, 17, 42, 99}
	for _, seed := range instances {
		inst, err := topo.LayeredRandom(3, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := SolveEquilibrium(inst, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := SolveSocialOptimum(inst, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := inst.Feasible(eq.Flow, 1e-6); err != nil {
			t.Errorf("seed %d: equilibrium infeasible: %v", seed, err)
		}
		if err := inst.Feasible(opt.Flow, 1e-6); err != nil {
			t.Errorf("seed %d: optimum infeasible: %v", seed, err)
		}
		pl := inst.PathLatencies(eq.Flow)
		eqCost := inst.OverallAvgLatency(eq.Flow, pl)
		if opt.Potential > eqCost+1e-6 {
			t.Errorf("seed %d: optimum cost %g exceeds equilibrium cost %g", seed, opt.Potential, eqCost)
		}
	}
}
