package solver

import (
	"math"
	"testing"
	"testing/quick"

	"wardrop/internal/flow"
	"wardrop/internal/latency"
	"wardrop/internal/topo"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolvePigou(t *testing.T) {
	inst, err := topo.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEquilibrium(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Equilibrium: all flow on the x-link, Φ* = 1/2.
	if !approx(res.Flow[0], 1, 1e-6) {
		t.Errorf("flow = %v, want (1,0)", res.Flow)
	}
	if !approx(res.Potential, 0.5, 1e-9) {
		t.Errorf("Φ* = %g, want 0.5", res.Potential)
	}
	if !inst.AtWardropEquilibrium(res.Flow, 1e-5) {
		t.Error("not a Wardrop equilibrium")
	}
}

func TestSolveBraess(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEquilibrium(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(res.Flow, 1e-5) {
		t.Error("not a Wardrop equilibrium")
	}
	// Braess: everything on the bridge path, everyone's latency 2.
	pl := inst.PathLatencies(res.Flow)
	l := inst.OverallAvgLatency(res.Flow, pl)
	if !approx(l, 2, 1e-5) {
		t.Errorf("equilibrium latency = %g, want 2", l)
	}
}

func TestSolveTwoCommodity(t *testing.T) {
	inst, err := topo.TwoCommodityOverlap()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEquilibrium(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(res.Flow, 1e-5) {
		t.Error("not a Wardrop equilibrium")
	}
	if err := inst.Feasible(res.Flow, 1e-9); err != nil {
		t.Errorf("solution infeasible: %v", err)
	}
}

func TestSolveParallelLinksClosedForm(t *testing.T) {
	// Two links ℓ1 = x, ℓ2 = 2x: equilibrium equalises x = 2(1−x) → x = 2/3.
	inst, err := topo.ParallelLinks([]latency.Function{
		latency.Linear{Slope: 1}, latency.Linear{Slope: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEquilibrium(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Flow[0], 2.0/3, 1e-6) {
		t.Errorf("flow = %v, want (2/3, 1/3)", res.Flow)
	}
}

func TestSolveKinkEquilibrium(t *testing.T) {
	inst, err := topo.TwoLinkKink(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEquilibrium(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Any split in [something] with both ≤ 1/2... the equal split is the
	// canonical minimiser with Φ* = 0.
	if !approx(res.Potential, 0, 1e-9) {
		t.Errorf("Φ* = %g, want 0", res.Potential)
	}
	if !inst.AtWardropEquilibrium(res.Flow, 1e-6) {
		t.Error("not a Wardrop equilibrium")
	}
}

func TestSolveGridAndLayered(t *testing.T) {
	for name, mk := range map[string]func() (*flow.Instance, error){
		"grid":    func() (*flow.Instance, error) { return topo.Grid(4) },
		"layered": func() (*flow.Instance, error) { return topo.LayeredRandom(3, 3, 11) },
	} {
		inst, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := SolveEquilibrium(inst, Options{RelGapTol: 1e-8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !inst.AtWardropEquilibrium(res.Flow, 1e-4) {
			t.Errorf("%s: not a Wardrop equilibrium (gap %g)", name, res.RelGap)
		}
	}
}

func TestPotentialIsMinimal(t *testing.T) {
	// Property: Φ(equilibrium) ≤ Φ(random feasible flow).
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEquilibrium(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c uint16) bool {
		x := float64(a%1000) + 1
		y := float64(b%1000) + 1
		z := float64(c%1000) + 1
		s := x + y + z
		f := flow.Vector{x / s, y / s, z / s}
		return inst.Potential(f) >= res.Potential-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolveSocialOptimumPigou(t *testing.T) {
	inst, err := topo.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveSocialOptimum(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pigou optimum: x = 1/2 on the variable link, total cost 3/4.
	if !approx(res.Flow[0], 0.5, 1e-5) {
		t.Errorf("optimum flow = %v, want (0.5, 0.5)", res.Flow)
	}
	if !approx(res.Potential, 0.75, 1e-6) {
		t.Errorf("optimum cost = %g, want 0.75", res.Potential)
	}
}

func TestPriceOfAnarchyPigou(t *testing.T) {
	inst, err := topo.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	poa, eq, opt, err := PriceOfAnarchy(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The classic Pigou PoA = 4/3.
	if !approx(poa, 4.0/3, 1e-4) {
		t.Errorf("PoA = %g (eq %g, opt %g), want 4/3", poa, eq, opt)
	}
}

func TestPriceOfAnarchyBraess(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	poa, eq, opt, err := PriceOfAnarchy(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(eq, 2, 1e-4) || !approx(opt, 1.5, 1e-4) || !approx(poa, 4.0/3, 1e-3) {
		t.Errorf("Braess eq=%g opt=%g poa=%g, want 2, 1.5, 4/3", eq, opt, poa)
	}
}

func TestMarginalCostCalculus(t *testing.T) {
	m := latency.Marginal{F: latency.Linear{Slope: 2, Offset: 1}}
	// ℓ̃(x) = 2x+1+2x = 4x+1.
	if !approx(m.Value(0.5), 3, 1e-12) {
		t.Errorf("marginal value = %g", m.Value(0.5))
	}
	if !approx(m.Integral(0.5), 0.5*2, 1e-12) { // x·ℓ(x) = 0.5·2
		t.Errorf("marginal integral = %g", m.Integral(0.5))
	}
	if !approx(m.Derivative(0.5), 4, 1e-4) {
		t.Errorf("marginal derivative = %g", m.Derivative(0.5))
	}
	if m.SlopeBound() < 3.9 {
		t.Errorf("marginal slope bound = %g", m.SlopeBound())
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestSolverIterationBudget(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEquilibrium(inst, Options{MaxIters: 2, RelGapTol: 1e-14})
	if err == nil {
		t.Log("converged in 2 iterations (acceptable)")
	} else if res == nil || res.Iters != 2 {
		t.Errorf("result = %+v, err = %v", res, err)
	}
}
