package meanfield

import (
	"context"
	"math"
	"testing"

	"wardrop/internal/agents"
	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

// summary condenses replicate outcomes for the equivalence comparisons.
type summary struct {
	mean, variance float64
}

func summarize(xs []float64) summary {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return summary{mean: mean, variance: ss / float64(len(xs)-1)}
}

// The count engine is distributionally equivalent to the per-agent batched
// engine by construction (within a phase, agents are independent Markov
// chains against the frozen board, so phase-end counts are sums of
// independent multinomials — exactly what the count engine samples). This
// test checks it empirically at a moderate population: over fixed-seed
// replicate sets, the final-potential and per-path final-flow statistics of
// the two engines must agree within small multiples of the standard error.
// Everything is seeded, so the test is deterministic.
func TestDistributionalEquivalenceVsAgents(t *testing.T) {
	inst := braess(t)
	pol := testPolicy(t, inst)
	const (
		n       = 2000
		T       = 0.25
		horizon = 8
		reps    = 40
	)
	countPhi := make([]float64, 0, reps)
	agentPhi := make([]float64, 0, reps)
	countF0 := make([]float64, 0, reps)
	agentF0 := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		seed := topo.DeriveSeed(1234, uint64(rep))
		cs, err := New(inst, Config{N: n, Policy: pol, UpdatePeriod: T, Horizon: horizon, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cres, err := cs.Run()
		if err != nil {
			t.Fatal(err)
		}
		countPhi = append(countPhi, cres.FinalPotential)
		countF0 = append(countF0, cres.Final[0])

		as, err := agents.New(inst, agents.Config{N: n, Policy: pol, UpdatePeriod: T, Horizon: horizon, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ares, err := as.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		agentPhi = append(agentPhi, ares.FinalPotential)
		agentF0 = append(agentF0, ares.Final[0])
	}
	check := func(name string, c, a []float64) {
		cs, as := summarize(c), summarize(a)
		se := math.Sqrt((cs.variance + as.variance) / reps)
		if d := math.Abs(cs.mean - as.mean); d > 4*se+1e-9 {
			t.Errorf("%s: mean %g (count) vs %g (agents), |diff| %g > 4·se %g", name, cs.mean, as.mean, d, 4*se)
		}
		// Variances of the same distribution agree within a broad factor.
		lo, hi := cs.variance, as.variance
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 4*lo+1e-12 {
			t.Errorf("%s: variance %g (count) vs %g (agents) differ by more than 4x", name, cs.variance, as.variance)
		}
	}
	check("final potential", countPhi, agentPhi)
	check("final flow[0]", countF0, agentF0)

	// Pin the fixed-seed summary statistics so any change to the sampling
	// scheme, the seed discipline or the placement is caught, not just
	// statistical drift. (The values are pure float64 arithmetic on the
	// splitmix stream; the tolerance absorbs FMA-contraction differences
	// across architectures.)
	pin := func(name, unit string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("pinned %s %s = %.15g, want %.15g", name, unit, got, want)
		}
	}
	cphi := summarize(countPhi)
	pin("count", "mean final potential", cphi.mean, pinnedCountMeanPhi)
	pin("count", "variance of final potential", cphi.variance, pinnedCountVarPhi)
}

// Fixed-seed pinned summary statistics for the equivalence test's count runs
// (braess, proportional+linear, N=2000, T=0.25, horizon=8, base seed 1234,
// 40 replicates).
const (
	pinnedCountMeanPhi = 1.04283176875
	pinnedCountVarPhi  = 3.3146660517227e-06
)

// As N grows the count engine's trajectory concentrates on the fluid limit:
// at N = 10^6 the final potential must sit within a tight band of the fluid
// engine's. This is the E10 law-of-large-numbers check at a population the
// per-agent engine would need ~10^2 more memory and time to reach.
func TestLargePopulationApproachesFluid(t *testing.T) {
	inst := braess(t)
	pol := testPolicy(t, inst)
	const (
		T       = 0.25
		horizon = 12
	)
	s, err := New(inst, Config{N: 1_000_000, Policy: pol, UpdatePeriod: T, Horizon: horizon, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	fres, err := dynamics.Run(context.Background(), inst, dynamics.Config{
		Policy:       pol,
		UpdatePeriod: T,
		Horizon:      horizon,
		Integrator:   dynamics.Uniformization,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(cres.FinalPotential - fres.FinalPotential); d > 5e-3 {
		t.Errorf("count(1e6) potential %g vs fluid %g: |diff| = %g > 5e-3", cres.FinalPotential, fres.FinalPotential, d)
	}
	var _ flow.Vector = cres.Final
}
