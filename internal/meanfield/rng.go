package meanfield

import (
	"math"

	"wardrop/internal/topo"
)

// RNG is the count engine's variate generator. The raw stream is the shared
// splitmix64 discipline from internal/topo (topo.SplitMix), so seeds derived
// by topo.DeriveSeed feed this engine exactly as they feed topology
// generation and the per-agent simulator; on top of the stream it layers the
// binomial and multinomial samplers the count dynamics are built from.
type RNG struct {
	src topo.SplitMix
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{src: topo.SplitMix{State: seed}} }

// Uint64 returns the next raw 64-bit output.
func (r *RNG) Uint64() uint64 { return r.src.Next() }

// Float64 returns a uniform variate in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// normal returns a standard normal variate (Box–Muller, matching the
// per-agent RNG's large-mean fallback construction).
func (r *RNG) normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// binvCutoff is the largest mean handled by exact inversion; above it the
// normal approximation with continuity correction takes over — the same
// small/large split (and threshold) as the per-agent RNG's Poisson sampler.
const binvCutoff = 30

// Binomial returns a Binomial(n, p) variate. The expected cost is O(min(np,
// n(1-p))) up to the cutoff and O(1) beyond it, so phase cost never grows
// with the population. Out-of-range p is clamped: p <= 0 gives 0, p >= 1
// gives n.
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		// Symmetry keeps the inversion mean at min(np, n(1-p)).
		return n - r.Binomial(n, 1-p)
	}
	mean := float64(n) * p
	if mean <= binvCutoff {
		return r.binomialInv(n, p)
	}
	// Normal approximation with continuity correction, clamped to [0, n].
	x := math.Round(mean + math.Sqrt(mean*(1-p))*r.normal())
	if x < 0 {
		return 0
	}
	if x >= float64(n) {
		return n
	}
	return int64(x)
}

// binomialInv draws by sequential inversion (the classic BINV recurrence):
// walk the pmf from k = 0, subtracting each term from the uniform draw until
// it is exhausted. Requires p <= 1/2 and np <= binvCutoff.
func (r *RNG) binomialInv(n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	// q^n via log1p: np <= 30 and p <= 1/2 bound n·log(q) above -2·30·ln 2,
	// far from underflow.
	prob := math.Exp(float64(n) * math.Log1p(-p))
	u := r.Float64()
	var k int64
	for u > prob {
		u -= prob
		k++
		if k >= n {
			return n
		}
		prob *= a/float64(k) - s
		if prob <= 0 {
			// Accumulated rounding exhausted the pmf before u (probability
			// ~ulp); the remaining mass is indistinguishable from the tail.
			return k
		}
	}
	return k
}

// Multinomial splits total into len(probs) buckets, adding each bucket's
// draw to out (out[q] += X_q, ΣX_q = total exactly). probs must be
// non-negative with sum at most 1 (up to rounding); any remaining
// probability mass — and any floating-point leftover — lands on the last
// bucket, so conservation holds under every split. The draw is the standard
// conditional-binomial chain, costing one Binomial per positive-probability
// bucket.
func (r *RNG) Multinomial(total int64, probs []float64, out []int64) {
	if total <= 0 || len(probs) == 0 {
		return
	}
	rem := total
	remP := 1.0
	for q := 0; q < len(probs)-1 && rem > 0 && remP > 0; q++ {
		pq := probs[q]
		if pq <= 0 {
			continue
		}
		x := r.Binomial(rem, pq/remP)
		out[q] += x
		rem -= x
		remP -= pq
	}
	out[len(probs)-1] += rem
}
