package meanfield

import (
	"math"
	"testing"

	"wardrop/internal/topo"
)

// Binomial must honour the degenerate corners exactly: they are what count
// conservation leans on when rows concentrate or empty out.
func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNG(1)
	cases := []struct {
		name string
		n    int64
		p    float64
		want int64
		any  bool // any value in [0, n] acceptable
	}{
		{"n=0", 0, 0.5, 0, false},
		{"n negative", -3, 0.5, 0, false},
		{"p=0", 100, 0, 0, false},
		{"p negative", 100, -0.5, 0, false},
		{"p=1", 100, 1, 100, false},
		{"p above one", 100, 1.5, 100, false},
		{"n=0 p=1", 0, 1, 0, false},
		{"n=1", 1, 0.5, 0, true},
		{"huge n p=1", 1 << 40, 1, 1 << 40, false},
		{"huge n p=0", 1 << 40, 0, 0, false},
	}
	for _, c := range cases {
		for i := 0; i < 100; i++ {
			got := r.Binomial(c.n, c.p)
			if c.any {
				if got < 0 || got > c.n {
					t.Fatalf("%s: Binomial(%d, %g) = %d out of range", c.name, c.n, c.p, got)
				}
				continue
			}
			if got != c.want {
				t.Fatalf("%s: Binomial(%d, %g) = %d, want %d", c.name, c.n, c.p, got, c.want)
			}
		}
	}
}

// Every draw must stay in [0, n] on both sampling paths (inversion and the
// normal approximation).
func TestBinomialRange(t *testing.T) {
	r := NewRNG(2)
	for _, c := range []struct {
		n int64
		p float64
	}{
		{10, 0.3},        // inversion
		{10, 0.97},       // inversion via symmetry
		{1 << 20, 1e-6},  // inversion, tiny p
		{1 << 20, 0.4},   // normal approximation
		{1 << 40, 0.635}, // normal approximation, huge n
	} {
		for i := 0; i < 2000; i++ {
			got := r.Binomial(c.n, c.p)
			if got < 0 || got > c.n {
				t.Fatalf("Binomial(%d, %g) = %d out of [0, n]", c.n, c.p, got)
			}
		}
	}
}

// Statistical sanity: empirical mean and variance of both sampling paths
// must match np and np(1-p) well within a generous multiple of the standard
// error (the seeds are fixed, so this is deterministic, not flaky).
func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		name string
		n    int64
		p    float64
	}{
		{"inversion", 200, 0.1},
		{"inversion symmetric", 200, 0.9},
		{"normal approx", 1_000_000, 0.37},
	}
	const draws = 20000
	for _, c := range cases {
		r := NewRNG(7)
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			x := float64(r.Binomial(c.n, c.p))
			sum += x
			sumSq += x * x
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		se := math.Sqrt(wantVar / draws)
		if math.Abs(mean-wantMean) > 6*se {
			t.Errorf("%s: mean %g, want %g ± %g", c.name, mean, wantMean, 6*se)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("%s: variance %g, want %g ± 10%%", c.name, variance, wantVar)
		}
	}
}

// Multinomial must conserve the total under every split shape: degenerate
// rows, single buckets, zero entries, rows not quite summing to one.
func TestMultinomialConservation(t *testing.T) {
	r := NewRNG(3)
	cases := []struct {
		name  string
		total int64
		probs []float64
	}{
		{"single bucket", 1000, []float64{1}},
		{"single bucket zero prob", 1000, []float64{0}},
		{"zero total", 0, []float64{0.5, 0.5}},
		{"all mass first", 1000, []float64{1, 0, 0}},
		{"all mass last", 1000, []float64{0, 0, 1}},
		{"uniform", 1000, []float64{0.25, 0.25, 0.25, 0.25}},
		{"with zeros", 12345, []float64{0.3, 0, 0.2, 0, 0.5}},
		{"underweight row", 999, []float64{0.2, 0.1}},
		{"tiny probs", 1 << 30, []float64{1e-12, 1 - 1e-12}},
		{"one agent", 1, []float64{0.5, 0.5}},
	}
	for _, c := range cases {
		for i := 0; i < 200; i++ {
			out := make([]int64, len(c.probs))
			r.Multinomial(c.total, c.probs, out)
			var sum int64
			for q, x := range out {
				if x < 0 {
					t.Fatalf("%s: negative bucket %d = %d", c.name, q, x)
				}
				sum += x
			}
			if sum != c.total {
				t.Fatalf("%s: buckets sum to %d, want %d (out=%v)", c.name, sum, c.total, out)
			}
		}
	}
}

// Multinomial accumulates into out rather than overwriting, and concentrated
// rows land everything on the right bucket.
func TestMultinomialAccumulatesAndConcentrates(t *testing.T) {
	r := NewRNG(4)
	out := make([]int64, 3)
	r.Multinomial(10, []float64{0, 1, 0}, out)
	r.Multinomial(5, []float64{0, 1, 0}, out)
	if out[0] != 0 || out[1] != 15 || out[2] != 0 {
		t.Fatalf("concentrated splits = %v, want [0 15 0]", out)
	}
}

// Statistical sanity for the multinomial: bucket means must match
// total·p_q.
func TestMultinomialMoments(t *testing.T) {
	r := NewRNG(5)
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	const total, draws = 1000, 5000
	sums := make([]float64, len(probs))
	for i := 0; i < draws; i++ {
		out := make([]int64, len(probs))
		r.Multinomial(total, probs, out)
		for q, x := range out {
			sums[q] += float64(x)
		}
	}
	for q, p := range probs {
		mean := sums[q] / draws
		want := total * p
		se := math.Sqrt(total * p * (1 - p) / draws)
		if math.Abs(mean-want) > 6*se {
			t.Errorf("bucket %d: mean %g, want %g ± %g", q, mean, want, 6*se)
		}
	}
}

// The RNG must be the shared splitmix64 stream: seeding it like topo.SplitMix
// yields topo.SplitMix's raw outputs, so seeds derived with topo.DeriveSeed
// mean the same thing here as everywhere else.
func TestRNGIsSharedSplitMixStream(t *testing.T) {
	r := NewRNG(99)
	s := topo.SplitMix{State: 99}
	for i := 0; i < 10; i++ {
		if a, b := r.Uint64(), s.Next(); a != b {
			t.Fatalf("stream diverged from topo.SplitMix at %d: %x vs %x", i, a, b)
		}
	}
}
