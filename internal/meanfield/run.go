package meanfield

import (
	"context"
	"math"

	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// Run simulates until the horizon (or an observer stop) and returns the
// result.
func (s *Sim) Run() (*dynamics.Result, error) {
	return s.RunContext(context.Background())
}

// RunContext simulates until the horizon (or an observer stop) and returns
// the result. The Result's Phases/Trajectory/UnsatisfiedPhases semantics
// match the dynamics package, and cancellation is checked between phases
// with the partial result returned alongside ctx.Err() — the same contract
// as every other engine.
//
// Board refreshes run on the compiled flow.Evaluator kernel with the same
// incremental diff update as the per-agent engine, and all per-phase scratch
// comes from the run's workspace, so phases are allocation-free after the
// first.
func (s *Sim) RunContext(ctx context.Context) (*dynamics.Result, error) {
	res := &dynamics.Result{}
	nPaths := s.inst.NumPaths()
	ws := s.cfg.Workspace
	ws.Reset()
	ev := flow.NewEvaluator(s.inst, ws)
	// Double-buffered empirical flow: curF is the phase-start state, prevF
	// the previous phase's, so the refresh knows exactly which paths changed.
	curF := flow.Vector(ws.Floats(nPaths))
	prevF := ws.Floats(nPaths)
	changed := make([]int, 0, nPaths)

	// Per-phase policy tables: probTab[i] is the n_i×n_i row-major sampling
	// table (row = origin), rates[i] the same shape holding the
	// one-activation migration probability to each destination (sampling
	// probability × migration acceptance; the diagonal stays zero — staying
	// is the row's complement). The backing memory comes from the workspace.
	probTab := make([][]float64, s.inst.NumCommodities())
	rates := make([][]float64, s.inst.NumCommodities())
	for i := range probTab {
		n := s.inst.NumCommodityPaths(i)
		probTab[i] = ws.Floats(n * n)
		rates[i] = ws.Floats(n * n)
	}
	sharedSampler := policy.OriginInvariant(s.cfg.Policy.Sampler)
	rng := NewRNG(s.cfg.Seed)

	// refresh brings the evaluator in line with the current counts: diff the
	// empirical flow against the previous phase and apply the (incremental
	// when sparse) kernel update.
	refresh := func() {
		s.empiricalInto(curF)
		cs := changed[:0]
		for g := range curF {
			if curF[g] != prevF[g] {
				cs = append(cs, g)
			}
		}
		changed = cs
		ev.Update(curF, cs)
		copy(prevF, curF)
	}
	finish := func(t float64) *dynamics.Result {
		refresh()
		res.Final = curF.Clone()
		res.FinalPotential = ev.Potential()
		res.Elapsed = t
		return res
	}

	account := dynamics.NewRoundAccounting(s.cfg.Delta, s.cfg.Eps, s.cfg.Weak, s.cfg.StopAfterSatisfiedStreak)
	t := 0.0
	for phase := 0; t < s.cfg.Horizon-1e-12; phase++ {
		if err := ctx.Err(); err != nil {
			return finish(t), err
		}
		refresh()
		pl := ev.PathLatencies()
		phi := ev.Potential()

		info := dynamics.PhaseInfo{Index: phase, Time: t, Flow: curF, PathLatencies: pl, Potential: phi}
		streakStop := account.Observe(s.inst, &info, res)
		if s.cfg.RecordEvery > 0 && phase%s.cfg.RecordEvery == 0 {
			res.Trajectory = append(res.Trajectory, dynamics.Sample{Time: t, Potential: phi, Flow: curF.Clone()})
		}
		if stop := dynamics.DeliverPhase(nil, s.cfg.Observer, info); stop || streakStop {
			res.Stopped = true
			break
		}

		s.fillTables(probTab, rates, sharedSampler, curF, pl)
		tau := math.Min(s.cfg.UpdatePeriod, s.cfg.Horizon-t)
		s.advancePhase(rng, rates, tau)
		t += tau
		res.Phases++
	}
	return finish(t), nil
}

// fillTables fills the per-commodity sampling tables from the frozen board
// (the per-agent engine's fillProbTab, sharing one row across origins for
// origin-invariant samplers) and derives the one-activation migration rates:
// rates[i][p·n+q] = P(sample q)·P(accept the migration) for q ≠ p.
func (s *Sim) fillTables(probTab, rates [][]float64, shared bool, curF flow.Vector, pl []float64) {
	mig := s.cfg.Policy.Migrator
	for i := range probTab {
		lo, hi := s.inst.CommodityRange(i)
		n := hi - lo
		flows := curF[lo:hi]
		lats := pl[lo:hi]
		if shared && n > 0 {
			s.cfg.Policy.Sampler.Probabilities(0, flows, lats, probTab[i][:n])
			for origin := 1; origin < n; origin++ {
				copy(probTab[i][origin*n:(origin+1)*n], probTab[i][:n])
			}
		} else {
			for origin := 0; origin < n; origin++ {
				s.cfg.Policy.Sampler.Probabilities(origin, flows, lats, probTab[i][origin*n:(origin+1)*n])
			}
		}
		for p := 0; p < n; p++ {
			row := probTab[i][p*n : (p+1)*n]
			out := rates[i][p*n : (p+1)*n]
			for q := 0; q < n; q++ {
				if q == p || row[q] <= 0 {
					out[q] = 0
					continue
				}
				out[q] = row[q] * mig.Probability(lats[p], lats[q])
			}
		}
	}
}

// advancePhase samples the phase-end counts for a phase of length tau. Each
// agent activates K ~ Poisson(tau) times; conditioned on the frozen board
// its activations are one-step transitions with the precomputed rates. The
// count form processes activations in rounds: thin each row into the agents
// with K ≥ 1 (one binomial per row), then per round split every active row
// multinomially over its destinations and thin the survivors by the Poisson
// tail ratio P(K ≥ r+1)/P(K ≥ r), until nobody has activations left. The
// expected round count is the maximum of N Poisson(tau) draws — O(log N /
// log log N) — so phase cost is essentially population-independent.
func (s *Sim) advancePhase(rng *RNG, rates [][]float64, tau float64) {
	q1 := -math.Expm1(-tau) // P(K >= 1)
	if q1 <= 0 {
		return
	}
	anyActive := false
	for g, c := range s.counts {
		if c == 0 {
			continue
		}
		a := rng.Binomial(c, q1)
		s.counts[g] = c - a
		s.active[g] = a
		anyActive = anyActive || a > 0
	}
	// The Poisson pmf is tracked in log space so large tau (where e^-tau
	// underflows) still yields correct tail ratios.
	logTau := math.Log(tau)
	logPmf := -tau // log P(K = 0)
	qr := q1       // P(K >= r) for the current round r
	for r := int64(1); anyActive; r++ {
		// One activation round: multinomial-split each active row over its
		// migration destinations; the un-migrated remainder stays put. The
		// conditional-binomial chain skips zero-rate destinations, so a round
		// costs one Binomial per reachable improvement, not per path pair.
		for i := range rates {
			lo, hi := s.inst.CommodityRange(i)
			n := hi - lo
			for p := 0; p < n; p++ {
				a := s.active[lo+p]
				if a == 0 {
					continue
				}
				s.active[lo+p] = 0
				row := rates[i][p*n : (p+1)*n]
				rem := a
				remP := 1.0
				for q := 0; q < n && rem > 0 && remP > 0; q++ {
					pq := row[q]
					if pq <= 0 {
						continue
					}
					x := rng.Binomial(rem, pq/remP)
					s.landed[lo+q] += x
					rem -= x
					remP -= pq
				}
				s.landed[lo+p] += rem
			}
		}
		// Thin into round r+1 by the activation-count tail ratio.
		logPmf += logTau - math.Log(float64(r))
		qNext := qr - math.Exp(logPmf)
		if qNext < 0 {
			qNext = 0
		}
		ratio := 0.0
		if qr > 0 {
			ratio = qNext / qr
		}
		anyActive = false
		for g, a := range s.landed {
			if a == 0 {
				continue
			}
			s.landed[g] = 0
			keep := rng.Binomial(a, ratio)
			s.counts[g] += a - keep
			s.active[g] = keep
			anyActive = anyActive || keep > 0
		}
		qr = qNext
	}
}
