// Package meanfield implements the count-based mean-field engine: the same
// bulletin-board stochastic process as the per-agent simulator, represented
// as integer counts per (commodity, path) instead of individual agents.
//
// Within a phase the board is frozen, so every agent's activations form an
// independent Markov chain on its commodity's paths with a one-activation
// transition row derived from the board (sample a path from the policy's
// table, migrate with the policy's probability). The phase-end counts are
// therefore a sum of independent multinomials, which this engine samples
// directly: it thins each row by the probability of activating at least
// once, then repeatedly (a) splits every active row over its destinations
// with one multinomial draw and (b) thins the survivors by the Poisson
// activation-count tail ratio, until no agent has activations left. The
// result is distributionally identical to simulating each agent — not an
// approximation — while a phase costs O(paths² · rounds) independent of the
// population, so millions of agents cost the same as thousands.
package meanfield

import (
	"errors"
	"fmt"
	"math"

	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// Sentinel errors.
var (
	// ErrBadConfig indicates an invalid simulation configuration.
	ErrBadConfig = errors.New("meanfield: invalid config")
)

// MaxPopulation bounds the population so agent counts stay exactly
// representable as float64 empirical flows (2^53). Populations beyond it
// would silently round when converted to flow.
const MaxPopulation = int64(1) << 53

// Config parameterises a count-based mean-field simulation. The fields
// mirror the per-agent simulator's (minus sharding, which counts make
// unnecessary), so the two engines are interchangeable in every harness.
type Config struct {
	// N is the total number of agents, split across commodities in
	// proportion to demand (each commodity gets at least one agent). Each
	// agent of commodity i carries weight r_i/n_i flow.
	N int64
	// Policy is the rerouting policy.
	Policy policy.Policy
	// UpdatePeriod is the bulletin-board period T (> 0).
	UpdatePeriod float64
	// Horizon is the simulated time budget.
	Horizon float64
	// Seed makes runs reproducible (splitmix64, the shared topo.SplitMix
	// stream discipline).
	Seed uint64
	// RecordEvery records a sample every k phases (0 disables).
	RecordEvery int
	// Observer observes phase starts; compose several with
	// dynamics.MultiObserver.
	Observer dynamics.Observer
	// InitialFlow, if non-nil, distributes each commodity's agents over its
	// paths proportionally to this (feasible) flow vector instead of the
	// default even spread. Rounding drift lands on the commodity's first
	// path — the same placement rule as the per-agent engine.
	InitialFlow flow.Vector

	// Delta and Eps enable the (δ,ε)-equilibrium round accounting on the
	// empirical flow at each phase start, with the same semantics as the
	// fluid dynamics (Theorems 6 and 7). Delta <= 0 disables accounting.
	Delta float64
	Eps   float64
	// Weak selects the weak (δ,ε) metric (Definition 4).
	Weak bool
	// StopAfterSatisfiedStreak stops the run once this many consecutive
	// phases started at the configured approximate equilibrium (0 disables).
	StopAfterSatisfiedStreak int
	// Workspace, if non-nil, supplies the run's evaluation scratch (board
	// latencies, sampling tables, flow buffers; Reset at run entry); nil
	// allocates privately. See flow.Workspace for the reuse contract.
	Workspace *flow.Workspace
}

// Sim is a configured simulation bound to an instance. Create with New, run
// with RunContext.
type Sim struct {
	inst *flow.Instance
	cfg  Config
	// counts[g] is the number of agents currently on global path g.
	counts []int64
	// active and landed are the phase loop's round buffers: agents still
	// owed an activation this round, and agents that just completed one.
	active []int64
	landed []int64
	// weights[i] is the flow carried by one agent of commodity i.
	weights []float64
}

// New validates the configuration and distributes the population over paths.
func New(inst *flow.Instance, cfg Config) (*Sim, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: N=%d", ErrBadConfig, cfg.N)
	}
	if cfg.N > MaxPopulation {
		return nil, fmt.Errorf("%w: N=%d exceeds the exactly representable population %d", ErrBadConfig, cfg.N, MaxPopulation)
	}
	if cfg.UpdatePeriod <= 0 {
		return nil, fmt.Errorf("%w: update period %g", ErrBadConfig, cfg.UpdatePeriod)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %g", ErrBadConfig, cfg.Horizon)
	}
	if cfg.Policy.Sampler == nil || cfg.Policy.Migrator == nil {
		return nil, fmt.Errorf("%w: policy requires sampler and migrator", ErrBadConfig)
	}
	if err := dynamics.ValidateRunShape(ErrBadConfig, cfg.RecordEvery, cfg.Delta, cfg.Eps, cfg.StopAfterSatisfiedStreak); err != nil {
		return nil, err
	}

	s := &Sim{inst: inst, cfg: cfg}
	total := inst.TotalDemand()
	// Per-commodity populations proportional to demand, ≥ 1 each, with the
	// rounding drift on the largest commodity — the per-agent engine's split,
	// so both engines put the same weight behind each agent.
	perComm := make([]int64, inst.NumCommodities())
	var assigned int64
	for i := range perComm {
		ni := int64(math.Round(float64(cfg.N) * inst.Commodity(i).Demand / total))
		if ni < 1 {
			ni = 1
		}
		perComm[i] = ni
		assigned += ni
	}
	largest := 0
	for i := range perComm {
		if perComm[i] > perComm[largest] {
			largest = i
		}
	}
	perComm[largest] += cfg.N - assigned
	if perComm[largest] < 1 {
		return nil, fmt.Errorf("%w: N=%d too small for %d commodities", ErrBadConfig, cfg.N, inst.NumCommodities())
	}

	if cfg.InitialFlow != nil {
		if err := inst.Feasible(cfg.InitialFlow, 1e-9); err != nil {
			return nil, fmt.Errorf("%w: initial flow: %v", ErrBadConfig, err)
		}
	}
	nPaths := inst.NumPaths()
	s.counts = make([]int64, nPaths)
	s.active = make([]int64, nPaths)
	s.landed = make([]int64, nPaths)
	s.weights = make([]float64, inst.NumCommodities())
	for i := range perComm {
		s.weights[i] = inst.Commodity(i).Demand / float64(perComm[i])
		lo, _ := inst.CommodityRange(i)
		np := inst.NumCommodityPaths(i)
		ni := perComm[i]
		if cfg.InitialFlow == nil {
			// Even spread: the count form of dealing agent a to path a mod np.
			base, extra := ni/int64(np), ni%int64(np)
			for p := 0; p < np; p++ {
				s.counts[lo+p] = base
				if int64(p) < extra {
					s.counts[lo+p]++
				}
			}
			continue
		}
		// Proportional placement: floor per path, drift onto the first path
		// (identical to the per-agent placement loop).
		demand := inst.Commodity(i).Demand
		var placed int64
		for p := 0; p < np; p++ {
			n := int64(math.Floor(cfg.InitialFlow[lo+p] / demand * float64(ni)))
			if n > ni-placed {
				n = ni - placed
			}
			s.counts[lo+p] = n
			placed += n
		}
		s.counts[lo] += ni - placed
	}
	return s, nil
}

// Counts returns a copy of the current per-path agent counts.
func (s *Sim) Counts() []int64 {
	return append([]int64(nil), s.counts...)
}

// EmpiricalFlow returns the current empirical flow vector (agent counts
// times agent weights).
func (s *Sim) EmpiricalFlow() flow.Vector {
	f := make(flow.Vector, s.inst.NumPaths())
	s.empiricalInto(f)
	return f
}

// empiricalInto writes the current empirical flow into f, reusing the
// caller's buffer.
func (s *Sim) empiricalInto(f flow.Vector) {
	for g, c := range s.counts {
		f[g] = float64(c) * s.weights[s.inst.CommodityOf(g)]
	}
}
