package meanfield

import (
	"context"
	"math"
	"testing"

	"wardrop/internal/agents"
	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

func braess(t *testing.T) *flow.Instance {
	t.Helper()
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testPolicy(t *testing.T, inst *flow.Instance) policy.Policy {
	t.Helper()
	mig, err := policy.NewLinear(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	return policy.Policy{Sampler: policy.Proportional{}, Migrator: mig}
}

func baseConfig(t *testing.T, inst *flow.Instance) Config {
	t.Helper()
	return Config{
		N:            2000,
		Policy:       testPolicy(t, inst),
		UpdatePeriod: 0.25,
		Horizon:      5,
		Seed:         42,
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	inst := braess(t)
	cases := []struct {
		name string
		edit func(Config) Config
	}{
		{"zero N", func(c Config) Config { c.N = 0; return c }},
		{"negative N", func(c Config) Config { c.N = -5; return c }},
		{"over max population", func(c Config) Config { c.N = MaxPopulation + 1; return c }},
		{"zero period", func(c Config) Config { c.UpdatePeriod = 0; return c }},
		{"zero horizon", func(c Config) Config { c.Horizon = 0; return c }},
		{"no policy", func(c Config) Config { c.Policy = policy.Policy{}; return c }},
		{"negative recordEvery", func(c Config) Config { c.RecordEvery = -1; return c }},
		{"delta without eps", func(c Config) Config { c.Delta = 0.1; c.Eps = -1; return c }},
		{"infeasible initial flow", func(c Config) Config {
			c.InitialFlow = flow.Vector{1, 1, 1}
			return c
		}},
	}
	for _, c := range cases {
		if _, err := New(inst, c.edit(baseConfig(t, inst))); err == nil {
			t.Errorf("%s: New accepted the config", c.name)
		}
	}
	if _, err := New(inst, baseConfig(t, inst)); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}

// The count engine's initial placement must be the exact count form of the
// per-agent engine's: same per-commodity split, same even spread, same
// proportional placement with drift on the first path — so both engines
// start from bit-identical empirical flows.
func TestInitialPlacementMatchesAgents(t *testing.T) {
	inst := braess(t)
	pol := testPolicy(t, inst)
	skewed := flow.Vector{0.05, 0.9, 0.05}
	for _, tc := range []struct {
		name string
		n    int64
		f0   flow.Vector
	}{
		{"even spread", 301, nil},
		{"even spread divisible", 300, nil},
		{"proportional", 997, skewed},
		{"single agent", 1, nil},
	} {
		cs, err := New(inst, Config{N: tc.n, Policy: pol, UpdatePeriod: 0.25, Horizon: 1, InitialFlow: tc.f0})
		if err != nil {
			t.Fatalf("%s: meanfield: %v", tc.name, err)
		}
		as, err := agents.New(inst, agents.Config{N: int(tc.n), Policy: pol, UpdatePeriod: 0.25, Horizon: 1, Workers: 1, InitialFlow: tc.f0})
		if err != nil {
			t.Fatalf("%s: agents: %v", tc.name, err)
		}
		cf, af := cs.EmpiricalFlow(), as.EmpiricalFlow()
		for g := range cf {
			if cf[g] != af[g] {
				t.Errorf("%s: initial flow[%d] = %g (count) vs %g (agents)", tc.name, g, cf[g], af[g])
			}
		}
	}
}

// Per-commodity totals are invariant under every phase: no split may create
// or destroy agents.
func TestCountConservationAcrossPhases(t *testing.T) {
	for _, build := range []struct {
		name string
		make func() (*flow.Instance, error)
	}{
		{"pigou", topo.Pigou},
		{"braess", topo.Braess},
		{"links", func() (*flow.Instance, error) { return topo.LinearParallelLinks(6) }},
	} {
		inst, err := build.make()
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(inst, Config{
			N:            12345,
			Policy:       testPolicy(t, inst),
			UpdatePeriod: 0.5,
			Horizon:      20,
			Seed:         9,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int64, inst.NumCommodities())
		for g, c := range s.counts {
			want[inst.CommodityOf(g)] += c
		}
		if _, err := s.Run(); err != nil {
			t.Fatalf("%s: %v", build.name, err)
		}
		got := make([]int64, inst.NumCommodities())
		for g, c := range s.counts {
			if c < 0 {
				t.Fatalf("%s: negative count on path %d: %d", build.name, g, c)
			}
			got[inst.CommodityOf(g)] += c
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: commodity %d count %d, want %d", build.name, i, got[i], want[i])
			}
		}
		// The round buffers must be fully drained between phases.
		for g := range s.active {
			if s.active[g] != 0 || s.landed[g] != 0 {
				t.Fatalf("%s: round buffers not drained at path %d", build.name, g)
			}
		}
	}
}

// Large update periods exercise the log-space Poisson tail (e^-tau
// underflows for tau > ~745); counts must still conserve and the run must
// terminate.
func TestHugeUpdatePeriodConserves(t *testing.T) {
	inst := braess(t)
	s, err := New(inst, Config{
		N:            500,
		Policy:       testPolicy(t, inst),
		UpdatePeriod: 800,
		Horizon:      800,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range s.counts {
		total += c
	}
	if total != 500 {
		t.Fatalf("population %d after huge phase, want 500", total)
	}
}

// Fixed (seed, config) pairs are fully deterministic, and the seed matters.
func TestDeterminism(t *testing.T) {
	inst := braess(t)
	run := func(seed uint64) flow.Vector {
		cfg := baseConfig(t, inst)
		cfg.Seed = seed
		s, err := New(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	a, b := run(42), run(42)
	for g := range a {
		if a[g] != b[g] {
			t.Fatalf("same seed diverged at path %d: %g vs %g", g, a[g], b[g])
		}
	}
	c := run(43)
	same := true
	for g := range a {
		if a[g] != c[g] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical finals")
	}
}

// Run-shape plumbing: trajectory sampling, streak stop and observer stop
// behave exactly like the other engines.
func TestRunShape(t *testing.T) {
	inst := braess(t)
	cfg := baseConfig(t, inst)
	cfg.RecordEvery = 2
	s, err := New(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := int(math.Ceil(cfg.Horizon / cfg.UpdatePeriod))
	if res.Phases != wantPhases {
		t.Errorf("phases = %d, want %d", res.Phases, wantPhases)
	}
	wantSamples := (wantPhases + 1) / 2
	if len(res.Trajectory) != wantSamples {
		t.Errorf("trajectory samples = %d, want %d", len(res.Trajectory), wantSamples)
	}
	if res.Elapsed != cfg.Horizon {
		t.Errorf("elapsed = %g, want %g", res.Elapsed, cfg.Horizon)
	}

	// Streak stop: with delta accounting on a generous (δ,ε) the run should
	// stop early and report Stopped.
	cfg = baseConfig(t, inst)
	cfg.Horizon = 500
	cfg.Delta = 0.5
	cfg.Eps = 0.25
	cfg.StopAfterSatisfiedStreak = 5
	s, err = New(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("streak stop never fired on a generous (δ,ε)")
	}

	// Observer stop at a fixed phase.
	cfg = baseConfig(t, inst)
	cfg.Observer = dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
		return info.Index >= 3
	})
	s, err = New(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 3 || !res.Stopped {
		t.Errorf("observer stop: phases = %d stopped = %v, want 3/true", res.Phases, res.Stopped)
	}
}

// Cancellation between phases returns the partial result with ctx.Err().
func TestCancellation(t *testing.T) {
	inst := braess(t)
	cfg := baseConfig(t, inst)
	cfg.Horizon = 1e6
	s, err := New(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg2 := cfg
	cfg2.Observer = dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
		if info.Index == 5 {
			cancel()
		}
		return false
	})
	s, err = New(inst, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunContext(ctx)
	if err == nil || res == nil {
		t.Fatalf("cancelled run: res=%v err=%v, want partial result with error", res, err)
	}
	if res.Phases < 5 {
		t.Errorf("cancelled run completed %d phases, want >= 5", res.Phases)
	}
}

// BenchmarkCountRun measures a full count-engine run — millions of agents,
// O(paths) per phase — with the workspace shared across iterations so the
// steady-state allocation profile is what b.ReportAllocs sees.
func BenchmarkCountRun(b *testing.B) {
	inst, err := topo.Braess()
	if err != nil {
		b.Fatal(err)
	}
	mig, err := policy.NewLinear(inst.LMax())
	if err != nil {
		b.Fatal(err)
	}
	pol := policy.Policy{Sampler: policy.Proportional{}, Migrator: mig}
	ws := flow.NewWorkspace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := New(inst, Config{
			N:            1_000_000,
			Policy:       pol,
			UpdatePeriod: 0.25,
			Horizon:      10,
			Seed:         7,
			Workspace:    ws,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunContext(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
