package policy

import (
	"math"
	"testing"
)

// wrapMigrator hides the concrete type so the batch kernels take their
// generic fallback.
type wrapMigrator struct{ m Migrator }

func (w wrapMigrator) Probability(lp, lq float64) float64 { return w.m.Probability(lp, lq) }
func (w wrapMigrator) Name() string                       { return "wrap(" + w.m.Name() + ")" }

func batchMigrators(t *testing.T) []Migrator {
	t.Helper()
	lin, err := NewLinear(2.5)
	if err != nil {
		t.Fatal(err)
	}
	al, err := NewAlphaLinear(0.8)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewRelativeGain(1.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return []Migrator{
		BetterResponse{},
		lin,
		al,
		Quadratic{AlphaParam: 1.2, LMax: 2.5},
		rg,
		wrapMigrator{lin}, // generic fallback path
	}
}

// splitmix-style deterministic doubles for the property rows.
func nextU(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func nextF(s *uint64) float64 { return float64(nextU(s)>>11) / (1 << 53) }

// TestBatchRowsMatchInterface pins the batch kernels to the interface path
// bit-for-bit: MigrationRates (origin-major rows and sums) and InflowRates
// (transposed target rows) must reproduce probs[q]·µ(ℓ_p, ℓ_q) exactly,
// including ties (ℓ_p == ℓ_q), zero latencies and saturated (µ = 1)
// differences — the identity the golden outputs of every engine rest on.
func TestBatchRowsMatchInterface(t *testing.T) {
	seed := uint64(42)
	for _, m := range batchMigrators(t) {
		t.Run(m.Name(), func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				n := 2 + int(nextU(&seed)%9)
				lats := make([]float64, n)
				probs := make([]float64, n)
				for i := range lats {
					switch nextU(&seed) % 5 {
					case 0:
						lats[i] = 0
					case 1:
						lats[i] = 10 * nextF(&seed) // saturates min{1,·}
					default:
						lats[i] = nextF(&seed)
					}
					probs[i] = nextF(&seed)
				}
				if n > 2 {
					lats[n-1] = lats[0] // force a tie
				}
				rates := make([]float64, n)
				want := make([]float64, n)
				inflow := make([]float64, n)
				for origin := 0; origin < n; origin++ {
					wantSum := 0.0
					for q := 0; q < n; q++ {
						if q == origin {
							want[q] = 0
							continue
						}
						want[q] = probs[q] * m.Probability(lats[origin], lats[q])
						wantSum += want[q]
					}
					sum := MigrationRates(m, origin, lats, probs, rates)
					for q := range rates {
						if math.Float64bits(rates[q]) != math.Float64bits(want[q]) {
							t.Fatalf("row %d entry %d: got %v, want %v", origin, q, rates[q], want[q])
						}
					}
					if math.Float64bits(sum) != math.Float64bits(wantSum) {
						t.Fatalf("row %d sum: got %v, want %v", origin, sum, wantSum)
					}
					// InflowRates writes the transposed row of target
					// `origin`: entry q must equal the origin-major
					// R[q][origin] with the shared probability probs[origin].
					InflowRates(m, origin, lats, probs[origin], inflow)
					for q := 0; q < n; q++ {
						wantEntry := 0.0
						if q != origin {
							wantEntry = probs[origin] * m.Probability(lats[q], lats[origin])
						}
						if math.Float64bits(inflow[q]) != math.Float64bits(wantEntry) {
							t.Fatalf("inflow target %d entry %d: got %v, want %v", origin, q, inflow[q], wantEntry)
						}
					}
				}
			}
		})
	}
}

func TestMin1MatchesMathMin(t *testing.T) {
	cases := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0, math.Copysign(0, -1), 0.5, 1, 1 + 1e-16, 2}
	for _, v := range cases {
		got, want := min1(v), math.Min(1, v)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("min1(%v) = %v, math.Min(1, %v) = %v", v, got, v, want)
		}
	}
}

func TestOriginInvariant(t *testing.T) {
	if !OriginInvariant(Uniform{}) || !OriginInvariant(Proportional{}) || !OriginInvariant(Boltzmann{C: 2}) {
		t.Fatal("builtin samplers must be origin-invariant")
	}
	if OriginInvariant(nil) {
		t.Fatal("unknown samplers must be conservative")
	}
}
