package policy

import (
	"encoding/json"
	"fmt"

	"wardrop/internal/catalog"
)

// SamplerChoice is a materialised sampling-rule selection: the constructed
// sampler plus the stable cell label the sweep layer aggregates under.
// Catalog entries decode and validate their parameters once and return a
// SamplerChoice, so labels and construction cannot disagree.
type SamplerChoice struct {
	// Key is the stable cell label ("uniform", "boltzmann(c=4)", …).
	Key string
	// Sampler is the constructed sampling rule.
	Sampler Sampler
}

// MigratorChoice is a materialised migration-rule selection. Migration rules
// are sized to the instance (the default linear rule needs ℓmax), so the
// choice carries a constructor instead of a finished value.
type MigratorChoice struct {
	// KeySuffix is appended to the sampler's label ("", "+alphalinear(0.5)",
	// "+betterresponse", …). The default linear rule contributes nothing.
	KeySuffix string
	// New constructs the rule for an instance with the given ℓmax.
	New func(lmax float64) (Migrator, error)
}

// Samplers is the registry of sampling-rule kinds; Migrators the registry of
// migration rules. The sweep policy layer and the CLIs dispatch through
// them; users add rules with Register (wardrop.RegisterPolicy /
// wardrop.RegisterMigrator).
var (
	Samplers  = newSamplers()
	Migrators = newMigrators()
)

// samplerArgs mirrors the flat JSON fields of a policy document that the
// builtin samplers read.
type samplerArgs struct {
	C float64 `json:"c"`
}

// migratorArgs mirrors the flat JSON fields the builtin migrators read.
type migratorArgs struct {
	Alpha float64 `json:"alpha"`
}

func newSamplers() *catalog.Registry[SamplerChoice] {
	r := catalog.NewRegistry[SamplerChoice]("policy")
	r.MustRegister(catalog.Entry[SamplerChoice]{
		Name: "uniform",
		Doc:  "sample each of the commodity's paths uniformly (§5.1)",
		Build: func(json.RawMessage) (SamplerChoice, error) {
			return SamplerChoice{Key: "uniform", Sampler: Uniform{}}, nil
		},
	})
	r.MustRegister(catalog.Entry[SamplerChoice]{
		Name: "replicator",
		Doc:  "sample proportionally to path flow (§5.2, the replicator's rule)",
		Build: func(json.RawMessage) (SamplerChoice, error) {
			return SamplerChoice{Key: "replicator", Sampler: Proportional{}}, nil
		},
	})
	r.MustRegister(catalog.Entry[SamplerChoice]{
		Name: "proportional",
		Doc:  "alias of replicator, keeping its own cell label",
		Build: func(json.RawMessage) (SamplerChoice, error) {
			return SamplerChoice{Key: "proportional", Sampler: Proportional{}}, nil
		},
	})
	r.MustRegister(catalog.Entry[SamplerChoice]{
		Name: "boltzmann",
		Doc:  "logit / smoothed-best-response sampling exp(−c·ℓ_Q)/Σ exp(−c·ℓ) (§2.2)",
		Params: []catalog.Param{
			{Name: "c", Type: "float", Doc: "concentration (>= 0; large c approximates best response)"},
		},
		Build: func(raw json.RawMessage) (SamplerChoice, error) {
			var a samplerArgs
			if err := catalog.DecodeArgs(raw, &a); err != nil {
				return SamplerChoice{}, fmt.Errorf("%w: %v", ErrBadParam, err)
			}
			if a.C < 0 {
				return SamplerChoice{}, fmt.Errorf("%w: boltzmann c %g must be >= 0", ErrBadParam, a.C)
			}
			return SamplerChoice{
				Key:     fmt.Sprintf("boltzmann(c=%g)", a.C),
				Sampler: Boltzmann{C: a.C},
			}, nil
		},
	})
	return r
}

func newMigrators() *catalog.Registry[MigratorChoice] {
	r := catalog.NewRegistry[MigratorChoice]("migrator")
	r.MustRegister(catalog.Entry[MigratorChoice]{
		Name: "linear",
		Doc:  "the paper's (1/ℓmax)-smooth rule µ = (ℓ_P − ℓ_Q)/ℓmax (the default)",
		Build: func(json.RawMessage) (MigratorChoice, error) {
			return MigratorChoice{
				New: func(lmax float64) (Migrator, error) { return NewLinear(lmax) },
			}, nil
		},
	})
	r.MustRegister(catalog.Entry[MigratorChoice]{
		Name: "alphalinear",
		Doc:  "µ = min{1, alpha·(ℓ_P − ℓ_Q)}, parameterised by its smoothness constant",
		Params: []catalog.Param{
			{Name: "alpha", Type: "float", Doc: "smoothness constant (> 0)"},
		},
		Build: func(raw json.RawMessage) (MigratorChoice, error) {
			var a migratorArgs
			if err := catalog.DecodeArgs(raw, &a); err != nil {
				return MigratorChoice{}, fmt.Errorf("%w: %v", ErrBadParam, err)
			}
			if a.Alpha <= 0 {
				return MigratorChoice{}, fmt.Errorf("%w: alphalinear alpha %g must be positive", ErrBadParam, a.Alpha)
			}
			return MigratorChoice{
				KeySuffix: fmt.Sprintf("+alphalinear(%g)", a.Alpha),
				New:       func(float64) (Migrator, error) { return NewAlphaLinear(a.Alpha) },
			}, nil
		},
	})
	r.MustRegister(catalog.Entry[MigratorChoice]{
		Name: "betterresponse",
		Doc:  "always switch to a strictly better path (not α-smooth; oscillates; no safe period)",
		Build: func(json.RawMessage) (MigratorChoice, error) {
			return MigratorChoice{
				KeySuffix: "+betterresponse",
				New:       func(float64) (Migrator, error) { return BetterResponse{}, nil },
			}, nil
		},
	})
	return r
}
