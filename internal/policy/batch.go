package policy

import "math"

// Batch kernels for the fluid rate matrix: the per-entry migration
// probability µ(ℓ_P, ℓ_Q) is an interface call in the generic path, which
// dominates the O(|P_i|²) rate-matrix fill. The kernels below specialize
// the builtin migrator kinds into concrete loops with the interface bodies
// inlined — including a branch form of min{1, ·} proved bit-identical to
// math.Min below — so the produced rates are bit-for-bit the generic
// path's values at a fraction of the cost (TestBatchRowsMatchInterface
// pins the identity).

// min1 returns math.Min(1, v) for every float64 v without the call and
// special-case overhead: v > 1 picks 1; any other v — including NaN, ±0
// and -Inf, for which the comparison is false — is returned unchanged,
// exactly math.Min's result when its first argument is 1.
func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// MigrationRates fills rates[q] = probs[q]·µ(ℓ_origin, lats[q]) for every
// q ≠ origin, sets rates[origin] = 0, and returns the row sum accumulated in
// ascending q order — one origin row of the fluid dynamics' migration rate
// matrix. lats, probs and rates are commodity-local, all of equal length.
func MigrationRates(m Migrator, origin int, lats, probs, rates []float64) float64 {
	lp := lats[origin]
	sum := 0.0
	switch mg := m.(type) {
	case BetterResponse:
		for q := range rates {
			if q == origin {
				rates[q] = 0
				continue
			}
			mu := 0.0
			if lp > lats[q] {
				mu = 1
			}
			r := probs[q] * mu
			rates[q] = r
			sum += r
		}
	case Linear:
		for q := range rates {
			if q == origin {
				rates[q] = 0
				continue
			}
			lq := lats[q]
			mu := 0.0
			if lp > lq {
				mu = min1((lp - lq) / mg.LMax)
			}
			r := probs[q] * mu
			rates[q] = r
			sum += r
		}
	case AlphaLinear:
		for q := range rates {
			if q == origin {
				rates[q] = 0
				continue
			}
			lq := lats[q]
			mu := 0.0
			if lp > lq {
				mu = min1(mg.AlphaParam * (lp - lq))
			}
			r := probs[q] * mu
			rates[q] = r
			sum += r
		}
	case Quadratic:
		for q := range rates {
			if q == origin {
				rates[q] = 0
				continue
			}
			lq := lats[q]
			mu := 0.0
			if lp > lq {
				d := lp - lq
				mu = min1(mg.AlphaParam * d * d / mg.LMax)
			}
			r := probs[q] * mu
			rates[q] = r
			sum += r
		}
	case RelativeGain:
		for q := range rates {
			if q == origin {
				rates[q] = 0
				continue
			}
			lq := lats[q]
			mu := 0.0
			if lp > lq {
				mu = min1(mg.AlphaParam * (lp - lq) / math.Max(lp, mg.Floor))
			}
			r := probs[q] * mu
			rates[q] = r
			sum += r
		}
	default:
		for q := range rates {
			if q == origin {
				rates[q] = 0
				continue
			}
			r := probs[q] * m.Probability(lp, lats[q])
			rates[q] = r
			sum += r
		}
	}
	return sum
}

// InflowRates fills rates[q] = probTarget·µ(lats[q], ℓ_target) for every
// q ≠ target and sets rates[target] = 0 — one TARGET row of the transposed
// rate matrix, entries flowing from each origin q into the fixed target.
// probTarget is the (origin-invariant) probability of sampling the target,
// so every entry is the same product the origin-major MigrationRates
// produces; only the iteration order differs. Used by the rate-matrix fill
// when the sampler is origin-invariant, writing the transposed storage
// directly instead of scattering origin rows.
func InflowRates(m Migrator, target int, lats []float64, probTarget float64, rates []float64) {
	lt := lats[target]
	switch mg := m.(type) {
	case BetterResponse:
		for q := range rates {
			mu := 0.0
			if lats[q] > lt {
				mu = 1
			}
			rates[q] = probTarget * mu
		}
	case Linear:
		for q := range rates {
			lp := lats[q]
			mu := 0.0
			if lp > lt {
				mu = min1((lp - lt) / mg.LMax)
			}
			rates[q] = probTarget * mu
		}
	case AlphaLinear:
		for q := range rates {
			lp := lats[q]
			mu := 0.0
			if lp > lt {
				mu = min1(mg.AlphaParam * (lp - lt))
			}
			rates[q] = probTarget * mu
		}
	case Quadratic:
		for q := range rates {
			lp := lats[q]
			mu := 0.0
			if lp > lt {
				d := lp - lt
				mu = min1(mg.AlphaParam * d * d / mg.LMax)
			}
			rates[q] = probTarget * mu
		}
	case RelativeGain:
		for q := range rates {
			lp := lats[q]
			mu := 0.0
			if lp > lt {
				mu = min1(mg.AlphaParam * (lp - lt) / math.Max(lp, mg.Floor))
			}
			rates[q] = probTarget * mu
		}
	default:
		for q := range rates {
			rates[q] = probTarget * m.Probability(lats[q], lt)
		}
	}
	rates[target] = 0
}

// OriginInvariant reports whether the sampler's distribution is independent
// of the sampling agent's current path, so one Probabilities call per
// commodity serves every origin row. All builtin samplers qualify; unknown
// samplers conservatively report false and are evaluated per row.
func OriginInvariant(s Sampler) bool {
	switch s.(type) {
	case Uniform, Proportional, Boltzmann:
		return true
	}
	return false
}

// ParallelSafeMigrator reports whether the migrator may be evaluated from
// several goroutines at once. The builtin kinds are stateless values, so
// they qualify; unknown implementations conservatively report false — the
// Migrator interface promises nothing about concurrency, and a stateful
// custom rule must keep working under the strictly sequential evaluation
// order it was written against.
func ParallelSafeMigrator(m Migrator) bool {
	switch m.(type) {
	case BetterResponse, Linear, AlphaLinear, Quadratic, RelativeGain:
		return true
	}
	return false
}
