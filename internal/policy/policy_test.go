package policy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func sums(probs []float64) float64 {
	s := 0.0
	for _, p := range probs {
		s += p
	}
	return s
}

func TestUniformSampler(t *testing.T) {
	flows := []float64{0.5, 0.3, 0.2}
	probs := make([]float64, 3)
	(Uniform{}).Probabilities(1, flows, nil, probs)
	for _, p := range probs {
		if !approx(p, 1.0/3, 1e-15) {
			t.Errorf("probs = %v", probs)
		}
	}
	if (Uniform{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestProportionalSampler(t *testing.T) {
	flows := []float64{0.5, 0.3, 0.2}
	probs := make([]float64, 3)
	(Proportional{}).Probabilities(0, flows, nil, probs)
	if !approx(probs[0], 0.5, 1e-15) || !approx(probs[1], 0.3, 1e-15) || !approx(probs[2], 0.2, 1e-15) {
		t.Errorf("probs = %v", probs)
	}
	// Unnormalised flows are normalised by their own sum.
	(Proportional{}).Probabilities(0, []float64{2, 2}, nil, probs[:2])
	if !approx(probs[0], 0.5, 1e-15) {
		t.Errorf("unnormalised probs = %v", probs[:2])
	}
	// Degenerate zero flow falls back to uniform.
	(Proportional{}).Probabilities(0, []float64{0, 0}, nil, probs[:2])
	if !approx(probs[0], 0.5, 1e-15) {
		t.Errorf("zero-flow fallback = %v", probs[:2])
	}
}

func TestBoltzmannSampler(t *testing.T) {
	lats := []float64{1, 2}
	probs := make([]float64, 2)
	(Boltzmann{C: 0}).Probabilities(0, nil, lats, probs)
	if !approx(probs[0], 0.5, 1e-12) {
		t.Errorf("c=0 should be uniform: %v", probs)
	}
	(Boltzmann{C: 50}).Probabilities(0, nil, lats, probs)
	if probs[0] < 0.999999 {
		t.Errorf("large c should concentrate on min: %v", probs)
	}
	// Stability under huge latencies (max-shifted softmax must not NaN).
	(Boltzmann{C: 10}).Probabilities(0, nil, []float64{1e6, 1e6 + 1}, probs)
	if math.IsNaN(probs[0]) || !approx(sums(probs), 1, 1e-12) {
		t.Errorf("unstable softmax: %v", probs)
	}
}

func TestSamplersProduceDistributions(t *testing.T) {
	samplers := []Sampler{Uniform{}, Proportional{}, Boltzmann{C: 2.5}}
	prop := func(a, b, c uint16) bool {
		flows := []float64{float64(a%100) + 1, float64(b%100) + 1, float64(c%100) + 1}
		lats := []float64{float64(b%7) + 0.1, float64(c%7) + 0.1, float64(a%7) + 0.1}
		probs := make([]float64, 3)
		for _, s := range samplers {
			s.Probabilities(0, flows, lats, probs)
			if !approx(sums(probs), 1, 1e-9) {
				return false
			}
			for _, p := range probs {
				if p < 0 || p > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleIndex(t *testing.T) {
	probs := []float64{0.2, 0.5, 0.3}
	cases := []struct {
		u    float64
		want int
	}{{0.0, 0}, {0.19, 0}, {0.21, 1}, {0.69, 1}, {0.71, 2}, {0.999, 2}}
	for _, tc := range cases {
		if got := SampleIndex(probs, tc.u); got != tc.want {
			t.Errorf("SampleIndex(%g) = %d, want %d", tc.u, got, tc.want)
		}
	}
	// Rounding edge: u numerically ≥ total must return last index.
	if got := SampleIndex([]float64{0.5, 0.5 - 1e-17}, 1-1e-18); got != 1 {
		t.Errorf("edge SampleIndex = %d, want 1", got)
	}
}

func TestBetterResponse(t *testing.T) {
	m := BetterResponse{}
	if m.Probability(2, 1) != 1 || m.Probability(1, 2) != 0 || m.Probability(1, 1) != 0 {
		t.Error("better response wrong")
	}
}

func TestLinearMigration(t *testing.T) {
	m, err := NewLinear(4)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Probability(3, 1), 0.5, 1e-15) {
		t.Errorf("P(3,1) = %g", m.Probability(3, 1))
	}
	if m.Probability(1, 3) != 0 || m.Probability(2, 2) != 0 {
		t.Error("non-improving moves must have probability 0")
	}
	if !approx(m.Alpha(), 0.25, 1e-15) {
		t.Errorf("Alpha = %g", m.Alpha())
	}
	// Cap at 1 even for differences above lmax.
	if m.Probability(100, 0) != 1 {
		t.Error("probability must cap at 1")
	}
	if _, err := NewLinear(0); !errors.Is(err, ErrBadParam) {
		t.Error("lmax=0 accepted")
	}
}

func TestAlphaLinear(t *testing.T) {
	m, err := NewAlphaLinear(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Probability(3, 1), 0.2, 1e-15) {
		t.Errorf("P = %g", m.Probability(3, 1))
	}
	if m.Alpha() != 0.1 {
		t.Error("Alpha wrong")
	}
	if _, err := NewAlphaLinear(-1); !errors.Is(err, ErrBadParam) {
		t.Error("negative alpha accepted")
	}
}

func TestQuadraticMigrator(t *testing.T) {
	q := Quadratic{AlphaParam: 0.5, LMax: 2}
	// µ = 0.5·d²/2 = d²/4
	if !approx(q.Probability(2, 1), 0.25, 1e-15) {
		t.Errorf("P = %g", q.Probability(2, 1))
	}
	if q.Probability(1, 2) != 0 {
		t.Error("non-improving move")
	}
	if q.Alpha() != 0.5 {
		t.Error("Alpha wrong")
	}
}

func TestMigratorsSelfishAndBounded(t *testing.T) {
	ms := []Migrator{BetterResponse{}, Linear{LMax: 3}, AlphaLinear{AlphaParam: 0.7}, Quadratic{AlphaParam: 0.5, LMax: 3}}
	prop := func(a, b uint16) bool {
		lp := float64(a%300) / 100
		lq := float64(b%300) / 100
		for _, m := range ms {
			p := m.Probability(lp, lq)
			if p < 0 || p > 1 {
				return false
			}
			if lp <= lq && p != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimateAlpha(t *testing.T) {
	lin := Linear{LMax: 2}
	got := EstimateAlpha(lin, 2, 64)
	if !approx(got, 0.5, 1e-6) {
		t.Errorf("EstimateAlpha(linear) = %g, want 0.5", got)
	}
	if !math.IsInf(EstimateAlpha(BetterResponse{}, 2, 64), 1) {
		t.Error("better response should have infinite alpha")
	}
	al := AlphaLinear{AlphaParam: 0.3}
	if got := EstimateAlpha(al, 1, 64); !approx(got, 0.3, 1e-6) {
		t.Errorf("EstimateAlpha(alpha-linear) = %g, want 0.3", got)
	}
}

func TestIsAlphaSmooth(t *testing.T) {
	lin := Linear{LMax: 2}
	if !IsAlphaSmooth(lin, 0.5, 2, 64) {
		t.Error("linear should be (1/lmax)-smooth")
	}
	if IsAlphaSmooth(lin, 0.4, 2, 64) {
		t.Error("linear is not 0.4-smooth for lmax=2")
	}
	if IsAlphaSmooth(BetterResponse{}, 1000, 2, 64) {
		t.Error("better response must fail any smoothness test")
	}
}

func TestSafeUpdatePeriod(t *testing.T) {
	if got := SafeUpdatePeriod(0.5, 2, 3); !approx(got, 1.0/12, 1e-15) {
		t.Errorf("T = %g, want 1/12", got)
	}
	if !math.IsInf(SafeUpdatePeriod(0, 1, 1), 1) {
		t.Error("alpha=0 should give infinite safe period")
	}
	if !math.IsInf(SafeUpdatePeriod(1, 0, 1), 1) {
		t.Error("beta=0 should give infinite safe period")
	}
}

func TestSafeUpdatePeriodFor(t *testing.T) {
	p, err := Replicator(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SafeUpdatePeriodFor(p, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// alpha = 1/2, beta = 4, D = 1 -> T = 1/8.
	if !approx(got, 0.125, 1e-15) {
		t.Errorf("T = %g, want 0.125", got)
	}
	bad := Policy{Sampler: Uniform{}, Migrator: BetterResponse{}}
	if _, err := SafeUpdatePeriodFor(bad, 1, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("better-response safe period error = %v", err)
	}
}

func TestPolicyConstructorsAndNames(t *testing.T) {
	r, err := Replicator(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Sampler.(Proportional); !ok {
		t.Error("replicator should sample proportionally")
	}
	u, err := UniformLinear(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Sampler.(Uniform); !ok {
		t.Error("uniform-linear should sample uniformly")
	}
	if r.Name() == "" || u.Name() == "" {
		t.Error("policy names empty")
	}
	if _, err := Replicator(0); err == nil {
		t.Error("Replicator(0) accepted")
	}
	if _, err := UniformLinear(-1); err == nil {
		t.Error("UniformLinear(-1) accepted")
	}
	for _, m := range []Migrator{BetterResponse{}, Linear{LMax: 1}, AlphaLinear{AlphaParam: 1}, Quadratic{AlphaParam: 1, LMax: 1}} {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}

// Property: the linear migration rule satisfies Definition 2 with α = 1/ℓmax
// exactly: µ ≤ α(ℓP−ℓQ) for all pairs.
func TestLinearIsAlphaSmoothProperty(t *testing.T) {
	lin := Linear{LMax: 5}
	prop := func(a, b uint32) bool {
		lp := float64(a%5000) / 1000
		lq := float64(b%5000) / 1000
		if lp < lq {
			lp, lq = lq, lp
		}
		return lin.Probability(lp, lq) <= (lp-lq)/5+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
