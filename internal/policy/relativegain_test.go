package policy

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRelativeGainBasics(t *testing.T) {
	r, err := NewRelativeGain(0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// µ(2,1) = 0.5·(1)/2 = 0.25.
	if !approx(r.Probability(2, 1), 0.25, 1e-15) {
		t.Errorf("P(2,1) = %g", r.Probability(2, 1))
	}
	if r.Probability(1, 2) != 0 || r.Probability(1, 1) != 0 {
		t.Error("non-improving moves must be 0")
	}
	// Floor clamps the denominator: µ(0.05, 0) = 0.5·0.05/0.1 = 0.25.
	if !approx(r.Probability(0.05, 0), 0.25, 1e-15) {
		t.Errorf("floored P = %g", r.Probability(0.05, 0))
	}
	if !approx(r.Alpha(), 5, 1e-15) {
		t.Errorf("Alpha = %g, want alpha/floor = 5", r.Alpha())
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestNewRelativeGainValidation(t *testing.T) {
	if _, err := NewRelativeGain(0, 1); !errors.Is(err, ErrBadParam) {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewRelativeGain(1, 0); !errors.Is(err, ErrBadParam) {
		t.Error("floor=0 accepted")
	}
}

// Property: RelativeGain satisfies Definition 2 with α = AlphaParam/Floor,
// so it belongs to the paper's smooth class.
func TestRelativeGainIsAlphaSmooth(t *testing.T) {
	r := RelativeGain{AlphaParam: 0.8, Floor: 0.25}
	if !IsAlphaSmooth(r, r.Alpha(), 4, 64) {
		t.Error("relative gain fails its own smoothness constant")
	}
	prop := func(a, b uint16) bool {
		lp := float64(a%4000) / 1000
		lq := float64(b%4000) / 1000
		if lp < lq {
			lp, lq = lq, lp
		}
		return r.Probability(lp, lq) <= r.Alpha()*(lp-lq)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// On high-latency pairs the relative rule migrates less than the plain
// α-linear rule with the same smoothness constant would allow, but more than
// a linear rule calibrated to ℓmax when gains are relatively large.
func TestRelativeGainOrderingVsLinear(t *testing.T) {
	r := RelativeGain{AlphaParam: 1, Floor: 0.1}
	lin := Linear{LMax: 10}
	// Relative gain of 50%: µ_rel = 0.5; linear sees (3−1.5)/10 = 0.15.
	if r.Probability(3, 1.5) <= lin.Probability(3, 1.5) {
		t.Error("relative rule should act faster on proportionally large gains")
	}
}
