package policy

import (
	"fmt"
	"math"
)

// Alphaer is implemented by migration rules that know their own smoothness
// constant.
type Alphaer interface {
	Alpha() float64
}

// EstimateAlpha numerically estimates the smallest α such that the rule is
// α-smooth on latency pairs in [0, lmax]², by scanning a grid of n×n pairs
// and maximising µ(ℓP,ℓQ)/(ℓP−ℓQ). It returns +Inf if the ratio diverges as
// ℓP−ℓQ → 0 (detected by growth on the finest grid gaps), as for
// BetterResponse.
func EstimateAlpha(m Migrator, lmax float64, n int) float64 {
	if n < 2 {
		n = 64
	}
	best := 0.0
	// Scan gaps down to lmax/n² to detect divergence near 0.
	gaps := make([]float64, 0, 2*n)
	for i := 1; i <= n; i++ {
		gaps = append(gaps, lmax*float64(i)/float64(n))
		gaps = append(gaps, lmax*float64(i)/float64(n*n))
	}
	for _, d := range gaps {
		for j := 0; j <= n; j++ {
			lq := lmax * float64(j) / float64(n)
			lp := lq + d
			p := m.Probability(lp, lq)
			if p <= 0 {
				continue
			}
			ratio := p / d
			if ratio > best {
				best = ratio
			}
		}
	}
	// Divergence probe: ratio at a tiny gap far above the grid best means no
	// finite Lipschitz constant at 0.
	tiny := lmax * 1e-9
	if p := m.Probability(tiny, 0); p > 0 && p/tiny > 100*best {
		return math.Inf(1)
	}
	return best
}

// IsAlphaSmooth reports whether rule m satisfies Definition 2 with constant
// alpha on [0,lmax]² within a numeric slack of 1e-9, via grid scanning.
func IsAlphaSmooth(m Migrator, alpha, lmax float64, n int) bool {
	if n < 2 {
		n = 64
	}
	for i := 0; i <= n; i++ {
		for j := 0; j <= i; j++ {
			lp := lmax * float64(i) / float64(n)
			lq := lmax * float64(j) / float64(n)
			if m.Probability(lp, lq) > alpha*(lp-lq)+1e-9 {
				return false
			}
		}
	}
	// Probe tiny gaps: α-smoothness is a Lipschitz condition at 0, which a
	// coarse grid cannot witness (e.g. better response passes any grid whose
	// smallest gap exceeds 1/α).
	for j := 0; j <= n; j++ {
		lq := lmax * float64(j) / float64(n)
		for _, gap := range []float64{lmax / float64(n*n), lmax * 1e-9} {
			lp := lq + gap
			if m.Probability(lp, lq) > alpha*gap+1e-12 {
				return false
			}
		}
	}
	return true
}

// SafeUpdatePeriod returns the paper's convergence-guaranteeing bulletin
// board period T = 1/(4·D·α·β) (Lemma 4 / Corollary 5) for maximum path
// length d, migration smoothness alpha and maximum latency slope beta.
// Degenerate inputs (α·β·D = 0, e.g. constant latencies) yield +Inf: any
// update period is safe.
func SafeUpdatePeriod(alpha, beta float64, d int) float64 {
	if alpha <= 0 || beta <= 0 || d <= 0 {
		return math.Inf(1)
	}
	return 1 / (4 * float64(d) * alpha * beta)
}

// SafeUpdatePeriodFor computes the safe period for a policy whose migrator
// knows its α (via Alphaer); it returns an error for rules without a finite
// smoothness constant.
func SafeUpdatePeriodFor(p Policy, beta float64, d int) (float64, error) {
	a, ok := p.Migrator.(Alphaer)
	if !ok {
		return 0, fmt.Errorf("%w: migrator %s does not expose a smoothness constant",
			ErrBadParam, p.Migrator.Name())
	}
	return SafeUpdatePeriod(a.Alpha(), beta, d), nil
}
