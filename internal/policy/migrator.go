package policy

import (
	"fmt"
	"math"
)

// Migrator is a migration rule µ : (ℓ_P, ℓ_Q) → [0,1], the probability that
// an agent on path P with board latency ℓ_P migrates to a sampled path Q with
// board latency ℓ_Q. Selfish rules return 0 whenever ℓ_Q ≥ ℓ_P.
type Migrator interface {
	Probability(lp, lq float64) float64
	Name() string
}

// BetterResponse always migrates to a strictly better path: µ = 1 if
// ℓ_P > ℓ_Q, else 0. It is not α-smooth for any α (the paper's canonical
// oscillating rule).
type BetterResponse struct{}

var _ Migrator = BetterResponse{}

// Probability implements Migrator.
func (BetterResponse) Probability(lp, lq float64) float64 {
	if lp > lq {
		return 1
	}
	return 0
}

// Name implements Migrator.
func (BetterResponse) Name() string { return "better-response" }

// Linear is the paper's linear migration policy
// µ(ℓ_P, ℓ_Q) = (ℓ_P − ℓ_Q)/ℓmax for ℓ_P > ℓ_Q, else 0. It is
// (1/ℓmax)-smooth.
type Linear struct {
	LMax float64
}

var _ Migrator = Linear{}

// NewLinear validates ℓmax > 0.
func NewLinear(lmax float64) (Linear, error) {
	if lmax <= 0 {
		return Linear{}, fmt.Errorf("%w: lmax %g must be positive", ErrBadParam, lmax)
	}
	return Linear{LMax: lmax}, nil
}

// Probability implements Migrator.
func (l Linear) Probability(lp, lq float64) float64 {
	if lp <= lq {
		return 0
	}
	return math.Min(1, (lp-lq)/l.LMax)
}

// Name implements Migrator.
func (l Linear) Name() string { return fmt.Sprintf("linear(lmax=%g)", l.LMax) }

// Alpha returns the rule's smoothness parameter 1/ℓmax.
func (l Linear) Alpha() float64 { return 1 / l.LMax }

// AlphaLinear migrates with probability min{1, α·(ℓ_P−ℓ_Q)} — a linear rule
// parameterised directly by its smoothness constant, used for sweeping α
// against the safe-T threshold.
type AlphaLinear struct {
	AlphaParam float64
}

var _ Migrator = AlphaLinear{}

// NewAlphaLinear validates α > 0.
func NewAlphaLinear(alpha float64) (AlphaLinear, error) {
	if alpha <= 0 {
		return AlphaLinear{}, fmt.Errorf("%w: alpha %g must be positive", ErrBadParam, alpha)
	}
	return AlphaLinear{AlphaParam: alpha}, nil
}

// Probability implements Migrator.
func (a AlphaLinear) Probability(lp, lq float64) float64 {
	if lp <= lq {
		return 0
	}
	return math.Min(1, a.AlphaParam*(lp-lq))
}

// Name implements Migrator.
func (a AlphaLinear) Name() string { return fmt.Sprintf("alpha-linear(%g)", a.AlphaParam) }

// Alpha returns the rule's smoothness parameter.
func (a AlphaLinear) Alpha() float64 { return a.AlphaParam }

// Quadratic migrates with probability min{1, α·(ℓ_P−ℓ_Q)²/ℓmax}. For gains
// below ℓmax it is (α)-smooth (µ ≤ α·Δ·(Δ/ℓmax) ≤ α·Δ), demonstrating a
// non-linear member of the paper's smooth class.
type Quadratic struct {
	AlphaParam float64
	LMax       float64
}

var _ Migrator = Quadratic{}

// Probability implements Migrator.
func (q Quadratic) Probability(lp, lq float64) float64 {
	if lp <= lq {
		return 0
	}
	d := lp - lq
	return math.Min(1, q.AlphaParam*d*d/q.LMax)
}

// Name implements Migrator.
func (q Quadratic) Name() string {
	return fmt.Sprintf("quadratic(alpha=%g,lmax=%g)", q.AlphaParam, q.LMax)
}

// Alpha returns a smoothness constant valid while latency differences stay
// within [0, ℓmax].
func (q Quadratic) Alpha() float64 { return q.AlphaParam }

// RelativeGain is an extension migrator inspired by the follow-up work the
// paper's conclusion points to ([10], which replaces the dependence on the
// maximum slope by the latency functions' elasticity): the migration
// probability is driven by the RELATIVE latency gain,
//
//	µ(ℓ_P, ℓ_Q) = min{1, AlphaParam·(ℓ_P − ℓ_Q)/max(ℓ_P, Floor)}.
//
// Because the denominator is clamped below by Floor > 0, the rule is
// (AlphaParam/Floor)-smooth, so Corollary 5 still applies — but on
// instances whose latencies stay well above Floor it migrates far more
// aggressively than a plain α-linear rule with the same guarantee.
type RelativeGain struct {
	AlphaParam float64
	Floor      float64
}

var _ Migrator = RelativeGain{}

// NewRelativeGain validates AlphaParam > 0 and Floor > 0.
func NewRelativeGain(alpha, floor float64) (RelativeGain, error) {
	if alpha <= 0 {
		return RelativeGain{}, fmt.Errorf("%w: alpha %g must be positive", ErrBadParam, alpha)
	}
	if floor <= 0 {
		return RelativeGain{}, fmt.Errorf("%w: floor %g must be positive", ErrBadParam, floor)
	}
	return RelativeGain{AlphaParam: alpha, Floor: floor}, nil
}

// Probability implements Migrator.
func (r RelativeGain) Probability(lp, lq float64) float64 {
	if lp <= lq {
		return 0
	}
	return math.Min(1, r.AlphaParam*(lp-lq)/math.Max(lp, r.Floor))
}

// Name implements Migrator.
func (r RelativeGain) Name() string {
	return fmt.Sprintf("relative-gain(alpha=%g,floor=%g)", r.AlphaParam, r.Floor)
}

// Alpha returns the worst-case smoothness constant AlphaParam/Floor.
func (r RelativeGain) Alpha() float64 { return r.AlphaParam / r.Floor }

// Policy bundles a sampling rule and a migration rule — one complete
// rerouting policy in the paper's two-step class.
type Policy struct {
	Sampler  Sampler
	Migrator Migrator
}

// Name renders "sampler+migrator".
func (p Policy) Name() string {
	return p.Sampler.Name() + "+" + p.Migrator.Name()
}

// Replicator returns the replicator dynamics: proportional sampling with the
// linear migration policy (the policy analysed in Theorem 7).
func Replicator(lmax float64) (Policy, error) {
	m, err := NewLinear(lmax)
	if err != nil {
		return Policy{}, err
	}
	return Policy{Sampler: Proportional{}, Migrator: m}, nil
}

// UniformLinear returns uniform sampling with the linear migration policy
// (the policy analysed in Theorem 6).
func UniformLinear(lmax float64) (Policy, error) {
	m, err := NewLinear(lmax)
	if err != nil {
		return Policy{}, err
	}
	return Policy{Sampler: Uniform{}, Migrator: m}, nil
}
