// Package policy implements the paper's two-step adaptive rerouting policies:
// a sampling rule σ_PQ choosing a candidate path and a migration rule
// µ(ℓ_P, ℓ_Q) deciding whether to switch, together with the α-smoothness
// condition (Definition 2) and the safe bulletin-board update period
// T = 1/(4·D·α·β) from Lemma 4.
package policy

import (
	"errors"
	"fmt"
	"math"
)

// Sentinel errors.
var (
	// ErrBadParam indicates an invalid policy parameter.
	ErrBadParam = errors.New("policy: invalid parameter")
)

// Sampler is a sampling rule σ. Probabilities fills probs[q] with the
// probability that an agent currently on the commodity's path `origin`
// samples path q, given the commodity's path flows and (board) path
// latencies. Implementations must produce a distribution: probs sums to 1.
// The slices flows, lats and probs all have length |P_i| and are indexed by
// the commodity-local path index.
type Sampler interface {
	Probabilities(origin int, flows, lats []float64, probs []float64)
	Name() string
}

// Uniform samples each of the commodity's paths with probability 1/|P_i|
// (the paper's uniform sampling rule of §5.1).
type Uniform struct{}

var _ Sampler = Uniform{}

// Probabilities implements Sampler.
func (Uniform) Probabilities(_ int, flows, _ []float64, probs []float64) {
	p := 1 / float64(len(flows))
	for q := range probs {
		probs[q] = p
	}
}

// Name implements Sampler.
func (Uniform) Name() string { return "uniform" }

// Proportional samples path q with probability f_q / r_i — sampling another
// agent of the same commodity uniformly at random (§5.2). Combined with the
// Linear migration rule this is the replicator dynamics.
type Proportional struct{}

var _ Sampler = Proportional{}

// Probabilities implements Sampler. The demand r_i is recovered as the sum of
// the commodity's flows, making the rule robust to unnormalised inputs. If
// the total flow is zero (impossible for feasible flows) it falls back to
// uniform.
func (Proportional) Probabilities(_ int, flows, _ []float64, probs []float64) {
	total := 0.0
	for _, f := range flows {
		total += f
	}
	if total <= 0 {
		Uniform{}.Probabilities(0, flows, nil, probs)
		return
	}
	for q := range probs {
		probs[q] = flows[q] / total
	}
}

// Name implements Sampler.
func (Proportional) Name() string { return "proportional" }

// Boltzmann is the logit / smoothed-best-response sampling rule of §2.2:
// σ_PQ = exp(−c·ℓ_Q) / Σ_Q' exp(−c·ℓ_Q'). Large c concentrates on minimum-
// latency paths, approximating best response.
type Boltzmann struct {
	C float64
}

var _ Sampler = Boltzmann{}

// Probabilities implements Sampler using a max-shifted softmax for numeric
// stability.
func (b Boltzmann) Probabilities(_ int, _, lats []float64, probs []float64) {
	minLat := math.Inf(1)
	for _, l := range lats {
		if l < minLat {
			minLat = l
		}
	}
	total := 0.0
	for q, l := range lats {
		w := math.Exp(-b.C * (l - minLat))
		probs[q] = w
		total += w
	}
	for q := range probs {
		probs[q] /= total
	}
}

// Name implements Sampler.
func (b Boltzmann) Name() string { return fmt.Sprintf("boltzmann(c=%g)", b.C) }

// SampleIndex draws a path index from the distribution probs using the
// uniform variate u ∈ [0,1). It is the shared discrete-sampling helper for
// the stochastic agent simulator.
func SampleIndex(probs []float64, u float64) int {
	acc := 0.0
	for q, p := range probs {
		acc += p
		if u < acc {
			return q
		}
	}
	return len(probs) - 1
}
