package dynamics

// Steady-state allocation tests: with a Workspace supplied, the engines'
// per-phase loops must not allocate — every run-long buffer comes from the
// workspace and the compiled kernel, leaving only a constant per-run setup
// cost. The tests measure the marginal allocations of extra phases (long
// run minus short run), which isolates the loop from the setup.

import (
	"context"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

// marginalAllocs returns the allocation difference between a long and a
// short run of the same closure family — ~0 when the per-phase loop is
// allocation-free.
func marginalAllocs(run func(phases int)) float64 {
	short := testing.AllocsPerRun(5, func() { run(10) })
	long := testing.AllocsPerRun(5, func() { run(110) })
	return long - short
}

func steadyStateConfig(t *testing.T, inst *flow.Instance, integ Integrator, ws *flow.Workspace) Config {
	t.Helper()
	return Config{
		Policy:       mustReplicator(t, inst.LMax()),
		UpdatePeriod: 0.25,
		Integrator:   integ,
		Workspace:    ws,
	}
}

func TestRunSteadyStateAllocationFree(t *testing.T) {
	inst := mustBraess(t)
	f0 := inst.UniformFlow()
	ws := flow.NewWorkspace()
	for _, integ := range []Integrator{Euler, RK4, Uniformization} {
		t.Run(integ.String(), func(t *testing.T) {
			cfg := steadyStateConfig(t, inst, integ, ws)
			run := func(phases int) {
				cfg.Horizon = float64(phases) * cfg.UpdatePeriod
				if _, err := Run(context.Background(), inst, cfg, f0); err != nil {
					t.Fatal(err)
				}
			}
			run(1) // warm the workspace before measuring
			if extra := marginalAllocs(run); extra > 0.5 {
				t.Fatalf("fluid %s: %g allocations per 100 extra phases, want 0", integ, extra)
			}
		})
	}
}

func TestRunBestResponseSteadyStateAllocationFree(t *testing.T) {
	inst := mustBraess(t)
	f0 := inst.UniformFlow()
	ws := flow.NewWorkspace()
	cfg := BestResponseConfig{UpdatePeriod: 0.25, Workspace: ws}
	run := func(phases int) {
		cfg.Horizon = float64(phases) * cfg.UpdatePeriod
		if _, err := RunBestResponse(context.Background(), inst, cfg, f0); err != nil {
			t.Fatal(err)
		}
	}
	run(1)
	if extra := marginalAllocs(run); extra > 0.5 {
		t.Fatalf("best response: %g allocations per 100 extra phases, want 0", extra)
	}
}

func TestRunHedgeSteadyStateAllocationFree(t *testing.T) {
	inst := mustBraess(t)
	f0 := inst.UniformFlow()
	ws := flow.NewWorkspace()
	cfg := HedgeConfig{Eta: 0.5, UpdatePeriod: 0.25, Workspace: ws}
	run := func(phases int) {
		cfg.Horizon = float64(phases) * cfg.UpdatePeriod
		if _, err := RunHedge(context.Background(), inst, cfg, f0); err != nil {
			t.Fatal(err)
		}
	}
	run(1)
	if extra := marginalAllocs(run); extra > 0.5 {
		t.Fatalf("hedge: %g allocations per 100 extra phases, want 0", extra)
	}
}

// TestLayeredRandomAllocationFree repeats the fluid check on a larger
// random topology so the kernel path (not just tiny fixed instances) is
// covered.
func TestLayeredRandomSteadyStateAllocationFree(t *testing.T) {
	inst, err := topo.LayeredRandom(3, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	f0 := inst.UniformFlow()
	ws := flow.NewWorkspace()
	cfg := steadyStateConfig(t, inst, Uniformization, ws)
	run := func(phases int) {
		cfg.Horizon = float64(phases) * cfg.UpdatePeriod
		if _, err := Run(context.Background(), inst, cfg, f0); err != nil {
			t.Fatal(err)
		}
	}
	run(1)
	if extra := marginalAllocs(run); extra > 0.5 {
		t.Fatalf("fluid layered: %g allocations per 100 extra phases, want 0", extra)
	}
}
