package dynamics

import (
	"context"
	"math"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/latency"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

// Constant latencies: β = 0, so every update period is safe (+Inf) and the
// dynamics must be stationary up to symmetric mixing — the potential cannot
// move at all because all latencies are equal.
func TestConstantLatenciesAreDegenerate(t *testing.T) {
	inst, err := topo.ParallelLinks([]latency.Function{
		latency.Constant{C: 1}, latency.Constant{C: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	safeT, err := policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(safeT, 1) {
		t.Fatalf("safe period = %g, want +Inf for beta=0", safeT)
	}
	// Any finite T works; nothing migrates because no path improves on any
	// other.
	res, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: 5, Horizon: 50}, flow.Vector{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Final.MaxAbsDiff(flow.Vector{0.7, 0.3}); d > 1e-12 {
		t.Errorf("flow moved %g despite equal latencies", d)
	}
}

// Uniformization must stay accurate for phases much longer than the mean
// migration time (large λτ exercises the long Poisson series).
func TestUniformizationLongPhase(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	long, err := Run(context.Background(), inst, Config{
		Policy: pol, UpdatePeriod: 50, Horizon: 50, Integrator: Uniformization,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(context.Background(), inst, Config{
		Policy: pol, UpdatePeriod: 50, Horizon: 50, Integrator: RK4, Step: 0.01,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if d := long.Final.MaxAbsDiff(ref.Final); d > 1e-6 {
		t.Errorf("long-phase uniformization differs from fine RK4 by %g", d)
	}
}

// The Quadratic migrator (a non-linear member of the smooth class) converges
// at its safe period.
func TestQuadraticMigratorConverges(t *testing.T) {
	inst := mustPigou(t)
	q := policy.Quadratic{AlphaParam: 1 / inst.LMax(), LMax: inst.LMax()}
	pol := policy.Policy{Sampler: policy.Proportional{}, Migrator: q}
	safeT := policy.SafeUpdatePeriod(q.Alpha(), inst.Beta(), inst.MaxPathLen())
	res, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: safeT, Horizon: 3000 * safeT, Integrator: Uniformization},
		inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(res.Final, 0.05) {
		t.Errorf("quadratic policy did not converge: %v", res.Final)
	}
}

// The RelativeGain migrator converges at its own safe period and beats the
// plain linear rule on instances whose latencies sit far above the floor.
func TestRelativeGainConvergesAndIsFaster(t *testing.T) {
	inst, err := topo.ParallelLinks([]latency.Function{
		latency.Linear{Slope: 1, Offset: 2}, // latencies in [2,3]
		latency.Linear{Slope: 1, Offset: 2.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := policy.NewRelativeGain(1, 2) // floor matches the latency scale
	if err != nil {
		t.Fatal(err)
	}
	relPol := policy.Policy{Sampler: policy.Proportional{}, Migrator: rel}
	relT := policy.SafeUpdatePeriod(rel.Alpha(), inst.Beta(), inst.MaxPathLen())

	linPol := mustReplicator(t, inst.LMax())
	linT, err := policy.SafeUpdatePeriodFor(linPol, inst.Beta(), inst.MaxPathLen())
	if err != nil {
		t.Fatal(err)
	}
	horizon := 60.0
	f0 := flow.Vector{0.9, 0.1}
	relRes, err := Run(context.Background(), inst, Config{Policy: relPol, UpdatePeriod: relT, Horizon: horizon, Integrator: Uniformization}, f0)
	if err != nil {
		t.Fatal(err)
	}
	linRes, err := Run(context.Background(), inst, Config{Policy: linPol, UpdatePeriod: linT, Horizon: horizon, Integrator: Uniformization}, f0.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(relRes.Final, 0.02) {
		t.Errorf("relative-gain did not converge: %v", relRes.Final)
	}
	// Both reach equilibrium; the relative rule should be at least as close.
	star := inst.Potential(flow.Vector{0.6, 0.4}) // equalising split: 2+x = 2.2+(1-x) -> x=0.6
	if gRel, gLin := relRes.FinalPotential-star, linRes.FinalPotential-star; gRel > gLin+1e-9 {
		t.Errorf("relative-gain gap %g worse than linear %g", gRel, gLin)
	}
}

// Zero-demand paths at the simplex boundary: the replicator cannot enter
// paths with zero flow AND zero sampling probability; uniform sampling can.
func TestBoundaryBehaviourUniformVsProportional(t *testing.T) {
	inst := mustPigou(t)
	f0 := flow.Vector{0, 1} // everything on the constant link
	uni := mustUniformLinear(t, inst.LMax())
	uniRes, err := Run(context.Background(), inst, Config{Policy: uni, UpdatePeriod: 0.25, Horizon: 100}, f0)
	if err != nil {
		t.Fatal(err)
	}
	if uniRes.Final[0] < 0.9 {
		t.Errorf("uniform sampling should escape the boundary: %v", uniRes.Final)
	}
	rep := mustReplicator(t, inst.LMax())
	repRes, err := Run(context.Background(), inst, Config{Policy: rep, UpdatePeriod: 0.25, Horizon: 100}, f0.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if repRes.Final[0] > 1e-9 {
		t.Errorf("replicator entered a zero-flow path from a vertex: %v", repRes.Final)
	}
}

// Best response on an instance whose equilibrium is a strict single path:
// stale best response *can* converge when the equilibrium is an attractor of
// the phase map (Pigou: the x-link dominates until x=1, ℓ1(1)=ℓ2=1).
func TestBestResponseConvergesOnPigou(t *testing.T) {
	inst := mustPigou(t)
	res, err := RunBestResponse(context.Background(), inst, BestResponseConfig{UpdatePeriod: 0.5, Horizon: 40}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[0] < 0.99 {
		t.Errorf("best response should converge on Pigou: %v", res.Final)
	}
}

// Hook receives strictly increasing phase times and consistent potentials.
func TestPhaseInfoConsistency(t *testing.T) {
	inst := mustBraess(t)
	pol := mustReplicator(t, inst.LMax())
	prevTime := -1.0
	cfg := Config{
		Policy: pol, UpdatePeriod: 0.2, Horizon: 10,
		Hook: func(info PhaseInfo) bool {
			if info.Time <= prevTime {
				t.Errorf("phase %d time %g <= previous %g", info.Index, info.Time, prevTime)
			}
			prevTime = info.Time
			if got := inst.Potential(info.Flow); math.Abs(got-info.Potential) > 1e-9 {
				t.Errorf("phase %d: potential mismatch %g vs %g", info.Index, got, info.Potential)
			}
			return false
		},
	}
	if _, err := Run(context.Background(), inst, cfg, inst.UniformFlow()); err != nil {
		t.Fatal(err)
	}
}
