package dynamics

import (
	"context"
	"fmt"
	"math"

	"wardrop/internal/flow"
)

// HedgeConfig parameterises the multiplicative-weights (Hedge) baseline.
type HedgeConfig struct {
	// Eta is the learning rate of the multiplicative update.
	Eta float64
	// UpdatePeriod is the bulletin-board period T; one multiplicative update
	// executes per board refresh.
	UpdatePeriod float64
	// Horizon is the simulated time budget.
	Horizon float64
	// RecordEvery records a sample every k phases (0 disables).
	RecordEvery int
	// Hook observes phase starts; returning true stops the run.
	//
	// Deprecated: use Observer; when both are set, both run.
	Hook Hook
	// Observer observes phase starts; compose several with MultiObserver.
	Observer Observer
	// Workspace, if non-nil, supplies the run's scratch buffers (Reset at
	// entry); nil allocates privately.
	Workspace *flow.Workspace
}

// RunHedge simulates the no-regret multiplicative-weights baseline discussed
// in the paper's related work (Awerbuch–Kleinberg, Blum–Even-Dar–Ligett): at
// every bulletin-board refresh the whole population applies one Hedge update
//
//	f_P ← r_i · f_P·exp(−η·ℓ̂_P) / Σ_Q f_Q·exp(−η·ℓ̂_Q)
//
// against the posted (stale) latencies. Unlike the paper's Poisson-clocked
// policies this is a synchronous discrete-time dynamics; it serves as the
// online-learning comparator: small η converges (it is a time-discretised
// replicator), large η·β·T overshoots and oscillates just like best
// response.
func RunHedge(ctx context.Context, inst *flow.Instance, cfg HedgeConfig, f0 flow.Vector) (*Result, error) {
	if cfg.Eta <= 0 {
		return nil, fmt.Errorf("%w: eta %g must be positive", ErrBadConfig, cfg.Eta)
	}
	if cfg.UpdatePeriod <= 0 {
		return nil, fmt.Errorf("%w: update period %g must be positive", ErrBadConfig, cfg.UpdatePeriod)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %g must be positive", ErrBadConfig, cfg.Horizon)
	}
	if err := ValidateRunShape(ErrBadConfig, cfg.RecordEvery, 0, 0, 0); err != nil {
		return nil, err
	}
	if err := inst.Feasible(f0, 1e-9); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasibleStart, err)
	}
	ws := cfg.Workspace
	ws.Reset()
	f := f0.Clone()
	ev := flow.NewEvaluator(inst, ws)
	res := &Result{}
	t := 0.0
	for phase := 0; t < cfg.Horizon-1e-12; phase++ {
		if err := ctx.Err(); err != nil {
			return finish(ev, res, f, t), err
		}
		ev.Eval(f)
		pl := ev.PathLatencies()
		phi := ev.Potential()
		info := PhaseInfo{Index: phase, Time: t, Flow: f, PathLatencies: pl, Potential: phi}
		if cfg.RecordEvery > 0 && phase%cfg.RecordEvery == 0 {
			res.Trajectory = append(res.Trajectory, Sample{Time: t, Potential: phi, Flow: f.Clone()})
		}
		if DeliverPhase(cfg.Hook, cfg.Observer, info) {
			res.Stopped = true
			break
		}

		for i := 0; i < inst.NumCommodities(); i++ {
			lo, hi := inst.CommodityRange(i)
			// Max-shift the exponent for numeric stability.
			minLat := math.Inf(1)
			for g := lo; g < hi; g++ {
				if pl[g] < minLat {
					minLat = pl[g]
				}
			}
			sum := 0.0
			for g := lo; g < hi; g++ {
				f[g] *= math.Exp(-cfg.Eta * (pl[g] - minLat))
				sum += f[g]
			}
			if sum > 0 {
				scale := inst.Commodity(i).Demand / sum
				for g := lo; g < hi; g++ {
					f[g] *= scale
				}
			}
		}
		tau := math.Min(cfg.UpdatePeriod, cfg.Horizon-t)
		t += tau
		res.Phases++
	}
	return finish(ev, res, f, t), nil
}
