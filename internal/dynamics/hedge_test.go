package dynamics

import (
	"context"
	"errors"
	"math"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

func TestHedgeValidation(t *testing.T) {
	inst := mustPigou(t)
	f0 := inst.UniformFlow()
	if _, err := RunHedge(context.Background(), inst, HedgeConfig{Eta: 0, UpdatePeriod: 1, Horizon: 1}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("eta=0 error = %v", err)
	}
	if _, err := RunHedge(context.Background(), inst, HedgeConfig{Eta: 1, UpdatePeriod: 0, Horizon: 1}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("T=0 error = %v", err)
	}
	if _, err := RunHedge(context.Background(), inst, HedgeConfig{Eta: 1, UpdatePeriod: 1, Horizon: 0}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("horizon=0 error = %v", err)
	}
	if _, err := RunHedge(context.Background(), inst, HedgeConfig{Eta: 1, UpdatePeriod: 1, Horizon: 1}, flow.Vector{1, 1}); !errors.Is(err, ErrInfeasibleStart) {
		t.Errorf("infeasible error = %v", err)
	}
}

// Small learning rates converge to the Wardrop equilibrium (Hedge is a
// time-discretised replicator).
func TestHedgeSmallEtaConverges(t *testing.T) {
	inst := mustPigou(t)
	res, err := RunHedge(context.Background(), inst, HedgeConfig{Eta: 0.2, UpdatePeriod: 0.25, Horizon: 200}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(res.Final, 0.02) {
		t.Errorf("hedge did not converge: %v", res.Final)
	}
}

// Large η·β·T overshoots and oscillates on the kink instance — the same
// failure mode as best response.
func TestHedgeLargeEtaOscillates(t *testing.T) {
	inst, err := topo.TwoLinkKink(8)
	if err != nil {
		t.Fatal(err)
	}
	var f1s []float64
	cfg := HedgeConfig{
		Eta: 50, UpdatePeriod: 0.5, Horizon: 100,
		Hook: func(info PhaseInfo) bool {
			f1s = append(f1s, info.Flow[0])
			return false
		},
	}
	res, err := RunHedge(context.Background(), inst, cfg, flow.Vector{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Far from the even split at the end, with persistent flip-flopping.
	dev := math.Abs(res.Final[0] - 0.5)
	if dev < 0.05 {
		t.Errorf("large-eta hedge converged (dev %g) but should oscillate", dev)
	}
	flips := 0
	for i := 1; i < len(f1s); i++ {
		if (f1s[i] > 0.5) != (f1s[i-1] > 0.5) {
			flips++
		}
	}
	if flips < len(f1s)/4 {
		t.Errorf("only %d/%d flips — not oscillating", flips, len(f1s))
	}
}

func TestHedgeFeasibilityAndRecording(t *testing.T) {
	inst := mustBraess(t)
	cfg := HedgeConfig{
		Eta: 0.5, UpdatePeriod: 0.25, Horizon: 50, RecordEvery: 10,
		Hook: func(info PhaseInfo) bool {
			if err := inst.Feasible(info.Flow, 1e-9); err != nil {
				t.Errorf("phase %d: %v", info.Index, err)
				return true
			}
			return false
		},
	}
	res, err := RunHedge(context.Background(), inst, cfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != 20 {
		t.Errorf("trajectory = %d samples, want 20", len(res.Trajectory))
	}
	if err := inst.Feasible(res.Final, 1e-9); err != nil {
		t.Errorf("final infeasible: %v", err)
	}
}

func TestHedgeHookStops(t *testing.T) {
	inst := mustPigou(t)
	res, err := RunHedge(context.Background(), inst, HedgeConfig{
		Eta: 0.5, UpdatePeriod: 1, Horizon: 100,
		Hook: func(info PhaseInfo) bool { return info.Index >= 3 },
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Phases != 3 {
		t.Errorf("stopped=%v phases=%d", res.Stopped, res.Phases)
	}
}

// Hedge with tiny η tracks the replicator's limit point.
func TestHedgeMatchesReplicatorLimit(t *testing.T) {
	inst := mustBraess(t)
	hres, err := RunHedge(context.Background(), inst, HedgeConfig{Eta: 0.1, UpdatePeriod: 0.1, Horizon: 400}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	rres, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: 0.1, Horizon: 400, Integrator: Uniformization}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if d := hres.Final.MaxAbsDiff(rres.Final); d > 0.05 {
		t.Errorf("hedge and replicator limits differ by %g", d)
	}
}
