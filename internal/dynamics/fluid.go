package dynamics

import (
	"context"
	"fmt"
	"math"

	"wardrop/internal/flow"
)

// Run integrates the stale-information dynamics (Eq. 3) from f0 under the
// bulletin-board model: at each phase start the board is refreshed from the
// true state, migration rates are frozen against the board for the whole
// phase of length cfg.UpdatePeriod, and the linear within-phase system is
// integrated with the configured scheme.
//
// All per-phase state evaluation runs on the compiled flow.Evaluator kernel
// and every scratch buffer comes from cfg.Workspace (reset at entry), so
// steady-state phases allocate nothing and repeated runs on one workspace
// reuse the same memory.
//
// Cancellation is checked between phases: when ctx is done the partial
// result accumulated so far is returned together with ctx.Err().
func Run(ctx context.Context, inst *flow.Instance, cfg Config, f0 flow.Vector) (*Result, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	if err := inst.Feasible(f0, 1e-9); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasibleStart, err)
	}
	ws := cfg.Workspace
	ws.Reset()
	f := f0.Clone()
	ev := flow.NewEvaluator(inst, ws)
	rm := newRateMatrix(inst, ws)
	n := inst.NumPaths()
	var (
		sc = newRK4Scratch(n, ws)
		uA = ws.Floats(n)
		uB = ws.Floats(n)
		uC = ws.Floats(n)
	)
	res := &Result{}
	account := NewRoundAccounting(cfg.Delta, cfg.Eps, cfg.Weak, cfg.StopAfterSatisfiedStreak)
	t := 0.0
	for phase := 0; t < cfg.Horizon-1e-12; phase++ {
		if err := ctx.Err(); err != nil {
			return finish(ev, res, f, t), err
		}
		ev.Eval(f)
		pl := ev.PathLatencies()
		phi := ev.Potential()

		info := PhaseInfo{Index: phase, Time: t, Flow: f, PathLatencies: pl, Potential: phi}
		streakStop := account.Observe(inst, &info, res)
		if cfg.RecordEvery > 0 && phase%cfg.RecordEvery == 0 {
			res.Trajectory = append(res.Trajectory, Sample{Time: t, Potential: phi, Flow: f.Clone()})
		}
		if stop := DeliverPhase(cfg.Hook, cfg.Observer, info); stop || streakStop {
			res.Stopped = true
			break
		}

		rm.fill(cfg.Policy, f, pl)
		tau := math.Min(cfg.UpdatePeriod, cfg.Horizon-t)
		switch cfg.Integrator {
		case Euler:
			integrateEuler(rm, f, tau, cfg.Step, uA)
		case RK4:
			integrateRK4(rm, f, tau, cfg.Step, sc)
		case Uniformization:
			integrateUniformization(rm, f, tau, uA, uB, uC)
		}
		inst.Project(f, 1e-9)
		t += tau
		res.Phases++
	}
	return finish(ev, res, f, t), nil
}

// finish fills the result's terminal fields from the current state; shared
// by normal completion and cancellation paths. The evaluator re-evaluates
// the final flow, so the reported potential matches the reference
// Instance.Potential bit-for-bit.
func finish(ev *flow.Evaluator, res *Result, f flow.Vector, t float64) *Result {
	ev.Eval(f)
	res.Final = f
	res.FinalPotential = ev.Potential()
	res.Elapsed = t
	return res
}

// RunFresh integrates the up-to-date-information dynamics (Eq. 1): migration
// rates are recomputed from the true state at every derivative evaluation.
// cfg.UpdatePeriod is ignored; cfg.Step is the reporting granularity and the
// outer step size (each outer step is one "phase" for hooks and recording).
// Uniformization is rejected — the fresh system is non-linear. Cancellation
// follows the same partial-result contract as Run.
func RunFresh(ctx context.Context, inst *flow.Instance, cfg Config, f0 flow.Vector) (*Result, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	if cfg.Integrator == Uniformization {
		return nil, fmt.Errorf("%w: uniformization requires a frozen board", ErrBadConfig)
	}
	if err := inst.Feasible(f0, 1e-9); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasibleStart, err)
	}
	ws := cfg.Workspace
	ws.Reset()
	f := f0.Clone()
	ev := flow.NewEvaluator(inst, ws)
	rm := newRateMatrix(inst, ws)
	n := inst.NumPaths()
	var (
		df = ws.Floats(n)
		sc = newRK4Scratch(n, ws)
	)
	// fresh recomputes rates from the supplied state before differentiating.
	// The evaluator's lazy potential means the inner stage evaluations pay
	// for flows and latencies only.
	fresh := func(state flow.Vector, out []float64) {
		ev.Eval(state)
		rm.fill(cfg.Policy, state, ev.PathLatencies())
		rm.derivative(state, out)
	}
	res := &Result{}
	account := NewRoundAccounting(cfg.Delta, cfg.Eps, cfg.Weak, cfg.StopAfterSatisfiedStreak)
	t := 0.0
	for step := 0; t < cfg.Horizon-1e-12; step++ {
		if err := ctx.Err(); err != nil {
			return finish(ev, res, f, t), err
		}
		ev.Eval(f)
		pl := ev.PathLatencies()
		phi := ev.Potential()
		info := PhaseInfo{Index: step, Time: t, Flow: f, PathLatencies: pl, Potential: phi}
		streakStop := account.Observe(inst, &info, res)
		if cfg.RecordEvery > 0 && step%cfg.RecordEvery == 0 {
			res.Trajectory = append(res.Trajectory, Sample{Time: t, Potential: phi, Flow: f.Clone()})
		}
		if stop := DeliverPhase(cfg.Hook, cfg.Observer, info); stop || streakStop {
			res.Stopped = true
			break
		}

		h := math.Min(cfg.Step, cfg.Horizon-t)
		switch cfg.Integrator {
		case Euler:
			fresh(f, df)
			for i := range f {
				f[i] += h * df[i]
			}
		case RK4:
			fresh(f, sc.k1)
			for i := range f {
				sc.mid[i] = f[i] + 0.5*h*sc.k1[i]
			}
			fresh(sc.mid, sc.k2)
			for i := range f {
				sc.mid[i] = f[i] + 0.5*h*sc.k2[i]
			}
			fresh(sc.mid, sc.k3)
			for i := range f {
				sc.mid[i] = f[i] + h*sc.k3[i]
			}
			fresh(sc.mid, sc.k4)
			for i := range f {
				f[i] += h / 6 * (sc.k1[i] + 2*sc.k2[i] + 2*sc.k3[i] + sc.k4[i])
			}
		}
		inst.Project(f, 1e-9)
		t += h
		res.Phases++
	}
	return finish(ev, res, f, t), nil
}
