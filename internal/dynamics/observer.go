package dynamics

import (
	"fmt"
	"io"

	"wardrop/internal/flow"
)

// Observer receives every phase start of a simulation run. It generalises
// the legacy bool-returning Hook: observers compose (MultiObserver), carry
// state (TrajectoryRecorder, EquilibriumStopper), and plug into every engine
// — fluid, best response, agents, Hedge — through one field.
type Observer interface {
	// ObservePhase is called once per phase start with the current state.
	// Returning true stops the run after the call (the phase is not
	// integrated).
	ObservePhase(PhaseInfo) bool
}

// ObserverFunc adapts a plain function to the Observer interface; it is the
// migration path for legacy Hook closures.
type ObserverFunc func(PhaseInfo) bool

// ObservePhase calls f.
func (f ObserverFunc) ObservePhase(info PhaseInfo) bool { return f(info) }

// MultiObserver fans each phase out to every observer. All observers see
// every phase — there is no short-circuit — and the run stops if any of them
// asked to stop. A nil entry is skipped; composing zero observers yields a
// no-op.
func MultiObserver(obs ...Observer) Observer {
	flat := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	return flat
}

type multiObserver []Observer

// ObservePhase delivers the phase to every child observer.
func (m multiObserver) ObservePhase(info PhaseInfo) bool {
	stop := false
	for _, o := range m {
		if o.ObservePhase(info) {
			stop = true
		}
	}
	return stop
}

// TrajectoryRecorder records a Sample every Every phases (Every <= 1 records
// all) into Samples. Flows are cloned, so samples stay valid after the run.
type TrajectoryRecorder struct {
	// Every is the recording stride in phases.
	Every int
	// Samples accumulates the recorded trajectory.
	Samples []Sample
}

// ObservePhase records the phase if it is on the recorder's stride.
func (r *TrajectoryRecorder) ObservePhase(info PhaseInfo) bool {
	every := r.Every
	if every < 1 {
		every = 1
	}
	if info.Index%every == 0 {
		r.Samples = append(r.Samples, Sample{Time: info.Time, Potential: info.Potential, Flow: info.Flow.Clone()})
	}
	return false
}

// EquilibriumStopper stops a run once Streak consecutive phases start at a
// (δ,ε)-equilibrium of the instance, independent of whether the engine's own
// accounting is enabled. It also counts the unsatisfied phases it saw — the
// quantity bounded by Theorems 6 and 7.
//
// A stopper is single-run state: its streak and Unsatisfied counters carry
// across Run calls, so build a fresh one per run (or call Reset between
// runs) when reusing a scenario.
type EquilibriumStopper struct {
	inst *flow.Instance
	acct RoundAccounting

	// Unsatisfied counts observed phases not starting at the configured
	// approximate equilibrium.
	Unsatisfied int
}

// NewEquilibriumStopper builds a stopper for the instance. weak selects the
// Definition 4 metric; streak <= 0 never stops (the stopper then only
// counts).
func NewEquilibriumStopper(inst *flow.Instance, delta, eps float64, weak bool, streak int) *EquilibriumStopper {
	return &EquilibriumStopper{inst: inst, acct: NewRoundAccounting(delta, eps, weak, streak)}
}

// ObservePhase classifies the phase start and stops on a satisfied streak.
// info is taken by value, so the accounting fields it fills stay local.
func (s *EquilibriumStopper) ObservePhase(info PhaseInfo) bool {
	var scratch Result
	stop := s.acct.Observe(s.inst, &info, &scratch)
	s.Unsatisfied += scratch.UnsatisfiedPhases
	return stop
}

// Reset clears the streak and unsatisfied counters so the stopper can be
// reused for another run.
func (s *EquilibriumStopper) Reset() {
	s.acct.streak = 0
	s.Unsatisfied = 0
}

// ProgressReporter writes one line per Every phases (Every <= 1 reports all)
// to W — a lightweight liveness signal for long CLI runs.
type ProgressReporter struct {
	// W receives the progress lines.
	W io.Writer
	// Every is the reporting stride in phases.
	Every int
}

// ObservePhase prints the phase index, time and potential.
func (p *ProgressReporter) ObservePhase(info PhaseInfo) bool {
	every := p.Every
	if every < 1 {
		every = 1
	}
	if p.W != nil && info.Index%every == 0 {
		fmt.Fprintf(p.W, "phase %d t=%g phi=%g\n", info.Index, info.Time, info.Potential)
	}
	return false
}

// DeliverPhase delivers a phase to a hook and an observer (either may be
// nil). Both always run — no short-circuit — and the run stops if either
// asked to. It is the single definition of the hook/observer composition
// rule, shared by every engine (including the agents package).
func DeliverPhase(h Hook, o Observer, info PhaseInfo) bool {
	stop := false
	if h != nil && h(info) {
		stop = true
	}
	if o != nil && o.ObservePhase(info) {
		stop = true
	}
	return stop
}
