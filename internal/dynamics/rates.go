package dynamics

import (
	"runtime"
	"sync"

	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// fillParRows is the commodity size (paths) above which the rate-matrix
// fill fans rows out across goroutines. Below it the per-phase spawn
// overhead beats the win — and staying sequential keeps small steady-state
// runs allocation-free.
const fillParRows = 128

// maxFillWorkers caps the fill's parallelism; fills run inside sweep
// workers that are already pool-parallel, so a modest cap avoids
// oversubscription while still covering the large-single-run case.
const maxFillWorkers = 8

// rateMatrix holds, per commodity, the per-unit-flow migration rates
// R[p][q] = σ_pq · µ(ℓ_p, ℓ_q) computed from a (board) state, plus row sums.
// Indices p, q are commodity-local. The fluid ODE reads
//
//	ḟ_p = Σ_q f_q·R[q][p] − f_p·rowSum[p].
//
// Storage is transposed: ratesT[i][p*n+q] = R[q][p], so the derivative and
// uniformization kernels — called many times per fill — walk contiguous
// rows instead of strided columns. Origin-invariant samplers fill the
// transposed rows directly; custom samplers compute origin rows
// (register-accumulating each sum exactly as the reference row-major
// implementation did) and scatter them, so every produced value and row
// sum is bit-identical to the reference layout's either way.
type rateMatrix struct {
	inst *flow.Instance
	// ratesT[i] is an n_i×n_i matrix, row-major over TARGETS:
	// ratesT[i][p*n+q] is the rate from origin q into target p.
	ratesT  [][]float64
	rowSums [][]float64
	// Scratch: one sampler probability row and one origin row.
	probs  []float64
	rowBuf []float64
	// par is the number of workers available to a parallel fill.
	par int
	// maxRate is the largest row sum over all commodities (≤ 1 for
	// probability-valued policies); used by the uniformization integrator.
	maxRate float64
}

// newRateMatrix sizes the matrix for the instance, carving all float
// storage from ws (nil allocates privately).
func newRateMatrix(inst *flow.Instance, ws *flow.Workspace) *rateMatrix {
	par := runtime.GOMAXPROCS(0)
	if par > maxFillWorkers {
		par = maxFillWorkers
	}
	if par < 1 {
		par = 1
	}
	rm := &rateMatrix{inst: inst, par: par}
	maxN := 0
	for i := 0; i < inst.NumCommodities(); i++ {
		n := inst.NumCommodityPaths(i)
		if n > maxN {
			maxN = n
		}
		rm.ratesT = append(rm.ratesT, ws.Floats(n*n))
		rm.rowSums = append(rm.rowSums, ws.Floats(n))
	}
	rm.probs = ws.Floats(maxN)
	rm.rowBuf = ws.Floats(maxN)
	return rm
}

// fill computes rates from the board state (flows and path latencies indexed
// globally). Origin-invariant samplers (all builtins) take the fast path:
// one sampler call per commodity and a direct fill of the transposed
// storage (contiguous writes, no scatter). Custom samplers fall back to
// origin-major rows scattered into the transposed layout. Large commodities
// fill in parallel row chunks, but only when the migrator is a builtin
// (stateless) kind — the Sampler/Migrator interfaces promise nothing about
// concurrency, so user implementations always see the strictly sequential
// evaluation order they were written against. Chunks are disjoint and the
// row sums rebuild in a fixed order, so the parallel fill is deterministic
// and bit-identical to the sequential one.
func (rm *rateMatrix) fill(pol policy.Policy, boardFlows flow.Vector, boardLats []float64) {
	rm.maxRate = 0
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		flows := boardFlows[lo:hi]
		lats := boardLats[lo:hi]
		// The sequential paths are kept free of closures and goroutines, so
		// steady-state phases of small instances allocate nothing; the
		// parallel path lives in its own method for the same reason.
		if policy.OriginInvariant(pol.Sampler) {
			// One sampler call serves every row.
			pol.Sampler.Probabilities(0, flows, lats, rm.probs[:n])
			if n >= fillParRows && rm.par > 1 && policy.ParallelSafeMigrator(pol.Migrator) {
				rm.fillSharedParallel(pol.Migrator, i, n, lats)
			} else {
				rm.fillShared(pol.Migrator, i, 0, n, lats, true)
			}
			for _, s := range rm.rowSums[i] {
				if s > rm.maxRate {
					rm.maxRate = s
				}
			}
			continue
		}
		if m := rm.fillRows(pol, i, n, flows, lats); m > rm.maxRate {
			rm.maxRate = m
		}
	}
}

// fillShared fills the transposed target rows [p0, p1) of commodity i
// directly — entry ratesT[p*n+q] = probs[p]·µ(ℓ_q, ℓ_p) — using the shared
// sampler probability row. With accumulate set it also folds the rows into
// the origin row sums: for each origin q the contributions arrive in
// ascending target order, exactly the origin-major row accumulation
// sequence (the diagonal contributes a literal +0.0, which the reference
// skips; adding it cannot change any non-negative partial sum).
func (rm *rateMatrix) fillShared(m policy.Migrator, i, p0, p1 int, lats []float64, accumulate bool) {
	n := len(lats)
	ratesT := rm.ratesT[i]
	probs := rm.probs[:n]
	sums := rm.rowSums[i]
	if accumulate {
		for q := range sums {
			sums[q] = 0
		}
	}
	for p := p0; p < p1; p++ {
		row := ratesT[p*n : (p+1)*n]
		policy.InflowRates(m, p, lats, probs[p], row)
		if accumulate {
			for q, r := range row {
				sums[q] += r
			}
		}
	}
}

// sumColumns recomputes the origin row sums [q0, q1) from the transposed
// storage: sums[q] = Σ_p ratesT[p*n+q] in ascending target order — the
// same addition sequence fillShared's fused accumulation produces.
func (rm *rateMatrix) sumColumns(i, q0, q1, n int) {
	ratesT := rm.ratesT[i]
	sums := rm.rowSums[i]
	for q := q0; q < q1; q++ {
		acc := 0.0
		for p := 0; p < n; p++ {
			acc += ratesT[p*n+q]
		}
		sums[q] = acc
	}
}

// fillSharedParallel fans fillShared's target rows out across goroutines,
// then rebuilds the row sums in a second parallel pass (the fused
// accumulation would interleave chunks non-deterministically). Only called
// for builtin migrators, whose evaluation is stateless and safe to run
// concurrently.
func (rm *rateMatrix) fillSharedParallel(m policy.Migrator, i, n int, lats []float64) {
	workers := rm.par
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p0 := w * chunk
		p1 := p0 + chunk
		if p1 > n {
			p1 = n
		}
		if p0 >= p1 {
			break
		}
		wg.Add(1)
		go func(p0, p1 int) {
			defer wg.Done()
			rm.fillShared(m, i, p0, p1, lats, false)
		}(p0, p1)
	}
	wg.Wait()
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		q0 := w * chunk
		q1 := q0 + chunk
		if q1 > n {
			q1 = n
		}
		if q0 >= q1 {
			break
		}
		wg2.Add(1)
		go func(q0, q1 int) {
			defer wg2.Done()
			rm.sumColumns(i, q0, q1, n)
		}(q0, q1)
	}
	wg2.Wait()
}

// fillRows fills commodity i's origin rows for an origin-dependent
// (custom) sampler, scattering each origin row into the transposed storage
// and returning the largest row sum. Always strictly sequential: custom
// sampler implementations carry no concurrency contract.
func (rm *rateMatrix) fillRows(pol policy.Policy, i, n int, flows, lats []float64) float64 {
	ratesT := rm.ratesT[i]
	sums := rm.rowSums[i]
	probs := rm.probs[:n]
	row := rm.rowBuf[:n]
	localMax := 0.0
	for p := 0; p < n; p++ {
		pol.Sampler.Probabilities(p, flows, lats, probs)
		sum := policy.MigrationRates(pol.Migrator, p, lats, probs, row)
		sums[p] = sum
		if sum > localMax {
			localMax = sum
		}
		for q, r := range row {
			ratesT[q*n+p] = r
		}
	}
	return localMax
}

// derivative writes ḟ into df given the current flow f (both global
// vectors).
func (rm *rateMatrix) derivative(f flow.Vector, df []float64) {
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		ratesT := rm.ratesT[i]
		sums := rm.rowSums[i]
		for p := 0; p < n; p++ {
			row := ratesT[p*n : (p+1)*n]
			acc := -f[lo+p] * sums[p]
			for q, r := range row {
				acc += f[lo+q] * r
			}
			df[lo+p] = acc
		}
	}
}

// applyTranspose computes out = Kᵀ·v where K is the uniformised kernel
// K[p][q] = R[p][q]/Λ for q≠p and K[p][p] = 1 − rowSum[p]/Λ, with the
// uniformisation rate Λ ≥ maxRate. v and out are global vectors.
func (rm *rateMatrix) applyTranspose(v, out []float64, lambda float64) {
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		ratesT := rm.ratesT[i]
		sums := rm.rowSums[i]
		for p := 0; p < n; p++ {
			row := ratesT[p*n : (p+1)*n]
			acc := v[lo+p] * (1 - sums[p]/lambda)
			for q, r := range row {
				if q == p {
					continue
				}
				acc += v[lo+q] * r / lambda
			}
			out[lo+p] = acc
		}
	}
}
