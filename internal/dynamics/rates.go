package dynamics

import (
	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// rateMatrix holds, per commodity, the per-unit-flow migration rates
// R[p][q] = σ_pq · µ(ℓ_p, ℓ_q) computed from a (board) state, plus row sums.
// Indices p, q are commodity-local. The fluid ODE reads
//
//	ḟ_p = Σ_q f_q·R[q][p] − f_p·rowSum[p].
type rateMatrix struct {
	inst *flow.Instance
	// rates[i] is an n_i×n_i matrix in row-major layout.
	rates   [][]float64
	rowSums [][]float64
	// scratch per commodity for sampler probabilities.
	probs [][]float64
	// maxRate is the largest row sum over all commodities (≤ 1 for
	// probability-valued policies); used by the uniformization integrator.
	maxRate float64
}

func newRateMatrix(inst *flow.Instance) *rateMatrix {
	rm := &rateMatrix{inst: inst}
	for i := 0; i < inst.NumCommodities(); i++ {
		n := inst.NumCommodityPaths(i)
		rm.rates = append(rm.rates, make([]float64, n*n))
		rm.rowSums = append(rm.rowSums, make([]float64, n))
		rm.probs = append(rm.probs, make([]float64, n))
	}
	return rm
}

// fill computes rates from the board state (flows and path latencies indexed
// globally).
func (rm *rateMatrix) fill(pol policy.Policy, boardFlows flow.Vector, boardLats []float64) {
	rm.maxRate = 0
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		rates := rm.rates[i]
		sums := rm.rowSums[i]
		probs := rm.probs[i]
		flows := boardFlows[lo:hi]
		lats := boardLats[lo:hi]
		for p := 0; p < n; p++ {
			pol.Sampler.Probabilities(p, flows, lats, probs)
			row := rates[p*n : (p+1)*n]
			sum := 0.0
			for q := 0; q < n; q++ {
				if q == p {
					row[q] = 0
					continue
				}
				r := probs[q] * pol.Migrator.Probability(lats[p], lats[q])
				row[q] = r
				sum += r
			}
			sums[p] = sum
			if sum > rm.maxRate {
				rm.maxRate = sum
			}
		}
	}
}

// derivative writes ḟ into df given the current flow f (both global
// vectors).
func (rm *rateMatrix) derivative(f flow.Vector, df []float64) {
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		rates := rm.rates[i]
		sums := rm.rowSums[i]
		for p := 0; p < n; p++ {
			acc := -f[lo+p] * sums[p]
			for q := 0; q < n; q++ {
				acc += f[lo+q] * rates[q*n+p]
			}
			df[lo+p] = acc
		}
	}
}

// applyTranspose computes out = Kᵀ·v where K is the uniformised kernel
// K[p][q] = R[p][q]/Λ for q≠p and K[p][p] = 1 − rowSum[p]/Λ, with the
// uniformisation rate Λ ≥ maxRate. v and out are global vectors.
func (rm *rateMatrix) applyTranspose(v, out []float64, lambda float64) {
	for i := 0; i < rm.inst.NumCommodities(); i++ {
		lo, hi := rm.inst.CommodityRange(i)
		n := hi - lo
		rates := rm.rates[i]
		sums := rm.rowSums[i]
		for p := 0; p < n; p++ {
			acc := v[lo+p] * (1 - sums[p]/lambda)
			for q := 0; q < n; q++ {
				if q == p {
					continue
				}
				acc += v[lo+q] * rates[q*n+p] / lambda
			}
			out[lo+p] = acc
		}
	}
}
