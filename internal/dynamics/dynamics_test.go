package dynamics

import (
	"context"
	"errors"
	"math"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustPigou(t testing.TB) *flow.Instance {
	t.Helper()
	inst, err := topo.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func mustBraess(t testing.TB) *flow.Instance {
	t.Helper()
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func mustReplicator(t testing.TB, lmax float64) policy.Policy {
	t.Helper()
	p, err := policy.Replicator(lmax)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustUniformLinear(t testing.TB, lmax float64) policy.Policy {
	t.Helper()
	p, err := policy.UniformLinear(lmax)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	f0 := inst.UniformFlow()

	if _, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: 0.25}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("missing horizon error = %v", err)
	}
	if _, err := Run(context.Background(), inst, Config{Policy: pol, Horizon: 1}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("missing period error = %v", err)
	}
	if _, err := Run(context.Background(), inst, Config{UpdatePeriod: 1, Horizon: 1}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("missing policy error = %v", err)
	}
	if _, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: 1, Horizon: 1, Integrator: Integrator(9)}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad integrator error = %v", err)
	}
	bad := flow.Vector{0.2, 0.2}
	if _, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: 1, Horizon: 1}, bad); !errors.Is(err, ErrInfeasibleStart) {
		t.Errorf("infeasible start error = %v", err)
	}
	if _, err := RunFresh(context.Background(), inst, Config{Policy: pol, Horizon: 1, Integrator: Uniformization}, f0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("fresh uniformization error = %v", err)
	}
	if _, err := RunFresh(context.Background(), inst, Config{Policy: pol, Horizon: 1}, bad); !errors.Is(err, ErrInfeasibleStart) {
		t.Errorf("fresh infeasible error = %v", err)
	}
}

func TestIntegratorString(t *testing.T) {
	for _, i := range []Integrator{Euler, RK4, Uniformization, Integrator(9)} {
		if i.String() == "" {
			t.Errorf("empty name for %d", int(i))
		}
	}
}

// Theorem 2 (fresh information): the replicator dynamics on Pigou converges
// to the Wardrop equilibrium (1,0) with monotonically decreasing potential.
func TestFreshReplicatorConvergesOnPigou(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	prevPhi := math.Inf(1)
	monotone := true
	cfg := Config{
		Policy:  pol,
		Horizon: 120,
		Step:    1.0 / 64,
		Hook: func(info PhaseInfo) bool {
			if info.Potential > prevPhi+1e-9 {
				monotone = false
			}
			prevPhi = info.Potential
			return false
		},
	}
	res, err := RunFresh(context.Background(), inst, cfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !monotone {
		t.Error("potential increased under fresh information")
	}
	// The replicator's boundary approach is O(1/t) (rate ∝ f2·(1−f1)), so
	// the tolerance reflects the horizon.
	if !approx(res.Final[0], 1, 2e-2) {
		t.Errorf("final flow = %v, want (1,0)", res.Final)
	}
	if !approx(res.FinalPotential, 0.5, 1e-3) {
		t.Errorf("final potential = %g, want 0.5", res.FinalPotential)
	}
}

// Corollary 5: at the safe update period the replicator converges under
// stale information as well.
func TestStaleReplicatorConvergesAtSafeT(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	safeT, err := policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(safeT, 0.25, 1e-12) {
		t.Fatalf("safe T = %g, want 0.25 for Pigou", safeT)
	}
	res, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: safeT, Horizon: 300}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Final[0], 1, 5e-3) {
		t.Errorf("final flow = %v, want (1,0)", res.Final)
	}
	if !inst.AtWardropEquilibrium(res.Final, 1e-2) {
		t.Error("did not reach approximate Wardrop equilibrium")
	}
}

// Lemma 4: per-phase potential change obeys ΔΦ ≤ ½V at the safe period, and
// Lemma 3's identity holds exactly.
func TestLemma3And4AccountingOnBraess(t *testing.T) {
	inst := mustBraess(t)
	pol := mustReplicator(t, inst.LMax())
	safeT, err := policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
	if err != nil {
		t.Fatal(err)
	}
	acct := NewAccountant(inst)
	cfg := Config{
		Policy:       pol,
		UpdatePeriod: safeT,
		Horizon:      60 * safeT,
		Integrator:   Uniformization,
		Hook:         acct.Hook(),
	}
	if _, err := Run(context.Background(), inst, cfg, inst.UniformFlow()); err != nil {
		t.Fatal(err)
	}
	if len(acct.Accounts) < 10 {
		t.Fatalf("too few accounted phases: %d", len(acct.Accounts))
	}
	for _, a := range acct.Accounts {
		if math.Abs(a.Lemma3Residual()) > 1e-8 {
			t.Errorf("phase %d: Lemma 3 residual %g", a.Phase, a.Lemma3Residual())
		}
		if !a.Lemma4Holds(1e-9) {
			t.Errorf("phase %d: ΔΦ=%g > V/2=%g", a.Phase, a.DeltaPhi, 0.5*a.VirtualGain)
		}
		if a.VirtualGain > 1e-12 {
			t.Errorf("phase %d: positive virtual gain %g", a.Phase, a.VirtualGain)
		}
	}
}

// §3.2: best response on the two-link kink instance oscillates with period
// 2T from the paper's initial condition and never converges.
func TestBestResponseOscillatesOnKink(t *testing.T) {
	beta, period := 4.0, 0.5
	inst, err := topo.TwoLinkKink(beta)
	if err != nil {
		t.Fatal(err)
	}
	f1Start, amplitude, _ := TwoLinkOscillation(beta, period, 0)
	f0 := flow.Vector{f1Start, 1 - f1Start}
	var flows []float64
	var maxLats []float64
	cfg := BestResponseConfig{
		UpdatePeriod: period,
		Horizon:      20 * period,
		Hook: func(info PhaseInfo) bool {
			flows = append(flows, info.Flow[0])
			m := math.Max(info.PathLatencies[0], info.PathLatencies[1])
			maxLats = append(maxLats, m)
			return false
		},
	}
	res, err := RunBestResponse(context.Background(), inst, cfg, f0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 20 {
		t.Fatalf("phases = %d", res.Phases)
	}
	// Period-2 orbit: every even phase returns to f1Start.
	for i := 0; i < len(flows); i += 2 {
		if !approx(flows[i], f1Start, 1e-9) {
			t.Errorf("phase %d: f1 = %.12f, want %.12f", i, flows[i], f1Start)
		}
	}
	// Odd phases sit at the mirrored point.
	for i := 1; i < len(flows); i += 2 {
		if !approx(flows[i], 1-f1Start, 1e-9) {
			t.Errorf("phase %d: f1 = %.12f, want %.12f", i, flows[i], 1-f1Start)
		}
	}
	// The sustained deviation matches the closed-form amplitude every round.
	for i, m := range maxLats {
		if !approx(m, amplitude, 1e-9) {
			t.Errorf("phase %d: max latency %g, want %g", i, m, amplitude)
		}
	}
}

func TestTwoLinkOscillationClosedForm(t *testing.T) {
	beta, T := 2.0, 1.0
	f1, amp, maxT := TwoLinkOscillation(beta, T, 0.1)
	e := math.Exp(-1.0)
	if !approx(f1, 1/(e+1), 1e-15) {
		t.Errorf("f1 = %g", f1)
	}
	if !approx(amp, beta*(1-e)/(2*e+2), 1e-15) {
		t.Errorf("amp = %g", amp)
	}
	want := math.Log((1 + 0.1) / (1 - 0.1))
	if !approx(maxT, want, 1e-15) {
		t.Errorf("maxT = %g, want %g", maxT, want)
	}
	if _, _, mt := TwoLinkOscillation(1, 1, 10); !math.IsInf(mt, 1) {
		t.Error("eps >= beta/2 should give infinite max period")
	}
}

// The §3.2 bound: running best response with T at the closed-form threshold
// keeps the oscillation amplitude at (approximately) eps.
func TestBestResponseAmplitudeAtThreshold(t *testing.T) {
	beta, eps := 4.0, 0.3
	_, _, maxT := TwoLinkOscillation(beta, 0, eps)
	_, amp, _ := TwoLinkOscillation(beta, maxT, 0)
	if !approx(amp, eps, 1e-9) {
		t.Errorf("amplitude at threshold = %g, want %g", amp, eps)
	}
}

// Best response under stale information fails to converge even at the
// α-smooth policies' safe period, while the smooth replicator converges —
// the paper's headline contrast.
func TestBestResponseVsReplicatorContrast(t *testing.T) {
	beta := 8.0
	inst, err := topo.TwoLinkKink(beta)
	if err != nil {
		t.Fatal(err)
	}
	pol := mustReplicator(t, inst.LMax())
	safeT, err := policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
	if err != nil {
		t.Fatal(err)
	}
	f1Start, _, _ := TwoLinkOscillation(beta, safeT, 0)
	f0 := flow.Vector{f1Start, 1 - f1Start}

	brRes, err := RunBestResponse(context.Background(), inst, BestResponseConfig{UpdatePeriod: safeT, Horizon: 400 * safeT}, f0)
	if err != nil {
		t.Fatal(err)
	}
	repRes, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: safeT, Horizon: 400 * safeT}, f0.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Equilibrium: even split, both latencies zero, potential 0. The
	// best-response orbit keeps the closed-form flow deviation forever.
	wantDev := f1Start - 0.5
	if brDev := math.Abs(brRes.Final[0] - 0.5); brDev < 0.8*wantDev {
		t.Errorf("best response should still oscillate, |f1-1/2| = %g, want ≈ %g", brDev, wantDev)
	}
	if repDev := math.Abs(repRes.Final[0] - 0.5); repDev > 0.01 {
		t.Errorf("replicator should converge, |f1-1/2| = %g", repDev)
	}
}

// Theorem 6 machinery: the uniform+linear policy's unsatisfied-phase counter
// is finite and the run reaches a (δ,ε)-equilibrium that persists.
func TestUniformLinearRoundAccounting(t *testing.T) {
	inst := mustPigou(t)
	pol := mustUniformLinear(t, inst.LMax())
	safeT, err := policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Policy:                   pol,
		UpdatePeriod:             safeT,
		Horizon:                  4000 * safeT,
		Delta:                    0.05,
		Eps:                      0.05,
		StopAfterSatisfiedStreak: 50,
	}
	res, err := Run(context.Background(), inst, cfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("run should stop via satisfied streak")
	}
	if res.UnsatisfiedPhases <= 0 {
		t.Error("starting from uniform flow some phases must be unsatisfied")
	}
	if res.UnsatisfiedPhases > 3000 {
		t.Errorf("unsatisfied phases = %d, suspiciously many", res.UnsatisfiedPhases)
	}
}

// All three integrators agree on the frozen-board phase dynamics.
func TestIntegratorsAgree(t *testing.T) {
	inst := mustBraess(t)
	pol := mustReplicator(t, inst.LMax())
	f0 := flow.Vector{0.5, 0.3, 0.2}
	finals := map[Integrator]flow.Vector{}
	for _, integ := range []Integrator{Euler, RK4, Uniformization} {
		cfg := Config{
			Policy: pol, UpdatePeriod: 0.1, Horizon: 5,
			Integrator: integ, Step: 0.001,
		}
		res, err := Run(context.Background(), inst, cfg, f0.Clone())
		if err != nil {
			t.Fatalf("%v: %v", integ, err)
		}
		finals[integ] = res.Final
	}
	if d := finals[RK4].MaxAbsDiff(finals[Uniformization]); d > 1e-8 {
		t.Errorf("RK4 vs uniformization differ by %g", d)
	}
	if d := finals[Euler].MaxAbsDiff(finals[Uniformization]); d > 1e-4 {
		t.Errorf("Euler vs uniformization differ by %g", d)
	}
}

func TestTrajectoryRecording(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	cfg := Config{Policy: pol, UpdatePeriod: 0.25, Horizon: 10, RecordEvery: 2}
	res, err := Run(context.Background(), inst, cfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != 20 { // 40 phases / 2
		t.Errorf("trajectory samples = %d, want 20", len(res.Trajectory))
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i].Time <= res.Trajectory[i-1].Time {
			t.Error("trajectory times not increasing")
		}
		if res.Trajectory[i].Potential > res.Trajectory[i-1].Potential+1e-9 {
			t.Error("potential increased at safe T")
		}
	}
}

func TestHookStopsRun(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	cfg := Config{
		Policy: pol, UpdatePeriod: 0.25, Horizon: 100,
		Hook: func(info PhaseInfo) bool { return info.Index >= 5 },
	}
	res, err := Run(context.Background(), inst, cfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Phases != 5 {
		t.Errorf("stopped=%v phases=%d, want stop at 5", res.Stopped, res.Phases)
	}
}

// Flow conservation: feasibility is preserved along the whole run for every
// integrator and policy combination.
func TestFeasibilityPreserved(t *testing.T) {
	inst := mustBraess(t)
	for _, mk := range []func(testing.TB, float64) policy.Policy{mustReplicator, mustUniformLinear} {
		pol := mk(t, inst.LMax())
		for _, integ := range []Integrator{Euler, RK4, Uniformization} {
			cfg := Config{
				Policy: pol, UpdatePeriod: 0.05, Horizon: 10, Integrator: integ,
				Hook: func(info PhaseInfo) bool {
					if err := inst.Feasible(info.Flow, 1e-6); err != nil {
						t.Errorf("%s/%v at t=%g: %v", pol.Name(), integ, info.Time, err)
						return true
					}
					return false
				},
			}
			if _, err := Run(context.Background(), inst, cfg, inst.UniformFlow()); err != nil {
				t.Fatalf("%s/%v: %v", pol.Name(), integ, err)
			}
		}
	}
}

// Boltzmann sampling with a smooth migrator fits the framework and converges
// at small c under stale information.
func TestBoltzmannSmoothPolicyRuns(t *testing.T) {
	inst := mustPigou(t)
	lin, err := policy.NewLinear(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.Policy{Sampler: policy.Boltzmann{C: 1}, Migrator: lin}
	res, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: 0.25, Horizon: 200}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Final[0], 1, 0.02) {
		t.Errorf("final flow = %v, want near (1,0)", res.Final)
	}
}

func TestRunFreshRecordsAndStops(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	cfg := Config{
		Policy: pol, Horizon: 50, Step: 0.1,
		Delta: 0.05, Eps: 0.05, StopAfterSatisfiedStreak: 20,
		RecordEvery: 10,
	}
	res, err := RunFresh(context.Background(), inst, cfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) == 0 {
		t.Error("no trajectory recorded")
	}
	if !res.Stopped {
		t.Error("fresh run should reach the satisfied streak")
	}
	if res.UnsatisfiedPhases == 0 {
		t.Error("early steps should be unsatisfied")
	}
}

func TestRunFreshEulerMatchesRK4(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	r1, err := RunFresh(context.Background(), inst, Config{Policy: pol, Horizon: 10, Step: 1e-3, Integrator: Euler}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFresh(context.Background(), inst, Config{Policy: pol, Horizon: 10, Step: 1e-2, Integrator: RK4}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if d := r1.Final.MaxAbsDiff(r2.Final); d > 1e-3 {
		t.Errorf("Euler vs RK4 fresh runs differ by %g", d)
	}
}

// Weak accounting uses the commodity-average reference (Definition 4).
func TestWeakAccounting(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	strictCfg := Config{Policy: pol, UpdatePeriod: 0.25, Horizon: 50, Delta: 0.1, Eps: 0.01}
	weakCfg := strictCfg
	weakCfg.Weak = true
	rs, err := Run(context.Background(), inst, strictCfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(context.Background(), inst, weakCfg, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if rw.UnsatisfiedPhases > rs.UnsatisfiedPhases {
		t.Errorf("weak unsatisfied (%d) cannot exceed strict (%d)",
			rw.UnsatisfiedPhases, rs.UnsatisfiedPhases)
	}
}

// Partial final phase: horizon not a multiple of T still lands exactly on
// the horizon.
func TestPartialFinalPhase(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst.LMax())
	res, err := Run(context.Background(), inst, Config{Policy: pol, UpdatePeriod: 0.3, Horizon: 1.0}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Elapsed, 1.0, 1e-9) {
		t.Errorf("elapsed = %g, want 1.0", res.Elapsed)
	}
	if res.Phases != 4 { // 0.3+0.3+0.3+0.1
		t.Errorf("phases = %d, want 4", res.Phases)
	}
}
