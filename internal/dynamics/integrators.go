package dynamics

import (
	"math"

	"wardrop/internal/flow"
)

// integrateEuler advances f over duration tau with explicit Euler steps of
// size at most step, holding the rate matrix fixed.
func integrateEuler(rm *rateMatrix, f flow.Vector, tau, step float64, df []float64) {
	for remaining := tau; remaining > 1e-15; {
		h := math.Min(step, remaining)
		rm.derivative(f, df)
		for i := range f {
			f[i] += h * df[i]
		}
		remaining -= h
	}
}

// rk4Scratch holds the four slope buffers and the midpoint state.
type rk4Scratch struct {
	k1, k2, k3, k4, mid []float64
}

func newRK4Scratch(n int, ws *flow.Workspace) *rk4Scratch {
	return &rk4Scratch{
		k1:  ws.Floats(n),
		k2:  ws.Floats(n),
		k3:  ws.Floats(n),
		k4:  ws.Floats(n),
		mid: ws.Floats(n),
	}
}

// integrateRK4 advances f over duration tau with classic RK4 steps of size
// at most step, holding the rate matrix fixed. Since the frozen-board system
// is linear and autonomous, the stage evaluations need no time argument.
func integrateRK4(rm *rateMatrix, f flow.Vector, tau, step float64, s *rk4Scratch) {
	for remaining := tau; remaining > 1e-15; {
		h := math.Min(step, remaining)
		rm.derivative(f, s.k1)
		for i := range f {
			s.mid[i] = f[i] + 0.5*h*s.k1[i]
		}
		rm.derivative(s.mid, s.k2)
		for i := range f {
			s.mid[i] = f[i] + 0.5*h*s.k2[i]
		}
		rm.derivative(s.mid, s.k3)
		for i := range f {
			s.mid[i] = f[i] + h*s.k3[i]
		}
		rm.derivative(s.mid, s.k4)
		for i := range f {
			f[i] += h / 6 * (s.k1[i] + 2*s.k2[i] + 2*s.k3[i] + s.k4[i])
		}
		remaining -= h
	}
}

// integrateUniformization computes f(tau) = e^{Gτ} f exactly (to series
// tolerance) where G = Λ(Kᵀ − I): the uniformised Poisson series
// f(τ) = Σ_n e^{−Λτ}(Λτ)ⁿ/n! · (Kᵀ)ⁿ f. It is exact for the frozen-board
// phase because migration rates are constant within a phase.
func integrateUniformization(rm *rateMatrix, f flow.Vector, tau float64, vCur, vNext, acc []float64) {
	lambda := rm.maxRate
	if lambda <= 0 {
		return // no migration at all this phase
	}
	x := lambda * tau
	weight := math.Exp(-x) // Poisson(x) pmf at n=0
	copy(vCur, f)
	for i := range acc {
		acc[i] = weight * vCur[i]
	}
	// Series length: mean x plus a generous tail; cap guards pathological x.
	maxTerms := int(x + 30*math.Sqrt(x+1) + 20)
	cum := weight
	for n := 1; n <= maxTerms; n++ {
		rm.applyTranspose(vCur, vNext, lambda)
		vCur, vNext = vNext, vCur
		weight *= x / float64(n)
		cum += weight
		for i := range acc {
			acc[i] += weight * vCur[i]
		}
		if 1-cum < 1e-14 {
			break
		}
	}
	copy(f, acc)
}
