// Package dynamics integrates the paper's fluid-limit rerouting dynamics:
// the stale-information ODE (Eq. 3) for two-step sampling/migration policies,
// the fresh-information ODE (Eq. 1, the T→0 limit), and the best-response
// differential inclusion (Eqs. 2 and 4). It also performs the per-phase
// potential accounting of Lemmas 3 and 4 and the round counting of
// Theorems 6 and 7.
package dynamics

import (
	"errors"
	"fmt"

	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// Sentinel errors.
var (
	// ErrBadConfig indicates an invalid simulation configuration.
	ErrBadConfig = errors.New("dynamics: invalid config")
	// ErrInfeasibleStart indicates an infeasible initial flow.
	ErrInfeasibleStart = errors.New("dynamics: infeasible initial flow")
)

// Integrator selects the within-phase ODE integration scheme.
type Integrator int

// Within a phase the board is frozen, so the dynamics is linear in f; all
// three schemes integrate that linear system, trading speed for accuracy.
const (
	// Euler is explicit first-order integration.
	Euler Integrator = iota + 1
	// RK4 is classic fourth-order Runge–Kutta (the default).
	RK4
	// Uniformization computes the exact matrix-exponential action via the
	// uniformised Poisson series (exact for the frozen-board linear phase,
	// up to a 1e-14 series tail).
	Uniformization
)

// String names the integrator.
func (i Integrator) String() string {
	switch i {
	case Euler:
		return "euler"
	case RK4:
		return "rk4"
	case Uniformization:
		return "uniformization"
	default:
		return fmt.Sprintf("integrator(%d)", int(i))
	}
}

// Config parameterises a fluid-limit simulation.
type Config struct {
	// Policy is the rerouting policy (sampler + migrator).
	Policy policy.Policy
	// UpdatePeriod is the bulletin-board period T. It must be positive; use
	// RunFresh for the up-to-date-information dynamics.
	UpdatePeriod float64
	// Step is the within-phase integrator step (default: T/64 for
	// Euler/RK4; ignored by Uniformization).
	Step float64
	// Horizon is the simulated time budget (required, > 0).
	Horizon float64
	// Integrator selects the scheme (default RK4).
	Integrator Integrator

	// Delta and Eps parameterise the (δ,ε)-equilibrium round accounting of
	// Theorems 6 and 7. If Delta <= 0 accounting is disabled.
	Delta float64
	Eps   float64
	// Weak selects the weak (δ,ε) metric (Definition 4, vs. commodity
	// average) instead of the strict one (Definition 3, vs. commodity min).
	Weak bool
	// StopAfterSatisfiedStreak stops the run once this many consecutive
	// phases started at the configured approximate equilibrium (0 disables).
	StopAfterSatisfiedStreak int

	// RecordEvery records a trajectory sample every k phases (0 disables
	// trajectory recording; endpoints are always in the Result).
	RecordEvery int

	// Hook, if non-nil, observes every phase start and may stop the run by
	// returning true.
	//
	// Deprecated: use Observer; when both are set, both run.
	Hook Hook

	// Observer, if non-nil, observes every phase start; see Observer. Compose
	// several with MultiObserver.
	Observer Observer

	// Workspace, if non-nil, supplies every scratch buffer of the run (it is
	// Reset at entry, so one workspace serves any number of sequential runs
	// without reallocating). Nil allocates privately. See flow.Workspace for
	// the reuse contract.
	Workspace *flow.Workspace
}

// Hook observes a phase start. Returning true stops the simulation.
//
// Deprecated: implement Observer (or wrap the function in ObserverFunc).
type Hook func(PhaseInfo) bool

// PhaseInfo describes the state at a phase start (a bulletin-board update
// instant). The slices are views into simulator buffers, valid only during
// the hook call; copy them to retain.
type PhaseInfo struct {
	// Index is the phase number, starting at 0.
	Index int
	// Time is the phase start time t̂.
	Time float64
	// Flow is the population state f(t̂).
	Flow flow.Vector
	// PathLatencies are the latencies posted on the board.
	PathLatencies []float64
	// Potential is Φ(f(t̂)).
	Potential float64
	// Unsatisfied is the (weak) δ-unsatisfied volume if accounting is
	// enabled, else 0.
	Unsatisfied float64
	// AtEquilibrium reports whether the phase starts at the configured
	// approximate equilibrium (false when accounting is disabled).
	AtEquilibrium bool
}

// Sample is one recorded trajectory point.
type Sample struct {
	Time      float64
	Potential float64
	Flow      flow.Vector
}

// Result summarises a simulation run.
type Result struct {
	// Final is the flow at the end of the run.
	Final flow.Vector
	// FinalPotential is Φ(Final).
	FinalPotential float64
	// Phases is the number of completed phases.
	Phases int
	// Elapsed is the simulated time actually covered.
	Elapsed float64
	// UnsatisfiedPhases counts phases that did not start at the configured
	// (δ,ε)-equilibrium — the quantity bounded by Theorems 6 and 7.
	UnsatisfiedPhases int
	// Stopped reports whether a hook or satisfied-streak stop fired before
	// the horizon.
	Stopped bool
	// Trajectory holds recorded samples (nil unless RecordEvery > 0).
	Trajectory []Sample
}

// ValidateRunShape rejects the recording/accounting run-shape fields shared
// by every engine configuration — negative RecordEvery, negative Eps with
// accounting enabled, negative satisfied streak — wrapping the caller's
// bad-config sentinel so each package keeps its own error identity. Using
// this one helper keeps the engines' accepted configs in lockstep.
func ValidateRunShape(sentinel error, recordEvery int, delta, eps float64, streak int) error {
	if recordEvery < 0 {
		return fmt.Errorf("%w: record-every %d must be >= 0", sentinel, recordEvery)
	}
	if delta > 0 && eps < 0 {
		return fmt.Errorf("%w: eps %g must be >= 0 when delta > 0", sentinel, eps)
	}
	if streak < 0 {
		return fmt.Errorf("%w: satisfied streak %d must be >= 0", sentinel, streak)
	}
	return nil
}

// RoundAccounting is the shared per-phase (δ,ε)-equilibrium round
// accounting of Theorems 6 and 7, used identically by every engine (fluid,
// fresh, best response, agents): classify the phase start, fill the
// PhaseInfo accounting fields, count unsatisfied phases on the Result, and
// report when the satisfied-streak stop fires.
type RoundAccounting struct {
	delta, eps float64
	weak       bool
	streakStop int
	streak     int
}

// NewRoundAccounting builds the accounting; delta <= 0 disables it.
func NewRoundAccounting(delta, eps float64, weak bool, streakStop int) RoundAccounting {
	return RoundAccounting{delta: delta, eps: eps, weak: weak, streakStop: streakStop}
}

// Observe classifies the phase start (mutating info's Unsatisfied and
// AtEquilibrium fields and res.UnsatisfiedPhases) and reports whether the
// satisfied-streak stop fired.
func (a *RoundAccounting) Observe(inst *flow.Instance, info *PhaseInfo, res *Result) bool {
	if a.delta <= 0 {
		return false
	}
	if a.weak {
		info.Unsatisfied = inst.WeakUnsatisfiedVolume(info.Flow, info.PathLatencies, a.delta)
	} else {
		info.Unsatisfied = inst.UnsatisfiedVolume(info.Flow, info.PathLatencies, a.delta)
	}
	info.AtEquilibrium = info.Unsatisfied <= a.eps
	if info.AtEquilibrium {
		a.streak++
	} else {
		res.UnsatisfiedPhases++
		a.streak = 0
	}
	return a.streakStop > 0 && a.streak >= a.streakStop
}

func (c *Config) validate(stale bool) error {
	if c.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %g must be positive", ErrBadConfig, c.Horizon)
	}
	if stale && c.UpdatePeriod <= 0 {
		return fmt.Errorf("%w: update period %g must be positive", ErrBadConfig, c.UpdatePeriod)
	}
	if c.Policy.Sampler == nil || c.Policy.Migrator == nil {
		return fmt.Errorf("%w: policy requires sampler and migrator", ErrBadConfig)
	}
	if c.Integrator == 0 {
		c.Integrator = RK4
	}
	switch c.Integrator {
	case Euler, RK4, Uniformization:
	default:
		return fmt.Errorf("%w: unknown integrator %d", ErrBadConfig, int(c.Integrator))
	}
	if c.Step <= 0 {
		if stale {
			c.Step = c.UpdatePeriod / 64
		} else {
			c.Step = 1.0 / 256
		}
	}
	return ValidateRunShape(ErrBadConfig, c.RecordEvery, c.Delta, c.Eps, c.StopAfterSatisfiedStreak)
}
