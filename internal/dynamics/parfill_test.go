package dynamics

// The parallel rate-matrix fill only engages above fillParRows rows, with
// more than one worker and a builtin (stateless) migrator; the first two
// rarely hold on small CI boxes, so these tests force the worker count and
// pin the parallel fill bitwise to the sequential one — the determinism
// claim the engines rely on — and check that non-builtin policy
// implementations (which carry no concurrency contract) stay on the
// sequential paths.

import (
	"math"
	"testing"

	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

// originBiased is a sampler that is NOT origin-invariant, forcing the
// custom-sampler fill path.
type originBiased struct{}

func (originBiased) Probabilities(origin int, flows, _ []float64, probs []float64) {
	n := len(probs)
	base := 1 / float64(2*n)
	for q := range probs {
		probs[q] = base
	}
	probs[origin] += 0.5
}

func (originBiased) Name() string { return "origin-biased" }

// serialOnlyMigrator wraps a builtin so it is no longer recognized as
// parallel-safe, and trips the test if evaluated concurrently.
type serialOnlyMigrator struct {
	m    policy.Migrator
	busy int32
	bad  bool
}

func (s *serialOnlyMigrator) Probability(lp, lq float64) float64 {
	s.busy++
	if s.busy != 1 {
		s.bad = true
	}
	v := s.m.Probability(lp, lq)
	s.busy--
	return v
}

func (s *serialOnlyMigrator) Name() string { return "serial-only(" + s.m.Name() + ")" }

func assertRateMatrixEqual(t *testing.T, want, got *rateMatrix) {
	t.Helper()
	if math.Float64bits(want.maxRate) != math.Float64bits(got.maxRate) {
		t.Fatalf("maxRate: %v != %v", got.maxRate, want.maxRate)
	}
	for i := range want.ratesT {
		for k := range want.ratesT[i] {
			if math.Float64bits(want.ratesT[i][k]) != math.Float64bits(got.ratesT[i][k]) {
				t.Fatalf("ratesT[%d][%d]: %v != %v", i, k, got.ratesT[i][k], want.ratesT[i][k])
			}
		}
		for p := range want.rowSums[i] {
			if math.Float64bits(want.rowSums[i][p]) != math.Float64bits(got.rowSums[i][p]) {
				t.Fatalf("rowSums[%d][%d]: %v != %v", i, p, got.rowSums[i][p], want.rowSums[i][p])
			}
		}
	}
}

func TestParallelFillMatchesSequential(t *testing.T) {
	inst, err := topo.LinearParallelLinks(fillParRows + 22)
	if err != nil {
		t.Fatal(err)
	}
	f := inst.SinglePathFlow(0)
	pl := inst.PathLatencies(f)
	mig, err := policy.NewLinear(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []policy.Policy{
		{Sampler: policy.Proportional{}, Migrator: mig},
		{Sampler: policy.Boltzmann{C: 3}, Migrator: mig},
	} {
		t.Run(pol.Sampler.Name(), func(t *testing.T) {
			seq := newRateMatrix(inst, nil)
			seq.par = 1
			seq.fill(pol, f, pl)

			par := newRateMatrix(inst, nil)
			par.par = 4
			par.fill(pol, f, pl)

			assertRateMatrixEqual(t, seq, par)
		})
	}
}

// TestCustomPolicyStaysSequential pins the concurrency contract: custom
// samplers and migrators never run in parallel, even on commodities above
// the parallel threshold with workers available.
func TestCustomPolicyStaysSequential(t *testing.T) {
	inst, err := topo.LinearParallelLinks(fillParRows + 22)
	if err != nil {
		t.Fatal(err)
	}
	f := inst.SinglePathFlow(0)
	pl := inst.PathLatencies(f)
	mig, err := policy.NewLinear(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	serial := &serialOnlyMigrator{m: mig}
	for _, pol := range []policy.Policy{
		{Sampler: policy.Proportional{}, Migrator: serial}, // shared path, custom migrator
		{Sampler: originBiased{}, Migrator: serial},        // custom sampler path
	} {
		t.Run(pol.Sampler.Name(), func(t *testing.T) {
			rm := newRateMatrix(inst, nil)
			rm.par = 4
			rm.fill(pol, f, pl)
			if serial.bad {
				t.Fatal("custom migrator evaluated concurrently")
			}
			// And the produced rates must match the builtin migrator's
			// (serialOnlyMigrator only wraps) through the generic kernels.
			want := newRateMatrix(inst, nil)
			want.par = 1
			want.fill(policy.Policy{Sampler: pol.Sampler, Migrator: mig}, f, pl)
			got := rm
			assertRateMatrixEqual(t, want, got)
		})
	}
}

// TestSharedFillMatchesScatterFill pins the origin-invariant fast path
// (direct transposed fill, fused sums) to the origin-major scatter path on
// the same policy: the two must produce identical bits, since the fast
// path is selected by sampler type, not by semantics.
func TestSharedFillMatchesScatterFill(t *testing.T) {
	inst := mustBraess(t)
	pol := mustReplicator(t, inst.LMax())
	f := inst.UniformFlow()
	pl := inst.PathLatencies(f)

	fast := newRateMatrix(inst, nil)
	fast.fill(pol, f, pl)

	slow := newRateMatrix(inst, nil)
	for i := 0; i < inst.NumCommodities(); i++ {
		lo, hi := inst.CommodityRange(i)
		if m := slow.fillRows(pol, i, hi-lo, f[lo:hi], pl[lo:hi]); m > slow.maxRate {
			slow.maxRate = m
		}
	}
	assertRateMatrixEqual(t, fast, slow)
}
