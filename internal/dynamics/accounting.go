package dynamics

import (
	"wardrop/internal/flow"
)

// PhaseAccount records the potential bookkeeping of one phase for the
// Lemma 3 / Lemma 4 validation experiments.
type PhaseAccount struct {
	// Phase is the index of the phase that produced this account (the phase
	// that started with the previous snapshot and ended with this one).
	Phase int
	// DeltaPhi is the true potential change Φ(f) − Φ(f̂) over the phase.
	DeltaPhi float64
	// VirtualGain is V(f̂,f) = Σ_e ℓ_e(f̂)·(f_e − f̂_e), the gain the agents
	// "see" on the frozen board (Eq. 8).
	VirtualGain float64
	// ErrorSum is Σ_e U_e (Eq. 7).
	ErrorSum float64
}

// Lemma3Residual returns ΔΦ − (ΣU + V), which Lemma 3 proves to be zero.
func (a PhaseAccount) Lemma3Residual() float64 {
	return a.DeltaPhi - (a.ErrorSum + a.VirtualGain)
}

// Lemma4Holds reports whether ΔΦ ≤ ½·V + tol, the guarantee of Lemma 4 for
// α-smooth policies run at a safe update period.
func (a PhaseAccount) Lemma4Holds(tol float64) bool {
	return a.DeltaPhi <= 0.5*a.VirtualGain+tol
}

// Accountant is a Hook factory that accumulates PhaseAccounts across a run.
// Attach Hook() to a Config; after the run Accounts holds one entry per
// completed phase transition.
type Accountant struct {
	inst     *flow.Instance
	prev     flow.Vector
	prevPhi  float64
	havePrev bool
	// Accounts holds the per-phase bookkeeping in phase order.
	Accounts []PhaseAccount
	// Next is an optional downstream hook consulted after accounting.
	Next Hook
}

// NewAccountant creates an accountant for the given instance.
func NewAccountant(inst *flow.Instance) *Accountant {
	return &Accountant{inst: inst}
}

// Hook returns the Hook to install in Config.Hook.
func (a *Accountant) Hook() Hook {
	return func(info PhaseInfo) bool {
		if a.havePrev {
			u := a.inst.ErrorTerms(a.prev, info.Flow)
			sumU := 0.0
			for _, x := range u {
				sumU += x
			}
			a.Accounts = append(a.Accounts, PhaseAccount{
				Phase:       info.Index - 1,
				DeltaPhi:    info.Potential - a.prevPhi,
				VirtualGain: a.inst.VirtualGain(a.prev, info.Flow),
				ErrorSum:    sumU,
			})
		}
		a.prev = info.Flow.Clone()
		a.prevPhi = info.Potential
		a.havePrev = true
		if a.Next != nil {
			return a.Next(info)
		}
		return false
	}
}
