package dynamics

import (
	"context"
	"fmt"
	"math"

	"wardrop/internal/flow"
)

// BestResponseConfig parameterises the best-response dynamics run.
type BestResponseConfig struct {
	// UpdatePeriod is the bulletin-board period T (> 0).
	UpdatePeriod float64
	// Horizon is the simulated time budget.
	Horizon float64
	// RecordEvery records a sample every k phases (0 disables).
	RecordEvery int
	// Hook observes phase starts; returning true stops the run.
	//
	// Deprecated: use Observer; when both are set, both run.
	Hook Hook
	// Observer observes phase starts; compose several with MultiObserver.
	Observer Observer
	// Delta/Eps enable (δ,ε)-equilibrium accounting as in Config.
	Delta float64
	Eps   float64
	// Weak selects the weak (δ,ε) metric (Definition 4).
	Weak bool
	// StopAfterSatisfiedStreak stops the run once this many consecutive
	// phases started at the configured approximate equilibrium (0 disables).
	StopAfterSatisfiedStreak int
	// Workspace, if non-nil, supplies the run's scratch buffers (Reset at
	// entry); nil allocates privately.
	Workspace *flow.Workspace
}

func (c *BestResponseConfig) validate() error {
	if c.UpdatePeriod <= 0 {
		return fmt.Errorf("%w: update period %g must be positive", ErrBadConfig, c.UpdatePeriod)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %g must be positive", ErrBadConfig, c.Horizon)
	}
	return ValidateRunShape(ErrBadConfig, c.RecordEvery, c.Delta, c.Eps, c.StopAfterSatisfiedStreak)
}

// RunBestResponse integrates the best-response differential inclusion under
// stale information (Eq. 4): within each phase every activated agent adopts
// the board's minimum-latency path b, so the state relaxes exponentially,
// f(t̂+τ) = b + (f(t̂) − b)·e^{−τ}. This closed form is exact — no numeric
// integration error — which is what makes the §3.2 oscillation reproduction
// sharp. Ties in the board's shortest path break towards the lowest global
// path index, a selection of the inclusion's right-hand side.
//
// Cancellation is checked between phases: when ctx is done the partial
// result accumulated so far is returned together with ctx.Err().
func RunBestResponse(ctx context.Context, inst *flow.Instance, cfg BestResponseConfig, f0 flow.Vector) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := inst.Feasible(f0, 1e-9); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasibleStart, err)
	}
	ws := cfg.Workspace
	ws.Reset()
	f := f0.Clone()
	ev := flow.NewEvaluator(inst, ws)
	n := inst.NumPaths()
	b := flow.Vector(ws.Floats(n))
	res := &Result{}
	account := NewRoundAccounting(cfg.Delta, cfg.Eps, cfg.Weak, cfg.StopAfterSatisfiedStreak)
	t := 0.0
	for phase := 0; t < cfg.Horizon-1e-12; phase++ {
		if err := ctx.Err(); err != nil {
			return finish(ev, res, f, t), err
		}
		ev.Eval(f)
		pl := ev.PathLatencies()
		phi := ev.Potential()
		info := PhaseInfo{Index: phase, Time: t, Flow: f, PathLatencies: pl, Potential: phi}
		streakStop := account.Observe(inst, &info, res)
		if cfg.RecordEvery > 0 && phase%cfg.RecordEvery == 0 {
			res.Trajectory = append(res.Trajectory, Sample{Time: t, Potential: phi, Flow: f.Clone()})
		}
		if stop := DeliverPhase(cfg.Hook, cfg.Observer, info); stop || streakStop {
			res.Stopped = true
			break
		}

		inst.BestResponseInto(pl, b)
		tau := math.Min(cfg.UpdatePeriod, cfg.Horizon-t)
		decay := math.Exp(-tau)
		for i := range f {
			f[i] = b[i] + (f[i]-b[i])*decay
		}
		t += tau
		res.Phases++
	}
	return finish(ev, res, f, t), nil
}

// TwoLinkOscillation returns the paper's §3.2 closed-form predictions for
// best response on two parallel links with latency ℓ(x) = max{0, β(x−½)} and
// board period T:
//
//	f1Start — the initial share 1/(e^{−T}+1) that makes the orbit periodic,
//	amplitude — the per-round latency deviation X = β(1−e^{−T})/(2e^{−T}+2),
//	maxPeriod — the largest T keeping X ≤ eps: ln((1+2ε/β)/(1−2ε/β)).
//
// maxPeriod is +Inf when eps ≥ β/2 (the oscillation cannot exceed eps).
func TwoLinkOscillation(beta, period, eps float64) (f1Start, amplitude, maxPeriod float64) {
	e := math.Exp(-period)
	f1Start = 1 / (e + 1)
	amplitude = beta * (1 - e) / (2*e + 2)
	if 2*eps/beta >= 1 {
		maxPeriod = math.Inf(1)
	} else {
		maxPeriod = math.Log((1 + 2*eps/beta) / (1 - 2*eps/beta))
	}
	return f1Start, amplitude, maxPeriod
}
