package timeline

import (
	"fmt"
	"sort"

	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// maxSegments bounds the compiled segment count so a runaway schedule
// resolution (tiny period, huge horizon) fails loudly instead of deriving
// millions of instances.
const maxSegments = 10_000

// AppliedEvent is one event occurrence as replayed into a run: trajectories,
// run-result documents and serve streams record these.
type AppliedEvent struct {
	// Time is the simulated time the event took effect (the start of the
	// segment it opened).
	Time float64 `json:"time"`
	// Action is the event's registry name.
	Action string `json:"action"`
	// Edge is the patched edge's index.
	Edge int `json:"edge"`
	// Detail describes the edge's latency in effect after the event.
	Detail string `json:"detail,omitempty"`
}

// Segment is one stationary piece of a compiled timeline: on [Start, End)
// the run executes on Instance, whose latencies carry the event state and
// whose demands carry the schedule factors sampled at Start.
type Segment struct {
	Start, End float64
	// Instance is the derived stationary instance for this segment.
	Instance *flow.Instance
	// Events lists the events that took effect exactly at Start.
	Events []AppliedEvent
}

// Program is a compiled timeline: the tolled base instance and the
// stationary segments covering [0, horizon).
type Program struct {
	// Base is the instance the program was compiled against (tolls applied,
	// no events, unit schedule factors).
	Base *flow.Instance
	// Horizon is the covered simulated time.
	Horizon float64
	// Segments partition [0, Horizon) in ascending order; Segments[0] starts
	// at 0 and the last segment ends at Horizon.
	Segments []Segment
}

// Events returns every event the program replays, in firing order.
func (p *Program) Events() []AppliedEvent {
	var out []AppliedEvent
	for _, seg := range p.Segments {
		out = append(out, seg.Events...)
	}
	return out
}

// eventBinding is one resolved event occurrence.
type eventBinding struct {
	at     float64
	action string
	edge   graph.EdgeID
	patch  EdgePatch
}

// scheduleBinding is one resolved schedule with its target commodities.
type scheduleBinding struct {
	sched Schedule
	comms []int
}

// Compile lowers the timeline against the (already tolled — see ApplyTolls)
// base instance into a Program of stationary segments over [0, horizon).
// Segment boundaries are the union of the schedules' breakpoints and the
// event times; at each boundary the per-commodity demand factors are sampled
// and the per-edge event state updated, and a derived instance is built.
// A stationary timeline compiles to one segment reusing base itself.
// Errors wrap ErrBadTimeline.
func Compile(s *Spec, base *flow.Instance, horizon float64) (*Program, error) {
	if !isFinite(horizon) || horizon <= 0 {
		return nil, badTimeline(fmt.Errorf("horizon %g must be finite and > 0", horizon))
	}
	schedules, err := bindSchedules(s, base)
	if err != nil {
		return nil, err
	}
	events, err := bindEvents(s, base)
	if err != nil {
		return nil, err
	}

	// Segment boundaries: t = 0, every schedule breakpoint, every event time
	// inside the horizon.
	bps := []float64{0}
	for _, sb := range schedules {
		bps = append(bps, sb.sched.Breakpoints(horizon)...)
	}
	for _, ev := range events {
		if ev.at < horizon {
			bps = append(bps, ev.at)
		}
	}
	sort.Float64s(bps)
	uniq := bps[:1]
	for _, t := range bps[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	if len(uniq) > maxSegments {
		return nil, badTimeline(fmt.Errorf("%d segments exceed the %d-segment bound (schedule resolution too fine for the horizon)", len(uniq), maxSegments))
	}

	prog := &Program{Base: base, Horizon: horizon}
	nComm := base.NumCommodities()
	state := make([]EdgePatch, base.Graph().NumEdges()) // nil: base latency
	nextEvent := 0
	for i, start := range uniq {
		end := horizon
		if i+1 < len(uniq) {
			end = uniq[i+1]
		}
		seg := Segment{Start: start, End: end}

		// Apply the events firing at this boundary (ascending time, stable
		// in document order within a boundary; replace semantics per edge).
		for nextEvent < len(events) && events[nextEvent].at <= start {
			ev := events[nextEvent]
			nextEvent++
			state[ev.edge] = ev.patch
			fn, err := ev.patch(base.Latency(ev.edge))
			if err != nil {
				return nil, badTimeline(fmt.Errorf("event %q at t=%g edge %d: %w", ev.action, ev.at, ev.edge, err))
			}
			seg.Events = append(seg.Events, AppliedEvent{
				Time:   start,
				Action: ev.action,
				Edge:   int(ev.edge),
				Detail: fn.String(),
			})
		}

		// Sample the demand factors in effect on this segment.
		var scale []float64
		if len(schedules) > 0 {
			scale = make([]float64, nComm)
			for c := range scale {
				scale[c] = 1
			}
			for _, sb := range schedules {
				f := sb.sched.Factor(start)
				if !isFinite(f) || f <= 0 {
					return nil, badTimeline(fmt.Errorf("schedule %s factor %g at t=%g must be finite and > 0", sb.sched, f, start))
				}
				for _, c := range sb.comms {
					scale[c] = f
				}
			}
		}

		inst := base
		anyEvent := false
		for _, p := range state {
			if p != nil {
				anyEvent = true
				break
			}
		}
		unitScale := true
		for _, f := range scale {
			if f != 1 {
				unitScale = false
				break
			}
		}
		if anyEvent || !unitScale {
			lats := baseLatencies(base)
			for e, p := range state {
				if p == nil {
					continue
				}
				fn, err := p(lats[e])
				if err != nil {
					return nil, badTimeline(fmt.Errorf("edge %d patch at t=%g: %w", e, start, err))
				}
				lats[e] = fn
			}
			if unitScale {
				scale = nil
			}
			inst, err = base.Derive(lats, scale)
			if err != nil {
				return nil, badTimeline(fmt.Errorf("segment at t=%g: %w", start, err))
			}
		}
		seg.Instance = inst
		prog.Segments = append(prog.Segments, seg)
	}
	return prog, nil
}

// bindSchedules builds the spec's schedules and resolves their commodity
// targets against the instance.
func bindSchedules(s *Spec, base *flow.Instance) ([]scheduleBinding, error) {
	if s == nil || len(s.Schedules) == 0 {
		return nil, nil
	}
	byName := make(map[string][]int)
	for c := 0; c < base.NumCommodities(); c++ {
		name := base.Commodity(c).Name
		byName[name] = append(byName[name], c)
	}
	out := make([]scheduleBinding, 0, len(s.Schedules))
	for i, ss := range s.Schedules {
		sched, err := ss.Build()
		if err != nil {
			return nil, badTimeline(fmt.Errorf("schedule %d: %w", i, err))
		}
		var comms []int
		if ss.Commodity == "" {
			comms = make([]int, base.NumCommodities())
			for c := range comms {
				comms[c] = c
			}
		} else {
			comms = byName[ss.Commodity]
			if len(comms) == 0 {
				return nil, badTimeline(fmt.Errorf("schedule %d: no commodity named %q", i, ss.Commodity))
			}
		}
		out = append(out, scheduleBinding{sched: sched, comms: comms})
	}
	return out, nil
}

// bindEvents builds the spec's events, resolves their edges, and orders them
// by time (stable in document order within a time).
func bindEvents(s *Spec, base *flow.Instance) ([]eventBinding, error) {
	if s == nil || len(s.Events) == 0 {
		return nil, nil
	}
	out := make([]eventBinding, 0, len(s.Events))
	for i, es := range s.Events {
		if !isFinite(es.At) || es.At < 0 {
			return nil, badTimeline(fmt.Errorf("event %d: time %g must be finite and >= 0", i, es.At))
		}
		patch, err := es.Build()
		if err != nil {
			return nil, badTimeline(fmt.Errorf("event %d: %w", i, err))
		}
		edges, err := resolveEdges(base, es.Edge, es.From, es.To, false)
		if err != nil {
			return nil, badTimeline(fmt.Errorf("event %d: %w", i, err))
		}
		out = append(out, eventBinding{at: es.At, action: es.Action, edge: edges[0], patch: patch})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out, nil
}

// baseLatencies copies the base instance's latency functions.
func baseLatencies(base *flow.Instance) []latency.Function {
	g := base.Graph()
	lats := make([]latency.Function, g.NumEdges())
	for e := range lats {
		lats[e] = base.Latency(graph.EdgeID(e))
	}
	return lats
}
