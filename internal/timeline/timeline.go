// Package timeline makes scenarios time-varying: a declarative timeline
// block modulates an otherwise stationary run deterministically in simulated
// time through three catalog-registered component families —
//
//   - demand schedules (piecewise-linear and periodic/diurnal total-rate
//     profiles per commodity), consumed identically by the fluid integrator,
//     the per-agent engine and the mean-field count engine via mass
//     rescaling at phase boundaries;
//   - an event track (scheduled edge capacity drops, failures and
//     restorations) applied as latency patches and replayed through the
//     observer pipeline so trajectories record each incident;
//   - tolls (per-edge latency offsets, including the marginal-cost toll
//     ℓ + x·ℓ' derived from the latency derivative) applied at t = 0 for
//     price-of-anarchy experiments.
//
// Compile lowers a timeline against a base instance and horizon into a
// Program: a sequence of stationary segments, each a derived flow.Instance
// (flow.Instance.Derive shares the path enumeration and compiled incidence,
// so segments are cheap). Run then executes the program on any engine,
// rescaling commodity mass and deriving fresh per-segment seeds at every
// boundary, with observer phase indices and times offset so a timeline run
// looks like one continuous trajectory.
//
// Everything is deterministic: the same spec, instance, horizon and seed
// produce the same segment boundaries, the same event replay and the same
// result bytes.
package timeline

import (
	"encoding/json"
	"fmt"
	"math"

	"wardrop/internal/catalog"
	"wardrop/internal/spec"
)

// ErrBadTimeline classifies every invalid timeline document. It wraps
// spec.ErrBadSpec: the timeline block is part of the declarative spec
// vocabulary, so spec-level classifiers treat timeline failures as spec
// failures.
var ErrBadTimeline = fmt.Errorf("timeline: invalid timeline (%w)", spec.ErrBadSpec)

// badTimeline tags err with ErrBadTimeline unless it already wraps it.
func badTimeline(err error) error { return catalog.WrapSentinel(ErrBadTimeline, err) }

// Spec is the declarative timeline block of a scenario or campaign document.
// The zero value (and nil) is the stationary timeline: no schedules, no
// events, no tolls.
type Spec struct {
	// Schedules modulate commodity demand rates over time. At most one
	// schedule may target any given commodity; a schedule with no commodity
	// name targets all commodities and must then be the only one.
	Schedules []ScheduleSpec `json:"schedules,omitempty"`
	// Events patch edge latencies at scheduled times. Per edge the latest
	// event at or before t is in effect (replace semantics, relative to the
	// tolled base latency).
	Events []EventSpec `json:"events,omitempty"`
	// Tolls transform edge latencies once at t = 0 and persist for the whole
	// run.
	Tolls []TollSpec `json:"tolls,omitempty"`
}

// Empty reports whether the timeline modifies nothing. Nil-safe.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.Schedules) == 0 && len(s.Events) == 0 && len(s.Tolls) == 0)
}

// NeedsProgram reports whether the timeline varies in simulated time —
// schedules and events require segmented execution, while tolls alone only
// transform the instance at t = 0. Nil-safe.
func (s *Spec) NeedsProgram() bool {
	return s != nil && (len(s.Schedules) > 0 || len(s.Events) > 0)
}

// Validate checks the timeline's instance-independent shape: every component
// must resolve in its registry and build with finite, in-range parameters,
// schedule targets must be exclusive, and every event needs a well-formed
// edge selector. Commodity names and edge addresses are resolved against the
// instance later, by ApplyTolls and Compile. Nil-safe; errors wrap
// ErrBadTimeline (and therefore spec.ErrBadSpec).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	targeted := make(map[string]int, len(s.Schedules))
	for i, ss := range s.Schedules {
		if _, err := ss.Build(); err != nil {
			return badTimeline(fmt.Errorf("schedule %d: %w", i, err))
		}
		if j, dup := targeted[ss.Commodity]; dup {
			return badTimeline(fmt.Errorf("schedules %d and %d both target commodity %q", j, i, ss.Commodity))
		}
		targeted[ss.Commodity] = i
	}
	if _, all := targeted[""]; all && len(s.Schedules) > 1 {
		return badTimeline(fmt.Errorf("an all-commodity schedule (no commodity name) must be the only schedule"))
	}
	for i, es := range s.Events {
		if !isFinite(es.At) || es.At < 0 {
			return badTimeline(fmt.Errorf("event %d: time %g must be finite and >= 0", i, es.At))
		}
		if err := validateSelector(es.Edge, es.From, es.To, false); err != nil {
			return badTimeline(fmt.Errorf("event %d: %w", i, err))
		}
		if _, err := es.Build(); err != nil {
			return badTimeline(fmt.Errorf("event %d: %w", i, err))
		}
	}
	for i, ts := range s.Tolls {
		if err := validateSelector(ts.Edge, ts.From, ts.To, true); err != nil {
			return badTimeline(fmt.Errorf("toll %d: %w", i, err))
		}
		if _, err := ts.Build(); err != nil {
			return badTimeline(fmt.Errorf("toll %d: %w", i, err))
		}
	}
	return nil
}

// ScheduleSpec selects and parameterises one demand schedule.
type ScheduleSpec struct {
	// Kind names the schedule family in the Schedules registry
	// ("pwl", "diurnal", or a user-registered kind).
	Kind string `json:"kind"`
	// Commodity names the targeted commodity; empty targets all.
	Commodity string `json:"commodity,omitempty"`

	// Times and Factors are the pwl knots: the demand factor is linearly
	// interpolated between (Times[i], Factors[i]) and clamped outside.
	Times   []float64 `json:"times,omitempty"`
	Factors []float64 `json:"factors,omitempty"`

	// Base, Amplitude and Period parameterise the diurnal profile
	// base + amplitude·sin(2πt/period).
	Base      float64 `json:"base,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	Period    float64 `json:"period,omitempty"`

	// Samples is the staircase resolution: boundary samples per pwl interval
	// or per diurnal period (0 selects the kind's default).
	Samples int `json:"samples,omitempty"`

	// Params carries parameters of user-registered kinds verbatim.
	Params json.RawMessage `json:"params,omitempty"`
}

// Build resolves and constructs the schedule from the registry.
func (ss ScheduleSpec) Build() (Schedule, error) {
	raw, err := json.Marshal(ss)
	if err != nil {
		return nil, err
	}
	return Schedules.Build(ss.Kind, raw)
}

// EventSpec schedules one edge incident.
type EventSpec struct {
	// At is the simulated time the event fires.
	At float64 `json:"at"`
	// Action names the event family in the Events registry
	// ("block", "capacity", "restore", or a user-registered action).
	Action string `json:"action"`

	// Edge addresses the target edge by index; alternatively From/To address
	// it by its endpoints' node names (unambiguous only without parallel
	// edges).
	Edge *int   `json:"edge,omitempty"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// Capacity is the "capacity" action's rescale factor (> 0; < 1 drops
	// capacity, > 1 upgrades).
	Capacity float64 `json:"capacity,omitempty"`
	// Penalty is the "block" action's additive latency (0 selects the
	// default blocking penalty).
	Penalty float64 `json:"penalty,omitempty"`

	// Params carries parameters of user-registered actions verbatim.
	Params json.RawMessage `json:"params,omitempty"`
}

// Build resolves and constructs the event's edge patch from the registry.
func (es EventSpec) Build() (EdgePatch, error) {
	raw, err := json.Marshal(es)
	if err != nil {
		return nil, err
	}
	return Events.Build(es.Action, raw)
}

// TollSpec applies one toll.
type TollSpec struct {
	// Kind names the toll family in the Tolls registry
	// ("constant", "marginal", or a user-registered kind).
	Kind string `json:"kind"`

	// Edge/From/To address the tolled edge as in EventSpec; a toll with no
	// selector tolls every edge (the usual form for marginal-cost pricing).
	Edge *int   `json:"edge,omitempty"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// Amount is the "constant" toll's additive latency offset (>= 0).
	Amount float64 `json:"amount,omitempty"`

	// Params carries parameters of user-registered kinds verbatim.
	Params json.RawMessage `json:"params,omitempty"`
}

// Build resolves and constructs the toll's edge patch from the registry.
func (ts TollSpec) Build() (EdgePatch, error) {
	raw, err := json.Marshal(ts)
	if err != nil {
		return nil, err
	}
	return Tolls.Build(ts.Kind, raw)
}

// validateSelector checks the Edge/From/To edge-address shape shared by
// events and tolls.
func validateSelector(edge *int, from, to string, allowAll bool) error {
	switch {
	case edge != nil:
		if *edge < 0 {
			return fmt.Errorf("edge index %d must be >= 0", *edge)
		}
		if from != "" || to != "" {
			return fmt.Errorf("edge index and from/to are mutually exclusive")
		}
	case from != "" && to != "":
	case from != "" || to != "":
		return fmt.Errorf("from and to must be given together")
	case !allowAll:
		return fmt.Errorf("needs an edge index or a from/to node pair")
	}
	return nil
}

// isFinite reports x is neither NaN nor ±Inf.
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
