package timeline

import (
	"context"
	"fmt"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

// PolicyBuilder rebuilds the rerouting policy for one segment's instance.
// Policies are sized to instance invariants (the linear migrator's 1/ℓmax
// smoothing in particular), so a segment that raises ℓmax — a block event —
// needs its policy rebuilt to keep migration probabilities in [0, 1]. A nil
// builder reuses sc.Policy for every segment (correct for the best-response
// engine, which ignores the policy).
type PolicyBuilder func(*flow.Instance) (policy.Policy, error)

// Run executes a compiled timeline program on the scenario's engine, one
// stationary engine run per segment:
//
//   - the segment's final flow seeds the next segment, rescaled per
//     commodity to the new demand and re-projected onto the feasible set
//     (the stochastic engines then redistribute their fixed population
//     proportionally — mass rescaling at the boundary);
//   - stochastic engine seeds are re-derived per segment
//     (topo.DeriveSeed(seed, segment)), so segments draw independent
//     randomness streams while staying fully deterministic;
//   - observers see one continuous run: phase indices and times are offset
//     by the completed segments, and trajectory recording (sc.RecordEvery)
//     strides globally across segment boundaries;
//   - sc.StopAfterSatisfiedStreak applies only to the final segment — an
//     equilibrium reached before an incident must not end the run early —
//     while a stop requested by a caller observer ends the whole run;
//   - each event taking effect is reported to onEvent (if non-nil) as it is
//     replayed, and the full list is returned.
//
// The scenario's Instance and Horizon are taken from the program; Delta,
// Eps and Weak accounting runs per segment against that segment's instance.
// On cancellation the partial aggregate accumulated so far is returned with
// the context error, mirroring engine.Run.
func Run(ctx context.Context, prog *Program, sc engine.Scenario, buildPolicy PolicyBuilder, onEvent func(AppliedEvent), opts ...engine.RunOption) (*engine.Result, []AppliedEvent, error) {
	if prog == nil || len(prog.Segments) == 0 {
		return nil, nil, badTimeline(fmt.Errorf("empty program"))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var o engine.Options
	for _, opt := range opts {
		opt(&o)
	}
	var rec *dynamics.TrajectoryRecorder
	if sc.RecordEvery > 0 {
		rec = &dynamics.TrajectoryRecorder{Every: sc.RecordEvery}
	}

	var (
		applied  []AppliedEvent
		total    = &engine.Result{}
		phaseOff int
		f        = sc.InitialFlow
		prev     *flow.Instance
	)
	last := len(prog.Segments) - 1
	for k, seg := range prog.Segments {
		for _, ev := range seg.Events {
			applied = append(applied, ev)
			if onEvent != nil {
				onEvent(ev)
			}
		}

		segSc := sc
		segSc.Instance = seg.Instance
		segSc.Horizon = seg.End - seg.Start
		segSc.Engine = seededEngine(sc.Engine, k)
		segSc.RecordEvery = 0 // recording is handled by the global recorder
		if k < last {
			segSc.StopAfterSatisfiedStreak = 0
		}
		if buildPolicy != nil {
			pol, err := buildPolicy(seg.Instance)
			if err != nil {
				return total, applied, badTimeline(fmt.Errorf("segment %d policy: %w", k, err))
			}
			segSc.Policy = pol
		}
		if f != nil && prev != nil {
			segSc.InitialFlow = rescaleFlow(f, prev, seg.Instance)
		} else {
			segSc.InitialFlow = f
		}

		segObs := makeSegmentObserver(o.Observer, rec, seg.Start, phaseOff)
		segOpts := []engine.RunOption{engine.WithWorkspace(o.Workspace)}
		if segObs != nil {
			segOpts = append(segOpts, engine.WithObserver(segObs))
		}
		res, err := engine.Run(ctx, segSc, segOpts...)
		if res != nil {
			total.Phases += res.Phases
			total.Elapsed = seg.Start + res.Elapsed
			total.UnsatisfiedPhases += res.UnsatisfiedPhases
			total.Final = res.Final
			total.FinalPotential = res.FinalPotential
			phaseOff += res.Phases
			f = res.Final
			prev = seg.Instance
		}
		if err != nil {
			if rec != nil {
				total.Trajectory = rec.Samples
			}
			return total, applied, err
		}
		if res.Stopped {
			// In the final segment a stop is the normal satisfied-streak (or
			// observer) exit; in an earlier one only a caller observer can
			// have stopped — either way the whole run ends here.
			total.Stopped = true
			break
		}
	}
	if rec != nil {
		total.Trajectory = rec.Samples
	}
	return total, applied, nil
}

// seededEngine re-derives the stochastic engines' seed for segment k, so
// each segment consumes an independent randomness stream. Segment 0 keeps
// the configured seed; deterministic engines pass through unchanged.
func seededEngine(e engine.Engine, k int) engine.Engine {
	if k == 0 {
		return e
	}
	switch eng := e.(type) {
	case engine.Agents:
		eng.Seed = topo.DeriveSeed(eng.Seed, uint64(k))
		return eng
	case engine.Count:
		eng.Seed = topo.DeriveSeed(eng.Seed, uint64(k))
		return eng
	default:
		return e
	}
}

// rescaleFlow maps the previous segment's final flow onto the next
// segment's feasible set: each commodity block is scaled by its demand
// ratio, then projected to repair rounding exactly.
func rescaleFlow(f flow.Vector, prev, next *flow.Instance) flow.Vector {
	out := f.Clone()
	for i := 0; i < next.NumCommodities(); i++ {
		oldD := prev.Commodity(i).Demand
		newD := next.Commodity(i).Demand
		if oldD == newD {
			continue
		}
		r := newD / oldD
		lo, hi := next.CommodityRange(i)
		for g := lo; g < hi; g++ {
			out[g] *= r
		}
	}
	next.Project(out, 1e-9)
	return out
}

// makeSegmentObserver composes the caller's observer and the global
// trajectory recorder behind an index/time offset, so both see the
// timeline-global phase numbering.
func makeSegmentObserver(caller dynamics.Observer, rec *dynamics.TrajectoryRecorder, timeOff float64, phaseOff int) dynamics.Observer {
	var inner dynamics.Observer
	switch {
	case caller != nil && rec != nil:
		inner = dynamics.MultiObserver(caller, rec)
	case caller != nil:
		inner = caller
	case rec != nil:
		inner = rec
	default:
		return nil
	}
	return offsetObserver{inner: inner, timeOff: timeOff, phaseOff: phaseOff}
}

// offsetObserver shifts phase times and indices into the timeline-global
// frame before delivery.
type offsetObserver struct {
	inner    dynamics.Observer
	timeOff  float64
	phaseOff int
}

func (w offsetObserver) ObservePhase(info dynamics.PhaseInfo) bool {
	info.Time += w.timeOff
	info.Index += w.phaseOff
	return w.inner.ObservePhase(info)
}
