package timeline

import (
	"encoding/json"
	"fmt"

	"wardrop/internal/catalog"
	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// EdgePatch transforms one edge's latency function. Events and tolls are
// both patches: an event patches the (tolled) base function of its edge for
// as long as it is the edge's latest event, a toll patches it once at t = 0.
type EdgePatch func(latency.Function) (latency.Function, error)

// DefaultBlockPenalty is the additive latency of a "block" event with no
// explicit penalty: large enough that no equilibrium routes over the edge on
// the unit-demand instances the repro uses, small enough to keep the
// dynamics' migration probabilities well-conditioned.
const DefaultBlockPenalty = 1e3

// Events is the event-action registry ("block", "capacity", "restore"
// builtin).
var Events = newEvents()

func newEvents() *catalog.Registry[EdgePatch] {
	r := catalog.NewRegistry[EdgePatch]("event")
	r.MustRegister(catalog.Entry[EdgePatch]{
		Name: "block",
		Doc:  "edge failure: adds a large constant penalty to the edge latency",
		Params: []catalog.Param{
			{Name: "penalty", Type: "float", Doc: "additive latency (default 1e3)"},
		},
		Build: func(args json.RawMessage) (EdgePatch, error) {
			var p struct {
				Penalty float64 `json:"penalty"`
			}
			if err := catalog.DecodeArgs(args, &p); err != nil {
				return nil, err
			}
			if !isFinite(p.Penalty) || p.Penalty < 0 {
				return nil, fmt.Errorf("block penalty %g must be finite and >= 0", p.Penalty)
			}
			if p.Penalty == 0 {
				p.Penalty = DefaultBlockPenalty
			}
			penalty := p.Penalty
			return func(f latency.Function) (latency.Function, error) {
				return latency.Shifted{F: f, Offset: penalty}, nil
			}, nil
		},
	})
	r.MustRegister(catalog.Entry[EdgePatch]{
		Name: "capacity",
		Doc:  "capacity change: flow x is served as x/capacity of the base edge",
		Params: []catalog.Param{
			{Name: "capacity", Type: "float", Doc: "rescale factor (> 0; < 1 drops capacity)"},
		},
		Build: func(args json.RawMessage) (EdgePatch, error) {
			var p struct {
				Capacity float64 `json:"capacity"`
			}
			if err := catalog.DecodeArgs(args, &p); err != nil {
				return nil, err
			}
			if !isFinite(p.Capacity) || p.Capacity <= 0 {
				return nil, fmt.Errorf("capacity %g must be finite and > 0", p.Capacity)
			}
			c := p.Capacity
			return func(f latency.Function) (latency.Function, error) {
				return latency.CapacityScaled{F: f, Capacity: c}, nil
			}, nil
		},
	})
	r.MustRegister(catalog.Entry[EdgePatch]{
		Name: "restore",
		Doc:  "clears the edge's previous events, restoring its base latency",
		Build: func(json.RawMessage) (EdgePatch, error) {
			return func(f latency.Function) (latency.Function, error) { return f, nil }, nil
		},
	})
	return r
}

// Tolls is the toll registry ("constant", "marginal" builtin).
var Tolls = newTolls()

func newTolls() *catalog.Registry[EdgePatch] {
	r := catalog.NewRegistry[EdgePatch]("toll")
	r.MustRegister(catalog.Entry[EdgePatch]{
		Name: "constant",
		Doc:  "constant per-edge toll: adds amount to the edge latency",
		Params: []catalog.Param{
			{Name: "amount", Type: "float", Doc: "additive latency offset (>= 0)"},
		},
		Build: func(args json.RawMessage) (EdgePatch, error) {
			var p struct {
				Amount float64 `json:"amount"`
			}
			if err := catalog.DecodeArgs(args, &p); err != nil {
				return nil, err
			}
			if !isFinite(p.Amount) || p.Amount < 0 {
				return nil, fmt.Errorf("constant toll amount %g must be finite and >= 0", p.Amount)
			}
			amount := p.Amount
			return func(f latency.Function) (latency.Function, error) {
				return latency.Shifted{F: f, Offset: amount}, nil
			}, nil
		},
	})
	r.MustRegister(catalog.Entry[EdgePatch]{
		Name: "marginal",
		Doc:  "marginal-cost toll: replaces the edge latency by l(x) + x*l'(x)",
		Build: func(json.RawMessage) (EdgePatch, error) {
			return func(f latency.Function) (latency.Function, error) {
				return latency.Marginal{F: f}, nil
			}, nil
		},
	})
	return r
}

// resolveEdges maps an Edge/From/To selector to concrete edge IDs on the
// instance. A nil selector (no index, no node pair) selects every edge when
// allowAll is set. From/To addressing requires the pair to name exactly one
// edge — with parallel edges the index form must be used.
func resolveEdges(inst *flow.Instance, edge *int, from, to string, allowAll bool) ([]graph.EdgeID, error) {
	g := inst.Graph()
	if edge != nil {
		if *edge < 0 || *edge >= g.NumEdges() {
			return nil, fmt.Errorf("edge index %d out of range [0,%d)", *edge, g.NumEdges())
		}
		return []graph.EdgeID{graph.EdgeID(*edge)}, nil
	}
	if from == "" && to == "" {
		if !allowAll {
			return nil, fmt.Errorf("needs an edge index or a from/to node pair")
		}
		all := make([]graph.EdgeID, g.NumEdges())
		for e := range all {
			all[e] = graph.EdgeID(e)
		}
		return all, nil
	}
	fromID, ok := g.Node(from)
	if !ok {
		return nil, fmt.Errorf("unknown node %q", from)
	}
	toID, ok := g.Node(to)
	if !ok {
		return nil, fmt.Errorf("unknown node %q", to)
	}
	var match []graph.EdgeID
	for e := 0; e < g.NumEdges(); e++ {
		ed, _ := g.Edge(graph.EdgeID(e))
		if ed.From == fromID && ed.To == toID {
			match = append(match, graph.EdgeID(e))
		}
	}
	switch len(match) {
	case 0:
		return nil, fmt.Errorf("no edge %s->%s", from, to)
	case 1:
		return match, nil
	default:
		return nil, fmt.Errorf("%d parallel edges %s->%s: address by edge index", len(match), from, to)
	}
}

// ApplyTolls returns the instance with the spec's tolls applied to its edge
// latencies — the t = 0 transformation that persists for the whole run, and
// the instance every downstream resolution (policy smoothness, safe update
// period, start distribution, Compile) must see. A timeline without tolls
// returns inst unchanged. Nil-safe; errors wrap ErrBadTimeline.
func ApplyTolls(s *Spec, inst *flow.Instance) (*flow.Instance, error) {
	if s == nil || len(s.Tolls) == 0 {
		return inst, nil
	}
	g := inst.Graph()
	lats := make([]latency.Function, g.NumEdges())
	for e := range lats {
		lats[e] = inst.Latency(graph.EdgeID(e))
	}
	for i, ts := range s.Tolls {
		patch, err := ts.Build()
		if err != nil {
			return nil, badTimeline(fmt.Errorf("toll %d: %w", i, err))
		}
		edges, err := resolveEdges(inst, ts.Edge, ts.From, ts.To, true)
		if err != nil {
			return nil, badTimeline(fmt.Errorf("toll %d: %w", i, err))
		}
		for _, e := range edges {
			if lats[e], err = patch(lats[e]); err != nil {
				return nil, badTimeline(fmt.Errorf("toll %d edge %d: %w", i, e, err))
			}
		}
	}
	tolled, err := inst.Derive(lats, nil)
	if err != nil {
		return nil, badTimeline(err)
	}
	return tolled, nil
}
