package timeline

import (
	"context"
	"errors"
	"math"
	"testing"

	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/solver"
	"wardrop/internal/spec"
	"wardrop/internal/topo"
)

func braess(t *testing.T) *flow.Instance {
	t.Helper()
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testPolicy(t *testing.T, inst *flow.Instance) policy.Policy {
	t.Helper()
	mig, err := policy.NewLinear(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	return policy.Policy{Sampler: policy.Uniform{}, Migrator: mig}
}

func rebuildPolicy(t *testing.T) PolicyBuilder {
	t.Helper()
	return func(inst *flow.Instance) (policy.Policy, error) {
		mig, err := policy.NewLinear(inst.LMax())
		if err != nil {
			return policy.Policy{}, err
		}
		return policy.Policy{Sampler: policy.Uniform{}, Migrator: mig}, nil
	}
}

func intp(i int) *int { return &i }

// Every invalid timeline must classify as spec.ErrBadSpec (through
// ErrBadTimeline), so the scenario and campaign layers map it to their own
// bad-input sentinels and the HTTP layer answers 400, not 500.
func TestValidateClassification(t *testing.T) {
	cases := []struct {
		name string
		tl   Spec
	}{
		{"unknown schedule kind", Spec{Schedules: []ScheduleSpec{{Kind: "lunar"}}}},
		{"pwl non-ascending times", Spec{Schedules: []ScheduleSpec{{Kind: "pwl", Times: []float64{1, 0}, Factors: []float64{1, 1}}}}},
		{"pwl non-positive factor", Spec{Schedules: []ScheduleSpec{{Kind: "pwl", Times: []float64{0, 1}, Factors: []float64{1, 0}}}}},
		{"pwl NaN factor", Spec{Schedules: []ScheduleSpec{{Kind: "pwl", Times: []float64{0, 1}, Factors: []float64{1, math.NaN()}}}}},
		{"diurnal negative factor range", Spec{Schedules: []ScheduleSpec{{Kind: "diurnal", Base: 1, Amplitude: 2, Period: 4}}}},
		{"diurnal infinite period", Spec{Schedules: []ScheduleSpec{{Kind: "diurnal", Base: 1, Amplitude: 0.5, Period: math.Inf(1)}}}},
		{"duplicate commodity target", Spec{Schedules: []ScheduleSpec{
			{Kind: "diurnal", Base: 1, Amplitude: 0.5, Period: 4},
			{Kind: "pwl", Times: []float64{0}, Factors: []float64{2}},
		}}},
		{"event negative time", Spec{Events: []EventSpec{{At: -1, Action: "restore", Edge: intp(0)}}}},
		{"event NaN time", Spec{Events: []EventSpec{{At: math.NaN(), Action: "restore", Edge: intp(0)}}}},
		{"event without selector", Spec{Events: []EventSpec{{At: 1, Action: "restore"}}}},
		{"event half selector", Spec{Events: []EventSpec{{At: 1, Action: "restore", From: "s"}}}},
		{"event unknown action", Spec{Events: []EventSpec{{At: 1, Action: "meteor", Edge: intp(0)}}}},
		{"event bad capacity", Spec{Events: []EventSpec{{At: 1, Action: "capacity", Edge: intp(0), Capacity: -2}}}},
		{"toll unknown kind", Spec{Tolls: []TollSpec{{Kind: "congestion-zone"}}}},
		{"toll negative amount", Spec{Tolls: []TollSpec{{Kind: "constant", Amount: -1}}}},
		{"toll infinite amount", Spec{Tolls: []TollSpec{{Kind: "constant", Amount: math.Inf(1)}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tl.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid timeline")
			}
			if !errors.Is(err, ErrBadTimeline) || !errors.Is(err, spec.ErrBadSpec) {
				t.Fatalf("error %v does not wrap ErrBadTimeline and spec.ErrBadSpec", err)
			}
		})
	}

	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil timeline must validate: %v", err)
	}
	if !nilSpec.Empty() || nilSpec.NeedsProgram() {
		t.Fatal("nil timeline must be empty and program-free")
	}
}

// A stationary timeline compiles to a single segment that reuses the base
// instance itself — no derivation, no event replay — which is what keeps
// stationary scenarios byte-identical to their pre-timeline outputs.
func TestCompileStationary(t *testing.T) {
	inst := braess(t)
	for _, tl := range []*Spec{nil, {}} {
		prog, err := Compile(tl, inst, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(prog.Segments) != 1 {
			t.Fatalf("stationary timeline compiled to %d segments", len(prog.Segments))
		}
		seg := prog.Segments[0]
		if seg.Instance != inst {
			t.Fatal("stationary segment must reuse the base instance")
		}
		if seg.Start != 0 || seg.End != 10 || len(seg.Events) != 0 {
			t.Fatalf("stationary segment = %+v", seg)
		}
	}
}

// Compile unions schedule breakpoints and event times into segment
// boundaries, samples the demand factor at each segment start, and applies
// per-edge replace semantics for events.
func TestCompileSegmentation(t *testing.T) {
	inst := braess(t)
	tl := &Spec{
		// A single-knot pwl holds factor 2 for the whole run (clamping), so
		// every segment's demand doubles without adding breakpoints.
		Schedules: []ScheduleSpec{{Kind: "pwl", Times: []float64{0}, Factors: []float64{2}}},
		Events: []EventSpec{
			{At: 4, Action: "capacity", Edge: intp(0), Capacity: 0.5},
			{At: 2, Action: "block", Edge: intp(4), Penalty: 7},
			{At: 6, Action: "restore", Edge: intp(4)},
			{At: 12, Action: "block", Edge: intp(1)}, // beyond the horizon: never fires
		},
	}
	prog, err := Compile(tl, inst, 10)
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]float64, len(prog.Segments))
	for i, seg := range prog.Segments {
		starts[i] = seg.Start
	}
	wantStarts := []float64{0, 2, 4, 6}
	if len(starts) != len(wantStarts) {
		t.Fatalf("segment starts = %v, want %v", starts, wantStarts)
	}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] {
			t.Fatalf("segment starts = %v, want %v", starts, wantStarts)
		}
	}
	if last := prog.Segments[len(prog.Segments)-1]; last.End != 10 {
		t.Fatalf("last segment ends at %g, want the horizon 10", last.End)
	}

	// The schedule factor doubles every segment's demand.
	for i, seg := range prog.Segments {
		got := seg.Instance.Commodity(0).Demand
		want := 2 * inst.Commodity(0).Demand
		if got != want {
			t.Fatalf("segment %d demand = %g, want %g", i, got, want)
		}
	}

	// Event replay: block at 2, capacity at 4 (both edges patched), restore
	// at 6 clears the bridge but keeps the capacity patch.
	events := prog.Events()
	if len(events) != 3 {
		t.Fatalf("replayed events = %+v, want 3", events)
	}
	if events[0].Action != "block" || events[0].Time != 2 || events[0].Edge != 4 {
		t.Fatalf("events[0] = %+v", events[0])
	}
	if events[1].Action != "capacity" || events[1].Edge != 0 {
		t.Fatalf("events[1] = %+v", events[1])
	}
	if events[2].Action != "restore" || events[2].Edge != 4 {
		t.Fatalf("events[2] = %+v", events[2])
	}
	// Latency evidence: on [2,4) the bridge carries the +7 block; on [6,10)
	// it is back to base while edge 0 keeps half capacity.
	if got := prog.Segments[1].Instance.Latency(4).Value(0); got != 7 {
		t.Fatalf("blocked bridge latency(0) = %g, want 7", got)
	}
	last := prog.Segments[3].Instance
	if got := last.Latency(4).Value(0); got != inst.Latency(4).Value(0) {
		t.Fatalf("restored bridge latency(0) = %g, want base %g", got, inst.Latency(4).Value(0))
	}
	if got, want := last.Latency(0).Value(1), inst.Latency(0).Value(2); got != want {
		t.Fatalf("half-capacity edge 0 latency(1) = %g, want %g", got, want)
	}
}

// A schedule resolution too fine for the horizon must fail loudly instead of
// deriving millions of instances.
func TestCompileSegmentBound(t *testing.T) {
	inst := braess(t)
	tl := &Spec{Schedules: []ScheduleSpec{{Kind: "diurnal", Base: 1, Amplitude: 0.5, Period: 1e-4}}}
	_, err := Compile(tl, inst, 10)
	if err == nil || !errors.Is(err, spec.ErrBadSpec) {
		t.Fatalf("segment-bound overflow returned %v, want a spec.ErrBadSpec wrap", err)
	}
}

// ApplyTolls is the t = 0 instance transform: nil and toll-free timelines
// pass the instance through unchanged (pointer identity — the stationary
// fast path), and the tolled instance shares the base's path enumeration so
// flow vectors stay index-compatible.
func TestApplyTolls(t *testing.T) {
	inst := braess(t)
	for _, tl := range []*Spec{nil, {}, {Events: []EventSpec{{At: 1, Action: "restore", Edge: intp(0)}}}} {
		got, err := ApplyTolls(tl, inst)
		if err != nil {
			t.Fatal(err)
		}
		if got != inst {
			t.Fatal("toll-free timeline must return the instance unchanged")
		}
	}

	tolled, err := ApplyTolls(&Spec{Tolls: []TollSpec{{Kind: "constant", Amount: 0.25, From: "a", To: "b"}}}, inst)
	if err != nil {
		t.Fatal(err)
	}
	if tolled == inst {
		t.Fatal("tolling must derive a new instance")
	}
	if got, want := tolled.Latency(4).Value(0), inst.Latency(4).Value(0)+0.25; got != want {
		t.Fatalf("tolled bridge latency = %g, want %g", got, want)
	}
	if tolled.NumPaths() != inst.NumPaths() {
		t.Fatalf("tolled instance enumerates %d paths, want %d", tolled.NumPaths(), inst.NumPaths())
	}

	// An unresolvable selector is a bad spec.
	_, err = ApplyTolls(&Spec{Tolls: []TollSpec{{Kind: "constant", Amount: 1, From: "s", To: "nowhere"}}}, inst)
	if err == nil || !errors.Is(err, spec.ErrBadSpec) {
		t.Fatalf("unknown node returned %v, want a spec.ErrBadSpec wrap", err)
	}
}

// The Braess-onset experiment: the bridge starts blocked (the classic
// four-edge network), and opening it mid-run degrades the equilibrium cost
// from 1.5 to 2 — adding capacity makes everyone worse off. Each segment's
// terminal state is cross-checked against the Frank–Wolfe reference solution
// of that segment's instance.
func TestBraessOnset(t *testing.T) {
	inst := braess(t)
	tl := &Spec{Events: []EventSpec{
		{At: 0, Action: "block", Edge: intp(4), Penalty: 4},
		{At: 40, Action: "restore", Edge: intp(4)},
	}}
	const horizon = 400.0
	prog, err := Compile(tl, inst, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Segments) != 2 {
		t.Fatalf("onset program has %d segments, want 2", len(prog.Segments))
	}

	// Reference equilibria per segment: blocked cost 1.5, open cost 2.
	segCost := make([]float64, 2)
	segPhi := make([]float64, 2)
	for i, seg := range prog.Segments {
		sol, err := solver.SolveEquilibrium(seg.Instance, solver.Options{RelGapTol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		pl := seg.Instance.PathLatencies(sol.Flow)
		segCost[i] = seg.Instance.OverallAvgLatency(sol.Flow, pl)
		segPhi[i] = sol.Potential
	}
	if math.Abs(segCost[0]-1.5) > 1e-6 {
		t.Fatalf("blocked-bridge equilibrium cost = %g, want 1.5", segCost[0])
	}
	if math.Abs(segCost[1]-2) > 1e-6 {
		t.Fatalf("open-bridge equilibrium cost = %g, want 2", segCost[1])
	}

	// Run the fluid dynamics through the program and check each epoch
	// converges to its segment's equilibrium potential.
	sc := engine.Scenario{
		Engine:       engine.Fluid{},
		Instance:     inst,
		Policy:       testPolicy(t, inst),
		UpdatePeriod: 0.25,
		Horizon:      horizon,
		RecordEvery:  1,
	}
	var seen []AppliedEvent
	res, events, err := Run(context.Background(), prog, sc, rebuildPolicy(t), func(ev AppliedEvent) {
		seen = append(seen, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || len(seen) != 2 {
		t.Fatalf("replayed %d events (callback saw %d), want 2", len(events), len(seen))
	}
	if events[0].Action != "block" || events[0].Time != 0 || events[1].Action != "restore" || events[1].Time != 40 {
		t.Fatalf("events = %+v", events)
	}
	if res.Elapsed != horizon {
		t.Fatalf("elapsed %g, want %g", res.Elapsed, horizon)
	}

	// Terminal state: at the open-bridge equilibrium.
	if d := math.Abs(res.FinalPotential - segPhi[1]); d > 0.02 {
		t.Fatalf("final potential %g vs open-bridge Φ* %g (|diff| %g)", res.FinalPotential, segPhi[1], d)
	}
	lastInst := prog.Segments[1].Instance
	finalCost := lastInst.OverallAvgLatency(res.Final, lastInst.PathLatencies(res.Final))
	if d := math.Abs(finalCost - 2); d > 0.05 {
		t.Fatalf("final travel cost %g, want ~2 (the Braess degradation)", finalCost)
	}

	// Epoch 1: just before the bridge opens the run must sit at the
	// blocked-bridge equilibrium. The trajectory strides globally, so find
	// the last sample before t = 40.
	if len(res.Trajectory) == 0 {
		t.Fatal("no trajectory recorded")
	}
	var preOnset float64
	found := false
	for _, s := range res.Trajectory {
		if s.Time < 40 {
			preOnset = s.Potential
			found = true
		}
	}
	if !found {
		t.Fatalf("no trajectory sample before the onset (samples: %d)", len(res.Trajectory))
	}
	if d := math.Abs(preOnset - segPhi[0]); d > 0.02 {
		t.Fatalf("pre-onset potential %g vs blocked-bridge Φ* %g (|diff| %g)", preOnset, segPhi[0], d)
	}

	// Determinism: a second run reproduces the result exactly.
	res2, _, err := Run(context.Background(), prog, sc, rebuildPolicy(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalPotential != res.FinalPotential || res2.Phases != res.Phases {
		t.Fatalf("rerun diverged: Φ %g vs %g, phases %d vs %d", res2.FinalPotential, res.FinalPotential, res2.Phases, res.Phases)
	}
}
