package timeline

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"wardrop/internal/catalog"
)

// Schedule is a deterministic demand-rate profile: a multiplier applied to a
// commodity's base demand as a function of simulated time. The engines
// consume schedules as a staircase — the factor is sampled at each segment
// boundary and held until the next — so Breakpoints controls how finely a
// continuously varying profile is discretised.
type Schedule interface {
	// Factor returns the demand multiplier at time t (finite, > 0).
	Factor(t float64) float64
	// Breakpoints returns ascending times in (0, horizon) at which the held
	// factor is resampled (t = 0 is an implicit breakpoint).
	Breakpoints(horizon float64) []float64
	// String describes the schedule for event logs and error messages.
	String() string
}

// Schedules is the demand-schedule registry ("pwl", "diurnal" builtin).
var Schedules = newSchedules()

func newSchedules() *catalog.Registry[Schedule] {
	r := catalog.NewRegistry[Schedule]("schedule")
	r.MustRegister(catalog.Entry[Schedule]{
		Name: "pwl",
		Doc:  "piecewise-linear demand factor through (times, factors) knots, clamped outside",
		Params: []catalog.Param{
			{Name: "times", Type: "[]float", Doc: "ascending knot times (>= 0)"},
			{Name: "factors", Type: "[]float", Doc: "demand factors at the knots (finite, > 0)"},
			{Name: "samples", Type: "int", Doc: "staircase samples per changing interval (default 4)"},
		},
		Build: func(args json.RawMessage) (Schedule, error) {
			var p struct {
				Times   []float64 `json:"times"`
				Factors []float64 `json:"factors"`
				Samples int       `json:"samples"`
			}
			if err := catalog.DecodeArgs(args, &p); err != nil {
				return nil, err
			}
			return newPWL(p.Times, p.Factors, p.Samples)
		},
	})
	r.MustRegister(catalog.Entry[Schedule]{
		Name: "diurnal",
		Doc:  "periodic demand factor base + amplitude*sin(2*pi*t/period)",
		Params: []catalog.Param{
			{Name: "base", Type: "float", Doc: "mean factor (must exceed |amplitude|)"},
			{Name: "amplitude", Type: "float", Doc: "oscillation amplitude"},
			{Name: "period", Type: "float", Doc: "oscillation period (> 0)"},
			{Name: "samples", Type: "int", Doc: "staircase samples per period (default 8)"},
		},
		Build: func(args json.RawMessage) (Schedule, error) {
			var p struct {
				Base      float64 `json:"base"`
				Amplitude float64 `json:"amplitude"`
				Period    float64 `json:"period"`
				Samples   int     `json:"samples"`
			}
			if err := catalog.DecodeArgs(args, &p); err != nil {
				return nil, err
			}
			return newDiurnal(p.Base, p.Amplitude, p.Period, p.Samples)
		},
	})
	return r
}

// pwl interpolates the demand factor linearly between knots.
type pwl struct {
	times, factors []float64
	samples        int
}

func newPWL(times, factors []float64, samples int) (Schedule, error) {
	if len(times) == 0 || len(times) != len(factors) {
		return nil, fmt.Errorf("pwl needs matching non-empty times and factors (%d vs %d)", len(times), len(factors))
	}
	if samples < 0 {
		return nil, fmt.Errorf("pwl samples %d must be >= 0", samples)
	}
	if samples == 0 {
		samples = 4
	}
	for i, t := range times {
		if !isFinite(t) || t < 0 {
			return nil, fmt.Errorf("pwl time %d = %g must be finite and >= 0", i, t)
		}
		if i > 0 && t <= times[i-1] {
			return nil, fmt.Errorf("pwl times must be strictly ascending (time %d = %g after %g)", i, t, times[i-1])
		}
	}
	for i, f := range factors {
		if !isFinite(f) || f <= 0 {
			return nil, fmt.Errorf("pwl factor %d = %g must be finite and > 0", i, f)
		}
	}
	return pwl{
		times:   append([]float64(nil), times...),
		factors: append([]float64(nil), factors...),
		samples: samples,
	}, nil
}

func (p pwl) Factor(t float64) float64 {
	if t <= p.times[0] {
		return p.factors[0]
	}
	last := len(p.times) - 1
	if t >= p.times[last] {
		return p.factors[last]
	}
	i := sort.SearchFloat64s(p.times, t)
	if p.times[i] == t {
		return p.factors[i]
	}
	// Interpolate on (times[i-1], times[i]).
	w := (t - p.times[i-1]) / (p.times[i] - p.times[i-1])
	return p.factors[i-1] + w*(p.factors[i]-p.factors[i-1])
}

func (p pwl) Breakpoints(horizon float64) []float64 {
	var bps []float64
	add := func(t float64) {
		if t > 0 && t < horizon {
			bps = append(bps, t)
		}
	}
	// Knots always resample; intervals with a changing factor additionally
	// get samples-1 interior points to staircase the ramp.
	for i, t := range p.times {
		add(t)
		if i+1 < len(p.times) && p.factors[i] != p.factors[i+1] {
			step := (p.times[i+1] - t) / float64(p.samples)
			for k := 1; k < p.samples; k++ {
				add(t + float64(k)*step)
			}
		}
	}
	sort.Float64s(bps)
	return bps
}

func (p pwl) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pwl(")
	for i := range p.times {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g:%g", p.times[i], p.factors[i])
	}
	b.WriteByte(')')
	return b.String()
}

// diurnal is the periodic profile base + amplitude·sin(2πt/period).
type diurnal struct {
	base, amplitude, period float64
	samples                 int
}

func newDiurnal(base, amplitude, period float64, samples int) (Schedule, error) {
	if !isFinite(base) || !isFinite(amplitude) || !isFinite(period) {
		return nil, fmt.Errorf("diurnal parameters must be finite (base %g, amplitude %g, period %g)", base, amplitude, period)
	}
	if period <= 0 {
		return nil, fmt.Errorf("diurnal period %g must be > 0", period)
	}
	if base-math.Abs(amplitude) <= 0 {
		return nil, fmt.Errorf("diurnal base %g must exceed |amplitude| %g to keep factors positive", base, math.Abs(amplitude))
	}
	if samples < 0 {
		return nil, fmt.Errorf("diurnal samples %d must be >= 0", samples)
	}
	if samples == 0 {
		samples = 8
	}
	return diurnal{base: base, amplitude: amplitude, period: period, samples: samples}, nil
}

func (d diurnal) Factor(t float64) float64 {
	return d.base + d.amplitude*math.Sin(2*math.Pi*t/d.period)
}

func (d diurnal) Breakpoints(horizon float64) []float64 {
	var bps []float64
	step := d.period / float64(d.samples)
	for k := 1; ; k++ {
		t := float64(k) * step
		if t >= horizon {
			break
		}
		bps = append(bps, t)
	}
	return bps
}

func (d diurnal) String() string {
	return fmt.Sprintf("diurnal(base=%g,amp=%g,period=%g)", d.base, d.amplitude, d.period)
}
