package timeline

import (
	"context"
	"math"
	"testing"

	"wardrop/internal/engine"
	"wardrop/internal/topo"
)

// summary condenses replicate outcomes for the equivalence comparisons.
type summary struct {
	mean, variance float64
}

func summarize(xs []float64) summary {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return summary{mean: mean, variance: ss / float64(len(xs)-1)}
}

// Population rescaling at schedule breakpoints must preserve the
// distributional equivalence of the count engine and the per-agent engine
// (the same property internal/meanfield pins for stationary runs): both
// engines cross the same boundaries, rescale the same commodity masses, and
// re-derive per-segment seeds the same way, so over fixed-seed replicate
// sets their final-potential and final-flow statistics agree within small
// multiples of the standard error. Everything is seeded — the test is
// deterministic.
func TestScheduleRescalingEquivalenceCountVsAgents(t *testing.T) {
	inst := braess(t)
	// Demand ramps 1 → 0.6 over [2, 4]: the pwl staircase inserts several
	// breakpoints, so both engines rescale their populations repeatedly.
	tl := &Spec{Schedules: []ScheduleSpec{{Kind: "pwl", Times: []float64{2, 4}, Factors: []float64{1, 0.6}}}}
	const (
		n       = 2000
		T       = 0.25
		horizon = 8.0
		reps    = 40
	)
	prog, err := Compile(tl, inst, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Segments) < 3 {
		t.Fatalf("ramp compiled to %d segments, want several breakpoints", len(prog.Segments))
	}

	base := engine.Scenario{
		Instance:     inst,
		Policy:       testPolicy(t, inst),
		UpdatePeriod: T,
		Horizon:      horizon,
	}
	run := func(e engine.Engine) (phi, f0 float64) {
		t.Helper()
		sc := base
		sc.Engine = e
		res, _, err := Run(context.Background(), prog, sc, rebuildPolicy(t), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalPotential, res.Final[0]
	}

	countPhi := make([]float64, 0, reps)
	agentPhi := make([]float64, 0, reps)
	countF0 := make([]float64, 0, reps)
	agentF0 := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		seed := topo.DeriveSeed(1234, uint64(rep))
		phi, f0 := run(engine.Count{N: n, Seed: seed})
		countPhi = append(countPhi, phi)
		countF0 = append(countF0, f0)
		phi, f0 = run(engine.Agents{N: n, Seed: seed, Workers: 1})
		agentPhi = append(agentPhi, phi)
		agentF0 = append(agentF0, f0)
	}

	// The final demand is 0.6, so final flows must sum to it in both engines.
	check := func(name string, c, a []float64) {
		cs, as := summarize(c), summarize(a)
		se := math.Sqrt((cs.variance + as.variance) / reps)
		if d := math.Abs(cs.mean - as.mean); d > 4*se+1e-9 {
			t.Errorf("%s: mean %g (count) vs %g (agents), |diff| %g > 4·se %g", name, cs.mean, as.mean, d, 4*se)
		}
		lo, hi := cs.variance, as.variance
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 4*lo+1e-12 {
			t.Errorf("%s: variance %g (count) vs %g (agents) differ by more than 4x", name, cs.variance, as.variance)
		}
	}
	check("final potential", countPhi, agentPhi)
	check("final flow[0]", countF0, agentF0)
}
