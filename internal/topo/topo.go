// Package topo builds the canonical Wardrop instances used across the
// examples, tests and benchmark harness: parallel links (including the
// paper's §3.2 two-link kink instance), the Braess network, grids, layered
// random DAGs and multi-commodity overlays.
package topo

import (
	"errors"
	"fmt"

	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// ErrBadParam indicates an invalid topology parameter.
var ErrBadParam = errors.New("topo: invalid parameter")

// ParallelLinks builds m parallel s→t links with the given latency
// functions (len(lats) == m) and unit demand.
func ParallelLinks(lats []latency.Function) (*flow.Instance, error) {
	if len(lats) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 links, got %d", ErrBadParam, len(lats))
	}
	g := graph.New()
	s := g.MustAddNode("s")
	t := g.MustAddNode("t")
	for range lats {
		g.MustAddEdge(s, t)
	}
	return flow.NewInstance(g, lats, []flow.Commodity{{Name: "c0", Source: s, Sink: t, Demand: 1}})
}

// LinearParallelLinks builds m parallel links with staggered affine
// latencies ℓ_j(x) = (1 + j/m)·x + j/m, a standard heterogeneous-links
// workload whose equilibrium uses a prefix of the links.
func LinearParallelLinks(m int) (*flow.Instance, error) {
	if m < 2 {
		return nil, fmt.Errorf("%w: need >= 2 links, got %d", ErrBadParam, m)
	}
	lats := make([]latency.Function, m)
	for j := 0; j < m; j++ {
		frac := float64(j) / float64(m)
		lats[j] = latency.Linear{Slope: 1 + frac, Offset: frac}
	}
	return ParallelLinks(lats)
}

// TwoLinkKink builds the paper's §3.2 oscillation instance: two parallel
// links, both with latency ℓ(x) = max{0, β(x−½)}, demand 1.
func TwoLinkKink(beta float64) (*flow.Instance, error) {
	if beta <= 0 {
		return nil, fmt.Errorf("%w: beta %g must be positive", ErrBadParam, beta)
	}
	k := latency.Kink(beta)
	return ParallelLinks([]latency.Function{k, k})
}

// Pigou builds the Pigou network: ℓ1(x) = x against ℓ2(x) = 1, demand 1.
// Its Wardrop equilibrium routes everything on link 1 (cost 1, Φ* = 1/2).
func Pigou() (*flow.Instance, error) {
	return ParallelLinks([]latency.Function{
		latency.Linear{Slope: 1},
		latency.Constant{C: 1},
	})
}

// Braess builds the Braess paradox network with the zero-latency bridge:
// paths s→a→t (x then 1), s→b→t (1 then x) and s→a→b→t (x, 0, x). At
// equilibrium all flow uses the bridge (latency 2, worse than the optimum
// 1.5 without it).
func Braess() (*flow.Instance, error) {
	g := graph.New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	t := g.MustAddNode("t")
	lats := make([]latency.Function, 5)
	lats[g.MustAddEdge(s, a)] = latency.Linear{Slope: 1}
	lats[g.MustAddEdge(s, b)] = latency.Constant{C: 1}
	lats[g.MustAddEdge(a, t)] = latency.Constant{C: 1}
	lats[g.MustAddEdge(b, t)] = latency.Linear{Slope: 1}
	lats[g.MustAddEdge(a, b)] = latency.Constant{C: 0}
	return flow.NewInstance(g, lats, []flow.Commodity{{Name: "c0", Source: s, Sink: t, Demand: 1}})
}

// Grid builds an n×n directed grid (edges point right and down) from the
// top-left corner to the bottom-right corner, with affine latencies
// ℓ(x) = x + 0.1 on every edge and unit demand. Path enumeration is bounded
// to shortest-length paths (2(n−1) edges), keeping the strategy space the
// set of monotone lattice paths.
func Grid(n int) (*flow.Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: grid needs n >= 2, got %d", ErrBadParam, n)
	}
	g := graph.New()
	ids := make([][]graph.NodeID, n)
	for r := 0; r < n; r++ {
		ids[r] = make([]graph.NodeID, n)
		for c := 0; c < n; c++ {
			ids[r][c] = g.MustAddNode(fmt.Sprintf("v%d_%d", r, c))
		}
	}
	var lats []latency.Function
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				g.MustAddEdge(ids[r][c], ids[r][c+1])
				lats = append(lats, latency.Linear{Slope: 1, Offset: 0.1})
			}
			if r+1 < n {
				g.MustAddEdge(ids[r][c], ids[r+1][c])
				lats = append(lats, latency.Linear{Slope: 1, Offset: 0.1})
			}
		}
	}
	comm := []flow.Commodity{{Name: "c0", Source: ids[0][0], Sink: ids[n-1][n-1], Demand: 1}}
	return flow.NewInstance(g, lats, comm, flow.WithMaxPathLen(2*(n-1)))
}

// TwoCommodityOverlap builds a 3-node line a→b→c with a direct a→c edge and
// two commodities (a→c with demand 0.6, b→c with demand 0.4) sharing edge
// b→c — the minimal instance exercising multi-commodity coupling.
func TwoCommodityOverlap() (*flow.Instance, error) {
	g := graph.New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	c := g.MustAddNode("c")
	lats := make([]latency.Function, 3)
	lats[g.MustAddEdge(a, b)] = latency.Linear{Slope: 1}
	lats[g.MustAddEdge(b, c)] = latency.Linear{Slope: 1}
	lats[g.MustAddEdge(a, c)] = latency.Linear{Slope: 2, Offset: 0.1}
	return flow.NewInstance(g, lats, []flow.Commodity{
		{Name: "ac", Source: a, Sink: c, Demand: 0.6},
		{Name: "bc", Source: b, Sink: c, Demand: 0.4},
	})
}

// MultiCommodityParallel builds k commodities that share m parallel hub→t
// links: commodity i enters through its own access edge s_i→hub with
// latency 0.5·x + 0.05·i, then competes with every other commodity on the
// m staggered links ℓ_j(x) = (1+j/m)·x + j/m. Demands are staggered,
// r_i ∝ i+1, normalised to a total of 1. Each commodity has exactly m
// paths and D = 2.
func MultiCommodityParallel(k, m int) (*flow.Instance, error) {
	if k < 1 || m < 2 {
		return nil, fmt.Errorf("%w: k=%d m=%d (need k>=1, m>=2)", ErrBadParam, k, m)
	}
	g := graph.New()
	hub := g.MustAddNode("hub")
	t := g.MustAddNode("t")
	var lats []latency.Function
	for j := 0; j < m; j++ {
		g.MustAddEdge(hub, t)
		frac := float64(j) / float64(m)
		lats = append(lats, latency.Linear{Slope: 1 + frac, Offset: frac})
	}
	total := float64(k*(k+1)) / 2
	comms := make([]flow.Commodity, k)
	for i := 0; i < k; i++ {
		src := g.MustAddNode(fmt.Sprintf("s%d", i))
		g.MustAddEdge(src, hub)
		lats = append(lats, latency.Linear{Slope: 0.5, Offset: 0.05 * float64(i)})
		comms[i] = flow.Commodity{
			Name:   fmt.Sprintf("c%d", i),
			Source: src,
			Sink:   t,
			Demand: float64(i+1) / total,
		}
	}
	return flow.NewInstance(g, lats, comms)
}
