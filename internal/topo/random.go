package topo

import (
	"fmt"

	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// LayeredRandom builds a layered DAG with the given number of hidden layers,
// width nodes per layer, and random affine latencies drawn deterministically
// from the seed: every node of layer k connects to every node of layer k+1
// with ℓ(x) = a·x + b, a ∈ [0.5, 1.5), b ∈ [0, 0.5). Source and sink are
// fully connected to the first and last layers. Demand is 1.
func LayeredRandom(layers, width int, seed uint64) (*flow.Instance, error) {
	if layers < 1 || width < 1 {
		return nil, fmt.Errorf("%w: layers=%d width=%d", ErrBadParam, layers, width)
	}
	rng := SplitMix{State: seed}
	g := graph.New()
	s := g.MustAddNode("s")
	t := g.MustAddNode("t")
	prev := []graph.NodeID{s}
	var lats []latency.Function
	for l := 0; l < layers; l++ {
		cur := make([]graph.NodeID, width)
		for w := 0; w < width; w++ {
			cur[w] = g.MustAddNode(fmt.Sprintf("l%d_%d", l, w))
		}
		for _, u := range prev {
			for _, v := range cur {
				g.MustAddEdge(u, v)
				lats = append(lats, latency.Linear{
					Slope:  0.5 + rng.Float64(),
					Offset: 0.5 * rng.Float64(),
				})
			}
		}
		prev = cur
	}
	for _, u := range prev {
		g.MustAddEdge(u, t)
		lats = append(lats, latency.Linear{
			Slope:  0.5 + rng.Float64(),
			Offset: 0.5 * rng.Float64(),
		})
	}
	return flow.NewInstance(g, lats, []flow.Commodity{{Name: "c0", Source: s, Sink: t, Demand: 1}})
}

// SplitMix is the shared deterministic RNG (splitmix64). The zero value with
// State set is ready to use; identical states produce identical streams, which
// is what topology generation and the sweep engine's per-task seed derivation
// rely on.
type SplitMix struct{ State uint64 }

// Next advances the generator and returns the next 64-bit value.
func (s *SplitMix) Next() uint64 {
	s.State += 0x9e3779b97f4a7c15
	z := s.State
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next value mapped uniformly into [0, 1).
func (s *SplitMix) Float64() float64 {
	return float64(s.Next()>>11) / float64(1<<53)
}

// DeriveSeed mixes a base seed with a task index into an independent stream
// seed: seed derivation is position-based, so task k's seed does not depend on
// how many tasks precede it or on execution order.
func DeriveSeed(base, index uint64) uint64 {
	s := SplitMix{State: base ^ (index+1)*0x9e3779b97f4a7c15}
	return s.Next()
}
