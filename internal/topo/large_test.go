package topo

import (
	"math"
	"testing"

	"wardrop/internal/graph"
)

// The large families must deliver exactly the requested edge count, valid
// instances (every path positive-demand-routable, invariants enforced by
// flow.NewInstance), determinism per seed and genuine seed sensitivity —
// the properties the scaling benchmarks and sweep campaigns assume.

func TestSparseRandomProperties(t *testing.T) {
	const edges, seed = 2000, uint64(0x5eed)
	a, err := SparseRandom(edges, 4, 3, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Graph().NumEdges(); got != edges {
		t.Fatalf("NumEdges = %d, want exactly %d", got, edges)
	}
	if a.NumCommodities() != 3 {
		t.Fatalf("NumCommodities = %d, want 3", a.NumCommodities())
	}
	for i := 0; i < a.NumCommodities(); i++ {
		if n := a.NumCommodityPaths(i); n < 1 || n > 5 {
			t.Fatalf("commodity %d has %d paths, want 1..5", i, n)
		}
	}
	if !a.Graph().IsAcyclic() {
		t.Fatal("sparse-random graph must be a DAG")
	}
	// Determinism: same seed, same instance (structure and latencies).
	b, err := SparseRandom(edges, 4, 3, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.PathLatencies(a.UniformFlow()), b.PathLatencies(b.UniformFlow())
	if len(pa) != len(pb) {
		t.Fatalf("path counts differ across rebuilds: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if math.Float64bits(pa[i]) != math.Float64bits(pb[i]) {
			t.Fatalf("path latency %d differs across rebuilds: %v vs %v", i, pa[i], pb[i])
		}
	}
	// Seed sensitivity.
	c, err := SparseRandom(edges, 4, 3, 5, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	pc := c.PathLatencies(c.UniformFlow())
	same := len(pa) == len(pc)
	if same {
		for i := range pa {
			if pa[i] != pc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("sparse-random ignored the seed")
	}
}

func TestScaleFreeProperties(t *testing.T) {
	const edges, seed = 2000, uint64(0xcafe)
	a, err := ScaleFree(edges, 3, 3, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Graph().NumEdges(); got != edges {
		t.Fatalf("NumEdges = %d, want exactly %d", got, edges)
	}
	if !a.Graph().IsAcyclic() {
		t.Fatal("scalefree graph must be a DAG")
	}
	// BPR latencies throughout (the family exists to exercise that group).
	if sizes := a.Program().GroupSizes(); sizes["bpr"] != edges {
		t.Fatalf("bpr group = %d, want %d (%v)", sizes["bpr"], edges, sizes)
	}
	b, err := ScaleFree(edges, 3, 3, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.PathLatencies(a.UniformFlow()), b.PathLatencies(b.UniformFlow())
	if len(pa) != len(pb) {
		t.Fatalf("path counts differ across rebuilds: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if math.Float64bits(pa[i]) != math.Float64bits(pb[i]) {
			t.Fatalf("path latency %d differs across rebuilds: %v vs %v", i, pa[i], pb[i])
		}
	}
	// Scale-free shape: the maximum out-degree should dwarf the mean.
	g := a.Graph()
	maxOut := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := len(g.OutEdges(graph.NodeID(v))); d > maxOut {
			maxOut = d
		}
	}
	mean := float64(edges) / float64(g.NumNodes())
	if float64(maxOut) < 4*mean {
		t.Fatalf("max out-degree %d vs mean %.1f: no preferential-attachment hubs", maxOut, mean)
	}
}

// Tiny edge budgets clamp the node count up relative to edges/attach; the
// spine must still be complete so every commodity's source reaches its
// sink. Size 8 is wardsim's -m default (this is a regression test for
// `wardsim -topo scalefree` failing with "no path between terminals").
func TestLargeFamiliesConnectedAtSmallSizes(t *testing.T) {
	for edges := 8; edges <= 24; edges++ {
		for seed := uint64(1); seed <= 5; seed++ {
			if _, err := ScaleFree(edges, 3, 4, 12, seed); err != nil {
				t.Errorf("ScaleFree(%d, 3, 4, 12, %d): %v", edges, seed, err)
			}
			if _, err := SparseRandom(edges, 4, 4, 12, seed); err != nil {
				t.Errorf("SparseRandom(%d, 4, 4, 12, %d): %v", edges, seed, err)
			}
		}
	}
}

func TestLargeFamilyParamValidation(t *testing.T) {
	if _, err := SparseRandom(4, 4, 1, 1, 1); err == nil {
		t.Error("SparseRandom accepted edges < 8")
	}
	if _, err := SparseRandom(100, 1.0, 1, 1, 1); err == nil {
		t.Error("SparseRandom accepted degree < 1.5")
	}
	if _, err := ScaleFree(100, 0, 1, 1, 1); err == nil {
		t.Error("ScaleFree accepted attach < 1")
	}
	if _, err := ScaleFree(100, 3, 0, 1, 1); err == nil {
		t.Error("ScaleFree accepted commodities < 1")
	}
}
