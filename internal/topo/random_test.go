package topo

import (
	"fmt"
	"strings"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/graph"
)

// fingerprint serialises everything that defines an instance — node names,
// edge endpoints, exact latency parameters (%v on the concrete function
// values preserves all bits of the float64 fields), commodities and the
// enumerated path index — so two instances with equal fingerprints are
// byte-identical for every consumer.
func fingerprint(in *flow.Instance) string {
	var b strings.Builder
	g := in.Graph()
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		fmt.Fprintf(&b, "node %d %s\n", v, g.NodeName(v))
	}
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		edge, _ := g.Edge(e)
		fmt.Fprintf(&b, "edge %d %d->%d lat %#v\n", e, edge.From, edge.To, in.Latency(e))
	}
	for i := 0; i < in.NumCommodities(); i++ {
		c := in.Commodity(i)
		fmt.Fprintf(&b, "comm %d %s %d->%d demand %v\n", i, c.Name, c.Source, c.Sink, c.Demand)
		for _, p := range in.Paths(i) {
			fmt.Fprintf(&b, "  path %v\n", p)
		}
	}
	return b.String()
}

func TestLayeredRandomByteIdentical(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 60} {
		a, err := LayeredRandom(3, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := LayeredRandom(3, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
			t.Errorf("seed %d: same seed produced different instances:\n%s\nvs\n%s", seed, fa, fb)
		}
	}
}

func TestSplitMixStreamStable(t *testing.T) {
	// Pin the first outputs of the splitmix64 stream: topology generation and
	// sweep seed derivation both break silently if the constants change.
	s := SplitMix{State: 1}
	got := []uint64{s.Next(), s.Next(), s.Next()}
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitmix(1) output %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestDeriveSeedPositionBased(t *testing.T) {
	a := DeriveSeed(1, 0)
	b := DeriveSeed(1, 1)
	if a == b {
		t.Error("adjacent task indices derived the same seed")
	}
	if a != DeriveSeed(1, 0) {
		t.Error("seed derivation is not deterministic")
	}
	if DeriveSeed(2, 0) == a {
		t.Error("different base seeds derived the same task seed")
	}
}
