package topo

import (
	"encoding/json"
	"fmt"

	"wardrop/internal/catalog"
	"wardrop/internal/flow"
)

// Builder is a materialised topology selection: the stable cell label the
// sweep and scenario layers aggregate under, whether the instance depends on
// the seed, and the seed-taking constructor. Catalog entries decode and
// validate their parameters once and return a Builder, so label computation
// and construction cannot disagree.
type Builder struct {
	// Key is the stable human-readable cell label ("links(m=8)", …).
	Key string
	// Seeded reports that New's result depends on the seed (random families).
	Seeded bool
	// New constructs the instance. Unseeded families ignore the seed.
	New func(seed uint64) (*flow.Instance, error)
}

// Catalog is the registry of topology families. The sweep campaign layer,
// the scenario layer and the CLIs dispatch instance construction through it;
// users add families with Register (wardrop.RegisterTopology). The "custom"
// family (an embedded instance document) is contributed by the spec package,
// which owns the instance file format.
var Catalog = newCatalog()

// catalogArgs mirrors the flat JSON fields of a topology document (the same
// fields sweep.Topology carries for programmatic construction).
type catalogArgs struct {
	Size   int     `json:"size"`
	Layers int     `json:"layers"`
	Beta   float64 `json:"beta"`
}

// builtin wraps a constructor on the shared flat-args vocabulary into a
// catalog Build func.
func builtin(build func(a catalogArgs) (Builder, error)) func(json.RawMessage) (Builder, error) {
	return func(raw json.RawMessage) (Builder, error) {
		var a catalogArgs
		if err := catalog.DecodeArgs(raw, &a); err != nil {
			return Builder{}, fmt.Errorf("%w: %v", ErrBadParam, err)
		}
		return build(a)
	}
}

// fixed returns a Builder for a parameterless, seed-independent family.
func fixed(key string, build func() (*flow.Instance, error)) Builder {
	return Builder{Key: key, New: func(uint64) (*flow.Instance, error) { return build() }}
}

func newCatalog() *catalog.Registry[Builder] {
	r := catalog.NewRegistry[Builder]("topology")
	r.MustRegister(catalog.Entry[Builder]{
		Name:  "pigou",
		Doc:   "the Pigou network: ℓ1(x) = x against ℓ2(x) = 1, demand 1",
		Build: builtin(func(catalogArgs) (Builder, error) { return fixed("pigou", Pigou), nil }),
	})
	r.MustRegister(catalog.Entry[Builder]{
		Name:  "braess",
		Doc:   "the Braess paradox network with the zero-latency bridge",
		Build: builtin(func(catalogArgs) (Builder, error) { return fixed("braess", Braess), nil }),
	})
	r.MustRegister(catalog.Entry[Builder]{
		Name: "kink",
		Doc:  "the paper's §3.2 two-link oscillation instance",
		Params: []catalog.Param{
			{Name: "beta", Type: "float", Doc: "kink slope (> 0)"},
		},
		Build: builtin(func(a catalogArgs) (Builder, error) {
			if a.Beta <= 0 {
				return Builder{}, fmt.Errorf("%w: kink beta %g must be positive", ErrBadParam, a.Beta)
			}
			return fixed(fmt.Sprintf("kink(beta=%g)", a.Beta), func() (*flow.Instance, error) {
				return TwoLinkKink(a.Beta)
			}), nil
		}),
	})
	r.MustRegister(catalog.Entry[Builder]{
		Name: "links",
		Doc:  "m parallel links with staggered affine latencies",
		Params: []catalog.Param{
			{Name: "size", Type: "int", Doc: "link count m (>= 2)"},
		},
		Build: builtin(func(a catalogArgs) (Builder, error) {
			if a.Size < 2 {
				return Builder{}, fmt.Errorf("%w: links size %d must be >= 2", ErrBadParam, a.Size)
			}
			return fixed(fmt.Sprintf("links(m=%d)", a.Size), func() (*flow.Instance, error) {
				return LinearParallelLinks(a.Size)
			}), nil
		}),
	})
	r.MustRegister(catalog.Entry[Builder]{
		Name: "grid",
		Doc:  "n×n directed grid, corner to corner, affine latencies",
		Params: []catalog.Param{
			{Name: "size", Type: "int", Doc: "grid side n (>= 2)"},
		},
		Build: builtin(func(a catalogArgs) (Builder, error) {
			if a.Size < 2 {
				return Builder{}, fmt.Errorf("%w: grid size %d must be >= 2", ErrBadParam, a.Size)
			}
			return fixed(fmt.Sprintf("grid(n=%d)", a.Size), func() (*flow.Instance, error) {
				return Grid(a.Size)
			}), nil
		}),
	})
	r.MustRegister(catalog.Entry[Builder]{
		Name: "layered",
		Doc:  "layered random DAG with seed-deterministic affine latencies",
		Params: []catalog.Param{
			{Name: "size", Type: "int", Doc: "nodes per hidden layer (>= 1)"},
			{Name: "layers", Type: "int", Doc: "hidden-layer count (0 = default 3)"},
		},
		Build: builtin(func(a catalogArgs) (Builder, error) {
			if a.Size < 1 {
				return Builder{}, fmt.Errorf("%w: layered width %d must be >= 1", ErrBadParam, a.Size)
			}
			if a.Layers < 0 {
				return Builder{}, fmt.Errorf("%w: layered layers %d must be >= 0 (0 = default)", ErrBadParam, a.Layers)
			}
			layers := a.Layers
			if layers == 0 {
				layers = 3
			}
			return Builder{
				Key:    fmt.Sprintf("layered(l=%d,w=%d)", layers, a.Size),
				Seeded: true,
				New: func(seed uint64) (*flow.Instance, error) {
					return LayeredRandom(layers, a.Size, seed)
				},
			}, nil
		}),
	})
	return r
}
