package topo

import (
	"errors"
	"math"
	"testing"

	"wardrop/internal/latency"
)

func TestParallelLinks(t *testing.T) {
	inst, err := ParallelLinks([]latency.Function{
		latency.Linear{Slope: 1}, latency.Constant{C: 1}, latency.Constant{C: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 3 || inst.MaxPathLen() != 1 {
		t.Errorf("paths=%d D=%d", inst.NumPaths(), inst.MaxPathLen())
	}
	if _, err := ParallelLinks([]latency.Function{latency.Constant{C: 1}}); !errors.Is(err, ErrBadParam) {
		t.Errorf("single link error = %v", err)
	}
}

func TestLinearParallelLinks(t *testing.T) {
	for _, m := range []int{2, 8, 32} {
		inst, err := LinearParallelLinks(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if inst.NumPaths() != m {
			t.Errorf("m=%d: paths=%d", m, inst.NumPaths())
		}
		if inst.MaxSlope() >= 2 || inst.MaxSlope() < 1 {
			t.Errorf("m=%d: beta=%g outside [1,2)", m, inst.MaxSlope())
		}
	}
	if _, err := LinearParallelLinks(1); !errors.Is(err, ErrBadParam) {
		t.Error("m=1 accepted")
	}
}

func TestTwoLinkKink(t *testing.T) {
	inst, err := TwoLinkKink(4)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 2 {
		t.Fatalf("paths = %d", inst.NumPaths())
	}
	if math.Abs(inst.MaxSlope()-4) > 1e-12 {
		t.Errorf("beta = %g, want 4", inst.MaxSlope())
	}
	// Split evenly: both latencies zero -> Wardrop equilibrium.
	if !inst.AtWardropEquilibrium(inst.UniformFlow(), 1e-9) {
		t.Error("even split should be the kink equilibrium")
	}
	if _, err := TwoLinkKink(0); !errors.Is(err, ErrBadParam) {
		t.Error("beta=0 accepted")
	}
}

func TestPigou(t *testing.T) {
	inst, err := Pigou()
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, 2)
	f[0] = 1
	if !inst.AtWardropEquilibrium(f, 1e-9) {
		t.Error("all-on-link-1 should be the Pigou equilibrium")
	}
	if phi := inst.Potential(f); math.Abs(phi-0.5) > 1e-12 {
		t.Errorf("Φ* = %g, want 0.5", phi)
	}
}

func TestBraess(t *testing.T) {
	inst, err := Braess()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 3 {
		t.Fatalf("paths = %d, want 3", inst.NumPaths())
	}
	if inst.MaxPathLen() != 3 {
		t.Errorf("D = %d, want 3", inst.MaxPathLen())
	}
	// Equilibrium: all flow on the 3-edge bridge path.
	f := make([]float64, 3)
	for g := 0; g < 3; g++ {
		if inst.Path(g).Len() == 3 {
			f[g] = 1
		}
	}
	if !inst.AtWardropEquilibrium(f, 1e-9) {
		t.Error("all-bridge flow should be the Braess equilibrium")
	}
	pl := inst.PathLatencies(f)
	for g, l := range pl {
		if math.Abs(l-2) > 1e-12 {
			t.Errorf("path %d latency %g, want 2", g, l)
		}
	}
}

func TestGrid(t *testing.T) {
	inst, err := Grid(3)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone lattice paths in a 3x3 grid: C(4,2) = 6.
	if inst.NumPaths() != 6 {
		t.Errorf("paths = %d, want 6", inst.NumPaths())
	}
	if inst.MaxPathLen() != 4 {
		t.Errorf("D = %d, want 4", inst.MaxPathLen())
	}
	if err := inst.Feasible(inst.UniformFlow(), 1e-9); err != nil {
		t.Errorf("uniform flow infeasible: %v", err)
	}
	if _, err := Grid(1); !errors.Is(err, ErrBadParam) {
		t.Error("n=1 accepted")
	}
}

func TestLayeredRandomDeterministic(t *testing.T) {
	a, err := LayeredRandom(2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LayeredRandom(2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPaths() != b.NumPaths() {
		t.Fatal("same seed, different path count")
	}
	// Same seed must give identical latencies.
	fa := a.PathLatencies(a.UniformFlow())
	fb := b.PathLatencies(b.UniformFlow())
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("same seed, different latency at %d: %g vs %g", i, fa[i], fb[i])
		}
	}
	c, err := LayeredRandom(2, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	fc := c.PathLatencies(c.UniformFlow())
	same := true
	for i := range fa {
		if fa[i] != fc[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
	// 2 hidden layers of width 3: paths = 3*3 = 9, length 3.
	if a.NumPaths() != 9 || a.MaxPathLen() != 3 {
		t.Errorf("paths=%d D=%d, want 9, 3", a.NumPaths(), a.MaxPathLen())
	}
	if _, err := LayeredRandom(0, 3, 1); !errors.Is(err, ErrBadParam) {
		t.Error("layers=0 accepted")
	}
}

func TestTwoCommodityOverlap(t *testing.T) {
	inst, err := TwoCommodityOverlap()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumCommodities() != 2 || inst.NumPaths() != 3 {
		t.Errorf("commodities=%d paths=%d", inst.NumCommodities(), inst.NumPaths())
	}
	if math.Abs(inst.TotalDemand()-1) > 1e-12 {
		t.Errorf("total demand = %g", inst.TotalDemand())
	}
}

func TestMultiCommodityParallel(t *testing.T) {
	inst, err := MultiCommodityParallel(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumCommodities() != 3 {
		t.Fatalf("commodities = %d", inst.NumCommodities())
	}
	// Each commodity: m paths of length 2.
	for i := 0; i < 3; i++ {
		if inst.NumCommodityPaths(i) != 4 {
			t.Errorf("commodity %d has %d paths, want 4", i, inst.NumCommodityPaths(i))
		}
	}
	if inst.MaxPathLen() != 2 {
		t.Errorf("D = %d, want 2", inst.MaxPathLen())
	}
	if math.Abs(inst.TotalDemand()-1) > 1e-12 {
		t.Errorf("total demand = %g, want 1", inst.TotalDemand())
	}
	if err := inst.Feasible(inst.UniformFlow(), 1e-9); err != nil {
		t.Errorf("uniform flow infeasible: %v", err)
	}
	if _, err := MultiCommodityParallel(0, 4); !errors.Is(err, ErrBadParam) {
		t.Error("k=0 accepted")
	}
	if _, err := MultiCommodityParallel(2, 1); !errors.Is(err, ErrBadParam) {
		t.Error("m=1 accepted")
	}
}
