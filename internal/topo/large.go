package topo

import (
	"encoding/json"
	"fmt"

	"wardrop/internal/catalog"
	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// This file holds the large parameterized topology families (10⁴–10⁶
// edges). Path enumeration would explode on graphs this size, so both
// families restrict each commodity's strategy space to its k shortest
// free-flow paths (flow.WithKShortestPaths); the families exist to give the
// compiled evaluation kernel full passes big enough to parallelize.

// SparseRandom builds a sparse random DAG with exactly edges edges over
// roughly edges/degree nodes. Nodes are topologically ordered; a spine
// i→i+1 guarantees every earlier node reaches every later one, and the
// remaining edges connect uniformly random forward pairs, so shortest
// paths are short even at 10⁶ edges. Latencies are seed-deterministic
// affine functions; commodities route from the first third of the order to
// the last third with staggered demands. Each commodity's strategy set is
// its kPaths shortest free-flow paths.
func SparseRandom(edges int, degree float64, commodities, kPaths int, seed uint64) (*flow.Instance, error) {
	if edges < 8 || degree < 1.5 || commodities < 1 || kPaths < 1 {
		return nil, fmt.Errorf("%w: sparse-random edges=%d degree=%g commodities=%d kPaths=%d (need edges >= 8, degree >= 1.5, commodities >= 1, kPaths >= 1)",
			ErrBadParam, edges, degree, commodities, kPaths)
	}
	n := int(float64(edges) / degree)
	if n < 6 {
		n = 6
	}
	if n > edges-1 {
		n = edges - 1
	}
	rng := SplitMix{State: seed}
	g := graph.New()
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = g.MustAddNode(fmt.Sprintf("v%d", i))
	}
	lats := make([]latency.Function, 0, edges)
	randLinear := func() latency.Function {
		return latency.Linear{
			Slope:  0.05 + 0.5*rng.Float64(),
			Offset: 0.5 + rng.Float64(),
		}
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(nodes[i], nodes[i+1])
		lats = append(lats, randLinear())
	}
	for len(lats) < edges {
		u := int(rng.Float64() * float64(n-1))
		v := u + 1 + int(rng.Float64()*float64(n-1-u))
		g.MustAddEdge(nodes[u], nodes[v])
		lats = append(lats, randLinear())
	}
	return flow.NewInstance(g, lats, spreadCommodities(nodes, commodities, &rng),
		flow.WithKShortestPaths(kPaths))
}

// ScaleFree builds a directed scale-free DAG with exactly edges edges by
// preferential attachment: the complete spine (i-1)→i is laid down first
// so every forward pair stays connected even when the edge budget is
// tight, then each node i in arrival order receives attach-1 edges from
// endpoints sampled proportionally to their current degree, and the edge
// count is padded to exact with further preferential forward edges. Hub
// edges get BPR latencies (free-flow time and capacity drawn from the
// seed), exercising the kernel's BPR batch group; commodities are spread
// as in SparseRandom.
func ScaleFree(edges, attach, commodities, kPaths int, seed uint64) (*flow.Instance, error) {
	if edges < 8 || attach < 1 || commodities < 1 || kPaths < 1 {
		return nil, fmt.Errorf("%w: scalefree edges=%d attach=%d commodities=%d kPaths=%d (need edges >= 8, attach >= 1, commodities >= 1, kPaths >= 1)",
			ErrBadParam, edges, attach, commodities, kPaths)
	}
	n := edges/attach + 1
	if n < 6 {
		n = 6
	}
	if n > edges-1 {
		n = edges - 1
	}
	rng := SplitMix{State: seed}
	g := graph.New()
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = g.MustAddNode(fmt.Sprintf("v%d", i))
	}
	lats := make([]latency.Function, 0, edges)
	randBPR := func() latency.Function {
		return latency.BPR{
			FreeTime: 0.5 + rng.Float64(),
			Capacity: 1 + 4*rng.Float64(),
		}
	}
	// endpoints lists every edge endpoint once; sampling it uniformly is
	// degree-proportional (preferential) attachment.
	endpoints := make([]int, 0, 2*edges)
	addEdge := func(u, v int) {
		g.MustAddEdge(nodes[u], nodes[v])
		lats = append(lats, randBPR())
		endpoints = append(endpoints, u, v)
	}
	// The spine goes in first, before attachment can exhaust the budget:
	// n is clamped to at most edges-1 nodes, so the n-1 spine edges always
	// fit, and with them every source index reaches every later sink.
	for i := 1; i < n; i++ {
		addEdge(i-1, i)
	}
	for i := 1; i < n && len(lats) < edges; i++ {
		for a := 1; a < attach && len(lats) < edges; a++ {
			u := int(rng.Float64() * float64(i))
			if len(endpoints) > 0 {
				if c := endpoints[int(rng.Float64()*float64(len(endpoints)))]; c < i {
					u = c
				}
			}
			addEdge(u, i)
		}
	}
	// Pad to the exact edge count with preferential forward edges.
	for len(lats) < edges {
		u := endpoints[int(rng.Float64()*float64(len(endpoints)))]
		if u >= n-1 {
			u = int(rng.Float64() * float64(n-1))
		}
		v := u + 1 + int(rng.Float64()*float64(n-1-u))
		addEdge(u, v)
	}
	return flow.NewInstance(g, lats, spreadCommodities(nodes, commodities, &rng),
		flow.WithKShortestPaths(kPaths))
}

// spreadCommodities places c commodities with sources drawn from the first
// third of the topological order and sinks from the last third (the spine
// guarantees each source reaches its sink), demands staggered 1, 1.5, 2, …
func spreadCommodities(nodes []graph.NodeID, c int, rng *SplitMix) []flow.Commodity {
	n := len(nodes)
	third := n / 3
	if third < 1 {
		third = 1
	}
	comms := make([]flow.Commodity, c)
	for i := range comms {
		s := int(rng.Float64() * float64(third))
		t := n - 1 - int(rng.Float64()*float64(third))
		comms[i] = flow.Commodity{
			Name:   fmt.Sprintf("c%d", i),
			Source: nodes[s],
			Sink:   nodes[t],
			Demand: 1 + 0.5*float64(i),
		}
	}
	return comms
}

// largeArgs is the parameter vocabulary of the large families. The edge
// count doubles as the shared flat "size" field so campaign axes and
// wardsim -m work unchanged; everything else arrives via the nested params
// document.
type largeArgs struct {
	Size        int     `json:"size"`
	Edges       int     `json:"edges"`
	Degree      float64 `json:"degree"`
	Attach      int     `json:"attach"`
	Commodities int     `json:"commodities"`
	KPaths      int     `json:"kpaths"`
}

func decodeLargeArgs(raw json.RawMessage) (largeArgs, error) {
	var a largeArgs
	if err := catalog.DecodeArgs(raw, &a); err != nil {
		return a, fmt.Errorf("%w: %v", ErrBadParam, err)
	}
	if a.Edges == 0 {
		a.Edges = a.Size
	}
	if a.Commodities == 0 {
		a.Commodities = 4
	}
	if a.KPaths == 0 {
		a.KPaths = 12
	}
	return a, nil
}

func init() {
	Catalog.MustRegister(catalog.Entry[Builder]{
		Name: "sparse-random",
		Doc:  "sparse random DAG at 10⁴–10⁶ edges, affine latencies, k-shortest-path strategy sets",
		Params: []catalog.Param{
			{Name: "size", Type: "int", Doc: "edge count m (>= 8); alias: edges"},
			{Name: "degree", Type: "float", Doc: "mean out-degree d (>= 1.5, default 4): nodes ≈ m/d"},
			{Name: "commodities", Type: "int", Doc: "commodity count (default 4)"},
			{Name: "kpaths", Type: "int", Doc: "k shortest free-flow paths per commodity (default 12)"},
		},
		Build: func(raw json.RawMessage) (Builder, error) {
			a, err := decodeLargeArgs(raw)
			if err != nil {
				return Builder{}, err
			}
			if a.Degree == 0 {
				a.Degree = 4
			}
			if a.Edges < 8 || a.Degree < 1.5 || a.Commodities < 1 || a.KPaths < 1 {
				return Builder{}, fmt.Errorf("%w: sparse-random size=%d degree=%g commodities=%d kpaths=%d",
					ErrBadParam, a.Edges, a.Degree, a.Commodities, a.KPaths)
			}
			return Builder{
				Key:    fmt.Sprintf("sparse-random(m=%d,d=%g,c=%d,k=%d)", a.Edges, a.Degree, a.Commodities, a.KPaths),
				Seeded: true,
				New: func(seed uint64) (*flow.Instance, error) {
					return SparseRandom(a.Edges, a.Degree, a.Commodities, a.KPaths, seed)
				},
			}, nil
		},
	})
	Catalog.MustRegister(catalog.Entry[Builder]{
		Name: "scalefree",
		Doc:  "scale-free DAG by preferential attachment, BPR latencies, k-shortest-path strategy sets",
		Params: []catalog.Param{
			{Name: "size", Type: "int", Doc: "edge count m (>= 8); alias: edges"},
			{Name: "attach", Type: "int", Doc: "edges per arriving node a (>= 1, default 3): nodes ≈ m/a"},
			{Name: "commodities", Type: "int", Doc: "commodity count (default 4)"},
			{Name: "kpaths", Type: "int", Doc: "k shortest free-flow paths per commodity (default 12)"},
		},
		Build: func(raw json.RawMessage) (Builder, error) {
			a, err := decodeLargeArgs(raw)
			if err != nil {
				return Builder{}, err
			}
			if a.Attach == 0 {
				a.Attach = 3
			}
			if a.Edges < 8 || a.Attach < 1 || a.Commodities < 1 || a.KPaths < 1 {
				return Builder{}, fmt.Errorf("%w: scalefree size=%d attach=%d commodities=%d kpaths=%d",
					ErrBadParam, a.Edges, a.Attach, a.Commodities, a.KPaths)
			}
			return Builder{
				Key:    fmt.Sprintf("scalefree(m=%d,a=%d,c=%d,k=%d)", a.Edges, a.Attach, a.Commodities, a.KPaths),
				Seeded: true,
				New: func(seed uint64) (*flow.Instance, error) {
					return ScaleFree(a.Edges, a.Attach, a.Commodities, a.KPaths, seed)
				},
			}, nil
		},
	})
}
