package board

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("period 0 error = %v", err)
	}
	if _, err := New(-1); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("negative period error = %v", err)
	}
	if _, err := New(math.NaN()); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("NaN period error = %v", err)
	}
	b, err := New(0.5)
	if err != nil || b.Period() != 0.5 {
		t.Fatalf("New(0.5) = %v, %v", b, err)
	}
}

func TestPostReadVersioning(t *testing.T) {
	b, _ := New(1)
	if _, ok := b.Read(); ok {
		t.Error("fresh board should have no snapshot")
	}
	b.Post(Snapshot{Time: 0, EdgeLatencies: []float64{1}})
	s, ok := b.Read()
	if !ok || s.Version != 1 || s.EdgeLatencies[0] != 1 {
		t.Errorf("snapshot = %+v, ok=%v", s, ok)
	}
	b.Post(Snapshot{Time: 1})
	s, _ = b.Read()
	if s.Version != 2 || s.Time != 1 {
		t.Errorf("second snapshot = %+v", s)
	}
}

func TestAgeAndDue(t *testing.T) {
	b, _ := New(0.5)
	if !math.IsInf(b.Age(3), 1) {
		t.Error("age before first post should be +Inf")
	}
	if !b.Due(0) {
		t.Error("board with no posting should be due")
	}
	b.Post(Snapshot{Time: 1})
	if got := b.Age(1.3); math.Abs(got-0.3) > 1e-15 {
		t.Errorf("Age = %g, want 0.3", got)
	}
	if b.Due(1.2) {
		t.Error("not due yet")
	}
	if !b.Due(1.5) {
		t.Error("due at exactly one period")
	}
}

func TestPhaseHelpers(t *testing.T) {
	if PhaseStart(1.7, 0.5) != 1.5 {
		t.Errorf("PhaseStart = %g", PhaseStart(1.7, 0.5))
	}
	if PhaseIndex(1.7, 0.5) != 3 {
		t.Errorf("PhaseIndex = %d", PhaseIndex(1.7, 0.5))
	}
	if PhaseStart(0.2, 1) != 0 || PhaseIndex(0.2, 1) != 0 {
		t.Error("phase 0 wrong")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	b, _ := New(0.1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s, ok := b.Read(); ok && len(s.EdgeLatencies) != 1 {
					t.Error("torn snapshot")
					return
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		b.Post(Snapshot{Time: float64(i), EdgeLatencies: []float64{float64(i)}})
	}
	close(stop)
	wg.Wait()
	if s, _ := b.Read(); s.Version != 1000 {
		t.Errorf("final version = %d", s.Version)
	}
}
