// Package board implements Mitzenmacher's bulletin-board model of stale
// information: all latency information relevant to rerouting is posted at the
// beginning of every phase of fixed length T and stays frozen until the next
// update. Both the fluid-limit integrator and the stochastic agent simulator
// read their decision inputs exclusively from a Board.
package board

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBadPeriod indicates a non-positive update period.
var ErrBadPeriod = errors.New("board: update period must be positive")

// Snapshot is the information posted on the bulletin board at the beginning
// of a phase. The slices are owned by the poster, which may reuse their
// backing memory when it posts the next snapshot: readers must never modify
// them, and must not retain a snapshot's slices past the phase it was
// posted for (the simulation engines post from reused evaluation buffers;
// copy to keep).
type Snapshot struct {
	// Time is the posting time t̂ (the phase start).
	Time float64
	// Version counts postings, starting at 1 for the first Post.
	Version int
	// EdgeLatencies holds ℓ_e(f_e(t̂)) per edge.
	EdgeLatencies []float64
	// PathLatencies holds ℓ_P(f(t̂)) per global path index.
	PathLatencies []float64
	// PathFlows holds f_P(t̂) per global path index (needed by flow-dependent
	// sampling rules such as proportional sampling).
	PathFlows []float64
}

// Board stores the latest snapshot and the update period. It is safe for
// concurrent use: the agent simulator's workers read while a coordinator
// posts between phases.
type Board struct {
	mu     sync.RWMutex
	period float64
	snap   Snapshot
	posted bool
}

// New creates a board with update period T > 0.
func New(period float64) (*Board, error) {
	if period <= 0 || math.IsNaN(period) {
		return nil, fmt.Errorf("%w: %g", ErrBadPeriod, period)
	}
	return &Board{period: period}, nil
}

// Period returns the update period T.
func (b *Board) Period() float64 {
	return b.period
}

// Post publishes a new snapshot, bumping the version. The caller keeps
// ownership of the snapshot's slices and must leave them unmodified while
// the phase's readers are active; the engines refresh the buffers only at
// the phase barrier, when the snapshot being replaced has no readers left
// (see Snapshot).
func (b *Board) Post(snap Snapshot) {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap.Version = b.snap.Version + 1
	b.snap = snap
	b.posted = true
}

// Read returns the current snapshot. The second return is false if nothing
// has been posted yet.
func (b *Board) Read() (Snapshot, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.snap, b.posted
}

// Age returns t − t̂, the staleness of the posted information at time t, or
// +Inf if nothing has been posted.
func (b *Board) Age(t float64) float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if !b.posted {
		return math.Inf(1)
	}
	return t - b.snap.Time
}

// Due reports whether a new posting is due at time t (age >= period, within
// a small tolerance absorbing floating-point phase arithmetic).
func (b *Board) Due(t float64) bool {
	return b.Age(t) >= b.period-1e-12
}

// PhaseStart returns t̂ = ⌊t/T⌋·T, the beginning of the phase containing t.
func PhaseStart(t, period float64) float64 {
	return math.Floor(t/period) * period
}

// PhaseIndex returns ⌊t/T⌋.
func PhaseIndex(t, period float64) int {
	return int(math.Floor(t / period))
}
