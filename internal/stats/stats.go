// Package stats provides the small statistical toolkit the experiment
// harness needs: series summaries, quantiles, least-squares fits (including
// log-log scaling-exponent estimation) and oscillation/convergence
// detectors.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty indicates an operation on an empty data set.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (NaN for empty input).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted is Quantile on an already-sorted non-empty sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MaxAbs returns max |x|.
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m = math.Max(m, math.Abs(x))
	}
	return m
}

// Summary condenses a sample into the location/spread measures the sweep
// aggregator reports per campaign cell.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P10    float64
	P90    float64
	Min    float64
	Max    float64
}

// Summarize computes the Summary of a sample with a single sort. It returns
// ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: quantileSorted(sorted, 0.5),
		P10:    quantileSorted(sorted, 0.1),
		P90:    quantileSorted(sorted, 0.9),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}, nil
}

// Fit holds an ordinary-least-squares line y = Slope·x + Intercept with the
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the OLS fit of ys on xs. It returns ErrEmpty for fewer
// than two points.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{}, ErrEmpty
	}
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, ErrEmpty
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	_ = n
	return fit, nil
}

// LogLogSlope fits log(y) against log(x), returning the estimated power-law
// exponent (the scaling-law workhorse for Theorems 6 and 7). Non-positive
// values are rejected with ErrEmpty after filtering.
func LogLogSlope(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, ErrEmpty
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return LinearFit(lx, ly)
}

// IsNonIncreasing reports whether the series never increases by more than
// tol.
func IsNonIncreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]+tol {
			return false
		}
	}
	return true
}

// OscillationScore measures persistent oscillation of a series around its
// final value: the fraction of sign changes of successive differences over
// the last half of the series (1 ≈ perfect alternation, 0 ≈ monotone tail).
func OscillationScore(xs []float64) float64 {
	if len(xs) < 4 {
		return 0
	}
	tail := xs[len(xs)/2:]
	changes, total := 0, 0
	prevSign := 0
	for i := 1; i < len(tail); i++ {
		d := tail[i] - tail[i-1]
		sign := 0
		if d > 1e-12 {
			sign = 1
		} else if d < -1e-12 {
			sign = -1
		}
		if sign == 0 {
			continue
		}
		if prevSign != 0 {
			total++
			if sign != prevSign {
				changes++
			}
		}
		prevSign = sign
	}
	if total == 0 {
		return 0
	}
	return float64(changes) / float64(total)
}

// RelErr returns |got−want| / max(|want|, floor), a scale-aware relative
// error with a floor guarding division by ~0.
func RelErr(got, want, floor float64) float64 {
	den := math.Max(math.Abs(want), floor)
	return math.Abs(got-want) / den
}
