package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !approx(Mean(xs), 2.5, 1e-15) {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if !approx(Variance(xs), 1.25, 1e-15) {
		t.Errorf("Variance = %g", Variance(xs))
	}
	if !approx(Stddev(xs), math.Sqrt(1.25), 1e-15) {
		t.Errorf("Stddev = %g", Stddev(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty input should yield NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	q, err := Quantile(xs, 0.5)
	if err != nil || !approx(q, 2.5, 1e-15) {
		t.Errorf("median = %g, %v", q, err)
	}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("min = %g", q)
	}
	if q, _ := Quantile(xs, 1); q != 4 {
		t.Errorf("max = %g", q)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty error = %v", err)
	}
	// Quantile must not mutate the input.
	if xs[0] != 3 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs([]float64{-3, 1, 2}) != 3 {
		t.Error("MaxAbs wrong")
	}
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs(nil) != 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2, 1e-12) || !approx(fit.Intercept, 1, 1e-12) || !approx(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrEmpty) {
		t.Error("zero x-variance accepted")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 5·x² on a log grid.
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16} {
		xs = append(xs, x)
		ys = append(ys, 5*x*x)
	}
	fit, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2, 1e-9) {
		t.Errorf("exponent = %g, want 2", fit.Slope)
	}
	// Non-positive pairs are filtered.
	fit, err = LogLogSlope([]float64{1, 2, -1, 4}, []float64{5, 20, 1, 80})
	if err != nil || !approx(fit.Slope, 2, 1e-9) {
		t.Errorf("filtered fit = %+v, %v", fit, err)
	}
	if _, err := LogLogSlope([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrEmpty) {
		t.Error("length mismatch accepted")
	}
}

func TestIsNonIncreasing(t *testing.T) {
	if !IsNonIncreasing([]float64{3, 2, 2, 1}, 0) {
		t.Error("monotone series rejected")
	}
	if IsNonIncreasing([]float64{1, 2}, 0) {
		t.Error("increasing series accepted")
	}
	if !IsNonIncreasing([]float64{1, 1 + 1e-12}, 1e-9) {
		t.Error("tolerance ignored")
	}
}

func TestOscillationScore(t *testing.T) {
	alternating := []float64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if s := OscillationScore(alternating); s < 0.99 {
		t.Errorf("alternating score = %g, want ~1", s)
	}
	monotone := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	if s := OscillationScore(monotone); s != 0 {
		t.Errorf("monotone score = %g, want 0", s)
	}
	if OscillationScore([]float64{1, 2}) != 0 {
		t.Error("short series score != 0")
	}
	flat := []float64{1, 1, 1, 1, 1, 1}
	if OscillationScore(flat) != 0 {
		t.Error("flat series score != 0")
	}
}

func TestRelErr(t *testing.T) {
	if !approx(RelErr(11, 10, 1e-9), 0.1, 1e-12) {
		t.Error("RelErr wrong")
	}
	if !approx(RelErr(0.5, 0, 1), 0.5, 1e-12) {
		t.Error("RelErr floor wrong")
	}
}

// Property: LinearFit recovers arbitrary affine relationships exactly.
func TestLinearFitRecoversAffine(t *testing.T) {
	prop := func(a, b int8) bool {
		slope := float64(a) / 4
		icept := float64(b) / 4
		xs := []float64{0, 1, 2, 3, 5, 8}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + icept
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return approx(fit.Slope, slope, 1e-9) && approx(fit.Intercept, icept, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.P10 >= s.Median || s.P90 <= s.Median {
		t.Errorf("percentiles out of order: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
}
