package experiments

import (
	"context"
	"math"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/report"
	"wardrop/internal/topo"
)

// E2Params parameterises the §3.2 tolerance-threshold reproduction.
type E2Params struct {
	// Beta is the kink slope.
	Beta float64
	// Epsilons are the latency tolerances ε to sweep.
	Epsilons []float64
	// Rounds is the number of phases per probe.
	Rounds int
}

// DefaultE2Params returns the sweep used by the benchmark harness.
func DefaultE2Params() E2Params {
	return E2Params{Beta: 4, Epsilons: []float64{0.2, 0.5, 1.0, 1.5}, Rounds: 30}
}

// RunE2 reproduces the §3.2 threshold: the oscillation's sustained latency
// stays within ε iff T ≤ ln((1+2ε/β)/(1−2ε/β)). For each ε it runs best
// response at exactly the threshold period (expect amplitude ≈ ε) and at
// 1.5× the threshold (expect amplitude > ε).
func RunE2(p E2Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E2 §3.2: maximum update period keeping oscillation within eps",
		Columns: []string{"eps", "T_max_paper", "amp_at_Tmax", "amp_at_1.5Tmax", "within_eps", "exceeds_eps"},
	}
	measure := func(beta, T float64) (float64, error) {
		inst, err := topo.TwoLinkKink(beta)
		if err != nil {
			return 0, err
		}
		f1Start, _, _ := dynamics.TwoLinkOscillation(beta, T, 0)
		f0 := flow.Vector{f1Start, 1 - f1Start}
		amp := 0.0
		_, err = engine.Run(context.Background(), engine.Scenario{
			Engine:       engine.BestResponse{},
			Instance:     inst,
			UpdatePeriod: T,
			InitialFlow:  f0,
			Horizon:      float64(p.Rounds) * T,
		}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
			amp = math.Max(amp, math.Max(info.PathLatencies[0], info.PathLatencies[1]))
			return false
		})))
		if err != nil {
			return 0, err
		}
		return amp, nil
	}
	for _, eps := range p.Epsilons {
		_, _, tMax := dynamics.TwoLinkOscillation(p.Beta, 0, eps)
		if math.IsInf(tMax, 1) {
			tbl.AddRow(report.F(eps), "inf", "-", "-", "true", "false")
			continue
		}
		ampAt, err := measure(p.Beta, tMax)
		if err != nil {
			return nil, wrap("E2", err)
		}
		ampOver, err := measure(p.Beta, 1.5*tMax)
		if err != nil {
			return nil, wrap("E2", err)
		}
		tbl.AddRow(
			report.F(eps), report.F(tMax),
			report.F(ampAt), report.F(ampOver),
			boolCell(ampAt <= eps+1e-9), boolCell(ampOver > eps),
		)
	}
	tbl.AddNote("paper: T <= ln((1+2e/b)/(1-2e/b)) = O(e/b); amplitude at the threshold equals eps exactly")
	return tbl, nil
}

func boolCell(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
