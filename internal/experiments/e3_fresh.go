package experiments

import (
	"context"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E3Params parameterises the Theorem 2 (fresh information) reproduction.
type E3Params struct {
	// Horizon is the simulated time per cell.
	Horizon float64
	// Step is the fresh-dynamics integration step.
	Step float64
}

// DefaultE3Params returns the configuration used by the benchmark harness.
func DefaultE3Params() E3Params {
	return E3Params{Horizon: 150, Step: 1.0 / 64}
}

// RunE3 reproduces Theorem 2: under up-to-date information every policy in
// the class (positive Lipschitz sampler + selfish Lipschitz migrator)
// descends the potential monotonically towards the Wardrop minimum. Rows
// sweep {uniform+linear, replicator} × {Pigou, Braess, grid} and report
// monotonicity and the final potential gap Φ(f) − Φ*.
func RunE3(p E3Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E3 Thm 2: convergence under up-to-date information",
		Columns: []string{"topology", "policy", "phi_start", "phi_final", "phi_star", "gap", "monotone"},
	}
	cases := []struct {
		name string
		mk   func() (*flow.Instance, error)
	}{
		{"pigou", topo.Pigou},
		{"braess", topo.Braess},
		{"grid3", func() (*flow.Instance, error) { return topo.Grid(3) }},
	}
	policies := []struct {
		name string
		mk   func(*flow.Instance) (policy.Policy, error)
	}{
		{"uniform+linear", uniformLinearFor},
		{"replicator", replicatorFor},
	}
	for _, c := range cases {
		inst, err := c.mk()
		if err != nil {
			return nil, wrap("E3", err)
		}
		star, err := phiStar(inst)
		if err != nil {
			return nil, wrap("E3", err)
		}
		for _, pc := range policies {
			pol, err := pc.mk(inst)
			if err != nil {
				return nil, wrap("E3", err)
			}
			var phis []float64
			res, err := engine.Run(context.Background(), engine.Scenario{
				Engine:   engine.Fluid{Fresh: true, Step: p.Step},
				Instance: inst,
				Policy:   pol,
				Horizon:  p.Horizon,
			}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
				phis = append(phis, info.Potential)
				return false
			})))
			if err != nil {
				return nil, wrap("E3", err)
			}
			tbl.AddRow(
				c.name, pc.name,
				report.F(phis[0]), report.F(res.FinalPotential), report.F(star),
				report.F(flow.Gap(res.FinalPotential, star)),
				boolCell(stats.IsNonIncreasing(phis, 1e-9)),
			)
		}
	}
	tbl.AddNote("paper: Φ is a Lyapunov function — strictly decreasing off equilibria (Theorem 2)")
	return tbl, nil
}
