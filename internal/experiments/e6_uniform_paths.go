package experiments

import (
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E6Params parameterises the Theorem 6 path-count scaling reproduction.
type E6Params struct {
	// LinkCounts are the parallel-link counts m = |P| to sweep.
	LinkCounts []int
	// Delta, Eps define the (δ,ε)-equilibrium.
	Delta, Eps float64
	// Streak is the consecutive-satisfied-phase stop criterion.
	Streak int
	// MaxPhases caps each run.
	MaxPhases int
}

// DefaultE6Params returns the sweep used by the benchmark harness.
func DefaultE6Params() E6Params {
	return E6Params{
		LinkCounts: []int{2, 4, 8, 16, 32},
		Delta:      0.2, Eps: 0.1,
		Streak:    50,
		MaxPhases: 60_000,
	}
}

// RunE6 reproduces Theorem 6's dependence on the number of paths: for the
// uniform+linear policy the number of phases not starting at a
// (δ,ε)-equilibrium is O(max_i |P_i| / (εT) · (ℓmax/δ)²) — linear in m on
// parallel-link instances. Rows sweep m; the note reports the fitted
// log-log exponent (paper bound: ≤ 1, i.e. at most linear).
func RunE6(p E6Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E6 Thm 6: uniform sampling — unsatisfied rounds vs path count",
		Columns: []string{"m", "T", "rounds", "complete", "bound_shape"},
	}
	var ms, rounds []float64
	for _, m := range p.LinkCounts {
		inst, err := topo.LinearParallelLinks(m)
		if err != nil {
			return nil, wrap("E6", err)
		}
		pol, err := uniformLinearFor(inst)
		if err != nil {
			return nil, wrap("E6", err)
		}
		t, err := safeT(inst, pol)
		if err != nil {
			return nil, wrap("E6", err)
		}
		// Start adversarially: all flow on the worst (last) link.
		f0 := inst.SinglePathFlow(m - 1)
		n, complete, err := countUnsatisfiedRounds(inst, pol, f0, t, p.Delta, p.Eps, false, p.Streak, p.MaxPhases)
		if err != nil {
			return nil, wrap("E6", err)
		}
		// The paper's bound for this cell, up to its hidden constant:
		// m/(εT)·(ℓmax/δ)².
		bound := float64(m) / (p.Eps * t) * (inst.LMax() / p.Delta) * (inst.LMax() / p.Delta)
		tbl.AddRow(report.I(m), report.F(t), report.I(n), boolCell(complete), report.F(bound))
		ms = append(ms, float64(m))
		rounds = append(rounds, float64(n))
	}
	if fit, err := stats.LogLogSlope(ms, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs m = %.3f (paper bound shape: <= 1, linear)", fit.Slope)
	}
	tbl.AddNote("delta=%g eps=%g; rounds counted until %d consecutive satisfied phases", p.Delta, p.Eps, p.Streak)
	return tbl, nil
}
