package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// exponentFromNote extracts the fitted exponent from a table note of the
// form "... exponent ... = <v> ...".
func exponentFromNote(t *testing.T, notes []string) float64 {
	t.Helper()
	note := findNote(notes, "exponent")
	if note == "" {
		t.Fatal("missing exponent note")
	}
	fields := strings.Fields(note)
	for i, f := range fields {
		if f == "=" && i+1 < len(fields) {
			if v, err := strconv.ParseFloat(strings.TrimSuffix(fields[i+1], ","), 64); err == nil {
				return v
			}
		}
	}
	t.Fatalf("could not parse exponent from note %q", note)
	return 0
}

// The E6 verdict — rounds below the paper bound and growing with m — must
// survive sampling noise at a population 1000× beyond anything the per-agent
// engine runs (its repo-wide maximum is 3200 agents in E10).
func TestE6CountVerdictAtScale(t *testing.T) {
	p := E6Params{
		LinkCounts: []int{2, 4, 8},
		Delta:      0.3, Eps: 0.15,
		Streak: 30, MaxPhases: 30_000,
	}
	tbl, err := RunE6Count(p, CountPopulation)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Errorf("run truncated before reaching equilibrium: %v", row)
		}
		if n, bound := parse(t, row[2]), parse(t, row[4]); n > bound {
			t.Errorf("measured rounds %g exceed the paper bound shape %g: %v", n, bound, row)
		}
	}
	if first, last := parse(t, tbl.Rows[0][2]), parse(t, tbl.Rows[len(tbl.Rows)-1][2]); last <= first {
		t.Errorf("rounds did not grow with m: %g -> %g", first, last)
	}
}

func TestE7CountVerdictAtScale(t *testing.T) {
	p := E7Params{
		Links:  8,
		Deltas: []float64{0.8, 0.4, 0.2},
		Eps:    0.15,
		Streak: 30, MaxPhases: 60_000,
	}
	tbl, err := RunE7Count(p, CountPopulation)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[2] != "0" && row[1] == "0" {
			t.Errorf("unexpected row shape: %v", row)
		}
		if n, bound := parse(t, row[1]), parse(t, row[3]); n > bound {
			t.Errorf("measured rounds %g exceed the paper bound shape %g: %v", n, bound, row)
		}
	}
	// Rounds grow as delta shrinks.
	if first, last := parse(t, tbl.Rows[0][1]), parse(t, tbl.Rows[len(tbl.Rows)-1][1]); last <= first {
		t.Errorf("rounds did not grow as delta shrank: %g -> %g", first, last)
	}
}

func TestE8CountFlatInMAtScale(t *testing.T) {
	p := E8Params{
		LinkCounts: []int{2, 8, 32},
		Delta:      0.3, Eps: 0.15,
		Streak: 30, MaxPhases: 30_000,
	}
	tbl, err := RunE8Count(p, CountPopulation)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Errorf("run truncated: %v", row)
		}
	}
	if exp := exponentFromNote(t, tbl.Notes); math.Abs(exp) > 0.6 {
		t.Errorf("replicator m-exponent = %g at N=%d, want ~0", exp, int64(CountPopulation))
	}
}
