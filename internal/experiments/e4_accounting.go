package experiments

import (
	"context"
	"math"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/report"
	"wardrop/internal/topo"
)

// E4Params parameterises the Lemma 3 / Lemma 4 accounting reproduction.
type E4Params struct {
	// Phases is the number of phases to account per instance.
	Phases int
}

// DefaultE4Params returns the configuration used by the benchmark harness.
func DefaultE4Params() E4Params { return E4Params{Phases: 120} }

// RunE4 reproduces the paper's potential accounting. For the replicator at
// the safe period on several instances it verifies per phase:
//
//	Lemma 3 (identity):  Φ(f) − Φ(f̂) = Σ_e U_e + V(f̂,f), residual ≈ 0,
//	Lemma 4 (inequality): ΔΦ ≤ ½·V ≤ 0.
func RunE4(p E4Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E4 Lemmas 3+4: potential accounting per phase at the safe period",
		Columns: []string{"topology", "phases", "max|L3 residual|", "L4 holds", "min V", "max dPhi"},
	}
	cases := []struct {
		name string
		mk   func() (*flow.Instance, error)
	}{
		{"pigou", topo.Pigou},
		{"braess", topo.Braess},
		{"links8", func() (*flow.Instance, error) { return topo.LinearParallelLinks(8) }},
	}
	for _, c := range cases {
		inst, err := c.mk()
		if err != nil {
			return nil, wrap("E4", err)
		}
		pol, err := replicatorFor(inst)
		if err != nil {
			return nil, wrap("E4", err)
		}
		t, err := safeT(inst, pol)
		if err != nil {
			return nil, wrap("E4", err)
		}
		acct := dynamics.NewAccountant(inst)
		_, err = engine.Run(context.Background(), engine.Scenario{
			Engine:       exactFluid,
			Instance:     inst,
			Policy:       pol,
			UpdatePeriod: t,
			InitialFlow:  inst.SinglePathFlow(0),
			Horizon:      float64(p.Phases) * t,
		}, engine.WithObserver(dynamics.ObserverFunc(acct.Hook())))
		if err != nil {
			return nil, wrap("E4", err)
		}
		maxResidual, minV, maxDPhi := 0.0, math.Inf(1), math.Inf(-1)
		holds := true
		for _, a := range acct.Accounts {
			maxResidual = math.Max(maxResidual, math.Abs(a.Lemma3Residual()))
			minV = math.Min(minV, a.VirtualGain)
			maxDPhi = math.Max(maxDPhi, a.DeltaPhi)
			if !a.Lemma4Holds(1e-9) {
				holds = false
			}
		}
		tbl.AddRow(
			c.name, report.I(len(acct.Accounts)),
			report.F(maxResidual), boolCell(holds),
			report.F(minV), report.F(maxDPhi),
		)
	}
	tbl.AddNote("paper: error terms U_e eat at most half of the virtual gain when T = 1/(4DaB)")
	return tbl, nil
}
