package experiments

import (
	"context"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/report"
	"wardrop/internal/topo"
)

// AblationStepParams parameterises the integrator step-size ablation.
type AblationStepParams struct {
	// Steps are the within-phase step sizes to sweep.
	Steps []float64
	// Phases is the number of phases simulated.
	Phases int
}

// DefaultAblationStepParams returns the sweep used by the benchmark harness.
func DefaultAblationStepParams() AblationStepParams {
	return AblationStepParams{Steps: []float64{0.1, 0.02, 0.004, 0.0008}, Phases: 12}
}

// RunAblationStep quantifies the design choice DESIGN.md calls out: within a
// phase the dynamics is linear, so the uniformization integrator is exact
// and Euler/RK4 step sizes trade speed for error against it. Rows report the
// sup-norm deviation of Euler and RK4 finals from the uniformization final
// after a short transient (comparing mid-transient keeps the error visible;
// at long horizons every scheme lands on the same attractor).
func RunAblationStep(p AblationStepParams) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Ablation: within-phase integrator step size vs exact uniformization",
		Columns: []string{"step", "euler_err", "rk4_err"},
	}
	inst, err := topo.Braess()
	if err != nil {
		return nil, wrap("ablation-step", err)
	}
	pol, err := replicatorFor(inst)
	if err != nil {
		return nil, wrap("ablation-step", err)
	}
	t, err := safeT(inst, pol)
	if err != nil {
		return nil, wrap("ablation-step", err)
	}
	horizon := float64(p.Phases) * t
	// Interior start: a simplex vertex is absorbing for proportional
	// sampling (it only ever samples its own path), which would zero out
	// the comparison.
	f0 := skewedStart(inst.NumPaths(), 0)
	scenario := engine.Scenario{
		Instance: inst, Policy: pol, UpdatePeriod: t, InitialFlow: f0, Horizon: horizon,
	}
	integrate := func(eng engine.Fluid) (*engine.Result, error) {
		scenario.Engine = eng
		return engine.Run(context.Background(), scenario)
	}
	exact, err := integrate(exactFluid)
	if err != nil {
		return nil, wrap("ablation-step", err)
	}
	for _, step := range p.Steps {
		eu, err := integrate(engine.Fluid{Integrator: dynamics.Euler, Step: step})
		if err != nil {
			return nil, wrap("ablation-step", err)
		}
		rk, err := integrate(engine.Fluid{Integrator: dynamics.RK4, Step: step})
		if err != nil {
			return nil, wrap("ablation-step", err)
		}
		tbl.AddRow(
			report.F(step),
			report.F(eu.Final.MaxAbsDiff(exact.Final)),
			report.F(rk.Final.MaxAbsDiff(exact.Final)),
		)
	}
	tbl.AddNote("uniformization is exact for the frozen-board linear phase; errors shrink as O(h) / O(h^4)")
	return tbl, nil
}

// All runs every experiment with default parameters and returns the tables
// in E-number order (the wardbench CLI's "all" mode).
func All() ([]*report.Table, error) {
	var tables []*report.Table
	runs := []func() (*report.Table, error){
		func() (*report.Table, error) { return RunE1(DefaultE1Params()) },
		func() (*report.Table, error) { return RunE2(DefaultE2Params()) },
		func() (*report.Table, error) { return RunE3(DefaultE3Params()) },
		func() (*report.Table, error) { return RunE4(DefaultE4Params()) },
		func() (*report.Table, error) { return RunE5(DefaultE5Params()) },
		func() (*report.Table, error) { return RunE6(DefaultE6Params()) },
		func() (*report.Table, error) { return RunE7(DefaultE7Params()) },
		func() (*report.Table, error) { return RunE8(DefaultE8Params()) },
		func() (*report.Table, error) { return RunE9(DefaultE9Params()) },
		func() (*report.Table, error) { return RunE10(DefaultE10Params()) },
		func() (*report.Table, error) { return RunE11(DefaultE11Params()) },
		func() (*report.Table, error) { return RunE12(DefaultE12Params()) },
		func() (*report.Table, error) { return RunAblationStep(DefaultAblationStepParams()) },
	}
	for _, run := range runs {
		t, err := run()
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
