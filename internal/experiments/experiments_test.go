package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// parse pulls a float out of a table cell.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func findNote(notes []string, sub string) string {
	for _, n := range notes {
		if strings.Contains(n, sub) {
			return n
		}
	}
	return ""
}

func TestE1AmplitudeMatchesClosedForm(t *testing.T) {
	p := DefaultE1Params()
	p.Betas = []float64{2}
	p.Periods = []float64{0.5, 1}
	p.Rounds = 20
	tbl, err := RunE1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if rel := parse(t, row[4]); rel > 1e-9 {
			t.Errorf("amplitude relative error %g too large: %v", rel, row)
		}
		if ret := parse(t, row[5]); ret > 1e-9 {
			t.Errorf("return error %g too large: %v", ret, row)
		}
		if osc := parse(t, row[6]); osc < 0.99 {
			t.Errorf("oscillation score %g, want ~1: %v", osc, row)
		}
	}
}

func TestE2ThresholdVerdicts(t *testing.T) {
	p := DefaultE2Params()
	p.Epsilons = []float64{0.5, 1.0}
	p.Rounds = 16
	tbl, err := RunE2(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("amplitude at threshold should stay within eps: %v", row)
		}
		if row[5] != "true" {
			t.Errorf("amplitude beyond threshold should exceed eps: %v", row)
		}
	}
}

func TestE3MonotoneDescent(t *testing.T) {
	p := E3Params{Horizon: 40, Step: 1.0 / 32}
	tbl, err := RunE3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 topologies × 2 policies
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[6] != "true" {
			t.Errorf("potential not monotone: %v", row)
		}
		start, final := parse(t, row[2]), parse(t, row[3])
		if final > start {
			t.Errorf("potential rose: %v", row)
		}
	}
}

func TestE4LemmasHold(t *testing.T) {
	tbl, err := RunE4(E4Params{Phases: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if res := parse(t, row[2]); res > 1e-8 {
			t.Errorf("Lemma 3 residual %g: %v", res, row)
		}
		if row[3] != "true" {
			t.Errorf("Lemma 4 violated: %v", row)
		}
		if maxD := parse(t, row[5]); maxD > 1e-9 {
			t.Errorf("positive potential change %g at safe T: %v", maxD, row)
		}
	}
}

func TestE5SafeRegimeMonotone(t *testing.T) {
	p := E5Params{Multipliers: []float64{0.5, 1, 64}, Phases: 150, Beta: 8}
	tbl, err := RunE5(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0 and 1 are at/below the safe period: monotone descent.
	for _, row := range tbl.Rows[:2] {
		if row[3] != "true" {
			t.Errorf("descent broken inside safe regime: %v", row)
		}
	}
}

func TestE6UniformScaling(t *testing.T) {
	p := E6Params{
		LinkCounts: []int{2, 4, 8},
		Delta:      0.3, Eps: 0.15,
		Streak: 30, MaxPhases: 30_000,
	}
	tbl, err := RunE6(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Errorf("run truncated before reaching equilibrium: %v", row)
		}
		n := parse(t, row[2])
		bound := parse(t, row[4])
		if n > bound {
			t.Errorf("measured rounds %g exceed the paper bound shape %g: %v", n, bound, row)
		}
	}
	// Rounds must grow with m.
	if first, last := parse(t, tbl.Rows[0][2]), parse(t, tbl.Rows[len(tbl.Rows)-1][2]); last <= first {
		t.Errorf("rounds did not grow with m: %g -> %g", first, last)
	}
}

func TestE8ProportionalFlatInM(t *testing.T) {
	p := E8Params{
		LinkCounts: []int{2, 8, 32},
		Delta:      0.3, Eps: 0.15,
		Streak: 30, MaxPhases: 30_000,
	}
	tbl, err := RunE8(p)
	if err != nil {
		t.Fatal(err)
	}
	note := findNote(tbl.Notes, "exponent")
	if note == "" {
		t.Fatal("missing exponent note")
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Errorf("run truncated: %v", row)
		}
	}
	// Theorem 7 headline: the m-dependence is (near) flat. Allow generous
	// slack; the contrast experiment E6 shows ~linear growth for uniform.
	var fields []string
	for _, f := range strings.Fields(note) {
		fields = append(fields, strings.TrimSuffix(f, ","))
	}
	for i, f := range fields {
		if f == "=" && i+1 < len(fields) {
			exp, err := strconv.ParseFloat(fields[i+1], 64)
			if err == nil {
				if math.Abs(exp) > 0.6 {
					t.Errorf("replicator m-exponent = %g, want ~0", exp)
				}
				return
			}
		}
	}
	t.Fatalf("could not parse exponent from note %q", note)
}

func TestE9SmoothLogitConvergesHardBROscillates(t *testing.T) {
	p := E9Params{Cs: []float64{0, 16}, Phases: 150, Beta: 8}
	tbl, err := RunE9(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows[:len(tbl.Rows)-1] {
		if row[3] != "true" {
			t.Errorf("logit run not monotone: %v", row)
		}
	}
	br := tbl.Rows[len(tbl.Rows)-1]
	if osc := parse(t, br[4]); osc < 0.9 {
		t.Errorf("best response oscillation score = %g, want ~1: %v", osc, br)
	}
	if phi := parse(t, br[2]); phi < 1e-6 {
		t.Errorf("best response reached equilibrium (phi=%g) but should not", phi)
	}
}

func TestE10ErrorShrinksWithN(t *testing.T) {
	p := E10Params{Ns: []int{50, 1600}, Seeds: 2, Horizon: 10, UpdatePeriod: 0.25, Workers: 2}
	tbl, err := RunE10(p)
	if err != nil {
		t.Fatal(err)
	}
	small := parse(t, tbl.Rows[0][1])
	large := parse(t, tbl.Rows[1][1])
	if large >= small {
		t.Errorf("sup-norm error did not shrink: N=50 err %g, N=1600 err %g", small, large)
	}
}

func TestAblationStepErrorsShrink(t *testing.T) {
	p := AblationStepParams{Steps: []float64{0.1, 0.01}, Phases: 60}
	tbl, err := RunAblationStep(p)
	if err != nil {
		t.Fatal(err)
	}
	eu0, eu1 := parse(t, tbl.Rows[0][1]), parse(t, tbl.Rows[1][1])
	if eu1 > eu0 {
		t.Errorf("Euler error grew with smaller step: %g -> %g", eu0, eu1)
	}
	rk0 := parse(t, tbl.Rows[0][2])
	if rk0 > eu0 {
		t.Errorf("RK4 (%g) should beat Euler (%g) at the same step", rk0, eu0)
	}
}

func TestE11HedgePhaseTransition(t *testing.T) {
	p := E11Params{Etas: []float64{0.1, 50}, Phases: 200, Beta: 8, Period: 0.25}
	tbl, err := RunE11(p)
	if err != nil {
		t.Fatal(err)
	}
	small, large := tbl.Rows[0], tbl.Rows[1]
	if dev := parse(t, small[3]); dev > 0.01 {
		t.Errorf("small eta should converge, flow dev = %g", dev)
	}
	if dev := parse(t, large[3]); dev < 0.1 {
		t.Errorf("large eta should oscillate, flow dev = %g", dev)
	}
	if osc := parse(t, large[4]); osc < 0.9 {
		t.Errorf("large eta oscillation score = %g", osc)
	}
	rep := tbl.Rows[len(tbl.Rows)-1]
	if dev := parse(t, rep[3]); dev > 0.01 {
		t.Errorf("replicator comparator should converge, dev = %g", dev)
	}
}

func TestE12MultiCommodityCompletes(t *testing.T) {
	p := E12Params{Ks: []int{1, 3}, Links: 4, Delta: 0.3, Eps: 0.15, Streak: 30, MaxPhases: 30_000}
	tbl, err := RunE12(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[2] != "true" || row[4] != "true" {
			t.Errorf("run truncated: %v", row)
		}
		if parse(t, row[1]) <= 0 || parse(t, row[3]) <= 0 {
			t.Errorf("adversarial start should yield unsatisfied rounds: %v", row)
		}
	}
	// The bounds do not grow with k: allow generous slack but catch blowups.
	u1, uK := parse(t, tbl.Rows[0][1]), parse(t, tbl.Rows[1][1])
	if uK > 10*u1+100 {
		t.Errorf("uniform rounds blew up with k: %g -> %g", u1, uK)
	}
}
