package experiments

import (
	"context"

	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// This file ports the convergence-time scaling experiments E6–E8 onto the
// mean-field count engine. The fluid originals measure the Theorem 6/7 round
// counts on the deterministic limit dynamics; these ports measure them on a
// finite — but enormous — stochastic population. The count representation
// makes a phase cost O(paths) whatever the population, so the ports run at
// populations three orders of magnitude beyond anything the per-agent engine
// is exercised at, and the verdicts (rounds below the paper bound, growth
// linear in m for uniform sampling, flat in m for proportional sampling)
// must survive the sampling noise.

// CountPopulation is the default population for the count-engine ports:
// ≥ 1000× the largest population the per-agent engine runs anywhere in this
// repository (3200 in E10, 2000 in the equivalence tests).
const CountPopulation = 4_000_000

// countEngineRounds mirrors countUnsatisfiedRounds on the count engine: it
// runs the finite-N stale dynamics from f0 (placed proportionally onto N
// agents) and returns the unsatisfied-phase count and whether the streak
// stop fired.
func countEngineRounds(inst *flow.Instance, pol policy.Policy, f0 flow.Vector,
	T, delta, eps float64, weak bool, streak, maxPhases int, n int64, seed uint64) (int, bool, error) {
	res, err := engine.Run(context.Background(), engine.Scenario{
		Engine:                   engine.Count{N: n, Seed: seed},
		Instance:                 inst,
		Policy:                   pol,
		UpdatePeriod:             T,
		InitialFlow:              f0,
		Horizon:                  float64(maxPhases) * T,
		Delta:                    delta,
		Eps:                      eps,
		Weak:                     weak,
		StopAfterSatisfiedStreak: streak,
	})
	if err != nil {
		return 0, false, err
	}
	return res.UnsatisfiedPhases, res.Stopped, nil
}

// RunE6Count reproduces E6 (Theorem 6's path-count scaling) with the count
// engine at population n; see RunE6 for the experiment's semantics.
func RunE6Count(p E6Params, n int64) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E6 Thm 6 (count engine): uniform sampling — unsatisfied rounds vs path count",
		Columns: []string{"m", "T", "rounds", "complete", "bound_shape"},
	}
	var ms, rounds []float64
	for _, m := range p.LinkCounts {
		inst, err := topo.LinearParallelLinks(m)
		if err != nil {
			return nil, wrap("E6/count", err)
		}
		pol, err := uniformLinearFor(inst)
		if err != nil {
			return nil, wrap("E6/count", err)
		}
		t, err := safeT(inst, pol)
		if err != nil {
			return nil, wrap("E6/count", err)
		}
		f0 := inst.SinglePathFlow(m - 1)
		r, complete, err := countEngineRounds(inst, pol, f0, t, p.Delta, p.Eps, false, p.Streak, p.MaxPhases, n, uint64(m))
		if err != nil {
			return nil, wrap("E6/count", err)
		}
		bound := float64(m) / (p.Eps * t) * (inst.LMax() / p.Delta) * (inst.LMax() / p.Delta)
		tbl.AddRow(report.I(m), report.F(t), report.I(r), boolCell(complete), report.F(bound))
		ms = append(ms, float64(m))
		rounds = append(rounds, float64(r))
	}
	if fit, err := stats.LogLogSlope(ms, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs m = %.3f (paper bound shape: <= 1, linear)", fit.Slope)
	}
	tbl.AddNote("count engine, N=%d; delta=%g eps=%g streak=%d", n, p.Delta, p.Eps, p.Streak)
	return tbl, nil
}

// RunE7Count reproduces E7 (Theorem 6's δ-scaling) with the count engine at
// population n; see RunE7 for the experiment's semantics.
func RunE7Count(p E7Params, n int64) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E7 Thm 6 (count engine): uniform sampling — unsatisfied rounds vs delta",
		Columns: []string{"delta", "rounds", "complete", "bound_shape"},
	}
	inst, err := topo.LinearParallelLinks(p.Links)
	if err != nil {
		return nil, wrap("E7/count", err)
	}
	pol, err := uniformLinearFor(inst)
	if err != nil {
		return nil, wrap("E7/count", err)
	}
	t, err := safeT(inst, pol)
	if err != nil {
		return nil, wrap("E7/count", err)
	}
	f0 := inst.SinglePathFlow(p.Links - 1)
	var ds, rounds []float64
	for i, d := range p.Deltas {
		r, complete, err := countEngineRounds(inst, pol, f0, t, d, p.Eps, false, p.Streak, p.MaxPhases, n, uint64(i+1))
		if err != nil {
			return nil, wrap("E7/count", err)
		}
		bound := float64(p.Links) / (p.Eps * t) * (inst.LMax() / d) * (inst.LMax() / d)
		tbl.AddRow(report.F(d), report.I(r), boolCell(complete), report.F(bound))
		ds = append(ds, d)
		rounds = append(rounds, float64(r))
	}
	if fit, err := stats.LogLogSlope(ds, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs delta = %.3f (paper bound shape: -2)", fit.Slope)
	}
	tbl.AddNote("count engine, N=%d; m=%d eps=%g", n, p.Links, p.Eps)
	return tbl, nil
}

// RunE8Count reproduces E8 (Theorem 7's path-count independence) with the
// count engine at population n; see RunE8 for the experiment's semantics.
func RunE8Count(p E8Params, n int64) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E8 Thm 7 (count engine): proportional sampling — weak unsatisfied rounds vs path count",
		Columns: []string{"m", "T", "rounds", "complete", "bound_shape"},
	}
	var ms, rounds []float64
	for _, m := range p.LinkCounts {
		inst, err := topo.LinearParallelLinks(m)
		if err != nil {
			return nil, wrap("E8/count", err)
		}
		pol, err := replicatorFor(inst)
		if err != nil {
			return nil, wrap("E8/count", err)
		}
		t, err := safeT(inst, pol)
		if err != nil {
			return nil, wrap("E8/count", err)
		}
		f0 := skewedStart(inst.NumPaths(), m-1)
		r, complete, err := countEngineRounds(inst, pol, f0, t, p.Delta, p.Eps, true, p.Streak, p.MaxPhases, n, uint64(m))
		if err != nil {
			return nil, wrap("E8/count", err)
		}
		bound := 1 / (p.Eps * t) * (inst.LMax() / p.Delta) * (inst.LMax() / p.Delta)
		tbl.AddRow(report.I(m), report.F(t), report.I(r), boolCell(complete), report.F(bound))
		ms = append(ms, float64(m))
		rounds = append(rounds, float64(r))
	}
	if fit, err := stats.LogLogSlope(ms, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs m = %.3f (paper bound shape: 0, independent of |P|)", fit.Slope)
	}
	tbl.AddNote("count engine, N=%d; delta=%g eps=%g (weak metric, Definition 4)", n, p.Delta, p.Eps)
	return tbl, nil
}
