package experiments

import (
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E7Params parameterises the Theorem 6 δ-scaling reproduction.
type E7Params struct {
	// Links is the fixed parallel-link count.
	Links int
	// Deltas are the approximation widths δ to sweep.
	Deltas []float64
	// Eps is the tolerated unsatisfied volume.
	Eps float64
	// Streak is the consecutive-satisfied stop criterion.
	Streak int
	// MaxPhases caps each run.
	MaxPhases int
}

// DefaultE7Params returns the sweep used by the benchmark harness.
func DefaultE7Params() E7Params {
	return E7Params{
		Links:  8,
		Deltas: []float64{0.8, 0.4, 0.2, 0.1, 0.05},
		Eps:    0.1,
		Streak: 50, MaxPhases: 120_000,
	}
}

// RunE7 reproduces Theorem 6's dependence on δ: rounds grow as (ℓmax/δ)² in
// the bound, i.e. exponent −2 in δ. Rows sweep δ at fixed m; the note
// reports the fitted exponent (paper bound shape: ≥ −2, since the bound is
// an upper envelope).
func RunE7(p E7Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E7 Thm 6: uniform sampling — unsatisfied rounds vs delta",
		Columns: []string{"delta", "rounds", "complete", "bound_shape"},
	}
	inst, err := topo.LinearParallelLinks(p.Links)
	if err != nil {
		return nil, wrap("E7", err)
	}
	pol, err := uniformLinearFor(inst)
	if err != nil {
		return nil, wrap("E7", err)
	}
	t, err := safeT(inst, pol)
	if err != nil {
		return nil, wrap("E7", err)
	}
	f0 := inst.SinglePathFlow(p.Links - 1)
	var ds, rounds []float64
	for _, d := range p.Deltas {
		n, complete, err := countUnsatisfiedRounds(inst, pol, f0, t, d, p.Eps, false, p.Streak, p.MaxPhases)
		if err != nil {
			return nil, wrap("E7", err)
		}
		bound := float64(p.Links) / (p.Eps * t) * (inst.LMax() / d) * (inst.LMax() / d)
		tbl.AddRow(report.F(d), report.I(n), boolCell(complete), report.F(bound))
		ds = append(ds, d)
		rounds = append(rounds, float64(n))
	}
	if fit, err := stats.LogLogSlope(ds, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs delta = %.3f (paper bound shape: -2)", fit.Slope)
	}
	tbl.AddNote("m=%d eps=%g", p.Links, p.Eps)
	return tbl, nil
}
