package experiments

import (
	"context"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E5Params parameterises the safe-period sweep (Corollary 5).
type E5Params struct {
	// Multipliers are the T/T_safe ratios to sweep.
	Multipliers []float64
	// Phases is the number of phases per cell.
	Phases int
	// Beta is the kink slope of the adversarial instance.
	Beta float64
}

// DefaultE5Params returns the sweep used by the benchmark harness.
func DefaultE5Params() E5Params {
	return E5Params{Multipliers: []float64{0.5, 1, 4, 16, 64}, Phases: 400, Beta: 8}
}

// RunE5 reproduces Corollary 5's regime boundary empirically: the replicator
// run at T ≤ T_safe = 1/(4Dαβ) descends the potential monotonically, while
// inflating T far beyond the safe period eventually breaks monotone descent
// (the smoothness condition is violated). Rows report, per multiplier, the
// final potential gap, monotonicity and an oscillation score of the
// potential series on the two-link kink instance (whose Φ* = 0 makes gaps
// absolute).
func RunE5(p E5Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E5 Cor 5: T/T_safe sweep for the replicator (two-link kink)",
		Columns: []string{"T/T_safe", "T", "phi_final", "monotone_phi", "flow_osc_score"},
	}
	inst, err := topo.TwoLinkKink(p.Beta)
	if err != nil {
		return nil, wrap("E5", err)
	}
	pol, err := replicatorFor(inst)
	if err != nil {
		return nil, wrap("E5", err)
	}
	tSafe, err := safeT(inst, pol)
	if err != nil {
		return nil, wrap("E5", err)
	}
	// Start away from the equilibrium: most mass on link 1.
	f0 := flow.Vector{0.9, 0.1}
	for _, mult := range p.Multipliers {
		t := mult * tSafe
		var phis, f1s []float64
		_, err = engine.Run(context.Background(), engine.Scenario{
			Engine:       exactFluid,
			Instance:     inst,
			Policy:       pol,
			UpdatePeriod: t,
			InitialFlow:  f0,
			Horizon:      float64(p.Phases) * t,
		}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
			phis = append(phis, info.Potential)
			f1s = append(f1s, info.Flow[0])
			return false
		})))
		if err != nil {
			return nil, wrap("E5", err)
		}
		tbl.AddRow(
			report.F(mult), report.F(t),
			report.F(phis[len(phis)-1]),
			boolCell(stats.IsNonIncreasing(phis, 1e-9)),
			report.F3(stats.OscillationScore(f1s)),
		)
	}
	tbl.AddNote("T_safe = %g (alpha=%g, beta=%g, D=%d); paper guarantees descent for T <= T_safe",
		tSafe, 1/inst.LMax(), inst.Beta(), inst.MaxPathLen())
	tbl.AddNote("phi* = 0 for this instance, so phi_final is the absolute equilibrium gap")
	return tbl, nil
}
