// Package experiments regenerates the paper's quantitative artefacts: the
// §3.2 best-response oscillation closed forms (E1, E2), the convergence
// guarantees of Theorem 2 and Corollary 5 (E3, E5), the potential accounting
// of Lemmas 3 and 4 (E4), the convergence-time scaling laws of Theorems 6
// and 7 (E6–E8), the smoothed-best-response sweep (E9) and the fluid-limit
// validity check backing the whole model (E10). Each experiment returns a
// report.Table whose rows are the series a figure would plot; the root-level
// benchmark harness has one bench per experiment.
package experiments

import (
	"context"
	"errors"
	"fmt"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/solver"
)

// ErrExperiment wraps failures inside an experiment run.
var ErrExperiment = errors.New("experiments: run failed")

func wrap(id string, err error) error {
	return fmt.Errorf("%w: %s: %v", ErrExperiment, id, err)
}

// replicatorFor builds the replicator policy (proportional + linear) sized to
// the instance's ℓmax.
func replicatorFor(inst *flow.Instance) (policy.Policy, error) {
	return policy.Replicator(inst.LMax())
}

// uniformLinearFor builds the uniform + linear policy sized to the
// instance's ℓmax.
func uniformLinearFor(inst *flow.Instance) (policy.Policy, error) {
	return policy.UniformLinear(inst.LMax())
}

// safeT returns the paper's safe update period for the policy on the
// instance.
func safeT(inst *flow.Instance, pol policy.Policy) (float64, error) {
	return policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
}

// phiStar solves the instance's optimal potential with the reference solver.
func phiStar(inst *flow.Instance) (float64, error) {
	res, err := solver.SolveEquilibrium(inst, solver.Options{RelGapTol: 1e-10})
	if err != nil {
		return 0, err
	}
	return res.Potential, nil
}

// exactFluid is the engine every fluid-limit experiment dispatches through:
// the frozen-board uniformization scheme is exact, so measured artefacts
// carry no integration error.
var exactFluid = engine.Fluid{Integrator: dynamics.Uniformization}

// countUnsatisfiedRounds runs the stale dynamics from f0 and returns the
// number of phases not starting at the configured approximate equilibrium,
// stopping once `streak` consecutive phases are satisfied (or at maxPhases).
// The second return reports whether the streak stop fired (i.e. the count is
// complete rather than truncated).
func countUnsatisfiedRounds(inst *flow.Instance, pol policy.Policy, f0 flow.Vector,
	T, delta, eps float64, weak bool, streak, maxPhases int) (int, bool, error) {
	res, err := engine.Run(context.Background(), engine.Scenario{
		Engine:                   exactFluid,
		Instance:                 inst,
		Policy:                   pol,
		UpdatePeriod:             T,
		InitialFlow:              f0,
		Horizon:                  float64(maxPhases) * T,
		Delta:                    delta,
		Eps:                      eps,
		Weak:                     weak,
		StopAfterSatisfiedStreak: streak,
	})
	if err != nil {
		return 0, false, err
	}
	return res.UnsatisfiedPhases, res.Stopped, nil
}

// potentialSeries runs the stale dynamics and returns the potential at each
// phase start.
func potentialSeries(inst *flow.Instance, pol policy.Policy, f0 flow.Vector, T float64, phases int) ([]float64, error) {
	var phis []float64
	_, err := engine.Run(context.Background(), engine.Scenario{
		Engine:       exactFluid,
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: T,
		InitialFlow:  f0,
		Horizon:      float64(phases) * T,
	}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
		phis = append(phis, info.Potential)
		return false
	})))
	if err != nil {
		return nil, err
	}
	return phis, nil
}
