package experiments

import (
	"context"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E9Params parameterises the smoothed-best-response sweep.
type E9Params struct {
	// Cs are the logit concentration parameters to sweep.
	Cs []float64
	// Phases is the number of phases per cell.
	Phases int
	// Beta is the kink slope.
	Beta float64
}

// DefaultE9Params returns the sweep used by the benchmark harness.
func DefaultE9Params() E9Params {
	return E9Params{Cs: []float64{0, 1, 4, 16, 64}, Phases: 400, Beta: 8}
}

// RunE9 probes the §2.2 smoothed best response: Boltzmann sampling
// σ_PQ ∝ exp(−c·ℓ_Q) combined with the α-smooth linear migration rule.
// Because the migration rule stays α-smooth, Corollary 5 still guarantees
// convergence at the safe period for every c — in sharp contrast to hard
// best response on the same instance (the final row), which oscillates
// forever. Rows report final potential and oscillation score per c.
func RunE9(p E9Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E9 §2.2: smoothed best response (logit) vs hard best response",
		Columns: []string{"policy", "c", "phi_final", "monotone_phi", "flow_osc_score"},
	}
	inst, err := topo.TwoLinkKink(p.Beta)
	if err != nil {
		return nil, wrap("E9", err)
	}
	lin, err := policy.NewLinear(inst.LMax())
	if err != nil {
		return nil, wrap("E9", err)
	}
	tSafe := policy.SafeUpdatePeriod(lin.Alpha(), inst.Beta(), inst.MaxPathLen())
	f0 := flow.Vector{0.9, 0.1}
	for _, c := range p.Cs {
		pol := policy.Policy{Sampler: policy.Boltzmann{C: c}, Migrator: lin}
		var phis, f1s []float64
		_, err = engine.Run(context.Background(), engine.Scenario{
			Engine:       exactFluid,
			Instance:     inst,
			Policy:       pol,
			UpdatePeriod: tSafe,
			InitialFlow:  f0,
			Horizon:      float64(p.Phases) * tSafe,
		}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
			phis = append(phis, info.Potential)
			f1s = append(f1s, info.Flow[0])
			return false
		})))
		if err != nil {
			return nil, wrap("E9", err)
		}
		tbl.AddRow(
			"logit+linear", report.F(c),
			report.F(phis[len(phis)-1]),
			boolCell(stats.IsNonIncreasing(phis, 1e-9)),
			report.F3(stats.OscillationScore(f1s)),
		)
	}
	// Contrast: hard best response at the same T from the paper's periodic
	// start.
	f1Start, _, _ := dynamics.TwoLinkOscillation(p.Beta, tSafe, 0)
	var phis, f1s []float64
	_, err = engine.Run(context.Background(), engine.Scenario{
		Engine:       engine.BestResponse{},
		Instance:     inst,
		UpdatePeriod: tSafe,
		InitialFlow:  flow.Vector{f1Start, 1 - f1Start},
		Horizon:      float64(p.Phases) * tSafe,
	}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
		phis = append(phis, info.Potential)
		f1s = append(f1s, info.Flow[0])
		return false
	})))
	if err != nil {
		return nil, wrap("E9", err)
	}
	tbl.AddRow(
		"best-response", "inf",
		report.F(phis[len(phis)-1]),
		boolCell(stats.IsNonIncreasing(phis, 1e-9)),
		report.F3(stats.OscillationScore(f1s)),
	)
	tbl.AddNote("T = T_safe(linear) = %g; smooth migration keeps every logit c convergent, hard BR oscillates", tSafe)
	return tbl, nil
}
