package experiments

import (
	"context"
	"fmt"

	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/sweep"
	"wardrop/internal/topo"
)

// This file ports the convergence-time scaling experiments E6–E8 onto the
// sweep engine: each builds the equivalent campaign, runs it on the worker
// pool, and renders the same table shape (rows, columns, fitted-exponent
// note) as the legacy single-threaded harness. The fluid dynamics is
// deterministic, so the ported runs reproduce the legacy round counts
// exactly — the ports are the proof that the engine subsumes the fixed
// harness, while executing the sweep cells in parallel.

// e6Campaign is the engine form of RunE6's loop.
func e6Campaign(p E6Params) *sweep.Campaign {
	c := &sweep.Campaign{
		Name:          "e6-uniform-paths",
		Policies:      []sweep.PolicySpec{{Kind: "uniform"}},
		UpdatePeriods: []sweep.Period{{Safe: true}},
		MaxPhases:     p.MaxPhases,
		Start:         "worst",
		Delta:         p.Delta,
		Eps:           p.Eps,
		Streak:        p.Streak,
	}
	for _, m := range p.LinkCounts {
		c.Topologies = append(c.Topologies, sweep.Topology{Family: "links", Size: m})
	}
	return c
}

// RunE6Sweep reproduces E6 (Theorem 6's path-count scaling) on the sweep
// engine; see RunE6 for the experiment's semantics.
func RunE6Sweep(p E6Params) (*report.Table, error) {
	res, err := sweep.Run(context.Background(), e6Campaign(p), sweep.Options{})
	if err != nil {
		return nil, wrap("E6/sweep", err)
	}
	tbl := &report.Table{
		Title:   "E6 Thm 6 (sweep engine): uniform sampling — unsatisfied rounds vs path count",
		Columns: []string{"m", "T", "rounds", "complete", "bound_shape"},
	}
	var ms, rounds []float64
	for i, rec := range res.Records {
		if rec.Error != "" {
			return nil, wrap("E6/sweep", fmt.Errorf("task %d: %s", rec.ID, rec.Error))
		}
		m := p.LinkCounts[i]
		inst, err := topo.LinearParallelLinks(m)
		if err != nil {
			return nil, wrap("E6/sweep", err)
		}
		bound := float64(m) / (p.Eps * rec.T) * (inst.LMax() / p.Delta) * (inst.LMax() / p.Delta)
		tbl.AddRow(report.I(m), report.F(rec.T), report.I(rec.UnsatisfiedPhases),
			boolCell(rec.Converged), report.F(bound))
		ms = append(ms, float64(m))
		rounds = append(rounds, float64(rec.UnsatisfiedPhases))
	}
	if fit, err := stats.LogLogSlope(ms, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs m = %.3f (paper bound shape: <= 1, linear)", fit.Slope)
	}
	tbl.AddNote("delta=%g eps=%g; rounds counted until %d consecutive satisfied phases", p.Delta, p.Eps, p.Streak)
	return tbl, nil
}

// e7Campaign is the engine form of RunE7's loop (δ as a sweep axis).
func e7Campaign(p E7Params) *sweep.Campaign {
	return &sweep.Campaign{
		Name:          "e7-uniform-delta",
		Topologies:    []sweep.Topology{{Family: "links", Size: p.Links}},
		Policies:      []sweep.PolicySpec{{Kind: "uniform"}},
		UpdatePeriods: []sweep.Period{{Safe: true}},
		MaxPhases:     p.MaxPhases,
		Start:         "worst",
		Deltas:        p.Deltas,
		Eps:           p.Eps,
		Streak:        p.Streak,
	}
}

// RunE7Sweep reproduces E7 (Theorem 6's δ-scaling) on the sweep engine; see
// RunE7 for the experiment's semantics.
func RunE7Sweep(p E7Params) (*report.Table, error) {
	res, err := sweep.Run(context.Background(), e7Campaign(p), sweep.Options{})
	if err != nil {
		return nil, wrap("E7/sweep", err)
	}
	tbl := &report.Table{
		Title:   "E7 Thm 6 (sweep engine): uniform sampling — unsatisfied rounds vs delta",
		Columns: []string{"delta", "rounds", "complete", "bound_shape"},
	}
	inst, err := topo.LinearParallelLinks(p.Links)
	if err != nil {
		return nil, wrap("E7/sweep", err)
	}
	var ds, rounds []float64
	for _, rec := range res.Records {
		if rec.Error != "" {
			return nil, wrap("E7/sweep", fmt.Errorf("task %d: %s", rec.ID, rec.Error))
		}
		bound := float64(p.Links) / (p.Eps * rec.T) * (inst.LMax() / rec.Delta) * (inst.LMax() / rec.Delta)
		tbl.AddRow(report.F(rec.Delta), report.I(rec.UnsatisfiedPhases),
			boolCell(rec.Converged), report.F(bound))
		ds = append(ds, rec.Delta)
		rounds = append(rounds, float64(rec.UnsatisfiedPhases))
	}
	if fit, err := stats.LogLogSlope(ds, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs delta = %.3f (paper bound shape: -2)", fit.Slope)
	}
	tbl.AddNote("m=%d eps=%g", p.Links, p.Eps)
	return tbl, nil
}

// e8Campaign is the engine form of RunE8's loop.
func e8Campaign(p E8Params) *sweep.Campaign {
	c := &sweep.Campaign{
		Name:          "e8-proportional",
		Policies:      []sweep.PolicySpec{{Kind: "replicator"}},
		UpdatePeriods: []sweep.Period{{Safe: true}},
		MaxPhases:     p.MaxPhases,
		Start:         "skewed",
		Delta:         p.Delta,
		Eps:           p.Eps,
		Weak:          true,
		Streak:        p.Streak,
	}
	for _, m := range p.LinkCounts {
		c.Topologies = append(c.Topologies, sweep.Topology{Family: "links", Size: m})
	}
	return c
}

// RunE8Sweep reproduces E8 (Theorem 7's path-count independence) on the
// sweep engine; see RunE8 for the experiment's semantics.
func RunE8Sweep(p E8Params) (*report.Table, error) {
	res, err := sweep.Run(context.Background(), e8Campaign(p), sweep.Options{})
	if err != nil {
		return nil, wrap("E8/sweep", err)
	}
	tbl := &report.Table{
		Title:   "E8 Thm 7 (sweep engine): proportional sampling — weak unsatisfied rounds vs path count",
		Columns: []string{"m", "T", "rounds", "complete", "bound_shape"},
	}
	var ms, rounds []float64
	for i, rec := range res.Records {
		if rec.Error != "" {
			return nil, wrap("E8/sweep", fmt.Errorf("task %d: %s", rec.ID, rec.Error))
		}
		m := p.LinkCounts[i]
		inst, err := topo.LinearParallelLinks(m)
		if err != nil {
			return nil, wrap("E8/sweep", err)
		}
		bound := 1 / (p.Eps * rec.T) * (inst.LMax() / p.Delta) * (inst.LMax() / p.Delta)
		tbl.AddRow(report.I(m), report.F(rec.T), report.I(rec.UnsatisfiedPhases),
			boolCell(rec.Converged), report.F(bound))
		ms = append(ms, float64(m))
		rounds = append(rounds, float64(rec.UnsatisfiedPhases))
	}
	if fit, err := stats.LogLogSlope(ms, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs m = %.3f (paper bound shape: 0, independent of |P|)", fit.Slope)
	}
	tbl.AddNote("delta=%g eps=%g (weak metric, Definition 4)", p.Delta, p.Eps)
	return tbl, nil
}
