package experiments

import (
	"wardrop/internal/flow"
	"wardrop/internal/report"
	"wardrop/internal/topo"
)

// E12Params parameterises the multi-commodity reproduction of Theorems 6/7.
type E12Params struct {
	// Ks are the commodity counts to sweep.
	Ks []int
	// Links is the number of shared parallel links m.
	Links int
	// Delta, Eps define the approximate equilibria.
	Delta, Eps float64
	// Streak is the consecutive-satisfied stop criterion.
	Streak int
	// MaxPhases caps each run.
	MaxPhases int
}

// DefaultE12Params returns the sweep used by the benchmark harness.
func DefaultE12Params() E12Params {
	return E12Params{
		Ks:    []int{1, 2, 4, 8},
		Links: 8,
		Delta: 0.2, Eps: 0.1,
		Streak: 50, MaxPhases: 60_000,
	}
}

// RunE12 exercises Theorems 6 and 7 in the genuinely multi-commodity model
// they are stated for: k commodities with distinct sources and staggered
// demands compete on m shared links. The (δ,ε) metrics aggregate
// δ-unsatisfied volume across commodities exactly as in the paper's
// definitions. Rows sweep k for both policies; the theorems' bounds do not
// grow with k (only with max_i |P_i| = m, ε, δ), so the measured rounds
// should stay of the same order as k grows — which is what the table
// verifies.
func RunE12(p E12Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E12 Thms 6+7 multi-commodity: unsatisfied rounds vs commodity count",
		Columns: []string{"k", "uniform_rounds", "uniform_complete", "replicator_rounds", "replicator_complete"},
	}
	for _, k := range p.Ks {
		inst, err := topo.MultiCommodityParallel(k, p.Links)
		if err != nil {
			return nil, wrap("E12", err)
		}
		f0 := multiSkewedStart(inst)

		uPol, err := uniformLinearFor(inst)
		if err != nil {
			return nil, wrap("E12", err)
		}
		uT, err := safeT(inst, uPol)
		if err != nil {
			return nil, wrap("E12", err)
		}
		uN, uDone, err := countUnsatisfiedRounds(inst, uPol, f0, uT, p.Delta, p.Eps, false, p.Streak, p.MaxPhases)
		if err != nil {
			return nil, wrap("E12", err)
		}

		rPol, err := replicatorFor(inst)
		if err != nil {
			return nil, wrap("E12", err)
		}
		rT, err := safeT(inst, rPol)
		if err != nil {
			return nil, wrap("E12", err)
		}
		rN, rDone, err := countUnsatisfiedRounds(inst, rPol, f0, rT, p.Delta, p.Eps, true, p.Streak, p.MaxPhases)
		if err != nil {
			return nil, wrap("E12", err)
		}
		tbl.AddRow(report.I(k), report.I(uN), boolCell(uDone), report.I(rN), boolCell(rDone))
	}
	tbl.AddNote("m=%d shared links; delta=%g eps=%g; bounds depend on max_i|P_i|, not k", p.Links, p.Delta, p.Eps)
	return tbl, nil
}

// multiSkewedStart routes 90%% of each commodity's demand on its worst
// (last) path and spreads the rest evenly, keeping every path reachable for
// proportional sampling.
func multiSkewedStart(inst *flow.Instance) flow.Vector {
	f := make(flow.Vector, inst.NumPaths())
	for i := 0; i < inst.NumCommodities(); i++ {
		lo, hi := inst.CommodityRange(i)
		d := inst.Commodity(i).Demand
		n := hi - lo
		for g := lo; g < hi; g++ {
			f[g] = 0.1 * d / float64(n)
		}
		f[hi-1] += 0.9 * d
	}
	return f
}
