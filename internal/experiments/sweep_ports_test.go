package experiments

import (
	"reflect"
	"testing"
)

// The ported experiments must reproduce the legacy harness's scaling-law
// verdicts: the fluid dynamics is deterministic, so rows and notes (rounds,
// completion flags, fitted exponents) are compared exactly, not
// approximately.

func sweepPortParamsE6() E6Params {
	return E6Params{
		LinkCounts: []int{2, 4, 8},
		Delta:      0.3, Eps: 0.15,
		Streak: 30, MaxPhases: 30_000,
	}
}

func TestE6SweepMatchesLegacy(t *testing.T) {
	legacy, err := RunE6(sweepPortParamsE6())
	if err != nil {
		t.Fatal(err)
	}
	ported, err := RunE6Sweep(sweepPortParamsE6())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Rows, ported.Rows) {
		t.Errorf("rows diverge:\nlegacy %v\nported %v", legacy.Rows, ported.Rows)
	}
	if !reflect.DeepEqual(legacy.Notes, ported.Notes) {
		t.Errorf("notes diverge:\nlegacy %v\nported %v", legacy.Notes, ported.Notes)
	}
}

func TestE7SweepMatchesLegacy(t *testing.T) {
	p := E7Params{
		Links:  4,
		Deltas: []float64{0.6, 0.3, 0.15},
		Eps:    0.15,
		Streak: 30, MaxPhases: 60_000,
	}
	legacy, err := RunE7(p)
	if err != nil {
		t.Fatal(err)
	}
	ported, err := RunE7Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Rows, ported.Rows) {
		t.Errorf("rows diverge:\nlegacy %v\nported %v", legacy.Rows, ported.Rows)
	}
	if !reflect.DeepEqual(legacy.Notes, ported.Notes) {
		t.Errorf("notes diverge:\nlegacy %v\nported %v", legacy.Notes, ported.Notes)
	}
}

func TestE8SweepMatchesLegacy(t *testing.T) {
	p := E8Params{
		LinkCounts: []int{2, 8, 32},
		Delta:      0.3, Eps: 0.15,
		Streak: 30, MaxPhases: 30_000,
	}
	legacy, err := RunE8(p)
	if err != nil {
		t.Fatal(err)
	}
	ported, err := RunE8Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Rows, ported.Rows) {
		t.Errorf("rows diverge:\nlegacy %v\nported %v", legacy.Rows, ported.Rows)
	}
	if !reflect.DeepEqual(legacy.Notes, ported.Notes) {
		t.Errorf("notes diverge:\nlegacy %v\nported %v", legacy.Notes, ported.Notes)
	}
}
