package experiments

import (
	"context"
	"math"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E1Params parameterises the §3.2 best-response oscillation reproduction.
type E1Params struct {
	// Betas are the latency slopes to sweep.
	Betas []float64
	// Periods are the bulletin-board periods T to sweep.
	Periods []float64
	// Rounds is the number of phases to simulate per cell.
	Rounds int
}

// DefaultE1Params returns the sweep used by the benchmark harness.
func DefaultE1Params() E1Params {
	return E1Params{
		Betas:   []float64{1, 2, 4},
		Periods: []float64{0.1, 0.25, 0.5, 1, 2},
		Rounds:  40,
	}
}

// RunE1 reproduces §3.2: best response on two parallel links with
// ℓ(x) = max{0, β(x−½)} oscillates on a period-2T orbit whose latency
// amplitude is X = β(1−e^{−T})/(2e^{−T}+2). Each row compares the measured
// per-round maximum latency and the period-2 return error against the
// closed forms.
func RunE1(p E1Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E1 §3.2: best-response oscillation under stale information",
		Columns: []string{"beta", "T", "X_paper", "X_measured", "rel_err", "return_err", "osc_score"},
	}
	worstRel := 0.0
	for _, beta := range p.Betas {
		for _, T := range p.Periods {
			inst, err := topo.TwoLinkKink(beta)
			if err != nil {
				return nil, wrap("E1", err)
			}
			f1Start, amplitude, _ := dynamics.TwoLinkOscillation(beta, T, 0)
			f0 := flow.Vector{f1Start, 1 - f1Start}
			var maxLats, f1s []float64
			_, err = engine.Run(context.Background(), engine.Scenario{
				Engine:       engine.BestResponse{},
				Instance:     inst,
				UpdatePeriod: T,
				InitialFlow:  f0,
				Horizon:      float64(p.Rounds) * T,
			}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
				maxLats = append(maxLats, math.Max(info.PathLatencies[0], info.PathLatencies[1]))
				f1s = append(f1s, info.Flow[0])
				return false
			})))
			if err != nil {
				return nil, wrap("E1", err)
			}
			measured := stats.Mean(maxLats)
			relErr := stats.RelErr(measured, amplitude, 1e-12)
			if relErr > worstRel {
				worstRel = relErr
			}
			// Period-2 return error: |f1(2kT) − f1(0)| maximised over k.
			returnErr := 0.0
			for i := 0; i < len(f1s); i += 2 {
				returnErr = math.Max(returnErr, math.Abs(f1s[i]-f1Start))
			}
			tbl.AddRow(
				report.F(beta), report.F(T),
				report.F(amplitude), report.F(measured),
				report.F(relErr), report.F(returnErr),
				report.F3(stats.OscillationScore(f1s)),
			)
		}
	}
	tbl.AddNote("paper: orbit returns to f1(0)=1/(e^-T+1) every 2 rounds; amplitude X sustained forever")
	tbl.AddNote("worst relative amplitude error = %g (0 = exact reproduction)", worstRel)
	return tbl, nil
}
