package experiments

import (
	"wardrop/internal/flow"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E8Params parameterises the Theorem 7 reproduction.
type E8Params struct {
	// LinkCounts are the parallel-link counts to sweep.
	LinkCounts []int
	// Delta, Eps define the weak (δ,ε)-equilibrium.
	Delta, Eps float64
	// Streak is the consecutive-satisfied stop criterion.
	Streak int
	// MaxPhases caps each run.
	MaxPhases int
}

// DefaultE8Params returns the sweep used by the benchmark harness.
func DefaultE8Params() E8Params {
	return E8Params{
		LinkCounts: []int{2, 4, 8, 16, 32},
		Delta:      0.2, Eps: 0.1,
		Streak: 50, MaxPhases: 60_000,
	}
}

// RunE8 reproduces Theorem 7: for proportional sampling (the replicator) the
// number of phases not starting at a weak (δ,ε)-equilibrium is
// O(1/(εT)·(ℓmax/δ)²) — independent of the number of paths. Rows sweep m;
// the headline comparison against E6 is the fitted exponent ≈ 0 where
// uniform sampling's is ≈ 1 (with identical start states and thresholds).
//
// To keep the proportional dynamics non-degenerate the adversarial start
// routes 90% of demand on the worst link and spreads the rest evenly
// (proportional sampling cannot leave a path with exactly zero flow).
func RunE8(p E8Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E8 Thm 7: proportional sampling — weak unsatisfied rounds vs path count",
		Columns: []string{"m", "T", "rounds", "complete", "bound_shape"},
	}
	var ms, rounds []float64
	for _, m := range p.LinkCounts {
		inst, err := topo.LinearParallelLinks(m)
		if err != nil {
			return nil, wrap("E8", err)
		}
		pol, err := replicatorFor(inst)
		if err != nil {
			return nil, wrap("E8", err)
		}
		t, err := safeT(inst, pol)
		if err != nil {
			return nil, wrap("E8", err)
		}
		f0 := skewedStart(inst.NumPaths(), m-1)
		n, complete, err := countUnsatisfiedRounds(inst, pol, f0, t, p.Delta, p.Eps, true, p.Streak, p.MaxPhases)
		if err != nil {
			return nil, wrap("E8", err)
		}
		bound := 1 / (p.Eps * t) * (inst.LMax() / p.Delta) * (inst.LMax() / p.Delta)
		tbl.AddRow(report.I(m), report.F(t), report.I(n), boolCell(complete), report.F(bound))
		ms = append(ms, float64(m))
		rounds = append(rounds, float64(n))
	}
	if fit, err := stats.LogLogSlope(ms, rounds); err == nil {
		tbl.AddNote("fitted exponent of rounds vs m = %.3f (paper bound shape: 0, independent of |P|)", fit.Slope)
	}
	tbl.AddNote("delta=%g eps=%g (weak metric, Definition 4)", p.Delta, p.Eps)
	return tbl, nil
}

// skewedStart puts 90% of the unit demand on path `heavy` and spreads the
// remaining 10% evenly over all n paths.
func skewedStart(n, heavy int) flow.Vector {
	f := make(flow.Vector, n)
	rest := 0.1 / float64(n)
	for i := range f {
		f[i] = rest
	}
	f[heavy] += 0.9
	return f
}
