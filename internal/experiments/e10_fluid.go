package experiments

import (
	"context"

	"wardrop/internal/engine"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E10Params parameterises the fluid-limit validity check.
type E10Params struct {
	// Ns are the agent-population sizes to sweep.
	Ns []int
	// Seeds is the number of independent replications averaged per N.
	Seeds int
	// Horizon is the simulated time.
	Horizon float64
	// UpdatePeriod is the board period T.
	UpdatePeriod float64
	// Workers is the per-run goroutine count.
	Workers int
}

// DefaultE10Params returns the sweep used by the benchmark harness.
func DefaultE10Params() E10Params {
	return E10Params{
		Ns:      []int{50, 200, 800, 3200},
		Seeds:   3,
		Horizon: 20, UpdatePeriod: 0.25,
		Workers: 2,
	}
}

// RunE10 validates the paper's modelling substrate: the stochastic finite-N
// bulletin-board simulation converges to the fluid-limit ODE as N → ∞. Rows
// report the seed-averaged sup-norm error between the empirical and fluid
// flows at the horizon; the note fits the decay exponent (law of large
// numbers predicts ≈ −1/2).
func RunE10(p E10Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E10: fluid limit vs finite-N agent simulation (Braess)",
		Columns: []string{"N", "mean_sup_err", "seeds"},
	}
	inst, err := topo.Braess()
	if err != nil {
		return nil, wrap("E10", err)
	}
	pol, err := replicatorFor(inst)
	if err != nil {
		return nil, wrap("E10", err)
	}
	// The same scenario runs on both sides of the comparison; only the
	// engine changes — which is the point of the unified API.
	scenario := engine.Scenario{
		Engine:       exactFluid,
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: p.UpdatePeriod,
		Horizon:      p.Horizon,
	}
	fluid, err := engine.Run(context.Background(), scenario)
	if err != nil {
		return nil, wrap("E10", err)
	}
	var ns, errs []float64
	for _, n := range p.Ns {
		sum := 0.0
		for seed := 1; seed <= p.Seeds; seed++ {
			scenario.Engine = engine.Agents{N: n, Seed: uint64(seed), Workers: p.Workers}
			res, err := engine.Run(context.Background(), scenario)
			if err != nil {
				return nil, wrap("E10", err)
			}
			sum += res.Final.MaxAbsDiff(fluid.Final)
		}
		mean := sum / float64(p.Seeds)
		tbl.AddRow(report.I(n), report.F(mean), report.I(p.Seeds))
		ns = append(ns, float64(n))
		errs = append(errs, mean)
	}
	if fit, err := stats.LogLogSlope(ns, errs); err == nil {
		tbl.AddNote("fitted error decay exponent = %.3f (LLN prediction: -0.5)", fit.Slope)
	}
	return tbl, nil
}
