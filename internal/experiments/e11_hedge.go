package experiments

import (
	"context"
	"math"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/report"
	"wardrop/internal/stats"
	"wardrop/internal/topo"
)

// E11Params parameterises the no-regret (Hedge) baseline sweep.
type E11Params struct {
	// Etas are the Hedge learning rates to sweep.
	Etas []float64
	// Phases is the number of board refreshes per run.
	Phases int
	// Beta is the kink slope.
	Beta float64
	// Period is the bulletin-board period T.
	Period float64
}

// DefaultE11Params returns the sweep used by the benchmark harness.
func DefaultE11Params() E11Params {
	return E11Params{
		Etas:   []float64{0.05, 0.2, 1, 5, 25, 125},
		Phases: 600,
		Beta:   8,
		Period: 0.25,
	}
}

// RunE11 sweeps the multiplicative-weights (Hedge) baseline from the
// paper's related work across learning rates on the two-link kink instance
// under the same stale board: small η converges (Hedge is a discretised
// replicator, and no-regret dynamics approach equilibria), while large η
// reproduces exactly the overshoot oscillation that motivates the paper's
// smoothness condition. The comparator row runs the replicator at the safe
// period.
func RunE11(p E11Params) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "E11 related work: Hedge (no-regret) baseline under stale information",
		Columns: []string{"policy", "eta", "phi_final", "flow_dev", "flow_osc_score"},
	}
	inst, err := topo.TwoLinkKink(p.Beta)
	if err != nil {
		return nil, wrap("E11", err)
	}
	f0 := flow.Vector{0.9, 0.1}
	for _, eta := range p.Etas {
		var f1s []float64
		cfg := dynamics.HedgeConfig{
			Eta: eta, UpdatePeriod: p.Period, Horizon: float64(p.Phases) * p.Period,
			Hook: func(info dynamics.PhaseInfo) bool {
				f1s = append(f1s, info.Flow[0])
				return false
			},
		}
		res, err := dynamics.RunHedge(context.Background(), inst, cfg, f0)
		if err != nil {
			return nil, wrap("E11", err)
		}
		tbl.AddRow(
			"hedge", report.F(eta),
			report.F(res.FinalPotential),
			report.F(math.Abs(res.Final[0]-0.5)),
			report.F3(stats.OscillationScore(f1s)),
		)
	}
	// Comparator: the paper's replicator at its safe period.
	pol, err := replicatorFor(inst)
	if err != nil {
		return nil, wrap("E11", err)
	}
	tSafe, err := safeT(inst, pol)
	if err != nil {
		return nil, wrap("E11", err)
	}
	var f1s []float64
	res, err := engine.Run(context.Background(), engine.Scenario{
		Engine:       exactFluid,
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: tSafe,
		InitialFlow:  f0,
		Horizon:      float64(p.Phases) * tSafe,
	}, engine.WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
		f1s = append(f1s, info.Flow[0])
		return false
	})))
	if err != nil {
		return nil, wrap("E11", err)
	}
	tbl.AddRow(
		"replicator@safeT", "-",
		report.F(res.FinalPotential),
		report.F(math.Abs(res.Final[0]-0.5)),
		report.F3(stats.OscillationScore(f1s)),
	)
	tbl.AddNote("small eta converges like the replicator; large eta overshoots the stale board and oscillates")
	return tbl, nil
}
