package sweep

import (
	"context"
	"strings"
	"testing"
)

const (
	campaignDocA = `{
  "name": "fp",
  "topologies": [{"family": "pigou"}],
  "policies": [{"kind": "replicator"}],
  "updatePeriods": ["safe"],
  "maxPhases": 20,
  "delta": 0.3,
  "eps": 0.15
}`
	campaignDocB = `{"eps":0.15,"delta":0.3,"maxPhases":20,
		"updatePeriods":["safe"],"policies":[{"kind":"replicator"}],
		"topologies":[{"family":"pigou"}],"name":"fp"}`
)

// goldenCampaignFingerprint pins the canonical encoding across releases —
// changing it silently invalidates every deployed campaign cache.
const goldenCampaignFingerprint = "f384dacb8732dfa7181397018e9e934a63a913581f88e7344215d03dd5fd87fd"

func parseCampaignDoc(t *testing.T, doc string) *Campaign {
	t.Helper()
	c, err := ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignFingerprintGolden(t *testing.T) {
	fp, err := parseCampaignDoc(t, campaignDocA).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != goldenCampaignFingerprint {
		t.Fatalf("fingerprint = %s, want pinned %s", fp, goldenCampaignFingerprint)
	}
}

func TestCampaignFingerprintOrderAndWhitespaceInsensitive(t *testing.T) {
	a, err := parseCampaignDoc(t, campaignDocA).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseCampaignDoc(t, campaignDocB).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("reordered spellings fingerprint differently: %s vs %s", a, b)
	}
	edited, err := parseCampaignDoc(t, strings.Replace(campaignDocA, `"delta": 0.3`, `"delta": 0.2`, 1)).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if edited == a {
		t.Fatal("editing delta did not change the fingerprint")
	}
}

func TestTaskFingerprintDistinguishesAxes(t *testing.T) {
	c := parseCampaignDoc(t, campaignDocA)
	tasks, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	base, err := tasks[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	same := tasks[0]
	same.ID = 99 // bookkeeping fields are not part of the run identity
	if fp, _ := same.Fingerprint(); fp != base {
		t.Fatal("task ID leaked into the run-identity fingerprint")
	}
	diff := tasks[0]
	diff.Agents = 100
	if fp, _ := diff.Fingerprint(); fp == base {
		t.Fatal("population change did not change the task fingerprint")
	}
	diff = tasks[0]
	diff.Seed++
	if fp, _ := diff.Fingerprint(); fp == base {
		t.Fatal("seed change did not change the task fingerprint")
	}
}

// A campaign with a duplicated topology axis entry: the duplicate cells
// share run identities replicate-for-replicate, so the executor must run
// each identity once and clone the duplicate records.
const dupCampaignDoc = `{
  "name": "dup",
  "topologies": [{"family": "pigou"}, {"family": "pigou"}],
  "policies": [{"kind": "replicator"}],
  "updatePeriods": [0.05],
  "seeds": 2,
  "maxPhases": 30,
  "delta": 0.3,
  "eps": 0.15
}`

func TestDedupTasksGroupsDuplicates(t *testing.T) {
	c := parseCampaignDoc(t, dupCampaignDoc)
	tasks, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("expanded %d tasks, want 4", len(tasks))
	}
	groups := dedupTasks(tasks)
	if len(groups) != 2 {
		t.Fatalf("dedup produced %d groups, want 2 (one per replicate)", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += 1 + len(g.dups)
		for _, d := range g.dups {
			if d.Seed != g.rep.Seed {
				t.Fatalf("group mixes seeds: rep %d dup %d", g.rep.Seed, d.Seed)
			}
		}
	}
	if total != len(tasks) {
		t.Fatalf("groups cover %d tasks, want %d", total, len(tasks))
	}
}

func TestRunDedupsDuplicateTasks(t *testing.T) {
	c := parseCampaignDoc(t, dupCampaignDoc)
	res, err := Run(context.Background(), c, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(res.Tasks) {
		t.Fatalf("%d records for %d tasks — dedup dropped duplicate records", len(res.Records), len(res.Tasks))
	}
	// Records arrive sorted by ID; duplicate identities must report
	// identical outcomes (they are clones of one run).
	byID := res.Records
	for i := range byID {
		if byID[i].ID != res.Tasks[i].ID {
			t.Fatalf("record %d has ID %d, want %d", i, byID[i].ID, res.Tasks[i].ID)
		}
	}
	// Task expansion order: topology outermost, seeds innermost — IDs 0,1
	// (first pigou, seeds 0,1) duplicate IDs 2,3 (second pigou, seeds 0,1).
	for s := 0; s < 2; s++ {
		a, b := byID[s], byID[2+s]
		if a.Error != "" || b.Error != "" {
			t.Fatalf("unexpected task errors: %q %q", a.Error, b.Error)
		}
		if a.FinalPotential != b.FinalPotential || a.Phases != b.Phases || a.Seed != b.Seed || a.WallMS != b.WallMS {
			t.Fatalf("duplicate tasks diverged: %+v vs %+v", a, b)
		}
		if b.SeedIndex != s {
			t.Fatalf("cloned record kept the representative's seed index: got %d want %d", b.SeedIndex, s)
		}
	}
}
