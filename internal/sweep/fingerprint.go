package sweep

import "wardrop/internal/canon"

// Canonical renders the campaign in its canonical JSON form (object keys
// sorted, whitespace stripped; see internal/canon).
func (c *Campaign) Canonical() ([]byte, error) {
	return canon.Canonical(c)
}

// Fingerprint is the canonical-JSON SHA-256 of the campaign — the stable
// identity the serving layer keys campaign jobs and their cached summaries
// on. Field order and whitespace are irrelevant; any semantic edit (an axis
// value, a run-shape scalar) changes the hash.
func (c *Campaign) Fingerprint() (string, error) {
	return canon.Fingerprint(c)
}

// taskIdentity is the run-identity document of one task: every input that
// determines the task's simulation outcome. The campaign-global run-shape
// scalars are shared by construction inside one run, so they are omitted;
// ID and SeedIndex are bookkeeping, not inputs.
type taskIdentity struct {
	Topology Topology   `json:"topology"`
	Policy   PolicySpec `json:"policy"`
	Period   Period     `json:"period"`
	Agents   int        `json:"agents"`
	// Count is omitted when zero so every pre-count task identity (and hence
	// every archived fingerprint) is unchanged.
	Count int64   `json:"count,omitempty"`
	Delta float64 `json:"delta"`
	// Timeline is omitted when absent so every stationary task identity
	// (and hence every archived fingerprint) is unchanged.
	Timeline *TimelineSpec `json:"timeline,omitempty"`
	Seed     uint64        `json:"seed"`
}

// Fingerprint is the canonical-JSON SHA-256 of the task's run identity.
// Within one campaign, two tasks with equal fingerprints (duplicate axis
// entries) are guaranteed to produce identical results, which is exactly
// what the executor's dedup pass relies on.
func (t Task) Fingerprint() (string, error) {
	return canon.Fingerprint(taskIdentity{
		Topology: t.Topology,
		Policy:   t.Policy,
		Period:   t.Period,
		Agents:   t.Agents,
		Count:    t.Count,
		Delta:    t.Delta,
		Timeline: t.Timeline,
		Seed:     t.Seed,
	})
}

// taskGroup is one dedup class: a representative task that actually runs,
// plus the duplicate tasks whose records are cloned from the
// representative's outcome.
type taskGroup struct {
	rep  Task
	dups []Task
}

// dedupTasks groups the expanded task list by run-identity fingerprint.
// Group order follows the first occurrence of each identity, so a campaign
// without duplicates degenerates to one group per task in task order. Tasks
// whose identity cannot be fingerprinted (never the case for tasks produced
// by Expand) conservatively form their own group.
func dedupTasks(tasks []Task) []taskGroup {
	groups := make([]taskGroup, 0, len(tasks))
	index := make(map[string]int, len(tasks))
	for _, t := range tasks {
		fp, err := t.Fingerprint()
		if err != nil {
			groups = append(groups, taskGroup{rep: t})
			continue
		}
		if i, ok := index[fp]; ok {
			groups[i].dups = append(groups[i].dups, t)
			continue
		}
		index[fp] = len(groups)
		groups = append(groups, taskGroup{rep: t})
	}
	return groups
}
