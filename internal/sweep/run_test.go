package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func runDemo(t *testing.T, workers int) (*RunResult, []Record) {
	t.Helper()
	c := parseDemo(t)
	var buf bytes.Buffer
	res, err := Run(context.Background(), c, Options{Workers: workers, Results: &buf})
	if err != nil {
		t.Fatal(err)
	}
	var stream []Record
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		stream = append(stream, r)
	}
	return res, stream
}

func TestRunStreamsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		res, stream := runDemo(t, workers)
		if len(stream) != len(res.Tasks) {
			t.Fatalf("workers=%d: %d JSONL records for %d tasks", workers, len(stream), len(res.Tasks))
		}
		seen := make(map[int]int)
		for _, r := range stream {
			seen[r.ID]++
		}
		for _, task := range res.Tasks {
			if seen[task.ID] != 1 {
				t.Errorf("workers=%d: task %d appears %d times", workers, task.ID, seen[task.ID])
			}
		}
		// The in-memory view is sorted by ID.
		for i, r := range res.Records {
			if r.ID != i {
				t.Errorf("workers=%d: records[%d].ID = %d", workers, i, r.ID)
			}
		}
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	// The fluid dynamics is deterministic, so everything except wall time
	// must be identical whatever the pool size.
	res1, _ := runDemo(t, 1)
	res8, _ := runDemo(t, 8)
	for i := range res1.Records {
		a, b := res1.Records[i], res8.Records[i]
		a.WallMS, b.WallMS = 0, 0
		if a != b {
			t.Errorf("record %d differs across worker counts:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestRunOutcomesSane(t *testing.T) {
	res, _ := runDemo(t, 4)
	for _, r := range res.Records {
		if r.Error != "" {
			t.Errorf("task %d failed: %s", r.ID, r.Error)
			continue
		}
		if r.T <= 0 {
			t.Errorf("task %d: resolved period %g", r.ID, r.T)
		}
		if r.Phases <= 0 {
			t.Errorf("task %d: no phases completed", r.ID)
		}
		// Φ − Φ* is non-negative up to solver tolerance.
		if r.Gap < -1e-6 {
			t.Errorf("task %d: gap %g below Phi*", r.ID, r.Gap)
		}
		// The demo campaign's cells are easy: all runs hit the streak stop
		// and end at the configured (δ,ε)-equilibrium.
		if !r.Converged || !r.AtEquilibrium {
			t.Errorf("task %d: converged=%v atEq=%v", r.ID, r.Converged, r.AtEquilibrium)
		}
	}
}

func TestRunAgentTasks(t *testing.T) {
	doc := `{
	  "name": "agents",
	  "topologies": [{"family": "pigou"}],
	  "policies": [{"kind": "uniform"}],
	  "updatePeriods": ["safe"],
	  "agents": [0, 200],
	  "seeds": 2,
	  "baseSeed": 3,
	  "horizon": 10,
	  "delta": 0.4,
	  "eps": 0.2,
	  "streak": 5
	}`
	c, err := ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), c, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(res.Records))
	}
	for _, r := range res.Records {
		if r.Error != "" {
			t.Errorf("task %d failed: %s", r.ID, r.Error)
		}
	}
	// Replicates of the stochastic cell use different derived seeds.
	var agentRecs []Record
	for _, r := range res.Records {
		if r.Agents == 200 {
			agentRecs = append(agentRecs, r)
		}
	}
	if len(agentRecs) != 2 || agentRecs[0].Seed == agentRecs[1].Seed {
		t.Errorf("agent replicates should carry distinct seeds: %+v", agentRecs)
	}
	// The hook-based accounting gives agent cells the same round counting
	// and streak stop as fluid cells: this easy instance converges well
	// before the 40-phase horizon.
	for _, r := range agentRecs {
		if !r.Converged || r.Phases >= 40 {
			t.Errorf("agent task %d: converged=%v phases=%d, want streak stop", r.ID, r.Converged, r.Phases)
		}
		if !r.AtEquilibrium {
			t.Errorf("agent task %d should end at the (δ,ε)-equilibrium", r.ID)
		}
	}
}

func TestRunMixedPopulationAxes(t *testing.T) {
	// Agents and counts are one merged population axis: agent entries first,
	// then count entries, each its own cell even at equal population.
	doc := `{
	  "name": "mixed",
	  "topologies": [{"family": "pigou"}],
	  "policies": [{"kind": "uniform"}],
	  "updatePeriods": ["safe"],
	  "agents": [0, 200],
	  "counts": [200, 2000000],
	  "seeds": 2,
	  "baseSeed": 11,
	  "horizon": 10,
	  "delta": 0.4,
	  "eps": 0.2,
	  "streak": 5
	}`
	c, err := ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 1 topo x 1 policy x 1 period x (2 agents + 2 counts) x 2 seeds.
	if len(tasks) != 8 {
		t.Fatalf("tasks = %d, want 8", len(tasks))
	}
	wantPops := []struct {
		agents int
		count  int64
	}{{0, 0}, {0, 0}, {200, 0}, {200, 0}, {0, 200}, {0, 200}, {0, 2_000_000}, {0, 2_000_000}}
	for i, tk := range tasks {
		if tk.Agents != wantPops[i].agents || tk.Count != wantPops[i].count {
			t.Errorf("task %d: agents=%d count=%d, want %+v", i, tk.Agents, tk.Count, wantPops[i])
		}
	}
	// The agents-200 and count-200 cells have distinct keys, so they never
	// merge during aggregation.
	if k1, k2 := tasks[2].CellKey(), tasks[4].CellKey(); k1 == k2 {
		t.Errorf("agents-200 and count-200 share cell key %q", k1)
	}
	// Equal-identity count tasks dedup just like agent tasks.
	fpA, _ := tasks[4].Fingerprint()
	fpB, _ := tasks[4].Fingerprint()
	fpOther, _ := tasks[6].Fingerprint()
	if fpA != fpB || fpA == fpOther {
		t.Errorf("count fingerprints: %s %s %s", fpA, fpB, fpOther)
	}

	res, err := Run(context.Background(), c, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var countRecs []Record
	for _, r := range res.Records {
		if r.Error != "" {
			t.Errorf("task %d failed: %s", r.ID, r.Error)
		}
		if r.Count > 0 {
			countRecs = append(countRecs, r)
		}
	}
	if len(countRecs) != 4 {
		t.Fatalf("count records = %d, want 4", len(countRecs))
	}
	// Replicates of a stochastic count cell carry distinct derived seeds,
	// and this easy instance hits the streak stop even at two million agents.
	if countRecs[0].Seed == countRecs[1].Seed {
		t.Errorf("count replicates share seed %d", countRecs[0].Seed)
	}
	for _, r := range countRecs {
		if !r.Converged || !r.AtEquilibrium {
			t.Errorf("count task %d: converged=%v atEq=%v", r.ID, r.Converged, r.AtEquilibrium)
		}
	}
	// Aggregation keeps the four populations apart and labels them.
	cells := Aggregate(res.Records)
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	labels := make([]string, len(cells))
	for i, cell := range cells {
		labels[i] = popLabel(cell.Agents, cell.Count)
	}
	want := []string{"0", "200", "count:200", "count:2000000"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("cell labels = %v, want %v", labels, want)
	}
}

func TestRunRecordsTaskErrors(t *testing.T) {
	// Better response has no finite smoothness constant, so a "safe" period
	// cannot be resolved: the task must fail without sinking the campaign.
	doc := `{
	  "name": "mixed",
	  "topologies": [{"family": "pigou"}],
	  "policies": [{"kind": "uniform"}, {"kind": "uniform", "migrator": "betterresponse"}],
	  "updatePeriods": ["safe"],
	  "horizon": 5
	}`
	c, err := ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), c, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(res.Records))
	}
	if res.Records[0].Error != "" {
		t.Errorf("linear cell failed: %s", res.Records[0].Error)
	}
	if res.Records[1].Error == "" {
		t.Error("betterresponse+safe cell should have failed")
	}
}

func TestRunDistinctCustomTopologies(t *testing.T) {
	// Two different custom documents in one campaign must not collide in the
	// instance cache or the aggregation cells: the second instance's Phi*
	// (pure parallel constants 2 and 2: Phi* = 2) differs from the first's
	// (Pigou: Phi* = 1/2).
	doc := `{
	  "name": "customs",
	  "topologies": [
	    {"family": "custom", "instance": {
	      "nodes": ["s", "t"],
	      "edges": [
	        {"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1}},
	        {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
	      ],
	      "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	    }},
	    {"family": "custom", "instance": {
	      "nodes": ["s", "t"],
	      "edges": [
	        {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 2}},
	        {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 2}}
	      ],
	      "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	    }}
	  ],
	  "policies": [{"kind": "uniform"}],
	  "updatePeriods": [0.25],
	  "horizon": 2
	}`
	c, err := ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), c, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(res.Records))
	}
	a, b := res.Records[0], res.Records[1]
	if a.Error != "" || b.Error != "" {
		t.Fatalf("task errors: %q, %q", a.Error, b.Error)
	}
	if a.Topology == b.Topology {
		t.Errorf("distinct custom documents share the label %q", a.Topology)
	}
	if a.PhiStar == b.PhiStar {
		t.Errorf("distinct custom instances share Phi* = %g (cache collision)", a.PhiStar)
	}
	if b.PhiStar != 2 {
		t.Errorf("second custom instance Phi* = %g, want 2", b.PhiStar)
	}
	if cells := Aggregate(res.Records); len(cells) != 2 {
		t.Errorf("cells = %d, want 2 (custom topologies merged)", len(cells))
	}
}

func TestRunContextCancellation(t *testing.T) {
	c := parseDemo(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, c, Options{Workers: 2}); err == nil {
		t.Error("cancelled run returned nil error")
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestRunSinkFailureCancelsPool(t *testing.T) {
	c := parseDemo(t)
	_, err := Run(context.Background(), c, Options{Workers: 2, Results: &failingWriter{after: 1}})
	if err == nil || !strings.Contains(err.Error(), "results sink") {
		t.Errorf("sink failure not surfaced: %v", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	rec := isolated(Task{ID: 7}, func() Record { panic("boom") })
	if rec.ID != 7 || !strings.Contains(rec.Error, "panic: boom") {
		t.Errorf("panic record = %+v", rec)
	}
}

func TestRunProgressMonotone(t *testing.T) {
	c := parseDemo(t)
	var calls []int
	_, err := Run(context.Background(), c, Options{
		Workers:  4,
		Progress: func(done, total int, _ Record) { calls = append(calls, done*1000+total) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 16 {
		t.Fatalf("progress calls = %d, want 16", len(calls))
	}
	for i, v := range calls {
		if v != (i+1)*1000+16 {
			t.Errorf("progress call %d = %d, want done=%d total=16", i, v, i+1)
		}
	}
}
