package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wardrop/internal/flow"
)

// taskTestCampaign is a small deterministic fluid campaign shared by the
// task-spec tests.
func taskTestCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := ParseCampaign(strings.NewReader(`{
		"name": "taskspec",
		"topologies": [{"family":"pigou"},{"family":"braess"}],
		"policies": [{"kind":"replicator"},{"kind":"uniform"}],
		"updatePeriods": [0.05],
		"seeds": 2,
		"maxPhases": 25,
		"delta": 0.3,
		"eps": 0.15
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRunTaskSpecMatchesLocalRun is the distributed layer's foundation: a
// task run through its self-contained spec must reproduce the in-campaign
// record exactly (after rebinding the bookkeeping identity the spec does
// not carry).
func TestRunTaskSpecMatchesLocalRun(t *testing.T) {
	c := taskTestCampaign(t)
	res, err := Run(context.Background(), c, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tasks := res.Tasks
	cache := NewInstanceCache()
	ws := flow.NewWorkspace()
	for _, task := range tasks {
		spec := NewTaskSpec(c, task)
		if err := spec.Validate(); err != nil {
			t.Fatalf("task %d spec invalid: %v", task.ID, err)
		}
		rec, aborted := RunTaskSpec(context.Background(), spec, cache, ws)
		if aborted {
			t.Fatalf("task %d aborted without cancellation", task.ID)
		}
		rec.ID, rec.SeedIndex = task.ID, task.SeedIndex
		want := res.Records[task.ID]
		if CanonicalRecord(rec) != CanonicalRecord(want) {
			t.Errorf("task %d: spec run %+v != local run %+v", task.ID, rec, want)
		}
	}
}

func TestTaskSpecFingerprintCoversRunShape(t *testing.T) {
	c := taskTestCampaign(t)
	tasks, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	spec := NewTaskSpec(c, tasks[0])
	fp1, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	// Task.Fingerprint may ignore campaign scalars; TaskSpec.Fingerprint
	// must not — the durable store is shared across campaigns.
	longer := *spec
	longer.MaxPhases = 50
	fp2, err := longer.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Error("fingerprint unchanged by a run-shape edit")
	}
	// Field order and whitespace are irrelevant: parse a reordered spelling
	// and compare.
	reordered, err := ParseTaskSpec(strings.NewReader(`{
		"seed": ` + uitoa(spec.Seed) + `,
		"maxPhases": 25, "eps": 0.15, "delta": 0.3,
		"period": 0.05,
		"policy": {"kind":"replicator"},
		"topology": {"family":"pigou"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := reordered.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fp1 {
		t.Errorf("reordered spelling fingerprints %s, want %s", fp3, fp1)
	}
}

func uitoa(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestParseTaskSpecRejectsBadDocuments(t *testing.T) {
	for _, doc := range []string{
		``,
		`{"topology":{"family":"pigou"}}`, // no policy/period/shape
		`{"topology":{"family":"nope"},"policy":{"kind":"uniform"},"period":1,"horizon":1}`,                       // unknown family
		`{"topology":{"family":"pigou"},"policy":{"kind":"uniform"},"period":1,"horizon":1,"bogus":3}`,            // unknown field
		`{"topology":{"family":"pigou"},"policy":{"kind":"uniform"},"period":1,"horizon":1,"agents":5,"count":5}`, // both populations
	} {
		if _, err := ParseTaskSpec(strings.NewReader(doc)); err == nil {
			t.Errorf("accepted %s", doc)
		}
	}
}

// TestEncodeRecordsCanonical pins the canonical stream properties: sorted by
// ID, wallMs absent, byte-identical across shuffled input orders.
func TestEncodeRecordsCanonical(t *testing.T) {
	recs := []Record{
		{ID: 2, Topology: "b", WallMS: 3.5},
		{ID: 0, Topology: "a", WallMS: 1.25},
		{ID: 1, Topology: "c", WallMS: 99},
	}
	var buf1 bytes.Buffer
	if err := EncodeRecords(&buf1, recs); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf1.String(), "wallMs") {
		t.Errorf("canonical stream leaks wallMs:\n%s", buf1.String())
	}
	var buf2 bytes.Buffer
	if err := EncodeRecords(&buf2, []Record{recs[2], recs[0], recs[1]}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Errorf("canonical stream depends on input order:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
	lines := strings.Split(strings.TrimSpace(buf1.String()), "\n")
	if len(lines) != 3 || !strings.Contains(lines[0], `"a"`) || !strings.Contains(lines[2], `"b"`) {
		t.Errorf("canonical stream not ID-sorted:\n%s", buf1.String())
	}
	// The input slice order is the caller's; EncodeRecords must not mutate it.
	if recs[0].ID != 2 {
		t.Error("EncodeRecords reordered the caller's slice")
	}
}
