package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"wardrop/internal/canon"
	"wardrop/internal/flow"
)

// TaskSpec is the JSON document of one self-contained sweep task: the task's
// run identity (the axes of one campaign cell × seed) together with the
// campaign-level run-shape scalars that Task.Fingerprint can treat as shared
// context but a remote worker cannot. It is the wire unit of distributed
// sweeps — the body of POST /v1/tasks — and its fingerprint is the durable
// cache key under which the task's record is memoized, so identical cells
// from different campaigns (or re-submitted campaigns) dedup across runs.
type TaskSpec struct {
	Topology Topology   `json:"topology"`
	Policy   PolicySpec `json:"policy"`
	Period   Period     `json:"period"`
	// Agents / Count select the population (at most one may be positive;
	// both zero runs the fluid limit).
	Agents int   `json:"agents,omitempty"`
	Count  int64 `json:"count,omitempty"`
	// Delta is the (δ,ε) accounting width (<= 0 disables).
	Delta float64 `json:"delta,omitempty"`
	// Timeline is the task's timelines-axis entry (absent = stationary run).
	Timeline *TimelineSpec `json:"timeline,omitempty"`
	// Seed is the derived per-task seed, already resolved by the campaign
	// expansion — remote workers use it verbatim.
	Seed uint64 `json:"seed"`

	// Campaign run-shape scalars (see Campaign for semantics).
	Horizon   float64 `json:"horizon,omitempty"`
	MaxPhases int     `json:"maxPhases,omitempty"`
	Start     string  `json:"start,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	Weak      bool    `json:"weak,omitempty"`
	Streak    int     `json:"streak,omitempty"`
}

// NewTaskSpec renders one expanded campaign task as a self-contained spec.
// The resulting spec runs exactly as the task would inside sweep.Run — same
// seed, same run shape — so its record (modulo the bookkeeping ID/SeedIndex,
// which a spec does not carry) is byte-identical to the local one.
func NewTaskSpec(c *Campaign, t Task) *TaskSpec {
	return &TaskSpec{
		Topology:  t.Topology,
		Policy:    t.Policy,
		Period:    t.Period,
		Agents:    t.Agents,
		Count:     t.Count,
		Delta:     t.Delta,
		Timeline:  t.Timeline,
		Seed:      t.Seed,
		Horizon:   c.Horizon,
		MaxPhases: c.MaxPhases,
		Start:     c.Start,
		Eps:       c.Eps,
		Weak:      c.Weak,
		Streak:    c.Streak,
	}
}

// campaign reconstitutes the run-shape context runTask reads.
func (ts *TaskSpec) campaign() *Campaign {
	c := &Campaign{
		Topologies:    []Topology{ts.Topology},
		Policies:      []PolicySpec{ts.Policy},
		UpdatePeriods: []Period{ts.Period},
		Horizon:       ts.Horizon,
		MaxPhases:     ts.MaxPhases,
		Start:         ts.Start,
		Delta:         ts.Delta,
		Eps:           ts.Eps,
		Weak:          ts.Weak,
		Streak:        ts.Streak,
	}
	if ts.Agents > 0 {
		c.Agents = []int{ts.Agents}
	}
	if ts.Count > 0 {
		c.Counts = []int64{ts.Count}
	}
	if ts.Timeline != nil {
		c.Timelines = []TimelineSpec{*ts.Timeline}
	}
	return c
}

// task reconstitutes the Task. ID and SeedIndex are bookkeeping the spec
// does not carry; the submitter rebinds them on the returned record.
func (ts *TaskSpec) task() Task {
	return Task{
		Topology: ts.Topology,
		Policy:   ts.Policy,
		Period:   ts.Period,
		Agents:   ts.Agents,
		Count:    ts.Count,
		Delta:    ts.Delta,
		Timeline: ts.Timeline,
		Seed:     ts.Seed,
	}
}

// Validate checks the spec the way campaign validation would: component
// selections resolve through the catalogs, populations and run-shape scalars
// are in range.
func (ts *TaskSpec) Validate() error {
	if ts.Agents > 0 && ts.Count > 0 {
		return fmt.Errorf("%w: task selects both agents %d and count %d", ErrBadCampaign, ts.Agents, ts.Count)
	}
	return ts.campaign().Validate()
}

// Fingerprint is the canonical-JSON SHA-256 of the spec — the distributed
// layer's cache key and sharding key. Unlike Task.Fingerprint (which omits
// the campaign scalars shared within one run), it covers every input that
// determines the record, so it is safe as a durable cross-campaign identity.
func (ts *TaskSpec) Fingerprint() (string, error) {
	return canon.Fingerprint(ts)
}

// ErrorRecord renders a submission-level failure as the task's record, with
// the identity fields filled the same way a local per-task failure would
// fill them.
func (ts *TaskSpec) ErrorRecord(err error) Record {
	return errorRecord(ts.task(), err)
}

// ParseTaskSpec decodes a JSON task specification, rejecting unknown fields,
// and validates it.
func ParseTaskSpec(r io.Reader) (*TaskSpec, error) {
	var ts TaskSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ts); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCampaign, err)
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return &ts, nil
}

// InstanceCache memoizes built instances and their Frank–Wolfe reference
// potentials across task runs — the per-campaign cache sweep.Run builds
// internally, exported so a serving process can keep one for the lifetime of
// the server and pay each topology cell's construction and Φ* solve once
// across every /v1/tasks job it executes. Safe for concurrent use.
type InstanceCache struct {
	m sync.Map
}

// NewInstanceCache returns an empty cache.
func NewInstanceCache() *InstanceCache { return &InstanceCache{} }

// RunTaskSpec executes one task spec with the same isolation and semantics
// as a task inside sweep.Run: failures (including panics) come back as the
// record's Error field, and the second return reports a run aborted by
// context cancellation (no usable record). The record's ID and SeedIndex
// are zero — the spec does not carry bookkeeping identity; submitters
// rebind them. cache may be nil for one-shot runs.
func RunTaskSpec(ctx context.Context, ts *TaskSpec, cache *InstanceCache, ws *flow.Workspace) (Record, bool) {
	if cache == nil {
		cache = NewInstanceCache()
	}
	return runTaskIsolated(ctx, ts.campaign(), ts.task(), &cache.m, ws)
}
