package sweep

import (
	"context"
	"strings"
	"testing"
)

func TestAggregateGroupsBySeed(t *testing.T) {
	recs := []Record{
		{ID: 0, Topology: "pigou", Policy: "uniform", Period: "safe", SeedIndex: 0, Gap: 1, UnsatisfiedPhases: 10, Converged: true, AtEquilibrium: true},
		{ID: 1, Topology: "pigou", Policy: "uniform", Period: "safe", SeedIndex: 1, Gap: 3, UnsatisfiedPhases: 20, Converged: false, AtEquilibrium: true},
		{ID: 2, Topology: "pigou", Policy: "replicator", Period: "safe", SeedIndex: 0, Gap: 5},
		{ID: 3, Topology: "pigou", Policy: "replicator", Period: "safe", SeedIndex: 1, Error: "boom"},
	}
	cells := Aggregate(recs)
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	u := cells[0]
	if u.Runs != 2 || u.Errors != 0 || u.Gap.Mean != 2 || u.Unsatisfied.Mean != 15 {
		t.Errorf("uniform cell = %+v", u)
	}
	if u.ConvergedFrac != 0.5 || u.EquilibriumFrac != 1 {
		t.Errorf("uniform fractions = %+v", u)
	}
	r := cells[1]
	if r.Runs != 2 || r.Errors != 1 || r.Gap.Mean != 5 {
		t.Errorf("replicator cell = %+v", r)
	}
}

func TestSummaryTableShape(t *testing.T) {
	c := parseDemo(t)
	res, err := Run(context.Background(), c, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cells := Aggregate(res.Records)
	// 2 topologies x 2 policies x 2 periods x 1 agent count.
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	tbl := SummaryTable(c.Name, cells)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	out := tbl.Render()
	if !strings.Contains(out, "links(m=4)") || !strings.Contains(out, "replicator") {
		t.Errorf("render missing cell labels:\n%s", out)
	}
	// Every cell had 2 clean replicates.
	for _, row := range tbl.Rows {
		if row[5] != "2" || row[6] != "0" {
			t.Errorf("runs/errors = %s/%s: %v", row[5], row[6], row)
		}
	}
}
