package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

// sampleTopologies gives one representative selection per registered
// topology family. The determinism test fails when a registered family has
// no sample, so new families cannot silently escape coverage.
var sampleTopologies = map[string]Topology{
	"pigou":   {Family: "pigou"},
	"braess":  {Family: "braess"},
	"kink":    {Family: "kink", Beta: 4},
	"links":   {Family: "links", Size: 5},
	"grid":    {Family: "grid", Size: 3},
	"layered": {Family: "layered", Size: 2, Layers: 2},
	"sparse-random": {Family: "sparse-random", Size: 200,
		Params: json.RawMessage(`{"degree": 3, "commodities": 2, "kpaths": 4}`)},
	"scalefree": {Family: "scalefree", Size: 200,
		Params: json.RawMessage(`{"attach": 2, "commodities": 2, "kpaths": 4}`)},
	"tntp": {Family: "tntp",
		Params: json.RawMessage(`{"net": "../tntp/testdata/siouxfalls_net.tntp", "trips": "../tntp/testdata/siouxfalls_trips.tntp", "kpaths": 2}`)},
	"custom": {Family: "custom", Instance: json.RawMessage(`{
	  "nodes": ["s", "t"],
	  "edges": [
	    {"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 2}},
	    {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
	  ],
	  "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	}`)},
}

// fingerprint summarises an instance for equality comparison: structure plus
// the path latencies at the uniform flow (which exercise every latency
// function).
func fingerprint(t *testing.T, inst *flow.Instance) []float64 {
	t.Helper()
	fp := []float64{float64(inst.NumPaths()), float64(inst.NumCommodities()), float64(inst.MaxPathLen()), inst.LMax(), inst.Beta()}
	return append(fp, inst.PathLatencies(inst.UniformFlow())...)
}

// Every registered topology family must be deterministic: the same family,
// parameters and seed always produce the same instance. Cell aggregation,
// the sweep instance cache and replicate pairing all assume this.
func TestEveryRegisteredTopologyFamilyDeterministic(t *testing.T) {
	const seed = 12345
	for _, family := range topo.Catalog.Names() {
		sample, ok := sampleTopologies[family]
		if !ok {
			t.Errorf("registered topology family %q has no determinism sample; add one", family)
			continue
		}
		if err := sample.Validate(); err != nil {
			t.Errorf("%s: validate: %v", family, err)
			continue
		}
		a, err := sample.Build(seed)
		if err != nil {
			t.Errorf("%s: build: %v", family, err)
			continue
		}
		b, err := sample.Build(seed)
		if err != nil {
			t.Errorf("%s: rebuild: %v", family, err)
			continue
		}
		fa, fb := fingerprint(t, a), fingerprint(t, b)
		if len(fa) != len(fb) {
			t.Errorf("%s: fingerprints differ in length: %d vs %d", family, len(fa), len(fb))
			continue
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Errorf("%s: fingerprint[%d] = %g vs %g (not deterministic)", family, i, fa[i], fb[i])
			}
		}
		if sample.Key() != sample.Key() {
			t.Errorf("%s: Key not deterministic", family)
		}
	}
}

// Seeded families must actually respond to the seed (otherwise pairing
// replicates across cells is meaningless), and unseeded families must
// ignore it.
func TestSeededFamiliesUseTheSeed(t *testing.T) {
	for _, family := range topo.Catalog.Names() {
		sample, ok := sampleTopologies[family]
		if !ok {
			continue // reported by the determinism test
		}
		a, err := sample.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		b, err := sample.Build(2)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		fa, fb := fingerprint(t, a), fingerprint(t, b)
		same := len(fa) == len(fb)
		if same {
			for i := range fa {
				if fa[i] != fb[i] {
					same = false
					break
				}
			}
		}
		if sample.seeded() && same {
			t.Errorf("%s: seeded family ignored the seed", family)
		}
		if !sample.seeded() && !same {
			t.Errorf("%s: unseeded family depends on the seed", family)
		}
	}
}

// The builtin cell labels are pinned byte for byte: golden result files and
// aggregation keys from earlier releases must keep parsing into the same
// cells after the catalog rewire.
func TestBuiltinTopologyKeysPinned(t *testing.T) {
	cases := map[string]string{
		"pigou":         "pigou",
		"braess":        "braess",
		"kink":          "kink(beta=4)",
		"links":         "links(m=5)",
		"grid":          "grid(n=3)",
		"layered":       "layered(l=2,w=2)",
		"sparse-random": "sparse-random(m=200,d=3,c=2,k=4)",
		"scalefree":     "scalefree(m=200,a=2,c=2,k=4)",
		"tntp":          "tntp(siouxfalls,k=2)",
	}
	for family, want := range cases {
		if got := sampleTopologies[family].Key(); got != want {
			t.Errorf("%s: Key() = %q, want %q", family, got, want)
		}
	}
	// Layered with the default layer count.
	if got := (Topology{Family: "layered", Size: 4}).Key(); got != "layered(l=3,w=4)" {
		t.Errorf("layered default Key() = %q, want layered(l=3,w=4)", got)
	}
}

// The custom-topology label digests the embedded document's verbatim bytes
// — exactly as pre-catalog releases did — so archived sweep results keep
// joining against re-runs of the same campaign file. Whitespace variants of
// one document are distinct topologies, as before.
func TestCustomTopologyKeyDigestsVerbatimBytes(t *testing.T) {
	pretty := json.RawMessage("{\n  \"nodes\": [\"s\", \"t\"],\n  \"edges\": [\n    {\"from\": \"s\", \"to\": \"t\", \"latency\": {\"kind\": \"linear\", \"slope\": 1}},\n    {\"from\": \"s\", \"to\": \"t\", \"latency\": {\"kind\": \"constant\", \"c\": 1}}\n  ],\n  \"commodities\": [{\"source\": \"s\", \"sink\": \"t\", \"demand\": 1}]\n}")
	h := fnv.New32a()
	h.Write(pretty)
	want := fmt.Sprintf("custom(%08x)", h.Sum32())
	if got := (Topology{Family: "custom", Instance: pretty}).Key(); got != want {
		t.Errorf("Key() = %q, want %q (digest must cover the verbatim document bytes)", got, want)
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, pretty); err != nil {
		t.Fatal(err)
	}
	if got := (Topology{Family: "custom", Instance: compacted.Bytes()}).Key(); got == want {
		t.Error("whitespace variants of the document unexpectedly share a label")
	}
}

// The builtin policy labels are pinned byte for byte as well.
func TestBuiltinPolicyKeysPinned(t *testing.T) {
	cases := []struct {
		spec PolicySpec
		want string
	}{
		{PolicySpec{Kind: "uniform"}, "uniform"},
		{PolicySpec{Kind: "replicator"}, "replicator"},
		{PolicySpec{Kind: "proportional"}, "proportional"},
		{PolicySpec{Kind: "boltzmann", C: 4}, "boltzmann(c=4)"},
		{PolicySpec{Kind: "uniform", Migrator: "linear"}, "uniform"},
		{PolicySpec{Kind: "uniform", Migrator: "alphalinear", Alpha: 0.5}, "uniform+alphalinear(0.5)"},
		{PolicySpec{Kind: "replicator", Migrator: "betterresponse"}, "replicator+betterresponse"},
		{PolicySpec{Kind: "boltzmann", C: 2, Migrator: "alphalinear", Alpha: 1.5}, "boltzmann(c=2)+alphalinear(1.5)"},
	}
	for _, c := range cases {
		if got := c.spec.Key(); got != c.want {
			t.Errorf("%+v: Key() = %q, want %q", c.spec, got, c.want)
		}
	}
}
