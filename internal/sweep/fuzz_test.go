package sweep

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzParseCampaign asserts the campaign parse contract: ParseCampaign never
// panics, every failure wraps ErrBadCampaign, and every accepted campaign
// expands into its task list without error (validation and expansion must
// agree on what is valid).
func FuzzParseCampaign(f *testing.F) {
	f.Add([]byte(demoCampaign))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"topologies": [{"family":"moebius"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1}`))
	f.Add([]byte(`{"topologies": [{"family":"kink","beta":-2}], "policies": [{"kind":"boltzmann","c":-1}], "updatePeriods": ["safe"], "horizon": 1}`))
	f.Add([]byte(`{"topologies": [{"family":"custom","instance":{"nodes":[]}}], "policies": [{"kind":"uniform","migrator":"teleport"}], "updatePeriods": ["soon"], "maxPhases": -1}`))
	f.Add([]byte(`{"topologies": [{"family":"layered","size":2,"layers":-1}], "policies": [{"kind":"uniform"}], "updatePeriods": [0.5], "horizon": 1, "deltas": [-0.1], "start": "sideways"}`))
	// Timeline axes: a valid entry (schedule + event + toll), an unknown
	// schedule kind, a pwl with non-ascending knots, and an event with a
	// malformed edge selector — the invalid ones must classify as ErrBadSpec
	// (and hence ErrBadCampaign after wrapping).
	f.Add([]byte(`{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [0.5], "horizon": 2, "timelines": [{"name":"rush","schedules":[{"kind":"pwl","times":[0,1],"factors":[1,0.5]}],"events":[{"at":1,"action":"block","edge":0}],"tolls":[{"kind":"marginal"}]}]}`))
	f.Add([]byte(`{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [0.5], "horizon": 2, "timelines": [{"schedules":[{"kind":"lunar","period":3}]}]}`))
	f.Add([]byte(`{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [0.5], "horizon": 2, "timelines": [{"schedules":[{"kind":"pwl","times":[1,0],"factors":[1,1]}]}]}`))
	f.Add([]byte(`{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [0.5], "horizon": 2, "timelines": [{"events":[{"at":-1,"action":"restore","from":"s"}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseCampaign(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCampaign) {
				t.Fatalf("ParseCampaign failure does not wrap ErrBadCampaign: %v", err)
			}
			return
		}
		// Bound the cross product before expanding: the fuzzer may write
		// huge axis sizes, and this test is about panics and error
		// classification, not about materialising giant task lists.
		size := len(c.Topologies) * len(c.Policies) * len(c.UpdatePeriods)
		if n := len(c.Agents); n > 0 {
			size *= n
		}
		if n := len(c.Deltas); n > 0 {
			size *= n
		}
		if n := len(c.Timelines); n > 0 {
			size *= n
		}
		if n := c.Seeds; n > 1 {
			size *= n
		}
		if size > 4096 {
			t.Skip("cross product too large for a fuzz iteration")
		}
		if _, err := c.Expand(); err != nil {
			t.Fatalf("validated campaign failed to expand: %v", err)
		}
	})
}
