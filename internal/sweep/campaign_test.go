package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

const demoCampaign = `{
  "name": "demo",
  "topologies": [
    {"family": "links", "size": 4},
    {"family": "pigou"}
  ],
  "policies": [{"kind": "uniform"}, {"kind": "replicator"}],
  "updatePeriods": ["safe", 0.25],
  "agents": [0],
  "seeds": 2,
  "baseSeed": 7,
  "maxPhases": 50,
  "delta": 0.3,
  "eps": 0.15,
  "streak": 10
}`

func parseDemo(t *testing.T) *Campaign {
	t.Helper()
	c, err := ParseCampaign(strings.NewReader(demoCampaign))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExpandDeterministic(t *testing.T) {
	c := parseDemo(t)
	a, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 topologies x 2 policies x 2 periods x 1 agents x 2 seeds.
	if len(a) != 16 {
		t.Fatalf("tasks = %d, want 16", len(a))
	}
	for i := range a {
		if a[i].ID != i {
			t.Errorf("task %d has ID %d", i, a[i].ID)
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("expansion not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Seeds pair replicates across cells: tasks sharing (topology,
	// SeedIndex) draw the same seed whatever the policy/period, so seeded
	// instance families are compared on identical random graphs; distinct
	// replicates and distinct topologies draw distinct seeds.
	byPair := make(map[string]uint64)
	for _, tk := range a {
		pair := fmt.Sprintf("%s#%d", tk.Topology.Key(), tk.SeedIndex)
		if prev, ok := byPair[pair]; ok {
			if prev != tk.Seed {
				t.Errorf("pair %s drew different seeds %d, %d", pair, prev, tk.Seed)
			}
		} else {
			byPair[pair] = tk.Seed
		}
	}
	seen := make(map[uint64]string)
	for pair, seed := range byPair {
		if other, ok := seen[seed]; ok {
			t.Errorf("pairs %s and %s share seed %d", pair, other, seed)
		}
		seen[seed] = pair
	}
}

func TestExpandSeedsIndependentOfAxisOrder(t *testing.T) {
	// A task's derived seed is a function of (baseSeed, topology,
	// seedIndex) only, so shrinking an axis must not change the seeds of
	// the tasks that keep their position.
	c := parseDemo(t)
	full, _ := c.Expand()
	c.Topologies = c.Topologies[:1]
	short, _ := c.Expand()
	for i := range short {
		if short[i].Seed != full[i].Seed {
			t.Errorf("task %d seed changed after axis shrink: %d vs %d", i, short[i].Seed, full[i].Seed)
		}
	}
}

func TestParseCampaignErrors(t *testing.T) {
	cases := map[string]string{
		"empty topologies":  `{"topologies": [], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1}`,
		"empty policies":    `{"topologies": [{"family":"pigou"}], "policies": [], "updatePeriods": [1], "horizon": 1}`,
		"no periods":        `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [], "horizon": 1}`,
		"bad period":        `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [-1], "horizon": 1}`,
		"period word":       `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": ["soon"], "horizon": 1}`,
		"bad family":        `{"topologies": [{"family":"moebius"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1}`,
		"bad kind":          `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"psychic"}], "updatePeriods": [1], "horizon": 1}`,
		"negative c":        `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"boltzmann","c":-1}], "updatePeriods": [1], "horizon": 1}`,
		"bad migrator":      `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform","migrator":"teleport"}], "updatePeriods": [1], "horizon": 1}`,
		"no budget":         `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1]}`,
		"bad start":         `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "start": "sideways"}`,
		"negative agents":   `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "agents": [-1]}`,
		"agents over cap":   `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "agents": [16777217]}`,
		"zero count":        `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "counts": [0]}`,
		"count over 2^53":   `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "counts": [1e16]}`,
		"unknown field":     `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "bogus": true}`,
		"links too small":   `{"topologies": [{"family":"links","size":1}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1}`,
		"negative layers":   `{"topologies": [{"family":"layered","size":3,"layers":-2}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1}`,
		"custom no doc":     `{"topologies": [{"family":"custom"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1}`,
		"negative eps":      `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "delta": 0.1, "eps": -1}`,
		"negative eps axis": `{"topologies": [{"family":"pigou"}], "policies": [{"kind":"uniform"}], "updatePeriods": [1], "horizon": 1, "deltas": [0.1], "eps": -1}`,
	}
	for name, doc := range cases {
		if _, err := ParseCampaign(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrBadCampaign) && name != "custom no doc" {
			t.Errorf("%s: error %v does not wrap ErrBadCampaign", name, err)
		}
	}
}

func TestCustomTopologyBuilds(t *testing.T) {
	doc := `{
	  "name": "custom",
	  "topologies": [{"family": "custom", "instance": {
	    "nodes": ["s", "t"],
	    "edges": [
	      {"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1}},
	      {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
	    ],
	    "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	  }}],
	  "policies": [{"kind": "uniform"}],
	  "updatePeriods": ["safe"],
	  "horizon": 5
	}`
	c, err := ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.Topologies[0].Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 2 {
		t.Errorf("paths = %d, want 2", inst.NumPaths())
	}
}

func TestPeriodRoundTrip(t *testing.T) {
	c := parseDemo(t)
	if !c.UpdatePeriods[0].Safe || c.UpdatePeriods[1].T != 0.25 {
		t.Fatalf("periods = %+v", c.UpdatePeriods)
	}
	if c.UpdatePeriods[0].String() != "safe" || c.UpdatePeriods[1].String() != "0.25" {
		t.Errorf("period labels = %q, %q", c.UpdatePeriods[0], c.UpdatePeriods[1])
	}
	b, err := c.UpdatePeriods[0].MarshalJSON()
	if err != nil || string(b) != `"safe"` {
		t.Errorf("marshal safe = %s, %v", b, err)
	}
}
