package sweep

import (
	"encoding/json"
	"io"
)

// CanonicalRecord returns rec with its nondeterministic annotations cleared:
// the wall-clock cost is measurement, not result, so it is dropped (the
// wallMs field is omitted from the JSON encoding at zero). Everything that
// remains is a pure function of the task's run identity, which is what makes
// canonical record streams byte-comparable across runs, machines and
// local-vs-distributed execution.
func CanonicalRecord(rec Record) Record {
	rec.WallMS = 0
	return rec
}

// EncodeRecords writes records as the canonical JSONL stream: one canonical
// record per line, ordered by task ID. Two runs of the same campaign — on
// one process or sharded across a fleet, with or without mid-run worker
// failures — produce byte-identical output.
func EncodeRecords(w io.Writer, records []Record) error {
	sorted := append([]Record(nil), records...)
	sortRecords(sorted)
	enc := json.NewEncoder(w)
	for _, rec := range sorted {
		if err := enc.Encode(CanonicalRecord(rec)); err != nil {
			return err
		}
	}
	return nil
}
