package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"wardrop/internal/dynamics"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/obs"
	"wardrop/internal/policy"
	"wardrop/internal/solver"
	"wardrop/internal/timeline"
)

// Record is one task's outcome — one JSONL line in the streaming result file.
// Exactly one record is emitted per completed task (including per-task
// failures), in completion order; tasks aborted by context cancellation get
// no record, so after an interrupted run len(records) < len(tasks). Records
// carry the task ID so any downstream consumer can re-sort or re-join.
type Record struct {
	// ID is the task ID from the deterministic expansion.
	ID int `json:"id"`
	// Topology, Policy, Period are the task's cell labels.
	Topology string `json:"topology"`
	Policy   string `json:"policy"`
	Period   string `json:"period"`
	// T is the resolved bulletin-board period (the safe period when
	// Period == "safe").
	T float64 `json:"T"`
	// Agents is the population size (0 = fluid limit).
	Agents int `json:"agents"`
	// Count is the mean-field count engine's population (0 = the cell ran
	// on the fluid or per-agent engine per Agents).
	Count int64 `json:"count,omitempty"`
	// Delta is the task's (δ,ε) accounting width (0 = accounting disabled).
	Delta float64 `json:"delta"`
	// Timeline is the timelines-axis entry's cell label (absent for
	// stationary cells, keeping pre-timeline record streams byte-identical).
	Timeline string `json:"timeline,omitempty"`
	// Seed is the task's derived seed.
	Seed uint64 `json:"seed"`
	// SeedIndex is the replicate number within the cell.
	SeedIndex int `json:"seedIndex"`

	// FinalPotential is Φ at the end of the run; PhiStar is the reference
	// equilibrium potential Φ*; Gap is Φ − Φ*.
	FinalPotential float64 `json:"finalPotential"`
	PhiStar        float64 `json:"phiStar"`
	Gap            float64 `json:"gap"`
	// AtEquilibrium reports the (δ,ε)-equilibrium verdict on the final flow
	// (weak variant if the campaign says so); always false when delta <= 0.
	AtEquilibrium bool `json:"atEquilibrium"`
	// UnsatisfiedPhases counts phases not starting at the configured
	// approximate equilibrium — the quantity bounded by Theorems 6 and 7
	// (fluid runs natively; agent runs via the phase hook).
	UnsatisfiedPhases int `json:"unsatisfiedPhases"`
	// Phases is the number of completed bulletin-board phases; Converged
	// reports whether the satisfied-streak stop fired before the budget.
	Phases    int  `json:"phases"`
	Converged bool `json:"converged"`
	// ElapsedSim is the simulated time covered; WallMS the wall-clock cost.
	// WallMS is measurement rather than result — the one nondeterministic
	// field — so it is omitted at zero and cleared by CanonicalRecord, which
	// is how canonical record streams stay byte-comparable across runs and
	// across local-vs-distributed execution. In-memory consumers (progress
	// reporting, the coordinator's straggler accounting, timing summaries)
	// always see the measured value.
	ElapsedSim float64 `json:"elapsedSim"`
	WallMS     float64 `json:"wallMs,omitempty"`
	// Error is non-empty when the task failed (including recovered panics);
	// the result fields are zero in that case.
	Error string `json:"error,omitempty"`

	// aborted marks a task cut short by context cancellation; such records
	// never enter the stream.
	aborted bool
}

// Options configures an engine run.
type Options struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// Results, if non-nil, receives one JSON line per completed task as it
	// finishes (streaming, completion order).
	Results io.Writer
	// Canonical streams CanonicalRecord forms to Results (wall time
	// stripped), so the streamed lines match the canonical byte-comparable
	// record encoding. Progress always receives the full record.
	Canonical bool
	// Progress, if non-nil, is called after each task completes with the
	// completed count, the total and the record. Called from the collector
	// goroutine only, so it needs no locking.
	Progress func(done, total int, rec Record)
	// Metrics, when non-nil, receives the pool's task-latency histograms:
	// one aggregate `sweep_task_ms` plus a per-worker
	// `sweep_task_ms{worker="N"}` for straggler spotting.
	Metrics *obs.Registry
}

// RunResult is a completed (or cleanly interrupted) engine run.
type RunResult struct {
	Campaign *Campaign
	Tasks    []Task
	// Records holds one record per completed task, sorted by task ID; on a
	// cancelled run it covers only the tasks that finished before the
	// interrupt (match against Tasks by ID, not position).
	Records []Record
}

// instEntry caches a built instance and its reference potential per
// topology cell, so tasks sharing an instance pay for construction and the
// Frank–Wolfe solve once. Instances are immutable, hence safe to share
// across workers.
type instEntry struct {
	once    sync.Once
	inst    *flow.Instance
	phiStar float64
	err     error
}

// Run expands the campaign and executes every task on a bounded worker pool.
// Task failures (including panics) are recorded per task, not fatal; the
// returned error is non-nil only for invalid campaigns, context
// cancellation, or a failing Results writer. On cancellation the context is
// threaded into the running simulations, so in-flight tasks abort between
// phases; the records completed so far are returned (sorted, exactly the
// ones already streamed to opts.Results) together with ctx.Err(), letting
// callers flush partial campaigns cleanly.
//
// Tasks with identical run identities (duplicate axis entries — see
// Task.Fingerprint) are simulated once: every duplicate still gets its own
// record in the stream, cloned from the representative's outcome, so record
// counts and downstream aggregation are unaffected while the duplicate
// compute is skipped.
func Run(ctx context.Context, c *Campaign, opts Options) (*RunResult, error) {
	tasks, err := c.Expand()
	if err != nil {
		return nil, err
	}
	groups := dedupTasks(tasks)
	// A sink failure cancels the pool so a broken -out target doesn't burn
	// the rest of the campaign's compute.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	var cache sync.Map // topology cache key -> *instEntry

	groupCh := make(chan taskGroup)
	// The sink channel is bounded: workers block once the collector falls
	// behind, keeping memory proportional to the pool size, not the
	// campaign size.
	recCh := make(chan Record, 2*workers)

	// Task-latency instruments: an aggregate histogram plus one per worker,
	// pre-registered here so the pool loop only touches atomics.
	var taskMs *obs.Histogram
	workerMs := make([]*obs.Histogram, workers)
	if opts.Metrics != nil {
		taskMs = opts.Metrics.Histogram("sweep_task_ms", "task wall-clock latency across the pool, milliseconds", nil)
		for w := range workerMs {
			workerMs[w] = opts.Metrics.Histogram(
				fmt.Sprintf("sweep_task_ms{worker=%q}", strconv.Itoa(w)),
				"task wall-clock latency on this worker, milliseconds", nil)
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// One evaluation workspace per worker, reused across every task
			// it runs: after the first task on each topology shape, a
			// task's simulation scratch is fully recycled arena memory.
			ws := flow.NewWorkspace()
			for g := range groupCh {
				rec, aborted := runTaskIsolated(ctx, c, g.rep, &cache, ws)
				if aborted {
					// Cancelled mid-simulation: the task did not complete,
					// so it (and its duplicates) gets no record.
					return
				}
				if taskMs != nil {
					taskMs.Observe(rec.WallMS)
					workerMs[w].Observe(rec.WallMS)
				}
				// Plain send: the collector drains recCh until it closes
				// (even after cancellation), so this cannot deadlock — and
				// a completed task's record must never be dropped, or the
				// partial-flush guarantee would nondeterministically lose
				// finished work.
				recCh <- rec
				// Duplicates clone the representative's outcome with only
				// the bookkeeping identity rebound (the run identity —
				// including the derived seed — is equal by construction).
				for _, d := range g.dups {
					dup := rec
					dup.ID, dup.SeedIndex = d.ID, d.SeedIndex
					recCh <- dup
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(recCh)
	}()

	// Feed task groups, honouring cancellation.
	feedErr := make(chan error, 1)
	go func() {
		defer close(groupCh)
		for _, g := range groups {
			// Checked before the select: with idle workers both select cases
			// are ready after cancellation and Go picks one at random, which
			// would keep feeding tasks the workers then have to abort.
			if err := ctx.Err(); err != nil {
				feedErr <- err
				return
			}
			select {
			case groupCh <- g:
			case <-ctx.Done():
				feedErr <- ctx.Err()
				return
			}
		}
		feedErr <- nil
	}()

	// Collect: stream JSONL, report progress, keep everything for the
	// aggregation pass.
	records := make([]Record, 0, len(tasks))
	enc := json.NewEncoder(io.Discard)
	if opts.Results != nil {
		enc = json.NewEncoder(opts.Results)
	}
	var sinkErr error
	for rec := range recCh {
		if sinkErr == nil {
			line := rec
			if opts.Canonical {
				line = CanonicalRecord(rec)
			}
			if err := enc.Encode(line); err != nil {
				sinkErr = fmt.Errorf("sweep: results sink: %w", err)
				cancel()
			}
		}
		records = append(records, rec)
		if opts.Progress != nil {
			opts.Progress(len(records), len(tasks), rec)
		}
	}
	sortRecords(records)
	result := &RunResult{Campaign: c, Tasks: tasks, Records: records}
	// The sink error wins over the cancellation it triggered.
	if sinkErr != nil {
		return nil, sinkErr
	}
	if err := <-feedErr; err != nil {
		return result, err
	}
	if err := ctx.Err(); err != nil {
		return result, err
	}
	return result, nil
}

// sortRecords orders by task ID.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
}

// runTaskIsolated runs one task, converting panics into per-task error
// records so a poisoned cell cannot take down the campaign. The second
// return reports that the task was aborted by context cancellation and
// therefore has no record.
func runTaskIsolated(ctx context.Context, c *Campaign, t Task, cache *sync.Map, ws *flow.Workspace) (Record, bool) {
	rec := isolated(t, func() Record { return runTask(ctx, c, t, cache, ws) })
	return rec, rec.aborted
}

func isolated(t Task, fn func() Record) (rec Record) {
	defer func() {
		if r := recover(); r != nil {
			rec = errorRecord(t, fmt.Errorf("panic: %v", r))
		}
	}()
	return fn()
}

// errorRecord fills the identity fields so failed tasks still appear exactly
// once in the stream.
func errorRecord(t Task, err error) Record {
	return Record{
		ID:        t.ID,
		Topology:  t.topologyLabel(),
		Policy:    t.policyLabel(),
		Period:    t.Period.String(),
		Agents:    t.Agents,
		Count:     t.Count,
		Delta:     t.Delta,
		Timeline:  t.Timeline.Key(),
		Seed:      t.Seed,
		SeedIndex: t.SeedIndex,
		Error:     err.Error(),
	}
}

func runTask(ctx context.Context, c *Campaign, t Task, cache *sync.Map, ws *flow.Workspace) Record {
	// Bail before the instance build and Frank–Wolfe solve — the expensive
	// pre-engine work — so tasks dequeued around the cancellation instant
	// abort immediately instead of delaying the partial flush.
	if ctx.Err() != nil {
		return Record{aborted: true}
	}
	start := time.Now()

	entry := instanceFor(t, cache)
	if entry.err != nil {
		return errorRecord(t, entry.err)
	}
	inst := entry.inst

	// Tolls transform the instance once at t = 0, before any downstream
	// resolution (policy smoothness, safe period, start distribution);
	// schedules and events compile into a segmented program below. A
	// stationary task passes through unchanged.
	var tl *timeline.Spec
	if t.Timeline != nil {
		tl = &t.Timeline.Spec
	}
	inst, err := timeline.ApplyTolls(tl, inst)
	if err != nil {
		return errorRecord(t, err)
	}

	pol, err := t.Policy.Build(inst)
	if err != nil {
		return errorRecord(t, err)
	}

	T := t.Period.T
	if t.Period.Safe {
		T, err = policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
		if err != nil {
			return errorRecord(t, err)
		}
		if T <= 0 || math.IsInf(T, 0) || math.IsNaN(T) {
			return errorRecord(t, fmt.Errorf("sweep: degenerate safe period %g", T))
		}
	}

	horizon := c.Horizon
	if c.MaxPhases > 0 {
		horizon = float64(c.MaxPhases) * T
	}

	f0, err := startFlow(inst, c.Start)
	if err != nil {
		return errorRecord(t, err)
	}

	// Every population dispatches through the unified engine API: the fluid
	// limit (exact uniformization) for the empty population, the finite-N
	// per-agent engine for Agents cells, the mean-field count engine for
	// Counts cells. The (δ,ε) round accounting and the satisfied-streak
	// stop are native to all of them, so every cell reports the same
	// quantities without any hook emulation here.
	var eng engine.Engine = engine.Fluid{Integrator: dynamics.Uniformization}
	if t.Count > 0 {
		eng = engine.Count{N: t.Count, Seed: t.Seed}
	} else if t.Agents > 0 {
		eng = engine.Agents{N: t.Agents, Seed: t.Seed, Workers: 1}
	}
	sc := engine.Scenario{
		Engine:                   eng,
		Instance:                 inst,
		Policy:                   pol,
		UpdatePeriod:             T,
		InitialFlow:              f0,
		Horizon:                  horizon,
		Delta:                    t.Delta,
		Eps:                      c.Eps,
		Weak:                     c.Weak,
		StopAfterSatisfiedStreak: c.Streak,
	}
	var res *engine.Result
	finalInst := inst
	if tl.NeedsProgram() {
		// Time-varying cell: compile the timeline against the tolled
		// instance and replay it segment by segment (the policy is rebuilt
		// per segment, as events change the instance's latency range).
		prog, perr := timeline.Compile(tl, inst, horizon)
		if perr != nil {
			return errorRecord(t, perr)
		}
		res, _, err = timeline.Run(ctx, prog, sc, func(segInst *flow.Instance) (policy.Policy, error) {
			return t.Policy.Build(segInst)
		}, nil, engine.WithWorkspace(ws))
		finalInst = prog.Segments[len(prog.Segments)-1].Instance
	} else {
		res, err = engine.Run(ctx, sc, engine.WithWorkspace(ws))
	}
	if err != nil {
		if engine.IsCancellation(err) {
			return Record{aborted: true}
		}
		return errorRecord(t, err)
	}

	// The reference potential must match the instance the final flow lives
	// on: the cell-cached Φ* for stationary tasks, a per-task solve when the
	// timeline modified the instance (tolls, or the final segment's event
	// state and demand factors).
	phiStar := entry.phiStar
	if finalInst != entry.inst {
		sol, serr := solver.SolveEquilibrium(finalInst, solver.Options{RelGapTol: 1e-10})
		if serr != nil {
			return errorRecord(t, serr)
		}
		phiStar = sol.Potential
	}

	rec := Record{
		ID:        t.ID,
		Topology:  t.topologyLabel(),
		Policy:    t.policyLabel(),
		Period:    t.Period.String(),
		T:         T,
		Agents:    t.Agents,
		Count:     t.Count,
		Delta:     t.Delta,
		Timeline:  t.Timeline.Key(),
		Seed:      t.Seed,
		SeedIndex: t.SeedIndex,

		FinalPotential:    res.FinalPotential,
		PhiStar:           phiStar,
		Gap:               res.FinalPotential - phiStar,
		UnsatisfiedPhases: res.UnsatisfiedPhases,
		Phases:            res.Phases,
		Converged:         res.Stopped,
		ElapsedSim:        res.Elapsed,
		WallMS:            float64(time.Since(start)) / float64(time.Millisecond),
	}
	if t.Delta > 0 {
		pathLat := finalInst.PathLatencies(res.Final)
		if c.Weak {
			rec.AtEquilibrium = finalInst.AtWeakApproxEquilibrium(res.Final, pathLat, t.Delta, c.Eps)
		} else {
			rec.AtEquilibrium = finalInst.AtApproxEquilibrium(res.Final, pathLat, t.Delta, c.Eps)
		}
	}
	return rec
}

// instanceFor returns the cached (instance, Φ*) pair for the task's topology
// cell, building and solving at most once per cell. Seed-dependent families
// (layered) cache per seed. Labels and seededness come from the task's
// expansion-time catalog resolution, so cache hits pay no JSON work; the
// catalog constructor runs once per cell inside the entry's once.
func instanceFor(t Task, cache *sync.Map) *instEntry {
	key := t.topologyLabel()
	if t.topologySeeded() {
		key = fmt.Sprintf("%s#%d", key, t.Seed)
	}
	v, _ := cache.LoadOrStore(key, &instEntry{})
	entry := v.(*instEntry)
	entry.once.Do(func() {
		// sync.Once marks the call done even if it panics, so convert
		// build/solve panics into the entry's error — otherwise later tasks
		// in the cell would see a half-initialised entry and crash with a
		// misleading nil dereference.
		defer func() {
			if r := recover(); r != nil {
				entry.inst, entry.err = nil, fmt.Errorf("sweep: instance build panic: %v", r)
			}
		}()
		entry.inst, entry.err = t.Topology.Build(t.Seed)
		if entry.err != nil {
			return
		}
		sol, err := solver.SolveEquilibrium(entry.inst, solver.Options{RelGapTol: 1e-10})
		if err != nil {
			entry.err = err
			return
		}
		entry.phiStar = sol.Potential
	})
	return entry
}

// startFlow builds the campaign's initial flow on an instance through the
// start-distribution catalog.
func startFlow(inst *flow.Instance, start string) (flow.Vector, error) {
	f, err := engine.BuildStart(start, inst)
	if err != nil {
		return nil, badCampaign(err)
	}
	return f, nil
}
