package sweep

import (
	"fmt"

	"wardrop/internal/report"
	"wardrop/internal/stats"
)

// Cell is one aggregation cell: every axis except the seed, with the
// replicate outcomes condensed by internal/stats.
type Cell struct {
	Topology string
	Policy   string
	Period   string
	Agents   int
	Count    int64
	Delta    float64
	// Timeline is the timelines-axis entry's label ("" for stationary cells).
	Timeline string `json:",omitempty"`

	// Runs is the replicate count, Errors how many of them failed.
	Runs   int
	Errors int

	// Gap summarises Φ − Φ* over the successful replicates; Unsatisfied the
	// Theorem 6/7 round counts.
	Gap         stats.Summary
	Unsatisfied stats.Summary
	// ConvergedFrac is the fraction of successful replicates whose
	// satisfied-streak stop fired; EquilibriumFrac the fraction ending at
	// the configured (δ,ε)-equilibrium.
	ConvergedFrac   float64
	EquilibriumFrac float64
}

// Aggregate groups records into cells (in first-task order) and condenses
// each cell's replicates.
func Aggregate(records []Record) []Cell {
	type acc struct {
		cell       *Cell
		gaps       []float64
		unsat      []float64
		conv, atEq int
	}
	var order []string
	byKey := make(map[string]*acc)
	for _, r := range records {
		key := cellKey(r.Topology, r.Policy, r.Period, popLabel(r.Agents, r.Count), r.Delta, r.Timeline)
		a, ok := byKey[key]
		if !ok {
			a = &acc{cell: &Cell{Topology: r.Topology, Policy: r.Policy, Period: r.Period, Agents: r.Agents, Count: r.Count, Delta: r.Delta, Timeline: r.Timeline}}
			byKey[key] = a
			order = append(order, key)
		}
		a.cell.Runs++
		if r.Error != "" {
			a.cell.Errors++
			continue
		}
		a.gaps = append(a.gaps, r.Gap)
		a.unsat = append(a.unsat, float64(r.UnsatisfiedPhases))
		if r.Converged {
			a.conv++
		}
		if r.AtEquilibrium {
			a.atEq++
		}
	}
	cells := make([]Cell, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		if n := a.cell.Runs - a.cell.Errors; n > 0 {
			a.cell.Gap, _ = stats.Summarize(a.gaps)
			a.cell.Unsatisfied, _ = stats.Summarize(a.unsat)
			a.cell.ConvergedFrac = float64(a.conv) / float64(n)
			a.cell.EquilibriumFrac = float64(a.atEq) / float64(n)
		}
		cells = append(cells, *a.cell)
	}
	return cells
}

// SummaryTable renders the aggregated cells as a report.Table (ASCII and CSV
// ready). Wall-clock columns are deliberately omitted so the table is
// deterministic for fixed campaigns, and the timeline column appears only
// when some cell carries a timeline, so stationary campaigns keep their
// historical table bytes.
func SummaryTable(name string, cells []Cell) *report.Table {
	hasTimeline := false
	for _, c := range cells {
		if c.Timeline != "" {
			hasTimeline = true
			break
		}
	}
	columns := []string{"topology", "policy", "T", "agents", "delta"}
	if hasTimeline {
		columns = append(columns, "timeline")
	}
	columns = append(columns,
		"runs", "errors",
		"gap_mean", "gap_median", "gap_p90",
		"unsat_mean", "unsat_p90", "converged", "at_eq",
	)
	tbl := &report.Table{
		Title:   fmt.Sprintf("sweep %s: per-cell summary", name),
		Columns: columns,
	}
	for _, c := range cells {
		row := []string{c.Topology, c.Policy, c.Period, popLabel(c.Agents, c.Count), report.F(c.Delta)}
		if hasTimeline {
			row = append(row, c.Timeline)
		}
		row = append(row,
			report.I(c.Runs), report.I(c.Errors),
			report.F(c.Gap.Mean), report.F(c.Gap.Median), report.F(c.Gap.P90),
			report.F(c.Unsatisfied.Mean), report.F(c.Unsatisfied.P90),
			report.F(c.ConvergedFrac), report.F(c.EquilibriumFrac),
		)
		tbl.AddRow(row...)
	}
	tbl.AddNote("%d cells; gap = final potential minus Frank-Wolfe Phi*", len(cells))
	return tbl
}
