// Package sweep is the batch campaign engine: it expands a JSON campaign
// specification — a cross product of topology, policy, update-period,
// population and seed axes — into a deterministic task list, executes the
// tasks on a worker pool with streaming JSONL results, and aggregates the
// records into per-cell summary tables. It turns the one-run simulators
// (dynamics, agents) into a high-throughput exploration machine for the
// paper's scaling-law questions.
package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"

	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/spec"
	"wardrop/internal/topo"
)

// Sentinel errors.
var (
	// ErrBadCampaign indicates a structurally invalid campaign specification.
	ErrBadCampaign = errors.New("sweep: invalid campaign specification")
)

// Campaign is the JSON document shape: the axes whose cross product is the
// task list, plus run-shape scalars shared by every task.
type Campaign struct {
	// Name labels the campaign; output files are derived from it.
	Name string `json:"name"`

	// Axes. The cross product Topologies × Policies × UpdatePeriods ×
	// Agents × Seeds is expanded in this nesting order (seeds innermost),
	// so task IDs are reproducible across runs and machines.

	// Topologies lists the instances to sweep.
	Topologies []Topology `json:"topologies"`
	// Policies lists the rerouting policies.
	Policies []PolicySpec `json:"policies"`
	// UpdatePeriods lists bulletin-board periods: numbers, or "safe" for the
	// per-(instance, policy) provably safe period of Corollary 5.
	UpdatePeriods []Period `json:"updatePeriods"`
	// Agents lists population sizes; 0 runs the fluid limit, N > 0 the
	// finite-N stochastic simulator.
	Agents []int `json:"agents,omitempty"`
	// Seeds is the number of replicate runs per cell (default 1). Each task
	// derives its own seed from BaseSeed and the task index.
	Seeds int `json:"seeds,omitempty"`
	// BaseSeed feeds the per-task seed derivation (splitmix64).
	BaseSeed uint64 `json:"baseSeed,omitempty"`

	// Run-shape scalars.

	// Horizon is the simulated-time budget per run. Ignored when MaxPhases
	// is set.
	Horizon float64 `json:"horizon,omitempty"`
	// MaxPhases, if positive, sets the budget to MaxPhases bulletin-board
	// phases (horizon = MaxPhases·T per task).
	MaxPhases int `json:"maxPhases,omitempty"`
	// Start selects the initial flow: "uniform" (default), "worst" (each
	// commodity entirely on its highest free-flow-latency path) or "skewed"
	// (90% on that path, the rest spread evenly).
	Start string `json:"start,omitempty"`
	// Delta, Eps parameterise the (δ,ε)-equilibrium accounting; Delta <= 0
	// disables it.
	Delta float64 `json:"delta,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	// Deltas, when non-empty, turns δ into a sweep axis (between the
	// population and seed axes) overriding the scalar Delta.
	Deltas []float64 `json:"deltas,omitempty"`
	// Weak selects the weak (δ,ε) metric (Definition 4).
	Weak bool `json:"weak,omitempty"`
	// Streak stops a run after this many consecutive phases starting at the
	// configured approximate equilibrium (0 disables).
	Streak int `json:"streak,omitempty"`
}

// Topology selects one instance family plus its parameters.
type Topology struct {
	// Family: pigou, braess, kink, links, grid, layered, custom.
	Family string `json:"family"`
	// Size is the family's size knob: link count (links), grid side (grid),
	// layer width (layered).
	Size int `json:"size,omitempty"`
	// Layers is the hidden-layer count for layered (default 3).
	Layers int `json:"layers,omitempty"`
	// Beta is the kink slope (family=kink).
	Beta float64 `json:"beta,omitempty"`
	// Instance embeds a full instance spec (family=custom).
	Instance json.RawMessage `json:"instance,omitempty"`
}

// Key renders the topology as a stable human-readable cell label.
func (t Topology) Key() string {
	switch t.Family {
	case "links":
		return fmt.Sprintf("links(m=%d)", t.Size)
	case "grid":
		return fmt.Sprintf("grid(n=%d)", t.Size)
	case "layered":
		return fmt.Sprintf("layered(l=%d,w=%d)", t.layersOrDefault(), t.Size)
	case "kink":
		return fmt.Sprintf("kink(beta=%g)", t.Beta)
	case "custom":
		// Distinct custom documents must label (and cache as) distinct
		// topologies, so tag the label with a digest of the document.
		h := fnv.New32a()
		h.Write(t.Instance)
		return fmt.Sprintf("custom(%08x)", h.Sum32())
	default:
		return t.Family
	}
}

func (t Topology) layersOrDefault() int {
	if t.Layers > 0 {
		return t.Layers
	}
	return 3
}

// seeded reports whether the instance itself depends on the task seed.
func (t Topology) seeded() bool { return t.Family == "layered" }

// Build materialises the instance. Only layered uses the seed.
func (t Topology) Build(seed uint64) (*flow.Instance, error) {
	switch t.Family {
	case "pigou":
		return topo.Pigou()
	case "braess":
		return topo.Braess()
	case "kink":
		return topo.TwoLinkKink(t.Beta)
	case "links":
		return topo.LinearParallelLinks(t.Size)
	case "grid":
		return topo.Grid(t.Size)
	case "layered":
		return topo.LayeredRandom(t.layersOrDefault(), t.Size, seed)
	case "custom":
		if len(t.Instance) == 0 {
			return nil, fmt.Errorf("%w: custom topology requires an instance document", ErrBadCampaign)
		}
		doc, err := spec.Decode(bytes.NewReader(t.Instance))
		if err != nil {
			return nil, err
		}
		return doc.Build()
	default:
		return nil, fmt.Errorf("%w: unknown topology family %q", ErrBadCampaign, t.Family)
	}
}

// validate rejects obviously bad parameters at parse time so errors surface
// before any worker starts.
func (t Topology) validate() error {
	switch t.Family {
	case "pigou", "braess":
		return nil
	case "kink":
		if t.Beta <= 0 {
			return fmt.Errorf("%w: kink beta %g must be positive", ErrBadCampaign, t.Beta)
		}
		return nil
	case "links":
		if t.Size < 2 {
			return fmt.Errorf("%w: links size %d must be >= 2", ErrBadCampaign, t.Size)
		}
		return nil
	case "grid":
		if t.Size < 2 {
			return fmt.Errorf("%w: grid size %d must be >= 2", ErrBadCampaign, t.Size)
		}
		return nil
	case "layered":
		if t.Size < 1 {
			return fmt.Errorf("%w: layered width %d must be >= 1", ErrBadCampaign, t.Size)
		}
		if t.Layers < 0 {
			return fmt.Errorf("%w: layered layers %d must be >= 0 (0 = default)", ErrBadCampaign, t.Layers)
		}
		return nil
	case "custom":
		if len(t.Instance) == 0 {
			return fmt.Errorf("%w: custom topology requires an instance document", ErrBadCampaign)
		}
		_, err := spec.Decode(bytes.NewReader(t.Instance))
		return err
	default:
		return fmt.Errorf("%w: unknown topology family %q", ErrBadCampaign, t.Family)
	}
}

// PolicySpec selects a rerouting policy: a sampling rule plus an optional
// non-default migration rule.
type PolicySpec struct {
	// Kind is the sampling rule: uniform, replicator (proportional),
	// boltzmann.
	Kind string `json:"kind"`
	// C is the Boltzmann concentration (kind=boltzmann).
	C float64 `json:"c,omitempty"`
	// Migrator overrides the migration rule: "" or "linear" (default,
	// (1/ℓmax)-smooth), "alphalinear" (min{1, α·gain}), "betterresponse"
	// (not α-smooth; incompatible with the "safe" period).
	Migrator string `json:"migrator,omitempty"`
	// Alpha is the alphalinear smoothness parameter.
	Alpha float64 `json:"alpha,omitempty"`
}

// Key renders the policy as a stable cell label.
func (p PolicySpec) Key() string {
	s := p.Kind
	if p.Kind == "boltzmann" {
		s = fmt.Sprintf("boltzmann(c=%g)", p.C)
	}
	switch p.Migrator {
	case "", "linear":
		return s
	case "alphalinear":
		return fmt.Sprintf("%s+alphalinear(%g)", s, p.Alpha)
	default:
		return s + "+" + p.Migrator
	}
}

// Build materialises the policy for an instance (the default linear migrator
// is sized to the instance's ℓmax).
func (p PolicySpec) Build(inst *flow.Instance) (policy.Policy, error) {
	var sampler policy.Sampler
	switch p.Kind {
	case "uniform":
		sampler = policy.Uniform{}
	case "replicator", "proportional":
		sampler = policy.Proportional{}
	case "boltzmann":
		if p.C < 0 {
			return policy.Policy{}, fmt.Errorf("%w: boltzmann c %g must be >= 0", ErrBadCampaign, p.C)
		}
		sampler = policy.Boltzmann{C: p.C}
	default:
		return policy.Policy{}, fmt.Errorf("%w: unknown policy kind %q", ErrBadCampaign, p.Kind)
	}
	var migrator policy.Migrator
	switch p.Migrator {
	case "", "linear":
		lin, err := policy.NewLinear(inst.LMax())
		if err != nil {
			return policy.Policy{}, err
		}
		migrator = lin
	case "alphalinear":
		al, err := policy.NewAlphaLinear(p.Alpha)
		if err != nil {
			return policy.Policy{}, err
		}
		migrator = al
	case "betterresponse":
		migrator = policy.BetterResponse{}
	default:
		return policy.Policy{}, fmt.Errorf("%w: unknown migrator %q", ErrBadCampaign, p.Migrator)
	}
	return policy.Policy{Sampler: sampler, Migrator: migrator}, nil
}

func (p PolicySpec) validate() error {
	switch p.Kind {
	case "uniform", "replicator", "proportional":
	case "boltzmann":
		if p.C < 0 {
			return fmt.Errorf("%w: boltzmann c %g must be >= 0", ErrBadCampaign, p.C)
		}
	default:
		return fmt.Errorf("%w: unknown policy kind %q", ErrBadCampaign, p.Kind)
	}
	switch p.Migrator {
	case "", "linear", "betterresponse":
	case "alphalinear":
		if p.Alpha <= 0 {
			return fmt.Errorf("%w: alphalinear alpha %g must be positive", ErrBadCampaign, p.Alpha)
		}
	default:
		return fmt.Errorf("%w: unknown migrator %q", ErrBadCampaign, p.Migrator)
	}
	return nil
}

// Period is one update-period axis value: either the literal "safe" (resolve
// the Corollary 5 period per instance and policy) or a positive number.
type Period struct {
	// Safe selects the per-task safe period.
	Safe bool
	// T is the fixed period when Safe is false.
	T float64
}

// UnmarshalJSON accepts the string "safe" or a positive JSON number.
func (p *Period) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if s != "safe" {
			return fmt.Errorf("%w: period string %q (want \"safe\" or a number)", ErrBadCampaign, s)
		}
		*p = Period{Safe: true}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("%w: bad period %s", ErrBadCampaign, b)
	}
	if v <= 0 {
		return fmt.Errorf("%w: period %g must be positive", ErrBadCampaign, v)
	}
	*p = Period{T: v}
	return nil
}

// MarshalJSON renders the period back as "safe" or a number.
func (p Period) MarshalJSON() ([]byte, error) {
	if p.Safe {
		return json.Marshal("safe")
	}
	return json.Marshal(p.T)
}

// String renders the period as a cell label. The shortest lossless float
// form is used so distinct periods never collide in aggregation keys.
func (p Period) String() string {
	if p.Safe {
		return "safe"
	}
	return strconv.FormatFloat(p.T, 'g', -1, 64)
}

// Task is one cell × seed of the expanded campaign. IDs are consecutive from
// 0 in expansion order. The derived Seed depends only on (BaseSeed, topology,
// SeedIndex): replicate s of every cell sharing a topology draws the same
// seed — seeded instance families are paired across policies/periods/
// populations so cell-vs-cell comparisons see the same random graphs — and
// editing other axes of a campaign never reshuffles existing seeds.
type Task struct {
	ID       int
	Topology Topology
	Policy   PolicySpec
	Period   Period
	Agents   int
	// Delta is the task's (δ,ε) accounting width (from the Deltas axis, or
	// the campaign scalar).
	Delta     float64
	SeedIndex int
	Seed      uint64
}

// cellKey is the shared aggregation-cell label: every axis except the seed.
// Task.CellKey and the aggregation pass must agree on it.
func cellKey(topology, policy, period string, agents int, delta float64) string {
	return fmt.Sprintf("%s|%s|T=%s|N=%d|d=%g", topology, policy, period, agents, delta)
}

// CellKey is the task's aggregation cell (every axis except the seed).
func (t Task) CellKey() string {
	return cellKey(t.Topology.Key(), t.Policy.Key(), t.Period.String(), t.Agents, t.Delta)
}

// Validate checks the campaign's axes and scalars without building instances.
func (c *Campaign) Validate() error {
	if len(c.Topologies) == 0 {
		return fmt.Errorf("%w: no topologies", ErrBadCampaign)
	}
	if len(c.Policies) == 0 {
		return fmt.Errorf("%w: no policies", ErrBadCampaign)
	}
	if len(c.UpdatePeriods) == 0 {
		return fmt.Errorf("%w: no update periods", ErrBadCampaign)
	}
	for _, t := range c.Topologies {
		if err := t.validate(); err != nil {
			return err
		}
	}
	for _, p := range c.Policies {
		if err := p.validate(); err != nil {
			return err
		}
	}
	for _, n := range c.Agents {
		if n < 0 {
			return fmt.Errorf("%w: agents %d must be >= 0", ErrBadCampaign, n)
		}
	}
	if c.Seeds < 0 {
		return fmt.Errorf("%w: seeds %d must be >= 0", ErrBadCampaign, c.Seeds)
	}
	if math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) || math.IsNaN(c.Delta) || math.IsNaN(c.Eps) {
		return fmt.Errorf("%w: horizon/delta/eps must be finite", ErrBadCampaign)
	}
	// Fail fast on the engine-level rejection every task would hit anyway.
	if c.Eps < 0 && (c.Delta > 0 || len(c.Deltas) > 0) {
		return fmt.Errorf("%w: eps %g must be >= 0 when delta accounting is enabled", ErrBadCampaign, c.Eps)
	}
	if c.Horizon <= 0 && c.MaxPhases <= 0 {
		return fmt.Errorf("%w: need horizon > 0 or maxPhases > 0", ErrBadCampaign)
	}
	if c.MaxPhases < 0 {
		return fmt.Errorf("%w: maxPhases %d must be >= 0", ErrBadCampaign, c.MaxPhases)
	}
	switch c.Start {
	case "", "uniform", "worst", "skewed":
	default:
		return fmt.Errorf("%w: unknown start %q (want uniform, worst or skewed)", ErrBadCampaign, c.Start)
	}
	for _, d := range c.Deltas {
		if d <= 0 {
			return fmt.Errorf("%w: delta axis value %g must be positive", ErrBadCampaign, d)
		}
	}
	return nil
}

// Expand materialises the deterministic task list: the cross product of the
// axes in declaration order with seeds innermost. Every task's derived seed
// is a pure function of (BaseSeed, topology, SeedIndex) — see Task.
func (c *Campaign) Expand() ([]Task, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	agents := c.Agents
	if len(agents) == 0 {
		agents = []int{0}
	}
	deltas := c.Deltas
	if len(deltas) == 0 {
		deltas = []float64{c.Delta}
	}
	seeds := c.Seeds
	if seeds == 0 {
		seeds = 1
	}
	tasks := make([]Task, 0, len(c.Topologies)*len(c.Policies)*len(c.UpdatePeriods)*len(agents)*len(deltas)*seeds)
	id := 0
	for _, tp := range c.Topologies {
		// Seeds are a pure function of (BaseSeed, topology, replicate):
		// fold the topology label into the base so distinct topologies get
		// independent streams while cells sharing one stay paired.
		h := fnv.New64a()
		h.Write([]byte(tp.Key()))
		topoBase := c.BaseSeed ^ h.Sum64()
		for _, pol := range c.Policies {
			for _, per := range c.UpdatePeriods {
				for _, n := range agents {
					for _, d := range deltas {
						for s := 0; s < seeds; s++ {
							tasks = append(tasks, Task{
								ID:        id,
								Topology:  tp,
								Policy:    pol,
								Period:    per,
								Agents:    n,
								Delta:     d,
								SeedIndex: s,
								Seed:      topo.DeriveSeed(topoBase, uint64(s)),
							})
							id++
						}
					}
				}
			}
		}
	}
	return tasks, nil
}

// ParseCampaign decodes a JSON campaign specification, rejecting unknown
// fields, and validates it.
func ParseCampaign(r io.Reader) (*Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCampaign, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
